# Tier-1 gate: everything `make check` runs must stay green.

GO ?= go

.PHONY: all build vet test race check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full pre-merge gate: vet, build, and the race-enabled test suite.
check: vet build race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
	rm -f fpbsim fpbexp *.trace *.prof probes.csv
