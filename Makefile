# Tier-1 gate: everything `make check` runs must stay green.

GO ?= go

.PHONY: all build fmt vet test race check bench clean

all: check

build:
	$(GO) build ./...

# Fails if any file needs gofmt (mirrors scripts/check.sh).
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full pre-merge gate: gofmt, vet, build, and the race-enabled tests.
check: fmt vet build race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
	rm -f fpbsim fpbexp *.trace *.prof probes.csv
