// Command tracegen materializes the synthetic workload generators into
// trace files (one per core) and can summarize existing traces. The file
// format is a one-line JSON header followed by fixed-width binary records
// (internal/trace).
//
// Usage:
//
//	tracegen -workload mcf_m -n 100000 -dir traces/
//	tracegen -summarize traces/mcf_m.core0.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fpb/internal/sim"
	"fpb/internal/trace"
	"fpb/internal/workload"
)

func main() {
	var (
		wlName    = flag.String("workload", "mcf_m", "workload to generate")
		n         = flag.Uint64("n", 100_000, "accesses per core")
		dir       = flag.String("dir", ".", "output directory")
		seed      = flag.Uint64("seed", 0, "override RNG seed (0 = default)")
		summarize = flag.String("summarize", "", "print a summary of an existing trace file and exit")
	)
	flag.Parse()

	if *summarize != "" {
		if err := summary(*summarize); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	cfg := sim.DefaultConfig()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	wl, err := workload.ByName(*wlName, cfg.Cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	root := sim.NewRNG(cfg.Seed)
	for i, prof := range wl.Cores {
		gen := workload.NewGenerator(prof, &cfg, i, root.Derive(uint64(1000+i)).Derive(1))
		path := filepath.Join(*dir, fmt.Sprintf("%s.core%d.trace", *wlName, i))
		if err := writeTrace(path, *wlName, i, prof.Value.String(), gen, *n); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d records, profile %s)\n", path, *n, prof.Name)
	}
}

func writeTrace(path, wlName string, core int, valueClass string, gen *workload.Generator, n uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f, wlName, core)
	w.SetValueClass(valueClass)
	for i := uint64(0); i < n; i++ {
		a, ok := gen.Next()
		if !ok {
			break
		}
		if err := w.Write(a); err != nil {
			return err
		}
	}
	return w.Flush()
}

func summary(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var records, writes, instr uint64
	for {
		a, ok := r.Next()
		if !ok {
			break
		}
		records++
		instr += a.Instructions()
		if a.Write {
			writes++
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	h := r.Header()
	fmt.Printf("workload   %s (core %d)\n", h.Workload, h.Core)
	fmt.Printf("records    %d (%d writes)\n", records, writes)
	fmt.Printf("instr      %d\n", instr)
	if instr > 0 {
		fmt.Printf("APKI       %.3f (write APKI %.3f)\n",
			float64(records)/float64(instr)*1000, float64(writes)/float64(instr)*1000)
	}
	return nil
}
