// Command fpbexp regenerates the paper's tables and figures.
//
// Usage:
//
//	fpbexp -list
//	fpbexp -exp fig16 [-instr 100000] [-workloads mcf_m,lbm_m]
//	fpbexp -all [-out results.md]
//
// Each experiment prints the same rows/series the corresponding figure or
// table of the paper reports (speedups over the same normalization
// baseline). -instr scales simulation length; larger values reduce noise.
// -workers bounds simulation parallelism; -remote offloads every simulation
// to a shared fpbd daemon, so repeated figure regenerations become cache
// hits against its persistent result store (see cmd/fpbd).
//
// -warmup N prepends a shared warmup phase to every simulation (optionally
// under -warmup-scheme), and -checkpoint-dir makes grid points sharing a
// warmup prefix simulate it once and warm-start from the stored barrier
// image — byte-identically (DESIGN.md §13).
//
// Profiling and observability: -pprof serves net/http/pprof, -cpuprofile /
// -memprofile write whole-run profiles, and -metricsdir dumps one metrics
// registry JSON per simulated (config, workload) pair.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fpb/internal/ckpt"
	"fpb/internal/exp"
	"fpb/internal/obs"
	"fpb/internal/serve/client"
	"fpb/internal/sim"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments")
		expID     = flag.String("exp", "", "experiment id to run (see -list)")
		all       = flag.Bool("all", false, "run every experiment in paper order")
		instr     = flag.Uint64("instr", 100_000, "instructions per core per simulation")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all 13)")
		out       = flag.String("out", "", "also append results to this file")
		bars      = flag.Bool("bars", false, "also render each result column as an ASCII bar chart")
		workers   = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS); with -remote, in-flight requests")
		shards    = flag.Int("shards", 0, "parallel engine shards per simulation (0 = sequential; results are bit-identical)")
		remote    = flag.String("remote", "", "offload simulations to fpbd daemon(s) at these comma-separated addresses; several addresses form a failover fleet")

		warmup       = flag.Uint64("warmup", 0, "run N warmup cycles before measurement in every simulation (0 = off)")
		warmupScheme = flag.String("warmup-scheme", "", "scheme the shared warmup phase runs under (requires -warmup)")
		ckptDir      = flag.String("checkpoint-dir", "", "warm-start simulations sharing a warmup prefix from checkpoints in this directory (requires -warmup)")

		runStats   = flag.Bool("runstats", false, "dump run telemetry (sims, retries, backend latency) to stderr at exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		metricsDir = flag.String("metricsdir", "", "dump one metrics-registry JSON per simulation into this directory")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "fpbexp: pprof:", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpbexp:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "fpbexp:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fpbexp:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fpbexp:", err)
			}
		}()
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	if *warmupScheme != "" && *warmup == 0 {
		fmt.Fprintln(os.Stderr, "fpbexp: -warmup-scheme is only meaningful with -warmup N (N > 0 warmup cycles)")
		os.Exit(1)
	}
	if *ckptDir != "" && *warmup == 0 {
		fmt.Fprintln(os.Stderr, "fpbexp: -checkpoint-dir is only meaningful with -warmup N (N > 0 warmup cycles): checkpoints capture the warmup prefix")
		os.Exit(1)
	}
	if *ckptDir != "" && *remote != "" {
		fmt.Fprintln(os.Stderr, "fpbexp: -checkpoint-dir is a local store; for remote runs configure each daemon's store with fpbd -ckpt-store")
		os.Exit(1)
	}
	if *ckptDir != "" {
		// Fail fast on an unusable store path: exp.NewRunner would only
		// warn and silently run everything cold.
		if _, err := ckpt.NewStore(*ckptDir); err != nil {
			fmt.Fprintf(os.Stderr, "fpbexp: -checkpoint-dir: %v\n", err)
			os.Exit(1)
		}
	}
	opt := exp.Options{
		InstrPerCore: *instr, MetricsDir: *metricsDir, Workers: *workers, Shards: *shards,
		WarmupCycles: *warmup, CheckpointDir: *ckptDir,
	}
	if *warmupScheme != "" {
		ws, err := sim.ParseScheme(*warmupScheme)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpbexp: -warmup-scheme:", err)
			os.Exit(1)
		}
		opt.WarmupScheme = ws
	}
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}
	// One registry holds both the runner's and (with -remote) the client's
	// telemetry; -runstats dumps it in the Prometheus text format, which
	// unlike the JSON view includes the latency histograms.
	reg := obs.NewRegistry()
	opt.Metrics = reg
	if *remote != "" {
		if addrs := strings.Split(*remote, ","); len(addrs) > 1 {
			// Several daemons: route each job to its ring owner and fail
			// over to replicas — the experiment neither knows nor cares
			// how many nodes executed it.
			fleet, err := client.NewFleet(addrs, client.FleetConfig{
				ProbeInterval: 5 * time.Second,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "fpbexp:", err)
				os.Exit(1)
			}
			defer fleet.Close()
			fleet.Instrument(reg)
			opt.Backend = fleet.Run
		} else {
			cl := client.New(*remote)
			cl.Instrument(reg)
			opt.Backend = cl.Run
		}
	}
	if *runStats {
		defer func() {
			if err := reg.WritePrometheus(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "fpbexp: runstats:", err)
			}
		}()
	}
	runner := exp.NewRunner(opt)

	var sinks []io.Writer = []io.Writer{os.Stdout}
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpbexp:", err)
			os.Exit(1)
		}
		defer f.Close()
		sinks = append(sinks, f)
	}
	w := io.MultiWriter(sinks...)

	var toRun []exp.Experiment
	switch {
	case *all:
		toRun = exp.All()
	case *expID != "":
		e, ok := exp.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "fpbexp: unknown experiment %q (see -list)\n", *expID)
			os.Exit(1)
		}
		toRun = []exp.Experiment{e}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, e := range toRun {
		start := time.Now()
		table, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fpbexp: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "## %s\n\n", e.Title)
		fmt.Fprintf(w, "Paper: %s\n\n", e.Paper)
		fmt.Fprintln(w, table.String())
		if *bars {
			for col := 1; col < len(table.Columns); col++ {
				if chart := table.BarChart(col, 40); chart != "" {
					fmt.Fprintln(w, chart)
				}
			}
		}
		fmt.Fprintf(w, "(%s, %d instr/core)\n\n", time.Since(start).Round(time.Millisecond), *instr)
	}
}
