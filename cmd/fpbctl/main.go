// Command fpbctl is the fleet control CLI: it submits parameter sweeps to a
// cluster of fpbd daemons, polls their progress, cancels them, and inspects
// ring membership.
//
// Usage:
//
//	fpbctl -addr host:8080 sweep -schemes fpb,ideal -workloads mcf_m,xal_m -wait
//	fpbctl -addr host:8080 status s000001
//	fpbctl -addr host:8080 cancel s000001
//	fpbctl -addr host:8080,host:8081 members
//	fpbctl -addr host:8080 sweeps
//
// -addr may list several nodes; fpbctl tries them in order until one
// answers, so a down coordinator does not strand the operator. Any node of
// the fleet accepts any command — sweeps are coordinated by whichever node
// receives them, and results land in the ring owners' stores either way.
// -json switches every command to raw JSON output for scripting.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"fpb/internal/cluster"
	"fpb/internal/serve/client"
)

// tryNodes runs f against each node until one succeeds; the last error
// surfaces when all fail.
func tryNodes(addrs []string, f func(base string) error) error {
	var lastErr error
	for _, a := range addrs {
		if err := f(client.Normalize(a)); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}

func getJSON(hc *http.Client, url string, v any) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return httpError(resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}

func postJSON(hc *http.Client, url string, req, v any) error {
	var body io.Reader
	if req != nil {
		b, err := json.Marshal(req)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	resp, err := hc.Post(url, "application/json", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return httpError(resp.StatusCode, raw)
	}
	return json.Unmarshal(raw, v)
}

func httpError(code int, body []byte) error {
	var ae struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
		return fmt.Errorf("HTTP %d: %s", code, ae.Error)
	}
	return fmt.Errorf("HTTP %d: %s", code, strings.TrimSpace(string(body)))
}

func printStatus(w io.Writer, st cluster.SweepStatus, verbose bool) {
	fmt.Fprintf(w, "sweep %s: %s  %d/%d done", st.ID, st.State, st.Completed, st.Total)
	if st.Failed > 0 {
		fmt.Fprintf(w, ", %d failed", st.Failed)
	}
	if st.Replicated > 0 {
		fmt.Fprintf(w, ", %d replicas", st.Replicated)
	}
	fmt.Fprintf(w, "  (%.0f ms)\n", st.ElapsedMs)
	if len(st.PerNode) > 0 {
		nodes := make([]string, 0, len(st.PerNode))
		for n := range st.PerNode {
			nodes = append(nodes, n)
		}
		sort.Strings(nodes)
		for _, n := range nodes {
			fmt.Fprintf(w, "  %-28s %d units\n", n, st.PerNode[n])
		}
	}
	if st.Error != "" {
		fmt.Fprintf(w, "  error: %s\n", st.Error)
	}
	if verbose {
		for _, j := range st.Jobs {
			label := j.Scheme + "/" + j.Workload
			if j.Mapping != "" {
				label = j.Scheme + "/" + j.Mapping + "/" + j.Workload
			}
			line := fmt.Sprintf("  %-28s %-9s %s", label, j.State, j.Key[:12])
			if j.Node != "" {
				line += "  on " + j.Node
			}
			if j.Cached {
				line += "  (cached)"
			}
			if j.Attempts > 1 {
				line += fmt.Sprintf("  (%d attempts)", j.Attempts)
			}
			if j.Error != "" {
				line += "  err: " + j.Error
			}
			fmt.Fprintln(w, line)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fpbctl: "+format+"\n", args...)
	os.Exit(1)
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func main() {
	var (
		addr    = flag.String("addr", "localhost:8080", "fleet node address(es), comma-separated; tried in order")
		timeout = flag.Duration("timeout", 0, "overall HTTP timeout (0 = none; sweeps with -wait can run long)")
		asJSON  = flag.Bool("json", false, "print raw JSON instead of text")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: fpbctl [flags] <sweep|status|cancel|sweeps|members> [args]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	addrs := strings.Split(*addr, ",")
	hc := &http.Client{Timeout: *timeout}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	switch cmd {
	case "sweep":
		fs := flag.NewFlagSet("sweep", flag.ExitOnError)
		var (
			schemes   = fs.String("schemes", "", "comma-separated schemes (required)")
			workloads = fs.String("workloads", "", "comma-separated workloads (required)")
			mappings  = fs.String("mappings", "", "comma-separated mappings (optional)")
			seed      = fs.Uint64("seed", 0, "RNG seed override")
			instr     = fs.Uint64("instr", 0, "instructions per core override")
			wait      = fs.Bool("wait", false, "block until the sweep completes")
			results   = fs.Bool("results", false, "carry full results in the status (small sweeps)")
			poll      = fs.Duration("poll", time.Second, "poll interval with -wait")
		)
		fs.Parse(args)
		if *schemes == "" || *workloads == "" {
			fatalf("sweep requires -schemes and -workloads")
		}
		spec := cluster.SweepSpec{
			Schemes:        strings.Split(*schemes, ","),
			Workloads:      strings.Split(*workloads, ","),
			Seed:           *seed,
			InstrPerCore:   *instr,
			IncludeResults: *results,
		}
		if *mappings != "" {
			spec.Mappings = strings.Split(*mappings, ",")
		}
		var st cluster.SweepStatus
		var submittedTo string
		err := tryNodes(addrs, func(base string) error {
			submittedTo = base
			return postJSON(hc, base+"/v1/sweeps", spec, &st)
		})
		if err != nil {
			fatalf("submit: %v", err)
		}
		if !*wait {
			if *asJSON {
				emitJSON(st)
			} else {
				printStatus(os.Stdout, st, false)
				fmt.Printf("poll with: fpbctl -addr %s status %s\n", strings.TrimPrefix(submittedTo, "http://"), st.ID)
			}
			return
		}
		// Poll the node that accepted the sweep (its coordinator owns the
		// run) until it settles.
		for st.State == cluster.SweepRunning {
			time.Sleep(*poll)
			if err := getJSON(hc, submittedTo+"/v1/sweeps/"+st.ID, &st); err != nil {
				fatalf("poll: %v", err)
			}
		}
		if *asJSON {
			emitJSON(st)
		} else {
			printStatus(os.Stdout, st, true)
		}
		if st.State != cluster.SweepDone {
			os.Exit(1)
		}

	case "status":
		if len(args) != 1 {
			fatalf("usage: fpbctl status <sweep-id>")
		}
		var st cluster.SweepStatus
		if err := tryNodes(addrs, func(base string) error {
			return getJSON(hc, base+"/v1/sweeps/"+args[0], &st)
		}); err != nil {
			fatalf("status: %v", err)
		}
		if *asJSON {
			emitJSON(st)
		} else {
			printStatus(os.Stdout, st, true)
		}

	case "cancel":
		if len(args) != 1 {
			fatalf("usage: fpbctl cancel <sweep-id>")
		}
		var st cluster.SweepStatus
		if err := tryNodes(addrs, func(base string) error {
			return postJSON(hc, base+"/v1/sweeps/"+args[0]+"/cancel", nil, &st)
		}); err != nil {
			fatalf("cancel: %v", err)
		}
		if *asJSON {
			emitJSON(st)
		} else {
			printStatus(os.Stdout, st, false)
		}

	case "sweeps":
		var list []cluster.SweepStatus
		if err := tryNodes(addrs, func(base string) error {
			return getJSON(hc, base+"/v1/sweeps", &list)
		}); err != nil {
			fatalf("sweeps: %v", err)
		}
		if *asJSON {
			emitJSON(list)
			return
		}
		if len(list) == 0 {
			fmt.Println("no sweeps")
			return
		}
		for _, st := range list {
			printStatus(os.Stdout, st, false)
		}

	case "members":
		var ms cluster.MembersStatus
		if err := tryNodes(addrs, func(base string) error {
			return getJSON(hc, base+"/v1/cluster/members", &ms)
		}); err != nil {
			fatalf("members: %v", err)
		}
		if *asJSON {
			emitJSON(ms)
			return
		}
		down := make(map[string]bool, len(ms.Down))
		for _, d := range ms.Down {
			down[d] = true
		}
		fmt.Printf("fleet: %d members, %d replicas, %d vnodes (answered by %s)\n",
			len(ms.Members), ms.Replicas, ms.VNodes, ms.Self)
		for _, m := range ms.Members {
			state := "alive"
			if down[m] {
				state = "DOWN"
			}
			fmt.Printf("  %-28s %-6s %5.1f%% of keyspace\n", m, state, 100*ms.Shares[m])
		}

	default:
		fatalf("unknown command %q (want sweep, status, cancel, sweeps or members)", cmd)
	}
}
