// Command fpbsim runs one simulation and prints its metrics — the
// single-configuration counterpart to fpbexp.
//
// Usage:
//
//	fpbsim -workload mcf_m -scheme fpb -instr 200000
//	fpbsim -workload lbm_m -scheme dimm+chip -mapping vim -gcpeff 0.5
//
// Schemes: ideal, dimm-only, dimm+chip, gcp, gcp+ipm, fpb (= gcp+ipm+mr),
// ipm, ipm+mr. Mappings: ne, vim, bim.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fpb/internal/sim"
	"fpb/internal/system"
	"fpb/internal/trace"
	"fpb/internal/workload"
)

var schemes = map[string]sim.Scheme{
	"ideal":      sim.SchemeIdeal,
	"dimm-only":  sim.SchemeDIMMOnly,
	"dimm+chip":  sim.SchemeDIMMChip,
	"gcp":        sim.SchemeGCP,
	"gcp+ipm":    sim.SchemeGCPIPM,
	"gcp+ipm+mr": sim.SchemeGCPIPMMR,
	"fpb":        sim.SchemeGCPIPMMR,
	"ipm":        sim.SchemeIPM,
	"ipm+mr":     sim.SchemeIPMMR,
}

var mappings = map[string]sim.Mapping{
	"ne":  sim.MapNaive,
	"vim": sim.MapVIM,
	"bim": sim.MapBIM,
}

func main() {
	var (
		wl       = flag.String("workload", "mcf_m", "workload name (ast_m..cop_m, mix_1..mix_3)")
		scheme   = flag.String("scheme", "fpb", "power budgeting scheme")
		mapName  = flag.String("mapping", "bim", "cell mapping: ne, vim, bim")
		gcpEff   = flag.Float64("gcpeff", 0.70, "GCP power efficiency (0,1]")
		instr    = flag.Uint64("instr", 200_000, "instructions per core")
		tokens   = flag.Float64("tokens", 560, "DIMM power tokens")
		lineB    = flag.Int("line", 256, "memory line size in bytes")
		wrq      = flag.Int("wrq", 24, "write queue entries")
		llc      = flag.Int("llc", 32, "per-core LLC capacity in MB")
		wc       = flag.Bool("wc", false, "enable write cancellation")
		wp       = flag.Bool("wp", false, "enable write pausing")
		wt       = flag.Bool("wt", false, "enable write truncation")
		seed     = flag.Uint64("seed", 0, "override RNG seed (0 = default)")
		traceDir = flag.String("tracedir", "", "replay per-core trace files <dir>/<workload>.coreN.trace instead of generating")
	)
	flag.Parse()

	s, ok := schemes[strings.ToLower(*scheme)]
	if !ok {
		fmt.Fprintf(os.Stderr, "fpbsim: unknown scheme %q\n", *scheme)
		os.Exit(1)
	}
	m, ok := mappings[strings.ToLower(*mapName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "fpbsim: unknown mapping %q\n", *mapName)
		os.Exit(1)
	}

	cfg := sim.DefaultConfig()
	cfg.Scheme = s
	cfg.CellMapping = m
	cfg.GCPEff = *gcpEff
	cfg.InstrPerCore = *instr
	cfg.DIMMTokens = *tokens
	cfg.L3LineB = *lineB
	cfg.WriteQueueEntries = *wrq
	cfg.L3SizeMB = *llc
	cfg.WriteCancellation = *wc
	cfg.WritePausing = *wp
	cfg.WriteTruncation = *wt
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "fpbsim:", err)
		os.Exit(1)
	}

	var res system.Result
	var err error
	if *traceDir != "" {
		res, err = replayTraces(cfg, *traceDir, *wl)
	} else {
		res, err = system.RunWorkload(cfg, *wl)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpbsim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload            %s\n", res.Workload)
	fmt.Printf("scheme              %s (%v, GCP eff %.2f)\n", res.Scheme, m, *gcpEff)
	fmt.Printf("instructions        %d\n", res.Instrs)
	fmt.Printf("cycles              %d\n", res.Cycles)
	fmt.Printf("CPI                 %.3f\n", res.CPI)
	fmt.Printf("PCM reads           %d (RPKI %.3f)\n", res.DemandReads, res.MeasRPKI)
	fmt.Printf("PCM writes          %d (WPKI %.3f)\n", res.Writes, res.MeasWPKI)
	fmt.Printf("avg cell changes    %.1f per line write\n", res.AvgCellChanges)
	fmt.Printf("avg read latency    %.0f cycles\n", res.AvgReadLatency)
	fmt.Printf("write throughput    %.1f line writes / Mcycle\n", res.WriteThroughput)
	fmt.Printf("write-burst time    %.1f%%\n", res.BurstFraction*100)
	fmt.Printf("GCP max/avg tokens  %.1f / %.2f\n", res.MaxGCPTokens, res.AvgGCPTokens)
	fmt.Printf("multi-RESET admits  %d\n", res.MRAdmissions)
	fmt.Printf("multi-round writes  %d\n", res.MultiRound)
	fmt.Printf("avg write energy    %.1f pJ (%.2f nJ per 64B)\n",
		res.AvgWriteEnergyPJ, res.AvgWriteEnergyPJ/float64(cfg.L3LineB/64)/1000)
	fmt.Printf("wear                %d distinct lines, hottest written %d times\n",
		res.DistinctLines, res.MaxLineWrites)
	if *wc || *wp {
		fmt.Printf("WC cancels / WP pauses  %d / %d\n", res.WCCancels, res.WPPauses)
	}
}

// replayTraces loads <dir>/<workload>.coreN.trace for every core and runs
// the system from the stored streams.
func replayTraces(cfg sim.Config, dir, wl string) (system.Result, error) {
	sources := make([]trace.Source, cfg.Cores)
	classes := make([]workload.ValueClass, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		path := filepath.Join(dir, fmt.Sprintf("%s.core%d.trace", wl, i))
		f, err := os.Open(path)
		if err != nil {
			return system.Result{}, err
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return system.Result{}, fmt.Errorf("%s: %w", path, err)
		}
		sources[i] = r
		classes[i], _ = workload.ParseValueClass(r.Header().Value)
	}
	sys, err := system.BuildFromSources(cfg, sources, classes)
	if err != nil {
		return system.Result{}, err
	}
	res := sys.Run()
	res.Workload = wl + " (replay)"
	return res, nil
}
