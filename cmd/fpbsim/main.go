// Command fpbsim runs one simulation and prints its metrics — the
// single-configuration counterpart to fpbexp.
//
// Usage:
//
//	fpbsim -workload mcf_m -scheme fpb -instr 200000
//	fpbsim -workload lbm_m -scheme dimm+chip -mapping vim -gcpeff 0.5
//	fpbsim -workload mcf_m -scheme fpb -trace out.trace -metrics out.json -probe-interval 10000
//	fpbsim -workload mcf_m -scheme fpb -remote localhost:8080
//	fpbsim -workload mcf_m -scheme fpb -warmup 2000000 -checkpoint-dir /tmp/fpb-ckpt
//
// With -warmup N the run simulates N cycles under the warmup scheme before
// measurement begins (a declared part of the configuration — results include
// it). Adding -checkpoint-dir stores the quiesced post-warmup state so later
// runs sharing the same warmup prefix restore it instead of re-simulating;
// either way the results are byte-identical.
//
// With -remote the run is offloaded to a shared fpbd daemon (see cmd/fpbd
// and README "Serving"): identical requests are answered from its persistent
// result cache without re-simulating. Trace/probe flags require a local run.
//
// Schemes: ideal, dimm-only, dimm+chip, gcp, gcp+ipm, fpb (= gcp+ipm+mr),
// ipm, ipm+mr. Mappings: ne, vim, bim.
//
// Observability (see README "Observability"):
//
//	-trace FILE           Chrome trace_event JSON (open in chrome://tracing)
//	-trace-jsonl FILE     raw JSONL event stream (byte-deterministic per seed)
//	-trace-cats LIST      event categories (mem,power,core,engine); default all but engine
//	-trace-sample N       keep only every Nth trace event
//	-metrics FILE         end-of-run metrics registry dump (JSON)
//	-probe-interval N     sample every gauge each N cycles into -probe-csv
//	-probe-csv FILE       probe CSV path (default probes.csv)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fpb/internal/ckpt"
	"fpb/internal/obs"
	"fpb/internal/serve"
	"fpb/internal/serve/client"
	"fpb/internal/sim"
	"fpb/internal/system"
	"fpb/internal/trace"
	"fpb/internal/workload"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fpbsim: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		wl       = flag.String("workload", "mcf_m", "workload name (ast_m..cop_m, mix_1..mix_3)")
		scheme   = flag.String("scheme", "fpb", "power budgeting scheme")
		mapName  = flag.String("mapping", "bim", "cell mapping: ne, vim, bim")
		gcpEff   = flag.Float64("gcpeff", 0.70, "GCP power efficiency (0,1]")
		instr    = flag.Uint64("instr", 200_000, "instructions per core")
		tokens   = flag.Float64("tokens", 560, "DIMM power tokens")
		lineB    = flag.Int("line", 256, "memory line size in bytes")
		wrq      = flag.Int("wrq", 24, "write queue entries")
		llc      = flag.Int("llc", 32, "per-core LLC capacity in MB")
		wc       = flag.Bool("wc", false, "enable write cancellation")
		wp       = flag.Bool("wp", false, "enable write pausing")
		wt       = flag.Bool("wt", false, "enable write truncation")
		seed     = flag.Uint64("seed", 0, "override RNG seed (0 = default)")
		shards   = flag.Int("shards", 0, "parallel engine shard count (0 = sequential; results are bit-identical)")
		traceDir = flag.String("tracedir", "", "replay per-core trace files <dir>/<workload>.coreN.trace instead of generating")
		remote   = flag.String("remote", "", "offload the run to an fpbd daemon at this address (host:port)")

		warmup       = flag.Uint64("warmup", 0, "run N warmup cycles before measurement (0 = off; part of the declared config)")
		warmupScheme = flag.String("warmup-scheme", "", "scheme the warmup phase runs under (default: the config default; requires -warmup)")
		ckptDir      = flag.String("checkpoint-dir", "", "checkpoint the warmup prefix here and warm-start repeat runs (requires -warmup)")

		traceOut      = flag.String("trace", "", "write Chrome trace_event JSON to this file")
		traceJSONL    = flag.String("trace-jsonl", "", "write the raw JSONL event stream to this file")
		traceCats     = flag.String("trace-cats", "", "comma-separated trace categories (mem,power,core,engine); default: all but engine")
		traceSample   = flag.Uint64("trace-sample", 0, "keep only every Nth trace event (0/1 = all)")
		metricsOut    = flag.String("metrics", "", "write the end-of-run metrics registry to this JSON file")
		probeInterval = flag.Uint64("probe-interval", 0, "sample every gauge each N cycles into -probe-csv (0 = off)")
		probeOut      = flag.String("probe-csv", "probes.csv", "time-series probe CSV path (with -probe-interval)")
	)
	flag.Parse()

	s, err := sim.ParseScheme(*scheme)
	if err != nil {
		fail("%v", err)
	}
	m, err := sim.ParseMapping(*mapName)
	if err != nil {
		fail("%v", err)
	}

	cfg := sim.DefaultConfig()
	cfg.Scheme = s
	cfg.CellMapping = m
	cfg.GCPEff = *gcpEff
	cfg.InstrPerCore = *instr
	cfg.DIMMTokens = *tokens
	cfg.L3LineB = *lineB
	cfg.WriteQueueEntries = *wrq
	cfg.L3SizeMB = *llc
	cfg.WriteCancellation = *wc
	cfg.WritePausing = *wp
	cfg.WriteTruncation = *wt
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Shards = *shards
	if *warmupScheme != "" && *warmup == 0 {
		fail("-warmup-scheme is only meaningful with -warmup N (N > 0 warmup cycles)")
	}
	if *ckptDir != "" && *warmup == 0 {
		fail("-checkpoint-dir is only meaningful with -warmup N (N > 0 warmup cycles): checkpoints capture the warmup prefix")
	}
	cfg.WarmupCycles = *warmup
	if *warmupScheme != "" {
		ws, err := sim.ParseScheme(*warmupScheme)
		if err != nil {
			fail("-warmup-scheme: %v", err)
		}
		cfg.WarmupScheme = ws
	}
	if err := cfg.Validate(); err != nil {
		fail("%v", err)
	}
	if *ckptDir != "" {
		if *traceDir != "" {
			fail("-checkpoint-dir cannot combine with -tracedir: trace-replay state is not checkpointable")
		}
		if *remote != "" {
			fail("-checkpoint-dir is a local store; for remote runs configure the daemon's store with fpbd -ckpt-store")
		}
		if *traceOut != "" || *traceJSONL != "" || *probeInterval > 0 {
			fail("-trace/-trace-jsonl/-probe-interval cannot combine with -checkpoint-dir (the warm-start path has no trace attach point)")
		}
	}

	if *remote != "" {
		if *traceDir != "" || *traceOut != "" || *traceJSONL != "" || *probeInterval > 0 {
			fail("-tracedir/-trace/-trace-jsonl/-probe-interval run locally and cannot combine with -remote")
		}
		cli := client.New(*remote)
		st, err := cli.Do(context.Background(), serve.JobSpec{Workload: *wl, Config: &cfg})
		if err != nil {
			fail("remote run: %v", err)
		}
		if st.State != serve.StateDone || st.Result == nil {
			fail("remote run: job %s %s: %s", st.ID, st.State, st.Error)
		}
		res := *st.Result
		if *metricsOut != "" {
			if err := writeMetricsFile(*metricsOut, res.Metrics); err != nil {
				fail("writing metrics: %v", err)
			}
		}
		fmt.Printf("remote              %s (job %s, cached %v)\n", *remote, st.ID, st.Cached)
		printResult(res, cfg, m, *gcpEff, *wc, *wp)
		return
	}

	if *ckptDir != "" {
		store, err := ckpt.NewStore(*ckptDir)
		if err != nil {
			fail("opening checkpoint store: %v", err)
		}
		res, warmed, err := system.RunWorkloadCheckpointed(cfg, *wl, store)
		if err != nil {
			fail("%v", err)
		}
		res.Workload = *wl
		if *metricsOut != "" {
			if err := writeMetricsFile(*metricsOut, res.Metrics); err != nil {
				fail("writing metrics: %v", err)
			}
		}
		if warmed {
			fmt.Printf("warm start          restored %d warmup cycles from %s\n", *warmup, *ckptDir)
		} else {
			fmt.Printf("warm start          simulated warmup cold, checkpointed to %s\n", *ckptDir)
		}
		printResult(res, cfg, m, *gcpEff, *wc, *wp)
		return
	}

	sys, err := buildSystem(cfg, *traceDir, *wl)
	if err != nil {
		fail("%v", err)
	}

	// Observability attachments; everything stays off without its flag.
	var sinks []obs.Sink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail("%v", err)
		}
		sinks = append(sinks, obs.NewChrome(f, cfg.CPUFreqGHz*1000))
	}
	if *traceJSONL != "" {
		f, err := os.Create(*traceJSONL)
		if err != nil {
			fail("%v", err)
		}
		sinks = append(sinks, obs.NewJSONL(f))
	}
	var tracer *obs.Tracer
	if len(sinks) > 0 {
		tracer = obs.NewTracer(sinks...)
		if *traceCats != "" {
			tracer.FilterCats(strings.Split(*traceCats, ",")...)
		}
		tracer.Sample(*traceSample)
		sys.EnableTrace(tracer)
	}
	var prober *obs.Prober
	if *probeInterval > 0 {
		f, err := os.Create(*probeOut)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		prober = sys.EnableProbes(sim.Cycle(*probeInterval), f)
	}

	res := sys.Run()
	if *traceDir != "" {
		res.Workload = *wl + " (replay)"
	} else {
		res.Workload = *wl
	}

	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fail("closing trace: %v", err)
		}
	}
	if prober != nil && prober.Err() != nil {
		fail("writing probes: %v", prober.Err())
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fail("%v", err)
		}
		werr := sys.Obs.Registry().WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fail("writing metrics: %v", werr)
		}
	}

	printResult(res, cfg, m, *gcpEff, *wc, *wp)
}

// printResult renders one run's metrics; shared by the local and -remote
// paths so offloaded runs read identically.
func printResult(res system.Result, cfg sim.Config, m sim.Mapping, gcpEff float64, wc, wp bool) {
	fmt.Printf("workload            %s\n", res.Workload)
	fmt.Printf("scheme              %s (%v, GCP eff %.2f)\n", res.Scheme, m, gcpEff)
	fmt.Printf("instructions        %d\n", res.Instrs)
	fmt.Printf("cycles              %d\n", res.Cycles)
	fmt.Printf("CPI                 %.3f\n", res.CPI)
	fmt.Printf("PCM reads           %d (RPKI %.3f)\n", res.DemandReads, res.MeasRPKI)
	fmt.Printf("PCM writes          %d (WPKI %.3f)\n", res.Writes, res.MeasWPKI)
	fmt.Printf("avg cell changes    %.1f per line write\n", res.AvgCellChanges)
	fmt.Printf("avg read latency    %.0f cycles\n", res.AvgReadLatency)
	fmt.Printf("write latency       p50 %.0f / p95 %.0f / p99 %.0f cycles\n",
		res.WriteLatP50, res.WriteLatP95, res.WriteLatP99)
	fmt.Printf("write throughput    %.1f line writes / Mcycle\n", res.WriteThroughput)
	fmt.Printf("write-burst time    %.1f%%\n", res.BurstFraction*100)
	fmt.Printf("GCP max/avg tokens  %.1f / %.2f\n", res.MaxGCPTokens, res.AvgGCPTokens)
	fmt.Printf("multi-RESET admits  %d\n", res.MRAdmissions)
	fmt.Printf("multi-round writes  %d\n", res.MultiRound)
	fmt.Printf("avg write energy    %.1f pJ (%.2f nJ per 64B)\n",
		res.AvgWriteEnergyPJ, res.AvgWriteEnergyPJ/float64(cfg.L3LineB/64)/1000)
	fmt.Printf("wear                %d distinct lines, hottest written %d times\n",
		res.DistinctLines, res.MaxLineWrites)
	if wc || wp {
		fmt.Printf("WC cancels / WP pauses  %d / %d\n", res.WCCancels, res.WPPauses)
	}
}

// writeMetricsFile dumps a remote result's metrics snapshot in the same
// deterministic encoding the local path uses.
func writeMetricsFile(path string, metrics map[string]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := obs.EncodeSeries(f, metrics)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// buildSystem assembles the machine, either from a live workload generator
// or from stored per-core trace files.
func buildSystem(cfg sim.Config, traceDir, wl string) (*system.System, error) {
	if traceDir == "" {
		w, err := workload.ByName(wl, cfg.Cores)
		if err != nil {
			return nil, err
		}
		return system.Build(cfg, w)
	}
	sources := make([]trace.Source, cfg.Cores)
	classes := make([]workload.ValueClass, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		path := filepath.Join(traceDir, fmt.Sprintf("%s.core%d.trace", wl, i))
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		sources[i] = r
		classes[i], _ = workload.ParseValueClass(r.Header().Value)
	}
	return system.BuildFromSources(cfg, sources, classes)
}
