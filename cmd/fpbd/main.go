// Command fpbd is the FPB simulation daemon: it serves simulation jobs over
// an HTTP JSON API (internal/serve), running them on a bounded worker pool
// behind a FIFO queue and memoizing every result in a content-addressed disk
// store, so repeated and concurrent identical requests — e.g. a figure
// regeneration fleet of `fpbexp -remote` runs — simulate each distinct
// (config, workload) pair exactly once, ever.
//
// Usage:
//
//	fpbd -addr :8080 -store fpbd-store -workers 8 -queue 64
//
// API (see README "Serving" for a curl session):
//
//	GET  /healthz           liveness + queue snapshot
//	GET  /metrics           serving metrics; legacy JSON by default,
//	                        Prometheus text with ?format=prometheus
//	POST /v1/jobs           run a job; blocks until the result is ready
//	POST /v1/jobs?async=1   202 + job id immediately; poll GET /v1/jobs/{id}
//	GET  /v1/checkpoints/{key}  raw warmup checkpoint image (with -ckpt-store)
//	PUT  /v1/checkpoints/{key}  seed a checkpoint image (with -ckpt-store)
//	GET  /debug/pprof/      runtime profiles (only with -pprof)
//
// Logs are structured (log/slog): -log-format picks text or json, -log-level
// the threshold. Every line about a job carries its correlation ID under the
// "job" key, so `grep j000042` follows one job accept → queue → worker →
// store. cmd/fpbtop renders a live view of the /metrics exposition.
//
// Fleet mode: with -peers (or -join), the daemon becomes one member of a
// consistent-hash cluster — it accepts sweeps (POST /v1/sweeps, driven by
// cmd/fpbctl), executes the units it owns, fans the rest to their ring
// owners, and replicates completed results to its key ranges' successors.
// Every node must advertise the address its peers dial it at (-advertise)
// and agree on -replicas/-vnodes; -join asks an existing member for the
// fleet's member list and settings instead of spelling out -peers by hand.
//
// SIGINT/SIGTERM drain gracefully: new jobs get 503, running sweeps are
// cancelled, queued and in-flight jobs finish (their waiting clients get
// responses), then the process exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fpb/internal/cluster"
	"fpb/internal/serve"
	"fpb/internal/serve/client"
)

func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	}
	return nil, errors.New("log format must be text or json")
}

// joinFleet asks an existing member for the fleet's membership and settings.
func joinFleet(target string) (cluster.MembersStatus, error) {
	base := client.Normalize(target)
	hc := &http.Client{Timeout: 10 * time.Second}
	resp, err := hc.Get(base + "/v1/cluster/members")
	if err != nil {
		return cluster.MembersStatus{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return cluster.MembersStatus{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return cluster.MembersStatus{}, fmt.Errorf("%s: %s", base, resp.Status)
	}
	var ms cluster.MembersStatus
	if err := json.Unmarshal(body, &ms); err != nil {
		return cluster.MembersStatus{}, err
	}
	return ms, nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		store     = flag.String("store", "fpbd-store", "persistent result store directory (empty = no persistence)")
		ckptStore = flag.String("ckpt-store", "", "warmup checkpoint store directory (empty = no warm-starting); jobs declaring warmup_cycles then share each warmup prefix's simulation")
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "job queue depth; a full queue answers 429")
		drain     = flag.Duration("drain-timeout", 2*time.Minute, "max time to drain in-flight jobs at shutdown")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		pprofFlag = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")

		advertise = flag.String("advertise", "", "address peers dial this node at (required with -peers/-join)")
		peers     = flag.String("peers", "", "comma-separated peer addresses forming the fleet ring")
		join      = flag.String("join", "", "fetch the peer list and fleet settings from this existing member")
		replicas  = flag.Int("replicas", 0, "result replication factor R across ring owners (default 2)")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per ring member (default 64; all nodes must agree)")
		inflight  = flag.Int("sweep-inflight", 0, "max sweep units in flight per target node (default 4)")
		probe     = flag.Duration("probe-interval", 5*time.Second, "health-probe interval for down members (0 disables)")
	)
	flag.Parse()

	log, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		// The logger itself failed to construct; stderr is all we have.
		slog.New(slog.NewTextHandler(os.Stderr, nil)).Error("bad logging flags", "err", err)
		os.Exit(2)
	}

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	if *join != "" {
		ms, err := joinFleet(*join)
		if err != nil {
			log.Error("join failed", "target", *join, "err", err)
			os.Exit(1)
		}
		peerList = append(peerList, *join)
		peerList = append(peerList, ms.Members...)
		if *replicas == 0 {
			*replicas = ms.Replicas
		}
		if *vnodes == 0 {
			*vnodes = ms.VNodes
		}
		log.Info("joined fleet", "via", *join, "members", len(ms.Members),
			"replicas", *replicas, "vnodes", *vnodes)
	}
	if len(peerList) > 0 && *advertise == "" {
		log.Error("fleet mode requires -advertise (the address peers dial this node at)")
		os.Exit(2)
	}

	node, err := cluster.NewNode(cluster.NodeConfig{
		Serve: serve.Config{
			Workers:       *workers,
			QueueDepth:    *queue,
			StoreDir:      *store,
			CheckpointDir: *ckptStore,
			Logger:        log,
			EnablePprof:   *pprofFlag,
		},
		Self:            *advertise,
		Peers:           peerList,
		Replicas:        *replicas,
		VNodes:          *vnodes,
		PerNodeInflight: *inflight,
		ProbeInterval:   *probe,
	})
	if err != nil {
		log.Error("startup failed", "err", err)
		os.Exit(1)
	}
	srv := node.Server()

	httpSrv := &http.Server{Addr: *addr, Handler: node}
	errc := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", *addr, "store", *store, "pprof", *pprofFlag,
			"fleet", len(peerList) > 0, "advertise", *advertise, "peers", len(peerList))
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Info("draining")
	drained := make(chan struct{})
	go func() {
		node.Drain() // cancel sweeps, reject new jobs, finish queued + in-flight ones
		close(drained)
	}()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	select {
	case <-drained:
	case <-shutdownCtx.Done():
		log.Warn("drain timeout; abandoning queued jobs")
	}
	// Now release connections whose handlers have responded.
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("shutdown failed", "err", err)
	}

	// Exit-time metrics summary: the lifetime counters, through the same
	// structured channel as everything else.
	reg := srv.Registry()
	done, _ := reg.Value("serve.jobs.done")
	failed, _ := reg.Value("serve.jobs.failed")
	hits, _ := reg.Value("serve.cache.hits")
	coalesced, _ := reg.Value("serve.jobs.coalesced")
	rejected, _ := reg.Value("serve.jobs.rejected")
	warms, _ := reg.Value("serve.jobs.warm_starts")
	log.Info("exit",
		"jobs_done", int(done), "jobs_failed", int(failed),
		"cache_hits", int(hits), "coalesced", int(coalesced),
		"rejected", int(rejected), "warm_starts", int(warms))
}
