// Command fpbd is the FPB simulation daemon: it serves simulation jobs over
// an HTTP JSON API (internal/serve), running them on a bounded worker pool
// behind a FIFO queue and memoizing every result in a content-addressed disk
// store, so repeated and concurrent identical requests — e.g. a figure
// regeneration fleet of `fpbexp -remote` runs — simulate each distinct
// (config, workload) pair exactly once, ever.
//
// Usage:
//
//	fpbd -addr :8080 -store fpbd-store -workers 8 -queue 64
//
// API (see README "Serving" for a curl session):
//
//	GET  /healthz           liveness + queue snapshot
//	GET  /metrics           JSON dump of the serving metrics registry
//	POST /v1/jobs           run a job; blocks until the result is ready
//	POST /v1/jobs?async=1   202 + job id immediately; poll GET /v1/jobs/{id}
//
// SIGINT/SIGTERM drain gracefully: new jobs get 503, queued and in-flight
// jobs finish (their waiting clients get responses), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpb/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		store   = flag.String("store", "fpbd-store", "persistent result store directory (empty = no persistence)")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "job queue depth; a full queue answers 429")
		drain   = flag.Duration("drain-timeout", 2*time.Minute, "max time to drain in-flight jobs at shutdown")
	)
	flag.Parse()

	srv, err := serve.New(serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		StoreDir:   *store,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpbd:", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "fpbd: listening on %s (store %q)\n", *addr, *store)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "fpbd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "fpbd: draining...")
	drained := make(chan struct{})
	go func() {
		srv.Drain() // reject new jobs, finish queued + in-flight ones
		close(drained)
	}()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	select {
	case <-drained:
	case <-shutdownCtx.Done():
		fmt.Fprintln(os.Stderr, "fpbd: drain timeout; abandoning queued jobs")
	}
	// Now release connections whose handlers have responded.
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "fpbd: shutdown:", err)
	}

	if v, ok := srv.Registry().Value("serve.jobs.done"); ok {
		hits, _ := srv.Registry().Value("serve.cache.hits")
		fmt.Fprintf(os.Stderr, "fpbd: exit — %d jobs simulated, %d cache hits\n", int(v), int(hits))
	}
}
