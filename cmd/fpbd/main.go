// Command fpbd is the FPB simulation daemon: it serves simulation jobs over
// an HTTP JSON API (internal/serve), running them on a bounded worker pool
// behind a FIFO queue and memoizing every result in a content-addressed disk
// store, so repeated and concurrent identical requests — e.g. a figure
// regeneration fleet of `fpbexp -remote` runs — simulate each distinct
// (config, workload) pair exactly once, ever.
//
// Usage:
//
//	fpbd -addr :8080 -store fpbd-store -workers 8 -queue 64
//
// API (see README "Serving" for a curl session):
//
//	GET  /healthz           liveness + queue snapshot
//	GET  /metrics           serving metrics; legacy JSON by default,
//	                        Prometheus text with ?format=prometheus
//	POST /v1/jobs           run a job; blocks until the result is ready
//	POST /v1/jobs?async=1   202 + job id immediately; poll GET /v1/jobs/{id}
//	GET  /debug/pprof/      runtime profiles (only with -pprof)
//
// Logs are structured (log/slog): -log-format picks text or json, -log-level
// the threshold. Every line about a job carries its correlation ID under the
// "job" key, so `grep j000042` follows one job accept → queue → worker →
// store. cmd/fpbtop renders a live view of the /metrics exposition.
//
// SIGINT/SIGTERM drain gracefully: new jobs get 503, queued and in-flight
// jobs finish (their waiting clients get responses), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fpb/internal/serve"
)

func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	}
	return nil, errors.New("log format must be text or json")
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		store     = flag.String("store", "fpbd-store", "persistent result store directory (empty = no persistence)")
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "job queue depth; a full queue answers 429")
		drain     = flag.Duration("drain-timeout", 2*time.Minute, "max time to drain in-flight jobs at shutdown")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		pprofFlag = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	log, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		// The logger itself failed to construct; stderr is all we have.
		slog.New(slog.NewTextHandler(os.Stderr, nil)).Error("bad logging flags", "err", err)
		os.Exit(2)
	}

	srv, err := serve.New(serve.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		StoreDir:    *store,
		Logger:      log,
		EnablePprof: *pprofFlag,
	})
	if err != nil {
		log.Error("startup failed", "err", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", *addr, "store", *store, "pprof", *pprofFlag)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Info("draining")
	drained := make(chan struct{})
	go func() {
		srv.Drain() // reject new jobs, finish queued + in-flight ones
		close(drained)
	}()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	select {
	case <-drained:
	case <-shutdownCtx.Done():
		log.Warn("drain timeout; abandoning queued jobs")
	}
	// Now release connections whose handlers have responded.
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("shutdown failed", "err", err)
	}

	// Exit-time metrics summary: the lifetime counters, through the same
	// structured channel as everything else.
	reg := srv.Registry()
	done, _ := reg.Value("serve.jobs.done")
	failed, _ := reg.Value("serve.jobs.failed")
	hits, _ := reg.Value("serve.cache.hits")
	coalesced, _ := reg.Value("serve.jobs.coalesced")
	rejected, _ := reg.Value("serve.jobs.rejected")
	log.Info("exit",
		"jobs_done", int(done), "jobs_failed", int(failed),
		"cache_hits", int(hits), "coalesced", int(coalesced),
		"rejected", int(rejected))
}
