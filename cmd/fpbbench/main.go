// Command fpbbench turns `go test -bench` output into a deterministic JSON
// snapshot and compares two snapshots for performance regressions. It is
// the plumbing behind scripts/bench.sh and the CI perf-smoke job.
//
// Ingest mode (default) reads benchmark output from stdin:
//
//	go test -run '^$' -bench . -benchmem ./... | fpbbench -out BENCH_abc123.json
//
// Compare mode diffs two snapshots:
//
//	fpbbench -compare BENCH_old.json BENCH_new.json -threshold 0.20
//
// Compare prints one line per benchmark present in both snapshots and
// warns on ns/op or allocs/op growth beyond the threshold. It exits
// nonzero for regressions only with -strict, so CI can surface warnings
// without failing the build.
//
// Scale mode measures how the parallel simulation engine scales with cores:
//
//	fpbbench -cpus 1,2,4 [-shards 0,8,16,64] [-instr 20000] [-workloads mcf_m,mix_1]
//
// It runs the Figure 18 experiment in-process once per (shard count,
// GOMAXPROCS) pair (one simulation at a time, so the only parallelism
// measured is the sharded engine's; shards=0 is the sequential engine) and
// prints one benchmark-formatted line per pair with the wall time, the
// speedup over that shard count's first cpu value, and the engine's own
// execution telemetry — sweeps, windows per sweep, barrier wait — so a
// scaling regression is diagnosable from the snapshot alone. Every run's
// result table must be identical across the whole grid; any divergence is a
// determinism bug and exits nonzero. If a sharded run is slower than the
// sequential engine at the same cpu count, a loud warning goes to stderr.
//
// Warm-start mode measures the checkpoint warm-start payoff for sweeps:
//
//	fpbbench -warm 200000 [-instr 20000] [-workloads mcf_m,mix_1]
//
// It runs the Figure 18 experiment with the given warmup-cycle count twice —
// cold, then against a fresh checkpoint store — verifies both produce
// identical tables, and prints benchmark-formatted lines with the wall times
// and the cold/warm speedup.
//
// Snapshots are deterministic: benchmark names are normalized (Benchmark
// prefix and -GOMAXPROCS suffix stripped) and JSON object keys are sorted,
// so identical measurements produce byte-identical files.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"fpb/internal/exp"
	"fpb/internal/sim"
)

// Snapshot is the on-disk format: benchmark name → metric name → value.
// encoding/json sorts map keys, which makes the output deterministic.
type Snapshot struct {
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("out", "", "write the JSON snapshot to this file (default stdout)")
		compare   = flag.Bool("compare", false, "compare two snapshot files given as arguments")
		threshold = flag.Float64("threshold", 0.20, "relative ns/op or allocs/op growth treated as a regression")
		strict    = flag.Bool("strict", false, "exit nonzero when compare finds regressions")
		cpus      = flag.String("cpus", "", "comma-separated GOMAXPROCS values: run the Fig. 18 scaling measurement at each")
		shards    = flag.String("shards", "", "comma-separated shard counts for -cpus runs (0 = sequential engine; default: 0 and one shard per bank lane)")
		instr     = flag.Uint64("instr", 20_000, "instructions per core for -cpus/-warm runs")
		reps      = flag.Int("reps", 1, "repetitions per -cpus grid point; the minimum wall time is reported")
		workloads = flag.String("workloads", "", "comma-separated workload subset for -cpus/-warm runs (default: all 13)")
		warm      = flag.Uint64("warm", 0, "warmup cycles: run the Fig. 18 sweep cold vs checkpoint-warm-started and report the wall-clock ratio")
	)
	flag.Parse()

	if *cpus != "" {
		if err := runScale(os.Stdout, *cpus, *shards, *instr, *reps, *workloads); err != nil {
			fmt.Fprintln(os.Stderr, "fpbbench:", err)
			os.Exit(1)
		}
		return
	}

	if *warm > 0 {
		if err := runWarm(os.Stdout, *warm, *instr, *workloads); err != nil {
			fmt.Fprintln(os.Stderr, "fpbbench:", err)
			os.Exit(1)
		}
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: fpbbench -compare OLD.json NEW.json")
			os.Exit(2)
		}
		regressions, err := compareFiles(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpbbench:", err)
			os.Exit(2)
		}
		if regressions > 0 && *strict {
			os.Exit(1)
		}
		return
	}

	snap, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpbbench:", err)
		os.Exit(2)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "fpbbench: no benchmark lines found on stdin")
		os.Exit(2)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpbbench:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fpbbench:", err)
		os.Exit(2)
	}
}

// runScale measures wall-clock scaling of the parallel engine: the Figure
// 18 experiment once per (shard count, GOMAXPROCS) pair, single-simulation
// workers so the sharded engine is the only source of parallelism. Results
// must be identical across the whole grid — including the sequential
// shards=0 rows (internal/system's determinism matrix test enforces the
// byte-identical-Result side; this asserts the rendered tables end to end).
// Lines are benchmark-formatted so ingest mode and bench.sh parse them like
// any other benchmark; sharded rows carry the engine's execution telemetry
// as custom metrics.
func runScale(w io.Writer, cpuList, shardList string, instr uint64, reps int, workloads string) error {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	cfg := sim.DefaultConfig()
	if shardList == "" {
		shardList = fmt.Sprintf("0,%d", cfg.Lanes())
	}
	var cpuVals, shardVals []int
	for _, field := range strings.Split(cpuList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -cpus value %q", field)
		}
		cpuVals = append(cpuVals, n)
	}
	for _, field := range strings.Split(shardList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n < 0 {
			return fmt.Errorf("bad -shards value %q", field)
		}
		shardVals = append(shardVals, n)
	}
	e, ok := exp.ByID("fig18")
	if !ok {
		return fmt.Errorf("fig18 experiment not registered")
	}
	newOpt := func(shards int) exp.Options {
		opt := exp.Options{InstrPerCore: instr, Workers: 1, Shards: shards}
		if workloads != "" {
			opt.Workloads = strings.Split(workloads, ",")
		}
		return opt
	}
	// Untimed warm-up: workload tables, allocator arenas and the page
	// cache are one-time costs that would otherwise all land on the first
	// grid point and masquerade as scaling.
	if _, err := e.Run(exp.NewRunner(newOpt(shardVals[0]))); err != nil {
		return err
	}
	lookahead := float64(cfg.LookaheadCycles())
	var refTable string
	seqBase := make(map[int]time.Duration) // cpus -> sequential (shards=0) wall time
	for _, shards := range shardVals {
		var base time.Duration
		for _, n := range cpuVals {
			runtime.GOMAXPROCS(n)
			// Min-of-reps: wall time on a shared host is noisy, and the
			// minimum is the best estimate of the undisturbed cost. Every
			// repetition's table is still determinism-checked.
			var elapsed time.Duration
			var st sim.ShardStats
			for r := 0; r < max(reps, 1); r++ {
				// Collect earlier grid points' garbage outside the timed
				// region, so heap debt from one configuration is not
				// billed to the next.
				runtime.GC()
				sim.ResetGlobalShardStats()
				start := time.Now()
				// A fresh runner per repetition: nothing may be served
				// from a previous run's memoization.
				tb, err := e.Run(exp.NewRunner(newOpt(shards)))
				if err != nil {
					return fmt.Errorf("cpus=%d shards=%d: %w", n, shards, err)
				}
				repElapsed := time.Since(start)
				if refTable == "" {
					refTable = tb.String()
				} else if tb.String() != refTable {
					return fmt.Errorf("cpus=%d shards=%d: results diverged from the first grid point — determinism bug", n, shards)
				}
				if r == 0 || repElapsed < elapsed {
					elapsed = repElapsed
					st = sim.GlobalShardStats()
				}
			}
			if base == 0 {
				base = elapsed
			}
			line := fmt.Sprintf("BenchmarkFig18Scale/cpus=%d/shards=%d \t1\t%d ns/op\t%.3f speedup",
				n, shards, elapsed.Nanoseconds(), float64(base)/float64(elapsed))
			if shards > 0 {
				sweeps := st.Sweeps + st.InlineSweeps
				windowsPerSweep := 0.0
				if sweeps > 0 {
					windowsPerSweep = float64(st.HorizonCycles) / lookahead / float64(sweeps)
				}
				line += fmt.Sprintf("\t%d sweeps\t%.1f windows_per_sweep\t%d barrier_wait_ns\t%d parks",
					sweeps, windowsPerSweep, st.BarrierWaitNs, st.Parks)
			}
			fmt.Fprintln(w, line)
			if shards == 0 {
				seqBase[n] = elapsed
			} else if seq, ok := seqBase[n]; ok && elapsed > seq {
				fmt.Fprintf(os.Stderr,
					"fpbbench: WARNING: sharded engine SLOWER than sequential at cpus=%d: shards=%d took %v vs %v sequential (%.3fx)\n",
					n, shards, elapsed, seq, float64(seq)/float64(elapsed))
			}
		}
	}
	return nil
}

// runWarm measures the shared-prefix warm-start speedup: the Figure 18
// experiment — 5 scheme configs per workload, all sharing one warmup prefix —
// run once cold (every simulation re-simulates its warmup) and once against a
// fresh checkpoint store (the warmup simulates once per workload; the other
// simulations restore it). Both runs must produce identical tables; any
// divergence is a determinism bug and exits nonzero. Lines are
// benchmark-formatted for ingest mode, like runScale's.
func runWarm(w io.Writer, cycles, instr uint64, workloads string) error {
	e, ok := exp.ByID("fig18")
	if !ok {
		return fmt.Errorf("fig18 experiment not registered")
	}
	opt := exp.Options{InstrPerCore: instr, Workers: 1, WarmupCycles: cycles}
	if workloads != "" {
		opt.Workloads = strings.Split(workloads, ",")
	}
	// Untimed warm-up: workload tables and allocator arenas are one-time
	// costs that would otherwise land on the cold run and inflate the ratio.
	if _, err := e.Run(exp.NewRunner(opt)); err != nil {
		return err
	}

	start := time.Now()
	coldTb, err := e.Run(exp.NewRunner(opt))
	if err != nil {
		return err
	}
	coldDur := time.Since(start)

	dir, err := os.MkdirTemp("", "fpbbench-ckpt-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	warmOpt := opt
	warmOpt.CheckpointDir = dir
	warmRunner := exp.NewRunner(warmOpt)
	start = time.Now()
	warmTb, err := e.Run(warmRunner)
	if err != nil {
		return err
	}
	warmDur := time.Since(start)
	if coldTb.String() != warmTb.String() {
		return fmt.Errorf("warm-started results diverged from the cold run — determinism bug")
	}

	fmt.Fprintf(w, "BenchmarkWarmStartFig18/mode=cold/warmup=%d \t1\t%d ns/op\n",
		cycles, coldDur.Nanoseconds())
	fmt.Fprintf(w, "BenchmarkWarmStartFig18/mode=warm/warmup=%d \t1\t%d ns/op\t%.3f speedup\t%d warm_starts\n",
		cycles, warmDur.Nanoseconds(), float64(coldDur)/float64(warmDur), warmRunner.WarmStarts())
	return nil
}

// metricKey normalizes a `go test -bench` unit to a JSON-friendly key.
func metricKey(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_op"
	case "B/op":
		return "b_op"
	case "allocs/op":
		return "allocs_op"
	case "MB/s":
		return "mb_s"
	}
	return unit
}

// normalizeName strips the Benchmark prefix and the -GOMAXPROCS suffix so
// snapshots taken on machines with different core counts stay comparable.
func normalizeName(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// parseBench extracts benchmark result lines of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   1 allocs/op
//
// Custom per-benchmark metrics (`-ReportMetric`) are kept under their unit
// name. Repeated runs of the same benchmark keep the last measurement.
func parseBench(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Benchmarks: make(map[string]map[string]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue // not an iteration count: header or unrelated line
		}
		metrics := make(map[string]float64)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[metricKey(fields[i+1])] = v
		}
		if len(metrics) > 0 {
			snap.Benchmarks[normalizeName(fields[0])] = metrics
		}
	}
	return snap, sc.Err()
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// compareFiles prints a per-benchmark delta report and returns how many
// benchmarks regressed beyond the threshold on ns/op or allocs/op.
func compareFiles(w io.Writer, oldPath, newPath string, threshold float64) (int, error) {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return 0, err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return 0, err
	}
	names := make([]string, 0, len(newSnap.Benchmarks))
	for name := range newSnap.Benchmarks {
		if _, ok := oldSnap.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(w, "fpbbench: no common benchmarks to compare")
		return 0, nil
	}
	regressions := 0
	for _, name := range names {
		o, n := oldSnap.Benchmarks[name], newSnap.Benchmarks[name]
		line := fmt.Sprintf("%-40s", name)
		worst := ""
		for _, key := range []string{"ns_op", "allocs_op"} {
			ov, okO := o[key]
			nv, okN := n[key]
			if !okO || !okN || ov == 0 {
				continue
			}
			delta := nv/ov - 1
			line += fmt.Sprintf("  %s %+7.1f%%", key, delta*100)
			if delta > threshold {
				worst = key
			}
		}
		if worst != "" {
			regressions++
			line += fmt.Sprintf("  REGRESSION(%s > %+.0f%%)", worst, threshold*100)
		}
		fmt.Fprintln(w, line)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "fpbbench: %d benchmark(s) regressed beyond %.0f%%\n", regressions, threshold*100)
	} else {
		fmt.Fprintf(w, "fpbbench: no regressions beyond %.0f%% across %d benchmark(s)\n", threshold*100, len(names))
	}
	return regressions, nil
}
