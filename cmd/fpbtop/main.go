// Command fpbtop is a terminal dashboard for running fpbd daemons: it
// scrapes GET /metrics?format=prometheus on an interval and renders queue
// depth, worker utilization, cache hit ratio, job throughput and lifecycle
// latency percentiles, refreshing in place like top(1).
//
// Usage:
//
//	fpbtop -addr localhost:8080            # refresh every 2s until ^C
//	fpbtop -addr localhost:8080 -n 1       # one snapshot (scripts, smoke tests)
//	fpbtop -addr host1:8080,host2:8080     # fleet view: one row per node
//	fpbtop -interval 500ms -no-clear       # append snapshots instead of redrawing
//
// With several addresses fpbtop renders the per-node fleet table (queue,
// workers, cache ratio, sweep counters, keyspace share) plus fleet totals;
// an unreachable node shows as DOWN and, in finite -n mode, makes fpbtop
// exit non-zero so scripted health checks fail loudly. fpbtop only needs
// the Prometheus text endpoint, so it works against anything that serves
// the exposition.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"fpb/internal/obs"
)

func scrape(hc *http.Client, url string) (map[string]float64, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	samples, bad := obs.ParsePrometheus(string(body))
	if len(samples) == 0 {
		return nil, fmt.Errorf("no samples in exposition (%d unparseable lines)", len(bad))
	}
	return samples, nil
}

// bar renders a fixed-width utilization bar, e.g. [####......].
func bar(used, total float64, width int) string {
	if total <= 0 {
		return strings.Repeat(".", width)
	}
	frac := used / total
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

func render(w io.Writer, addr string, s map[string]float64, prev map[string]float64, interval time.Duration) {
	qd, qc := s["serve_queue_depth"], s["serve_queue_capacity"]
	wb, wt := s["serve_workers_busy"], s["serve_workers_total"]
	hits, misses := s["serve_cache_hits"], s["serve_cache_misses"]
	done, failed := s["serve_jobs_done"], s["serve_jobs_failed"]

	fmt.Fprintf(w, "fpbd %s — %s\n\n", addr, time.Now().Format("15:04:05"))
	fmt.Fprintf(w, "  queue    [%s] %.0f/%.0f\n", bar(qd, qc, 20), qd, qc)
	fmt.Fprintf(w, "  workers  [%s] %.0f/%.0f busy\n", bar(wb, wt, 20), wb, wt)
	fmt.Fprintf(w, "  cache    %.1f%% hit (%.0f hits / %.0f misses)\n",
		100*ratio(hits, hits+misses), hits, misses)
	rate := ""
	if prev != nil && interval > 0 {
		rate = fmt.Sprintf("  (%.1f/s)", (done-prev["serve_jobs_done"])/interval.Seconds())
	}
	fmt.Fprintf(w, "  jobs     %.0f done, %.0f failed, %.0f coalesced, %.0f rejected%s\n",
		done, failed, s["serve_jobs_coalesced"], s["serve_jobs_rejected"], rate)

	fmt.Fprintf(w, "\n  %-22s %8s %8s %8s %8s\n", "latency (ms)", "p50", "p95", "p99", "count")
	for _, h := range []struct{ label, name string }{
		{"queue wait", "serve_job_queue_wait_ms"},
		{"simulation", "serve_job_sim_ms"},
		{"store write", "serve_job_store_write_ms"},
	} {
		count := s[h.name+"_count"]
		p50, ok := obs.HistogramQuantile(s, h.name, 0.50)
		if !ok {
			fmt.Fprintf(w, "  %-22s %8s %8s %8s %8.0f\n", h.label, "-", "-", "-", count)
			continue
		}
		p95, _ := obs.HistogramQuantile(s, h.name, 0.95)
		p99, _ := obs.HistogramQuantile(s, h.name, 0.99)
		fmt.Fprintf(w, "  %-22s %8.3g %8.3g %8.3g %8.0f\n", h.label, p50, p95, p99, count)
	}
	if entries, ok := s["serve_store_entries"]; ok {
		fmt.Fprintf(w, "\n  store    %.0f results persisted\n", entries)
	}
}

// renderFleet prints one row per node plus fleet totals. Unreachable nodes
// render as DOWN with the scrape error.
func renderFleet(w io.Writer, addrs []string, samples []map[string]float64, errs []error) {
	fmt.Fprintf(w, "fpbd fleet — %d nodes — %s\n\n", len(addrs), time.Now().Format("15:04:05"))
	fmt.Fprintf(w, "  %-26s %9s %9s %7s %8s %6s %7s %6s\n",
		"node", "queue", "workers", "cache%", "done", "fail", "sweeps", "own%")
	var tDone, tFailed, tSweeps float64
	downNodes := 0
	for i, a := range addrs {
		if errs[i] != nil {
			fmt.Fprintf(w, "  %-26s DOWN (%v)\n", a, errs[i])
			downNodes++
			continue
		}
		s := samples[i]
		hits, misses := s["serve_cache_hits"], s["serve_cache_misses"]
		done, failed := s["serve_jobs_done"], s["serve_jobs_failed"]
		running := s["cluster_sweeps_running"]
		tDone += done
		tFailed += failed
		tSweeps += running
		fmt.Fprintf(w, "  %-26s %5.0f/%-3.0f %5.0f/%-3.0f %6.1f%% %8.0f %6.0f %7.0f %5.1f%%\n",
			a,
			s["serve_queue_depth"], s["serve_queue_capacity"],
			s["serve_workers_busy"], s["serve_workers_total"],
			100*ratio(hits, hits+misses), done, failed, running,
			100*s["cluster_ring_owned_share"])
	}
	fmt.Fprintf(w, "\n  fleet    %.0f done, %.0f failed, %.0f sweeps running, %d/%d nodes down\n",
		tDone, tFailed, tSweeps, downNodes, len(addrs))
}

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "fpbd address(es), comma-separated (host:port or URL); several addresses render the fleet view")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		count    = flag.Int("n", 0, "number of snapshots (0 = until interrupted)")
		noClear  = flag.Bool("no-clear", false, "append snapshots instead of redrawing the screen")
	)
	flag.Parse()

	addrs := strings.Split(*addr, ",")
	urls := make([]string, len(addrs))
	for i, a := range addrs {
		base := a
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		urls[i] = strings.TrimRight(base, "/") + "/metrics?format=prometheus"
	}
	hc := &http.Client{Timeout: 10 * time.Second}

	hadErr := false
	var prev map[string]float64
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		samples := make([]map[string]float64, len(urls))
		errs := make([]error, len(urls))
		for j, u := range urls {
			samples[j], errs[j] = scrape(hc, u)
		}
		if len(urls) == 1 && errs[0] != nil {
			// Single-node mode keeps the historical contract: a failed
			// scrape is fatal immediately, whatever the mode.
			fmt.Fprintln(os.Stderr, "fpbtop:", errs[0])
			os.Exit(1)
		}
		if !*noClear && i > 0 {
			fmt.Print("\033[H\033[2J") // cursor home + clear screen
		}
		if len(urls) == 1 {
			render(os.Stdout, addrs[0], samples[0], prev, *interval)
			prev = samples[0]
		} else {
			renderFleet(os.Stdout, addrs, samples, errs)
			for _, err := range errs {
				if err != nil {
					hadErr = true
				}
			}
		}
		fmt.Println()
	}
	// Finite-snapshot fleet mode (e.g. -n 1 in smoke scripts) fails loudly
	// when any node was unreachable.
	if hadErr && *count > 0 {
		os.Exit(1)
	}
}
