module fpb

go 1.22
