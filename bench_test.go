// Package fpb_test holds the benchmark harness: one testing.B target per
// table and figure of the paper's evaluation, plus the ablation benches
// DESIGN.md calls out. Each benchmark regenerates its experiment through
// internal/exp at a reduced scale (instructions per core set by -fpb.instr,
// default 20k) and reports the headline aggregate as a custom metric so
// `go test -bench=.` output is directly comparable to the paper's numbers.
//
// The runner memoizes simulations, so b.N > 1 iterations after the first
// are cache hits; the reported ns/op of the first run includes the real
// simulation work.
package fpb_test

import (
	"flag"
	"strconv"
	"sync"
	"testing"

	"fpb/internal/exp"
)

var benchInstr = flag.Uint64("fpb.instr", 20_000, "instructions per core for benchmark experiments")

var (
	runnerOnce sync.Once
	runner     *exp.Runner
)

// sharedRunner memoizes across all benchmarks in the binary, so figures
// reusing the same configurations (e.g. the DIMM+chip baseline) simulate
// them once.
func sharedRunner() *exp.Runner {
	runnerOnce.Do(func() {
		runner = exp.NewRunner(exp.Options{InstrPerCore: *benchInstr})
	})
	return runner
}

// runExperiment executes the experiment once per b.N iteration and reports
// the last row's aggregate values as custom metrics (gmean speedups for the
// speedup figures, max/avg tokens for the telemetry figures).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	r := sharedRunner()
	for i := 0; i < b.N; i++ {
		tb, err := e.Run(r)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := tb.Row(tb.NumRows() - 1)
			cols := tb.Columns
			for j := 1; j < len(last) && j < len(cols); j++ {
				if v, err := strconv.ParseFloat(last[j], 64); err == nil {
					b.ReportMetric(v, cols[j]+"_"+last[0])
				}
			}
		}
	}
}

func BenchmarkFig02CellChanges(b *testing.B)        { runExperiment(b, "fig2") }
func BenchmarkFig04Heuristics(b *testing.B)         { runExperiment(b, "fig4") }
func BenchmarkFig10WriteBurst(b *testing.B)         { runExperiment(b, "fig10") }
func BenchmarkFig11GCPEfficiency(b *testing.B)      { runExperiment(b, "fig11") }
func BenchmarkFig12CellMapping(b *testing.B)        { runExperiment(b, "fig12") }
func BenchmarkFig13MaxGCPTokens(b *testing.B)       { runExperiment(b, "fig13") }
func BenchmarkTable3PumpArea(b *testing.B)          { runExperiment(b, "tab3") }
func BenchmarkFig14AvgGCPTokens(b *testing.B)       { runExperiment(b, "fig14") }
func BenchmarkFig15BIMEfficiencySweep(b *testing.B) { runExperiment(b, "fig15") }
func BenchmarkFig16IPM(b *testing.B)                { runExperiment(b, "fig16") }
func BenchmarkFig17MultiResetSplit(b *testing.B)    { runExperiment(b, "fig17") }
func BenchmarkFig18Throughput(b *testing.B)         { runExperiment(b, "fig18") }
func BenchmarkFig19LineSize(b *testing.B)           { runExperiment(b, "fig19") }
func BenchmarkFig20LLC(b *testing.B)                { runExperiment(b, "fig20") }
func BenchmarkFig21WriteQueue(b *testing.B)         { runExperiment(b, "fig21") }
func BenchmarkFig22TokenBudget(b *testing.B)        { runExperiment(b, "fig22") }
func BenchmarkFig23WCWPWT(b *testing.B)             { runExperiment(b, "fig23") }
func BenchmarkAblationGCPSize(b *testing.B)         { runExperiment(b, "abl-gcpsize") }
func BenchmarkAblationSetRatio(b *testing.B)        { runExperiment(b, "abl-setratio") }
func BenchmarkAblationMRTrigger(b *testing.B)       { runExperiment(b, "abl-mrtrigger") }
func BenchmarkAblationHalfStripe(b *testing.B)      { runExperiment(b, "abl-halfstripe") }
