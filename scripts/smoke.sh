#!/bin/sh
# Daemon smoke test: builds fpbd and fpbtop, boots a daemon on a loopback
# port, drives one job through the full lifecycle, and asserts that both
# /metrics representations (legacy JSON and Prometheus text) reflect it —
# the end-to-end proof behind the serving + observability stack that unit
# tests can't give (real binary, real HTTP, real store on disk).
#
# Requires: go, curl. Exits non-zero on any failed assertion.
set -eu
cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
BIN="$TMP/bin"
LOG="$TMP/fpbd.log"
mkdir -p "$BIN"

fail() {
    echo "smoke: FAIL: $*" >&2
    for l in "$LOG" "$TMP"/fleet1.log "$TMP"/fleet2.log "$TMP"/fleet3.log; do
        if [ -s "$l" ]; then
            echo "--- $l ---" >&2
            cat "$l" >&2
        fi
    done
    exit 1
}

cleanup() {
    for pid in "${FPBD_PID:-}" "${FLEET1_PID:-}" "${FLEET2_PID:-}" "${FLEET3_PID:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
        [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "smoke: building fpbd + fpbtop"
go build -o "$BIN/fpbd" ./cmd/fpbd
go build -o "$BIN/fpbtop" ./cmd/fpbtop

echo "smoke: starting fpbd on :$PORT"
"$BIN/fpbd" -addr "127.0.0.1:$PORT" -store "$TMP/store" -ckpt-store "$TMP/ckpt" \
    -workers 2 -log-format json -log-level debug >"$LOG" 2>&1 &
FPBD_PID=$!

# Wait for liveness (up to ~5s).
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && fail "daemon did not become healthy"
    sleep 0.1
done

SPEC='{"workload":"mix_1","scheme":"gcp","instr_per_core":2000}'

echo "smoke: submitting a job"
RESP="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/jobs")"
echo "$RESP" | grep -q '"state": *"done"' || fail "job did not finish: $RESP"
echo "$RESP" | grep -q '"outcome": *"fresh"' || fail "missing fresh lifecycle record: $RESP"
JOB_ID="$(echo "$RESP" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n1)"
[ -n "$JOB_ID" ] || fail "no job id in response: $RESP"

echo "smoke: resubmitting the identical job (must be a cache hit)"
RESP2="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/jobs")"
echo "$RESP2" | grep -q '"cached": *true' || fail "identical job not served from cache: $RESP2"
echo "$RESP2" | grep -q '"outcome": *"cache-hit"' || fail "missing cache-hit lifecycle record: $RESP2"

echo "smoke: checking legacy JSON metrics"
MJSON="$(curl -fsS "$BASE/metrics")"
echo "$MJSON" | grep -q '"serve.jobs.done": *1' || fail "serve.jobs.done != 1 in JSON: $MJSON"
echo "$MJSON" | grep -q '"serve.cache.hits": *1' || fail "serve.cache.hits != 1 in JSON: $MJSON"

echo "smoke: checking Prometheus metrics"
MPROM="$(curl -fsS "$BASE/metrics?format=prometheus")"
echo "$MPROM" | grep -q '^serve_jobs_done 1$' || fail "serve_jobs_done != 1 in Prometheus text"
echo "$MPROM" | grep -q '^serve_cache_hits 1$' || fail "serve_cache_hits != 1 in Prometheus text"
echo "$MPROM" | grep -q '^# TYPE serve_job_sim_ms histogram$' || fail "missing sim_ms histogram TYPE"
echo "$MPROM" | grep -q '^serve_job_sim_ms_count 1$' || fail "sim_ms histogram did not record the job"

echo "smoke: checking content negotiation via Accept"
CT="$(curl -fsS -o /dev/null -w '%{content_type}' -H 'Accept: text/plain' "$BASE/metrics")"
case "$CT" in text/plain*) : ;; *) fail "Accept: text/plain returned $CT" ;; esac

echo "smoke: fpbtop one-shot snapshot"
TOP="$("$BIN/fpbtop" -addr "127.0.0.1:$PORT" -n 1)"
echo "$TOP" | grep -q 'cache' || fail "fpbtop rendered nothing useful: $TOP"
echo "$TOP" | grep -q 'simulation' || fail "fpbtop missing latency table: $TOP"

echo "smoke: structured logs carry the job id"
grep -q "$JOB_ID" "$LOG" || fail "job id $JOB_ID absent from daemon logs"
grep -q '"msg":"job done"' "$LOG" || fail "no 'job done' log line"

echo "smoke: checkpointed warm-start jobs"
WSPEC1='{"workload":"mcf_m","scheme":"dimm+chip","instr_per_core":2000,"warmup_cycles":300000}'
WSPEC2='{"workload":"mcf_m","scheme":"gcp","instr_per_core":2000,"warmup_cycles":300000}'
W1="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$WSPEC1" "$BASE/v1/jobs")"
echo "$W1" | grep -q '"state": *"done"' || fail "first warmup job did not finish: $W1"
W2="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$WSPEC2" "$BASE/v1/jobs")"
echo "$W2" | grep -q '"state": *"done"' || fail "second warmup job did not finish: $W2"
curl -fsS "$BASE/metrics" | grep -q '"serve.jobs.warm_starts": *1' ||
    fail "second warmup job should have warm-started from the first one's checkpoint"

echo "smoke: checkpoint image export/import round trip"
KEY="$(ls "$TMP/ckpt" | sed -n 's/\.fpbckpt$//p' | head -n1)"
[ -n "$KEY" ] || fail "no checkpoint image materialized in the store"
curl -fsS "$BASE/v1/checkpoints/$KEY" -o "$TMP/img.fpbckpt" || fail "checkpoint GET failed"
CODE="$(curl -fsS -o /dev/null -w '%{http_code}' -X PUT \
    --data-binary @"$TMP/img.fpbckpt" "$BASE/v1/checkpoints/$KEY")"
[ "$CODE" = 204 ] || fail "checkpoint PUT returned $CODE"
NOKEY="0000000000000000000000000000000000000000000000000000000000000000"
CODE404="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/checkpoints/$NOKEY")"
[ "$CODE404" = 404 ] || fail "missing checkpoint should answer 404, got $CODE404"

echo "smoke: graceful shutdown"
kill -TERM "$FPBD_PID"
wait "$FPBD_PID" || fail "daemon exited non-zero"
grep -q '"msg":"exit"' "$LOG" || fail "no exit-time metrics summary in logs"
FPBD_PID=""

# ---------------------------------------------------------------------------
# Fleet smoke: a 3-node consistent-hash cluster. Submits a sweep through
# fpbctl, kills one member, and asserts the fleet still completes sweeps and
# exposes its ring/sweep metrics. FLEET_SMOKE=0 skips this section.
# ---------------------------------------------------------------------------
if [ "${FLEET_SMOKE:-1}" = 1 ]; then
    echo "smoke: building fpbctl"
    go build -o "$BIN/fpbctl" ./cmd/fpbctl

    P1=$((PORT + 1))
    P2=$((PORT + 2))
    P3=$((PORT + 3))
    A1="127.0.0.1:$P1"
    A2="127.0.0.1:$P2"
    A3="127.0.0.1:$P3"

    echo "smoke: starting a 3-node fleet on :$P1 :$P2 :$P3"
    "$BIN/fpbd" -addr "$A1" -advertise "$A1" -peers "$A2,$A3" -replicas 2 \
        -store "$TMP/fleet1" -workers 2 -log-format json >"$TMP/fleet1.log" 2>&1 &
    FLEET1_PID=$!
    "$BIN/fpbd" -addr "$A2" -advertise "$A2" -peers "$A1,$A3" -replicas 2 \
        -store "$TMP/fleet2" -workers 2 -log-format json >"$TMP/fleet2.log" 2>&1 &
    FLEET2_PID=$!
    "$BIN/fpbd" -addr "$A3" -advertise "$A3" -peers "$A1,$A2" -replicas 2 \
        -store "$TMP/fleet3" -workers 2 -log-format json >"$TMP/fleet3.log" 2>&1 &
    FLEET3_PID=$!

    for a in "$A1" "$A2" "$A3"; do
        i=0
        until curl -fsS "http://$a/healthz" >/dev/null 2>&1; do
            i=$((i + 1))
            [ "$i" -ge 50 ] && fail "fleet node $a did not become healthy"
            sleep 0.1
        done
    done

    echo "smoke: fleet membership"
    MEMBERS="$("$BIN/fpbctl" -addr "$A1" members)" || fail "fpbctl members failed"
    echo "$MEMBERS" | grep -q '3 members' || fail "expected 3 members: $MEMBERS"

    echo "smoke: fleet sweep (2 schemes x 2 workloads) via fpbctl"
    SWEEP="$("$BIN/fpbctl" -addr "$A1" sweep -schemes gcp,ideal -workloads mcf_m,mix_1 \
        -seed 7 -instr 2000 -wait)" || fail "fleet sweep failed: ${SWEEP:-}"
    echo "$SWEEP" | grep -q '4/4 done' || fail "sweep incomplete: $SWEEP"

    echo "smoke: fpbtop fleet view"
    TOPF="$("$BIN/fpbtop" -addr "$A1,$A2,$A3" -n 1)" || fail "fpbtop fleet view failed"
    echo "$TOPF" | grep -q 'fleet' || fail "fpbtop missing fleet totals: $TOPF"

    echo "smoke: killing one fleet member"
    kill -9 "$FLEET3_PID" 2>/dev/null || true
    wait "$FLEET3_PID" 2>/dev/null || true
    FLEET3_PID=""

    echo "smoke: sweep still completes with a dead member"
    SWEEP2="$("$BIN/fpbctl" -addr "$A1" sweep -schemes gcp,ideal -workloads xal_m,mum_m \
        -seed 8 -instr 2000 -wait)" || fail "post-kill sweep failed: ${SWEEP2:-}"
    echo "$SWEEP2" | grep -q '4/4 done' || fail "post-kill sweep incomplete: $SWEEP2"

    echo "smoke: Prometheus fleet metrics"
    MFLEET="$(curl -fsS "http://$A1/metrics?format=prometheus")"
    echo "$MFLEET" | grep -q '^cluster_ring_members 3$' || fail "missing cluster_ring_members"
    echo "$MFLEET" | grep -q '^cluster_sweeps_done [1-9]' || fail "missing cluster_sweeps_done"
    echo "$MFLEET" | grep -q '^cluster_jobs_done [1-9]' || fail "missing cluster_jobs_done"

    echo "smoke: fpbtop one-shot exits non-zero with a down member"
    if "$BIN/fpbtop" -addr "$A1,$A2,$A3" -n 1 >/dev/null 2>&1; then
        fail "fpbtop should exit non-zero when a fleet member is unreachable"
    fi

    echo "smoke: fleet graceful shutdown"
    for pid in "$FLEET1_PID" "$FLEET2_PID"; do
        kill -TERM "$pid"
        wait "$pid" || fail "fleet daemon exited non-zero"
    done
    FLEET1_PID=""
    FLEET2_PID=""
fi

echo "smoke: PASS"
