#!/bin/sh
# Daemon smoke test: builds fpbd and fpbtop, boots a daemon on a loopback
# port, drives one job through the full lifecycle, and asserts that both
# /metrics representations (legacy JSON and Prometheus text) reflect it —
# the end-to-end proof behind the serving + observability stack that unit
# tests can't give (real binary, real HTTP, real store on disk).
#
# Requires: go, curl. Exits non-zero on any failed assertion.
set -eu
cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
BIN="$TMP/bin"
LOG="$TMP/fpbd.log"
mkdir -p "$BIN"

fail() {
    echo "smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

cleanup() {
    [ -n "${FPBD_PID:-}" ] && kill "$FPBD_PID" 2>/dev/null || true
    [ -n "${FPBD_PID:-}" ] && wait "$FPBD_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "smoke: building fpbd + fpbtop"
go build -o "$BIN/fpbd" ./cmd/fpbd
go build -o "$BIN/fpbtop" ./cmd/fpbtop

echo "smoke: starting fpbd on :$PORT"
"$BIN/fpbd" -addr "127.0.0.1:$PORT" -store "$TMP/store" -workers 2 \
    -log-format json -log-level debug >"$LOG" 2>&1 &
FPBD_PID=$!

# Wait for liveness (up to ~5s).
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && fail "daemon did not become healthy"
    sleep 0.1
done

SPEC='{"workload":"mix_1","scheme":"gcp","instr_per_core":2000}'

echo "smoke: submitting a job"
RESP="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/jobs")"
echo "$RESP" | grep -q '"state": *"done"' || fail "job did not finish: $RESP"
echo "$RESP" | grep -q '"outcome": *"fresh"' || fail "missing fresh lifecycle record: $RESP"
JOB_ID="$(echo "$RESP" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n1)"
[ -n "$JOB_ID" ] || fail "no job id in response: $RESP"

echo "smoke: resubmitting the identical job (must be a cache hit)"
RESP2="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/jobs")"
echo "$RESP2" | grep -q '"cached": *true' || fail "identical job not served from cache: $RESP2"
echo "$RESP2" | grep -q '"outcome": *"cache-hit"' || fail "missing cache-hit lifecycle record: $RESP2"

echo "smoke: checking legacy JSON metrics"
MJSON="$(curl -fsS "$BASE/metrics")"
echo "$MJSON" | grep -q '"serve.jobs.done": *1' || fail "serve.jobs.done != 1 in JSON: $MJSON"
echo "$MJSON" | grep -q '"serve.cache.hits": *1' || fail "serve.cache.hits != 1 in JSON: $MJSON"

echo "smoke: checking Prometheus metrics"
MPROM="$(curl -fsS "$BASE/metrics?format=prometheus")"
echo "$MPROM" | grep -q '^serve_jobs_done 1$' || fail "serve_jobs_done != 1 in Prometheus text"
echo "$MPROM" | grep -q '^serve_cache_hits 1$' || fail "serve_cache_hits != 1 in Prometheus text"
echo "$MPROM" | grep -q '^# TYPE serve_job_sim_ms histogram$' || fail "missing sim_ms histogram TYPE"
echo "$MPROM" | grep -q '^serve_job_sim_ms_count 1$' || fail "sim_ms histogram did not record the job"

echo "smoke: checking content negotiation via Accept"
CT="$(curl -fsS -o /dev/null -w '%{content_type}' -H 'Accept: text/plain' "$BASE/metrics")"
case "$CT" in text/plain*) : ;; *) fail "Accept: text/plain returned $CT" ;; esac

echo "smoke: fpbtop one-shot snapshot"
TOP="$("$BIN/fpbtop" -addr "127.0.0.1:$PORT" -n 1)"
echo "$TOP" | grep -q 'cache' || fail "fpbtop rendered nothing useful: $TOP"
echo "$TOP" | grep -q 'simulation' || fail "fpbtop missing latency table: $TOP"

echo "smoke: structured logs carry the job id"
grep -q "$JOB_ID" "$LOG" || fail "job id $JOB_ID absent from daemon logs"
grep -q '"msg":"job done"' "$LOG" || fail "no 'job done' log line"

echo "smoke: graceful shutdown"
kill -TERM "$FPBD_PID"
wait "$FPBD_PID" || fail "daemon exited non-zero"
grep -q '"msg":"exit"' "$LOG" || fail "no exit-time metrics summary in logs"
FPBD_PID=""

echo "smoke: PASS"
