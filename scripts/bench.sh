#!/bin/sh
# Perf-regression harness: run the repo's benchmarks and write a
# deterministic JSON snapshot (sorted keys, normalized names) named after
# the current revision. Optionally compare against a baseline snapshot.
#
# Usage:
#   scripts/bench.sh [-quick] [-out FILE] [-baseline FILE]
#
#   -quick      microbenchmark subset only (seconds, for CI smoke); the
#               default also runs the Fig. 18 end-to-end benchmark.
#   -out FILE   snapshot path (default BENCH_<rev>.json in the repo root)
#   -baseline FILE
#               after measuring, run `fpbbench -compare` against FILE.
#               Regressions are reported but do not fail the script
#               (CI treats them as warnings; pass judgement in review).
set -eu
cd "$(dirname "$0")/.."

QUICK=0
OUT=""
BASELINE=""
while [ $# -gt 0 ]; do
    case "$1" in
    -quick) QUICK=1 ;;
    -out)
        OUT="$2"
        shift
        ;;
    -baseline)
        BASELINE="$2"
        shift
        ;;
    *)
        echo "usage: $0 [-quick] [-out FILE] [-baseline FILE]" >&2
        exit 2
        ;;
    esac
    shift
done

# Staleness check: warn when the committed bench/ snapshots predate the
# newest commit touching a perf-relevant tree — baselines go stale silently
# otherwise, and -compare then flags phantom regressions (or misses real
# ones). Warning only: measuring is still the right move, that's what this
# script is for.
PERF_PATHS="internal/sim internal/pcm internal/power internal/cache internal/mem internal/core internal/cpu internal/system cmd/fpbbench"
if git rev-parse --git-dir >/dev/null 2>&1; then
    # shellcheck disable=SC2086 # PERF_PATHS is a deliberate word list
    LAST_PERF=$(git log -1 --format=%ct HEAD -- $PERF_PATHS 2>/dev/null || true)
    LAST_SNAP=$(git log -1 --format=%ct HEAD -- bench/ 2>/dev/null || true)
    if [ -n "${LAST_PERF:-}" ] && [ "${LAST_SNAP:-0}" -lt "$LAST_PERF" ]; then
        echo "bench.sh: WARNING: newest bench/ snapshot ($(date -d "@${LAST_SNAP:-0}" +%F 2>/dev/null || echo never)) predates the newest perf-touching commit ($(date -d "@$LAST_PERF" +%F 2>/dev/null || echo '?')); consider committing a fresh snapshot" >&2
    fi
fi

REV=$(git rev-parse --short HEAD 2>/dev/null || echo workdir)
if ! git diff --quiet 2>/dev/null; then
    REV="${REV}-dirty"
fi
[ -n "$OUT" ] || OUT="BENCH_${REV}.json"

# Hot-path microbenchmarks: sim kernel, profile build, power manager,
# cache, dispatch guards.
MICRO='BenchmarkEngineScheduleAndRun|BenchmarkProfileBuild|BenchmarkDiffCells256B|BenchmarkTryAcquireRelease|BenchmarkCacheAccess|BenchmarkHierarchyAccess|BenchmarkDispatch'
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$MICRO" -benchmem \
    ./internal/sim/ ./internal/pcm/ ./internal/power/ ./internal/cache/ ./internal/obs/ |
    tee "$RAW"

if [ "$QUICK" -eq 0 ]; then
    # End-to-end throughput benchmark (the tentpole target). One iteration
    # is enough: the simulation itself is deterministic and long.
    go test -run '^$' -bench 'BenchmarkFig18Throughput' -benchtime 1x -benchmem . |
        tee -a "$RAW"
    # GOMAXPROCS x shard-count scaling grid of the parallel engine. Results
    # are bit-identical across the whole grid (fpbbench verifies that); only
    # wall clock varies, so each point is the min of -reps runs.
    go run ./cmd/fpbbench -cpus 1,2,4 -shards 0,8,16,64 -reps 3 -instr 20000 |
        tee -a "$RAW"
    # Checkpointed warm-start vs cold warmup for the Fig. 18 sweep. The
    # run itself asserts the warm-started results are byte-identical to
    # the cold ones; the snapshot records the speedup.
    go run ./cmd/fpbbench -warm 4000000 -instr 5000 | tee -a "$RAW"
else
    # Quick scaling smoke for CI: two workloads, two cpu counts, sequential
    # vs full sharding only.
    go run ./cmd/fpbbench -cpus 1,2 -shards 0,64 -reps 2 -instr 8000 \
        -workloads mcf_m,mix_1 | tee -a "$RAW"
    # Warm-start smoke: shorter warmup, same byte-identity assertion.
    go run ./cmd/fpbbench -warm 1000000 -instr 3000 | tee -a "$RAW"
fi

go run ./cmd/fpbbench -out "$OUT" <"$RAW"
echo "wrote $OUT"

if [ -n "$BASELINE" ]; then
    go run ./cmd/fpbbench -compare -threshold 0.20 "$BASELINE" "$OUT"
fi
