#!/bin/sh
# Tier-1 verification gate: gofmt cleanliness, vet, build, and race-enabled
# tests. Equivalent to `make check`, for environments without make.
set -eux
cd "$(dirname "$0")/.."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt required for:" >&2
    echo "$unformatted" >&2
    exit 1
fi
go vet ./...
go build ./...
go test -race ./...
# The parallel engine's worker pool sizes itself from GOMAXPROCS; re-run
# its packages under the race detector with real parallelism so sweep
# synchronization is exercised even on single-core CI runners.
GOMAXPROCS=2 go test -race ./internal/sim/ ./internal/system/
# fpbdebug swaps in the Store.Get aliasing guard; run the packages that
# exercise it so the debug build stays green.
go test -tags fpbdebug ./internal/pcm/ ./internal/mem/
# Checkpoint/warm-start gate: one fpbsim run checkpoints its warmup, a
# second restores it, and the full metrics snapshots must be byte-identical;
# fpbbench -warm repeats the assertion across the whole Fig. 18 grid.
# CKPT=0 skips (the unit suite still covers the codecs).
if [ "${CKPT:-1}" = 1 ]; then
    CKDIR=$(mktemp -d)
    go run ./cmd/fpbsim -workload mcf_m -scheme fpb -instr 3000 -warmup 500000 \
        -checkpoint-dir "$CKDIR" -metrics "$CKDIR/cold.json" >/dev/null
    go run ./cmd/fpbsim -workload mcf_m -scheme fpb -instr 3000 -warmup 500000 \
        -checkpoint-dir "$CKDIR" -metrics "$CKDIR/warm.json" >/dev/null
    cmp "$CKDIR/cold.json" "$CKDIR/warm.json"
    go run ./cmd/fpbbench -warm 500000 -instr 2000 >/dev/null
    rm -rf "$CKDIR"
fi
# Scaling gate: a short sharded-vs-sequential comparison at GOMAXPROCS=2.
# fpbbench cross-checks that every grid point produces bit-identical result
# tables and prints a loud WARNING on stderr if the sharded engine is slower
# than sequential at the same cpu count. Warning only — wall clock on shared
# CI runners is too noisy to fail on. SCALE=0 skips.
if [ "${SCALE:-1}" = 1 ]; then
    go run ./cmd/fpbbench -cpus 2 -shards 0,64 -reps 2 -instr 3000 \
        -workloads mcf_m >/dev/null
fi
# End-to-end daemon smoke: real fpbd binary, one job through the full
# lifecycle, both /metrics formats asserted. SMOKE=0 skips it (e.g. for
# sandboxes without loopback listeners); it needs curl.
if [ "${SMOKE:-1}" = 1 ]; then
    ./scripts/smoke.sh
fi
