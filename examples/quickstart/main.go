// Quickstart: simulate one write-intensive workload (8 copies of mcf) under
// the state-of-the-art per-write power budgeting baseline (DIMM+chip) and
// under full FPB (GCP + IPM + Multi-RESET with BIM mapping), then report
// the speedup and write-throughput gain — the paper's headline comparison.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fpb/internal/sim"
	"fpb/internal/system"
)

func main() {
	const workloadName = "mcf_m"

	base := sim.DefaultConfig()
	base.InstrPerCore = 100_000
	base.Scheme = sim.SchemeDIMMChip

	fpb := base
	fpb.Scheme = sim.SchemeGCPIPMMR
	fpb.CellMapping = sim.MapBIM
	fpb.GCPEff = 0.70

	fmt.Printf("Simulating %s under two power-budgeting schemes...\n\n", workloadName)

	baseRes, err := system.RunWorkload(base, workloadName)
	if err != nil {
		log.Fatal(err)
	}
	fpbRes, err := system.RunWorkload(fpb, workloadName)
	if err != nil {
		log.Fatal(err)
	}

	report := func(label string, r system.Result) {
		fmt.Printf("%-28s CPI %7.2f | write throughput %6.1f/Mcyc | %4.1f%% of time in write burst\n",
			label, r.CPI, r.WriteThroughput, r.BurstFraction*100)
	}
	report("DIMM+chip (Hay et al.)", baseRes)
	report("FPB (GCP+IPM+MR, BIM)", fpbRes)

	fmt.Printf("\nFPB speedup:                 %.2fx (paper: +76%% on average)\n",
		system.Speedup(baseRes, fpbRes))
	fmt.Printf("FPB write-throughput gain:   %.2fx (paper: 3.4x on average)\n",
		fpbRes.WriteThroughput/baseRes.WriteThroughput)
}
