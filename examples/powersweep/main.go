// Powersweep: explore how the global charge pump's power efficiency and the
// cell mapping interact (the paper's Figures 11/12/15). For each mapping,
// GCP efficiency is swept from 0.95 down to 0.30 and the speedup over the
// DIMM+chip baseline printed as a text curve.
//
// Run with: go run ./examples/powersweep [-workload mix_1]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"fpb/internal/sim"
	"fpb/internal/system"
)

func main() {
	wl := flag.String("workload", "mix_1", "workload to sweep")
	instr := flag.Uint64("instr", 60_000, "instructions per core")
	flag.Parse()

	base := sim.DefaultConfig()
	base.InstrPerCore = *instr
	base.Scheme = sim.SchemeDIMMChip
	baseRes, err := system.RunWorkload(base, *wl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GCP speedup over DIMM+chip on %s (CPI %.1f)\n\n", *wl, baseRes.CPI)
	fmt.Println("eff   NE      VIM     BIM")

	effs := []float64{0.95, 0.80, 0.70, 0.60, 0.50, 0.40, 0.30}
	for _, eff := range effs {
		row := fmt.Sprintf("%.2f", eff)
		for _, m := range []sim.Mapping{sim.MapNaive, sim.MapVIM, sim.MapBIM} {
			cfg := base
			cfg.Scheme = sim.SchemeGCP
			cfg.CellMapping = m
			cfg.GCPEff = eff
			res, err := system.RunWorkload(cfg, *wl)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("  %.3f", system.Speedup(baseRes, res))
		}
		fmt.Println(row)
	}

	fmt.Println("\nSpeedup bars (BIM):")
	for _, eff := range effs {
		cfg := base
		cfg.Scheme = sim.SchemeGCP
		cfg.CellMapping = sim.MapBIM
		cfg.GCPEff = eff
		res, _ := system.RunWorkload(cfg, *wl)
		s := system.Speedup(baseRes, res)
		bars := int((s - 1) * 50)
		if bars < 0 {
			bars = 0
		}
		fmt.Printf("%.2f %-30s %.3f\n", eff, strings.Repeat("#", bars), s)
	}
}
