// Readlatency: FPB combined with the read-latency reduction schemes the
// paper integrates in Section 6.4.5 — write cancellation (WC), write
// pausing (WP) and write truncation (WT). Long MLC writes block reads to
// their bank; WC/WP move writes off the read's critical path and WT
// shortens the writes themselves. The example reports average PCM read
// latency and overall CPI as each scheme is stacked on top of FPB.
//
// Run with: go run ./examples/readlatency [-workload tig_m]
package main

import (
	"flag"
	"fmt"
	"log"

	"fpb/internal/sim"
	"fpb/internal/system"
)

func main() {
	wl := flag.String("workload", "tig_m", "workload (read-heavy ones show WC/WP best)")
	instr := flag.Uint64("instr", 80_000, "instructions per core")
	flag.Parse()

	fpb := sim.DefaultConfig()
	fpb.InstrPerCore = *instr
	fpb.Scheme = sim.SchemeGCPIPMMR
	fpb.CellMapping = sim.MapBIM

	steps := []struct {
		label  string
		mutate func(*sim.Config)
	}{
		{"FPB", func(c *sim.Config) {}},
		{"FPB+WC", func(c *sim.Config) {
			c.WriteCancellation = true
			c.ReadQueueEntries, c.WriteQueueEntries = 320, 320
		}},
		{"FPB+WC+WP", func(c *sim.Config) {
			c.WriteCancellation, c.WritePausing = true, true
			c.ReadQueueEntries, c.WriteQueueEntries = 320, 320
		}},
		{"FPB+WC+WP+WT", func(c *sim.Config) {
			c.WriteCancellation, c.WritePausing, c.WriteTruncation = true, true, true
			c.ReadQueueEntries, c.WriteQueueEntries = 320, 320
		}},
	}

	fmt.Printf("Read-latency schemes stacked on FPB, workload %s\n\n", *wl)
	fmt.Printf("%-14s %10s %10s %10s %9s %9s\n",
		"scheme", "CPI", "readLat", "wr/Mcyc", "cancels", "pauses")
	var first system.Result
	for i, st := range steps {
		cfg := fpb
		st.mutate(&cfg)
		res, err := system.RunWorkload(cfg, *wl)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			first = res
		}
		fmt.Printf("%-14s %10.2f %10.0f %10.1f %9d %9d\n",
			st.label, res.CPI, res.AvgReadLatency, res.WriteThroughput,
			res.WCCancels, res.WPPauses)
	}
	_ = first
}
