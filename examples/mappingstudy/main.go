// Mappingstudy: a device-level look at why VIM and BIM exist. For integer,
// floating-point and byte-stream value models, the example measures how a
// line write's changed cells distribute across the 8 PCM chips under each
// mapping (Section 4.3, Figure 9), and how that imbalance translates into
// demand on the global charge pump.
//
// Run with: go run ./examples/mappingstudy
package main

import (
	"fmt"
	"log"

	"fpb/internal/mapping"
	"fpb/internal/pcm"
	"fpb/internal/sim"
	"fpb/internal/stats"
	"fpb/internal/system"
	"fpb/internal/workload"
)

const (
	lineB  = 256
	chips  = 8
	writes = 2000
)

func main() {
	cells := pcm.NumCells(lineB, 2)
	classes := []workload.ValueClass{workload.ValueInt, workload.ValueFP, workload.ValueByte}
	maps := []sim.Mapping{sim.MapNaive, sim.MapVIM, sim.MapBIM}

	fmt.Println("Per-chip imbalance of changed cells (max chip / mean chip; 1.0 = perfectly balanced)")
	fmt.Println()
	fmt.Printf("%-8s %8s %8s %8s\n", "values", "NE", "VIM", "BIM")
	for _, class := range classes {
		row := fmt.Sprintf("%-8s", class)
		for _, m := range maps {
			row += fmt.Sprintf(" %8.3f", imbalanceOf(class, m, cells))
		}
		fmt.Println(row)
	}

	// Chip-budget pressure arises from *concurrent* writes (Fig. 3): the
	// per-chip demands of overlapping writes stack against the 66.5-token
	// LCP. Report the expected hot-chip demand when three writes overlap.
	fmt.Println()
	fmt.Println("Hot-chip demand with 3 overlapping writes vs the 66.5-token LCP budget")
	fmt.Println("(excess must come from the GCP — or the writes stall)")
	fmt.Println()
	cfg := sim.DefaultConfig()
	lcp := cfg.LCPTokens()
	fmt.Printf("%-8s %8s %8s %8s\n", "values", "NE", "VIM", "BIM")
	for _, class := range classes {
		row := fmt.Sprintf("%-8s", class)
		for _, m := range maps {
			row += fmt.Sprintf(" %8.1f", overlapHotDemand(class, m, cells)-lcp)
		}
		fmt.Println(row)
	}

	// System-level confirmation: the GCP tokens a real simulation asks
	// for under each mapping (the data behind Fig. 13 / Table 3).
	fmt.Println()
	fmt.Println("GCP engagement in a real simulation of mcf_m (GCP scheme, eff 0.7)")
	fmt.Println()
	fmt.Printf("%-8s %12s %12s\n", "mapping", "max tokens", "avg/write")
	for _, m := range maps {
		simCfg := sim.DefaultConfig()
		simCfg.InstrPerCore = 40_000
		simCfg.Scheme = sim.SchemeGCP
		simCfg.CellMapping = m
		res, err := system.RunWorkload(simCfg, "mcf_m")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v %12.1f %12.2f\n", m, res.MaxGCPTokens, res.AvgGCPTokens)
	}
}

// overlapHotDemand is the mean over samples of the busiest chip's combined
// cell count when three consecutive writes overlap in time.
func overlapHotDemand(class workload.ValueClass, m sim.Mapping, cells int) float64 {
	samples := sampleCounts(class, m, cells)
	var s stats.Summary
	for i := 0; i+2 < len(samples); i += 3 {
		max := 0
		for c := 0; c < chips; c++ {
			sum := samples[i][c] + samples[i+1][c] + samples[i+2][c]
			if sum > max {
				max = sum
			}
		}
		s.Add(float64(max))
	}
	return s.Mean()
}

// sampleCounts returns per-chip changed-cell counts for a stream of writes.
func sampleCounts(class workload.ValueClass, m sim.Mapping, cells int) [][]int {
	mut := workload.NewMutator(class, sim.NewRNG(7))
	mapFn := mapping.New(m, cells, chips)
	old := workload.BaselineContent(0x1000, lineB)
	var out [][]int
	for i := 0; i < writes; i++ {
		next := mut.Next(old, lineB)
		changed := pcm.DiffCells(nil, old, next, 2)
		out = append(out, mapping.PerChipCounts(changed, mapFn, chips))
		old = next
	}
	return out
}

func imbalanceOf(class workload.ValueClass, m sim.Mapping, cells int) float64 {
	var s stats.Summary
	for _, counts := range sampleCounts(class, m, cells) {
		if im := mapping.Imbalance(counts); im > 0 {
			s.Add(im)
		}
	}
	return s.Mean()
}
