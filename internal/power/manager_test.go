package power

import (
	"math"
	"testing"

	"fpb/internal/sim"
)

func managerFor(scheme sim.Scheme, mutate func(*sim.Config)) (*Manager, *sim.Config) {
	cfg := sim.DefaultConfig()
	cfg.Scheme = scheme
	if mutate != nil {
		mutate(&cfg)
	}
	return NewManager(&cfg, nil), &cfg
}

func uniformDemand(total float64, chips int) Demand {
	per := make([]float64, chips)
	for i := range per {
		per[i] = total / float64(chips)
	}
	return Demand{DIMM: total, PerChip: per}
}

func TestIdealSchemeGrantsEverything(t *testing.T) {
	m, _ := managerFor(sim.SchemeIdeal, nil)
	for i := 0; i < 100; i++ {
		if _, ok := m.TryAcquire(uniformDemand(10000, 8)); !ok {
			t.Fatal("Ideal denied a grant")
		}
	}
}

func TestDIMMOnlyEnforcesOnlyDIMM(t *testing.T) {
	m, _ := managerFor(sim.SchemeDIMMOnly, nil)
	// A demand concentrated on one chip passes under DIMM-only.
	per := make([]float64, 8)
	per[3] = 500
	g, ok := m.TryAcquire(Demand{DIMM: 500, PerChip: per})
	if !ok {
		t.Fatal("DIMM-only denied a single-chip 500-token write")
	}
	// But the DIMM total binds: 100 more would exceed 560.
	if _, ok := m.TryAcquire(Demand{DIMM: 100}); ok {
		t.Error("DIMM-only granted past the 560-token budget")
	}
	m.Release(g)
	if _, ok := m.TryAcquire(Demand{DIMM: 100}); !ok {
		t.Error("grant not released")
	}
}

func TestDIMMChipEnforcesChipBudget(t *testing.T) {
	m, cfg := managerFor(sim.SchemeDIMMChip, nil)
	lcp := cfg.LCPTokens() // 66.5
	per := make([]float64, 8)
	per[0] = lcp + 1
	if _, ok := m.TryAcquire(Demand{DIMM: per[0], PerChip: per}); ok {
		t.Error("DIMM+chip granted past one chip's LCP with no GCP")
	}
	per[0] = lcp
	if _, ok := m.TryAcquire(Demand{DIMM: lcp, PerChip: per}); !ok {
		t.Error("DIMM+chip denied a demand exactly at the chip budget")
	}
}

func TestGCPPowersHotChip(t *testing.T) {
	m, cfg := managerFor(sim.SchemeGCP, nil)
	lcp := cfg.LCPTokens()
	// A first write occupies most of chip 0 (the "hot chip" of Fig. 3).
	busy := make([]float64, 8)
	busy[0] = 50
	g0, ok := m.TryAcquire(Demand{DIMM: 50, PerChip: busy})
	if !ok {
		t.Fatal("setup grant denied")
	}
	// The second write needs 30 tokens on chip 0; its LCP has only 16.5
	// left, so the GCP must power the whole segment.
	per := make([]float64, 8)
	per[0] = 30
	g, ok := m.TryAcquire(Demand{DIMM: 30, PerChip: per})
	if !ok {
		t.Fatal("GCP failed to power a hot chip within its output limit")
	}
	if math.Abs(g.GCPTokens()-30) > 1e-9 {
		t.Errorf("GCP supplied %.2f tokens, want whole segment 30", g.GCPTokens())
	}
	// Chip 0's remaining LCP headroom must be untouched: borrowing
	// prefers the idle chips, and the segment rule forbids mixing LCP
	// and GCP on one segment.
	if got := m.ChipAvailable(0); math.Abs(got-(lcp-50)) > 1e-9 {
		t.Errorf("chip 0 availability = %.2f, want %.2f", got, lcp-50)
	}
	// Borrowed tokens: gcpOut * E_LCP / E_GCP spread over idle chips.
	borrowWant := 30 * cfg.LCPEff / cfg.GCPEff
	var borrowed float64
	for c := 1; c < 8; c++ {
		borrowed += lcp - m.ChipAvailable(c)
	}
	if math.Abs(borrowed-borrowWant) > 1e-6 {
		t.Errorf("borrowed %.3f LCP tokens, want %.3f (Eq. 5)", borrowed, borrowWant)
	}
	m.Release(g0)
	m.Release(g)
	m.CheckInvariants(true)
}

func TestGCPOutputLimit(t *testing.T) {
	m, cfg := managerFor(sim.SchemeGCP, nil)
	per := make([]float64, 8)
	per[0] = cfg.GCPTokens() + 1 // beyond the pump's max output
	if _, ok := m.TryAcquire(Demand{DIMM: per[0], PerChip: per}); ok {
		t.Error("GCP exceeded its maximum output rating")
	}
}

func TestGCPCannotBorrowFromBusyChips(t *testing.T) {
	m, cfg := managerFor(sim.SchemeGCP, nil)
	lcp := cfg.LCPTokens()
	// Saturate every chip with direct LCP writes.
	full := make([]float64, 8)
	for i := range full {
		full[i] = lcp
	}
	g, ok := m.TryAcquire(Demand{DIMM: 8 * lcp, PerChip: full})
	if !ok {
		t.Fatal("saturating grant denied")
	}
	// Now a hot segment has nothing to borrow.
	per := make([]float64, 8)
	per[2] = 10
	if _, ok := m.TryAcquire(Demand{DIMM: 10, PerChip: per}); ok {
		t.Error("GCP granted with zero borrowable headroom (violates Eq. 6)")
	}
	m.Release(g)
	m.CheckInvariants(true)
}

func TestGCPEfficiencyScalesBorrowing(t *testing.T) {
	for _, eff := range []float64{0.95, 0.7, 0.5, 0.3} {
		m, cfg := managerFor(sim.SchemeGCP, func(c *sim.Config) { c.GCPEff = eff })
		// Exhaust chip 0 so the next demand must go through the GCP.
		busy := make([]float64, 8)
		busy[0] = cfg.LCPTokens()
		g0, ok := m.TryAcquire(Demand{DIMM: busy[0], PerChip: busy})
		if !ok {
			t.Fatalf("eff %.2f: setup grant denied", eff)
		}
		per := make([]float64, 8)
		per[0] = 20
		g, ok := m.TryAcquire(Demand{DIMM: 20, PerChip: per})
		if !ok {
			t.Fatalf("eff %.2f: grant denied", eff)
		}
		var borrowed float64
		for c := 1; c < 8; c++ {
			borrowed += cfg.LCPTokens() - m.ChipAvailable(c)
		}
		want := 20 * cfg.LCPEff / eff
		if math.Abs(borrowed-want) > 1e-6 {
			t.Errorf("eff %.2f: borrowed %.3f, want %.3f", eff, borrowed, want)
		}
		m.Release(g0)
		m.Release(g)
	}
}

func TestResizeShrinksAllocation(t *testing.T) {
	m, cfg := managerFor(sim.SchemeDIMMChip, nil)
	d1 := uniformDemand(400, cfg.Chips)
	g, ok := m.TryAcquire(d1)
	if !ok {
		t.Fatal("initial acquire denied")
	}
	before := m.DIMMAvailable()
	g2, ok := m.Resize(g, uniformDemand(200, cfg.Chips))
	if !ok {
		t.Fatal("shrinking resize denied")
	}
	if m.DIMMAvailable() != before+200 {
		t.Errorf("resize freed %.1f tokens, want 200", m.DIMMAvailable()-before)
	}
	m.Release(g2)
	m.CheckInvariants(true)
}

func TestResizeFailureLeavesNothingHeld(t *testing.T) {
	m, cfg := managerFor(sim.SchemeDIMMChip, nil)
	g, _ := m.TryAcquire(uniformDemand(100, cfg.Chips))
	// Demand more than the whole DIMM: must fail, old grant released.
	if _, ok := m.Resize(g, uniformDemand(6000, cfg.Chips)); ok {
		t.Fatal("impossible resize granted")
	}
	m.CheckInvariants(true)
}

func TestTelemetry(t *testing.T) {
	m, cfg := managerFor(sim.SchemeGCP, nil)
	// Exhaust chip 0 so the 30-token segment is GCP-powered.
	busy := make([]float64, 8)
	busy[0] = cfg.LCPTokens()
	gBusy, ok := m.TryAcquire(Demand{DIMM: busy[0], PerChip: busy})
	if !ok {
		t.Fatal("setup grant denied")
	}
	defer m.Release(gBusy)
	per := make([]float64, 8)
	per[0] = 30
	g, _ := m.TryAcquire(Demand{DIMM: 30, PerChip: per})
	if m.MaxGCPOut() != 30 {
		t.Errorf("MaxGCPOut = %g, want 30", m.MaxGCPOut())
	}
	m.RecordWriteGCPUsage(30)
	m.RecordWriteGCPUsage(0)
	if m.AvgGCPPerWrite() != 15 {
		t.Errorf("AvgGCPPerWrite = %g, want 15", m.AvgGCPPerWrite())
	}
	wasteWant := 30*cfg.LCPEff/cfg.GCPEff - 30
	if math.Abs(m.WastedInputPower()-wasteWant) > 1e-9 {
		t.Errorf("WastedInputPower = %g, want %g", m.WastedInputPower(), wasteWant)
	}
	if m.Grants() != 2 { // setup grant + GCP grant
		t.Errorf("Grants = %d, want 2", m.Grants())
	}
	m.Release(g)
	if _, ok := m.TryAcquire(Demand{DIMM: 9999}); ok {
		t.Fatal("should deny")
	}
	d, _, _ := m.Denials()
	if d != 1 {
		t.Errorf("DIMM denials = %d, want 1", d)
	}
}

func TestDemandTotal(t *testing.T) {
	d := Demand{PerChip: []float64{1, 2, 3}}
	if d.Total() != 6 {
		t.Errorf("Total = %g, want 6", d.Total())
	}
}

func TestReleaseNilGrant(t *testing.T) {
	m, _ := managerFor(sim.SchemeDIMMChip, nil)
	m.Release(nil) // must not panic
}

func TestDoubleReleaseIsSafe(t *testing.T) {
	m, cfg := managerFor(sim.SchemeDIMMChip, nil)
	g, _ := m.TryAcquire(uniformDemand(80, cfg.Chips))
	m.Release(g)
	m.Release(g) // grant zeroed on first release; second is a no-op
	m.CheckInvariants(true)
}

func TestLocalScaleRaisesChipBudget(t *testing.T) {
	m, cfg := managerFor(sim.SchemeDIMMChip, func(c *sim.Config) { c.LocalScale = 2 })
	per := make([]float64, 8)
	per[0] = cfg.DIMMTokens * cfg.LCPEff / 8 * 1.5 // above 1x LCP, below 2x
	if _, ok := m.TryAcquire(Demand{DIMM: per[0], PerChip: per}); !ok {
		t.Error("2xlocal denied a demand within the doubled chip budget")
	}
}
