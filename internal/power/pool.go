// Package power implements the token-based write power accounting of the
// paper: a DIMM-level budget (Hay et al.'s 560 cell-RESET tokens), per-chip
// local charge pump (LCP) budgets (Eq. 4), and the global charge pump (GCP)
// that borrows unused chip power and re-supplies it to hot chips at reduced
// efficiency (Eq. 5/6). One power token is the power needed to RESET one
// MLC cell; a SET consumes SetPowerRatio tokens.
package power

import "fmt"

// epsilon absorbs float64 rounding in token arithmetic; token quantities
// are sums of small rationals so drift stays far below this.
const epsilon = 1e-9

// Pool is a bounded reservoir of power tokens.
type Pool struct {
	cap   float64
	avail float64
}

// NewPool returns a pool with the given capacity, initially full.
func NewPool(cap float64) *Pool {
	return &Pool{cap: cap, avail: cap}
}

// Cap returns the pool capacity.
func (p *Pool) Cap() float64 { return p.cap }

// Reset re-sizes the pool in place to a new capacity, full. It panics if any
// tokens are in use: resizing is only legal at a quiesce barrier, when every
// grant has been released. In-place mutation matters — observability gauges
// bind method values to the pool instance, so the instance must survive a
// reconfiguration.
func (p *Pool) Reset(cap float64) {
	if p.InUse() > epsilon {
		panic(fmt.Sprintf("power: resetting pool with %.6f tokens in use", p.InUse()))
	}
	p.cap = cap
	p.avail = cap
}

// Available returns the tokens currently free.
func (p *Pool) Available() float64 { return p.avail }

// InUse returns the tokens currently allocated.
func (p *Pool) InUse() float64 { return p.cap - p.avail }

// CanAcquire reports whether n tokens are available.
func (p *Pool) CanAcquire(n float64) bool {
	return p.avail+epsilon >= n
}

// Acquire takes n tokens; it panics if they are not available (callers must
// check first — issuing an unreliable write is a simulator bug, exactly as
// it would be a reliability bug in hardware).
func (p *Pool) Acquire(n float64) {
	if !p.CanAcquire(n) {
		panic(fmt.Sprintf("power: acquiring %.3f tokens with only %.3f available", n, p.avail))
	}
	p.avail -= n
	if p.avail < 0 {
		p.avail = 0
	}
}

// Release returns n tokens; it panics on over-release.
func (p *Pool) Release(n float64) {
	p.avail += n
	if p.avail > p.cap+epsilon {
		panic(fmt.Sprintf("power: released %.3f tokens past capacity %.3f", n, p.cap))
	}
	if p.avail > p.cap {
		p.avail = p.cap
	}
}
