package power

import (
	"testing"
	"testing/quick"
)

func TestPoolLifecycle(t *testing.T) {
	p := NewPool(10)
	if p.Cap() != 10 || p.Available() != 10 || p.InUse() != 0 {
		t.Fatal("fresh pool state wrong")
	}
	if !p.CanAcquire(10) {
		t.Error("full pool cannot supply its capacity")
	}
	p.Acquire(6)
	if p.Available() != 4 || p.InUse() != 6 {
		t.Errorf("after Acquire(6): avail=%g inuse=%g", p.Available(), p.InUse())
	}
	if p.CanAcquire(5) {
		t.Error("CanAcquire(5) with 4 available")
	}
	p.Release(6)
	if p.Available() != 10 {
		t.Errorf("after release: avail=%g", p.Available())
	}
}

func TestPoolOverAcquirePanics(t *testing.T) {
	p := NewPool(5)
	defer func() {
		if recover() == nil {
			t.Error("over-acquire did not panic")
		}
	}()
	p.Acquire(6)
}

func TestPoolOverReleasePanics(t *testing.T) {
	p := NewPool(5)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	p.Release(1)
}

func TestPoolToleratesFloatDrift(t *testing.T) {
	p := NewPool(1)
	// 10 acquires of 0.1 must exactly exhaust the pool despite rounding.
	for i := 0; i < 10; i++ {
		if !p.CanAcquire(0.1) {
			t.Fatalf("acquire %d of 0.1 denied with %.18f available", i, p.Available())
		}
		p.Acquire(0.1)
	}
	for i := 0; i < 10; i++ {
		p.Release(0.1)
	}
	if p.Available() > 1+1e-9 || p.Available() < 1-1e-9 {
		t.Errorf("drifted pool: %.18f", p.Available())
	}
}

func TestPoolAcquireReleaseProperty(t *testing.T) {
	err := quick.Check(func(takes []uint8) bool {
		p := NewPool(1000)
		var held []float64
		for _, tk := range takes {
			n := float64(tk)
			if p.CanAcquire(n) {
				p.Acquire(n)
				held = append(held, n)
			}
		}
		for _, n := range held {
			p.Release(n)
		}
		return p.Available() >= 1000-1e-6 && p.Available() <= 1000+1e-6
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
