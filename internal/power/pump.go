package power

// Charge-pump area modeling (paper Eq. 1 and Table 3). The area of a
// CMOS-compatible charge pump is proportional to the maximum load current
// it must supply:
//
//	A_tot = k * N^2 / ((N+1)*Vdd - Vout) * I_L / f
//
// For fixed process (k), stage count (N), voltages and frequency, area is
// linear in I_L, and I_L is linear in the pump's token rating referred to
// its input (output tokens / efficiency). Table 3 therefore expresses each
// design's overhead as input-referred tokens relative to the baseline
// DIMM's 8 pumps of 70 tokens each.

// PumpParams are the electrical parameters of Eq. 1. Only ratios matter for
// the overhead comparison; defaults follow the paper's cited 1.6 V RESET on
// a 1.2 V supply with a 4-stage Dickson pump.
type PumpParams struct {
	K      float64 // process constant
	Stages int     // N
	Vdd    float64 // supply voltage (V)
	Vout   float64 // target programming voltage (V)
	Freq   float64 // pump clock (Hz)
}

// DefaultPumpParams returns representative values; the Table 3 comparison
// is invariant to them because it reports area ratios.
func DefaultPumpParams() PumpParams {
	return PumpParams{K: 1, Stages: 4, Vdd: 1.2, Vout: 1.6, Freq: 100e6}
}

// Area evaluates Eq. 1 for a load current proportional to inputTokens.
// The returned value is in arbitrary units; compare areas by ratio.
func (p PumpParams) Area(inputTokens float64) float64 {
	n := float64(p.Stages)
	denom := (n+1)*p.Vdd - p.Vout
	if denom <= 0 {
		denom = 1e-9
	}
	return p.K * n * n / denom * inputTokens / p.Freq
}

// BaselineChipTokens is the per-chip pump rating of the paper's baseline
// DIMM (Table 3: 70 tokens × 8 chips = 560).
const BaselineChipTokens = 70.0

// PumpOverhead returns a pump design's area overhead relative to the
// baseline DIMM's total pump area, as Table 3 computes it: the design's
// input-referred tokens (output/efficiency, rounded up as the paper does)
// divided by the 560-token baseline.
func PumpOverhead(outputTokens, efficiency float64, chips int) float64 {
	if efficiency <= 0 {
		return 0
	}
	baseline := BaselineChipTokens * float64(chips)
	return (outputTokens / efficiency) / baseline
}
