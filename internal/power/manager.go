package power

import (
	"fmt"
	"sort"

	"fpb/internal/obs"
	"fpb/internal/sim"
	"fpb/internal/stats"
)

// Demand is the power a write phase needs, in RESET-equivalent tokens.
type Demand struct {
	// DIMM is the total token demand charged against the DIMM budget.
	DIMM float64
	// PerChip is the per-chip token demand; nil when chip budgets are not
	// enforced (Ideal and DIMM-only schemes).
	PerChip []float64
}

// Total sums the per-chip demand.
func (d *Demand) Total() float64 {
	t := 0.0
	for _, c := range d.PerChip {
		t += c
	}
	return t
}

// Grant records a satisfied Demand so it can be released or resized later.
// Grants are pooled inside the Manager: Release recycles them, so a grant
// must not be used after it is released.
type Grant struct {
	dimm       float64
	lcp        []float64 // tokens taken from each chip's LCP
	gcpOut     float64   // GCP output tokens supplied
	borrowed   []float64 // LCP tokens borrowed per chip to fund the GCP
	maxSegment float64   // largest single GCP-powered chip segment
	pooled     bool      // in the manager's free list; guards double release
}

// GCPTokens reports the GCP output tokens this grant is consuming.
func (g *Grant) GCPTokens() float64 { return g.gcpOut }

// Manager owns every pool and implements the acquisition policy, including
// the GCP segment rule of the paper: a chip segment is powered entirely by
// its LCP or entirely by the GCP, never both.
type Manager struct {
	cfg *sim.Config
	hub *obs.Hub

	dimm     *Pool
	chips    []*Pool
	gcp      *Pool // capacity = max GCP output tokens
	borrowed []float64

	// Telemetry for Figures 13/14 and the energy-waste analysis. The
	// counters live in the hub's metrics registry (registered by
	// NewManager); the float extrema/summaries stay local and are
	// exported as gauges.
	gcpMaxOut     float64
	gcpMaxGrant   float64       // largest single-grant GCP output
	gcpMaxSegment float64       // largest single chip segment the GCP powered
	gcpPerWrite   stats.Summary // GCP output tokens requested per line write
	gcpWasteIn    float64       // input power burned by GCP inefficiency (token·phases)
	deniedDIMM    *obs.Counter
	deniedChip    *obs.Counter
	deniedGCP     *obs.Counter
	grantsIssued  *obs.Counter
	scratchOrder  []int
	scratchShort  []int
	scratchNeeded []float64
	grantFree     []*Grant
	vecFree       [][]float64 // pooled per-chip vectors, each len(chips), zeroed
}

// NewManager builds pools from the configuration and registers the
// manager's metrics into hub (nil hub: metrics stay detached, no tracing).
func NewManager(cfg *sim.Config, hub *obs.Hub) *Manager {
	m := &Manager{cfg: cfg, hub: hub}
	m.dimm = NewPool(cfg.DIMMTokens)
	m.chips = make([]*Pool, cfg.Chips)
	for i := range m.chips {
		m.chips[i] = NewPool(cfg.LCPTokens())
	}
	gcpCap := 0.0
	if cfg.UsesGCP() {
		gcpCap = cfg.GCPTokens()
	}
	m.gcp = NewPool(gcpCap)
	m.borrowed = make([]float64, cfg.Chips)

	m.deniedDIMM = hub.Counter("power.denied.dimm")
	m.deniedChip = hub.Counter("power.denied.chip")
	m.deniedGCP = hub.Counter("power.denied.gcp")
	m.grantsIssued = hub.Counter("power.grants")
	hub.Gauge("power.dimm.tokens_in_use", m.dimm.InUse)
	hub.Gauge("power.dimm.tokens_free", m.dimm.Available)
	hub.Gauge("power.gcp.tokens_in_use", m.gcp.InUse)
	hub.Gauge("power.gcp.tokens_free", m.gcp.Available)
	hub.Gauge("power.gcp.max_out", func() float64 { return m.gcpMaxOut })
	hub.Gauge("power.gcp.waste_in", func() float64 { return m.gcpWasteIn })
	hub.Gauge("power.gcp.avg_per_write", m.gcpPerWrite.Mean)
	for i := range m.chips {
		p := m.chips[i]
		hub.Gauge(fmt.Sprintf("power.chip.%d.tokens_in_use", i), p.InUse)
	}
	return m
}

// DIMMAvailable returns the free DIMM-level tokens.
func (m *Manager) DIMMAvailable() float64 { return m.dimm.Available() }

// ChipAvailable returns the free tokens of chip c's LCP.
func (m *Manager) ChipAvailable(c int) float64 { return m.chips[c].Available() }

// GCPInUse returns the GCP output tokens currently supplying segments.
func (m *Manager) GCPInUse() float64 { return m.gcp.InUse() }

// Utilization reports how power-constrained the system is right now: the
// highest in-use fraction across the DIMM pool and every chip LCP, in
// [0, 1]. A value near 1 means some budget is nearly exhausted and queued
// writes are likely being power-denied (the parallel engine uses this to
// stretch speculation horizons when admission — not bank occupancy — is the
// bottleneck). Zero-capacity pools (e.g. the GCP under non-GCP schemes)
// don't count.
func (m *Manager) Utilization() float64 {
	frac := func(p *Pool) float64 {
		if p.Cap() <= 0 {
			return 0
		}
		return p.InUse() / p.Cap()
	}
	u := frac(m.dimm)
	for _, p := range m.chips {
		if f := frac(p); f > u {
			u = f
		}
	}
	return u
}

// CanAcquire reports whether the demand could be granted right now without
// mutating any state.
func (m *Manager) CanAcquire(d Demand) bool {
	ok, g := m.plan(d)
	m.recycle(g) // planned but never committed: no tokens to return
	return ok
}

// newGrant pops the grant pool or allocates.
func (m *Manager) newGrant() *Grant {
	if n := len(m.grantFree); n > 0 {
		g := m.grantFree[n-1]
		m.grantFree = m.grantFree[:n-1]
		g.pooled = false
		return g
	}
	return &Grant{}
}

// newVec pops a zeroed per-chip vector or allocates one.
func (m *Manager) newVec() []float64 {
	if n := len(m.vecFree); n > 0 {
		v := m.vecFree[n-1]
		m.vecFree = m.vecFree[:n-1]
		return v
	}
	return make([]float64, len(m.chips))
}

// recycle returns a grant and its vectors to the pools without touching
// token accounting (callers return tokens first if the grant was
// committed). Recycling nil or an already pooled grant is a no-op.
func (m *Manager) recycle(g *Grant) {
	if g == nil || g.pooled {
		return
	}
	g.pooled = true
	if g.lcp != nil {
		clear(g.lcp)
		m.vecFree = append(m.vecFree, g.lcp)
		g.lcp = nil
	}
	if g.borrowed != nil {
		clear(g.borrowed)
		m.vecFree = append(m.vecFree, g.borrowed)
		g.borrowed = nil
	}
	g.dimm, g.gcpOut, g.maxSegment = 0, 0, 0
	m.grantFree = append(m.grantFree, g)
}

// TryAcquire attempts to grant the demand; it returns (grant, true) on
// success and (nil, false) if any budget would be violated.
func (m *Manager) TryAcquire(d Demand) (*Grant, bool) {
	ok, g := m.plan(d)
	if !ok {
		return nil, false
	}
	m.commit(d, g)
	return g, true
}

// plan computes how the demand would be satisfied. It mutates only scratch
// space; commit applies the plan.
func (m *Manager) plan(d Demand) (bool, *Grant) {
	if m.cfg.EnforcesDIMMBudget() && !m.dimm.CanAcquire(d.DIMM) {
		m.deniedDIMM.Inc()
		return false, nil
	}
	g := m.newGrant()
	g.dimm = d.DIMM
	if !m.cfg.EnforcesChipBudget() || d.PerChip == nil {
		return true, g
	}
	if len(d.PerChip) != len(m.chips) {
		panic(fmt.Sprintf("power: demand for %d chips, manager has %d", len(d.PerChip), len(m.chips)))
	}
	g.lcp = m.newVec()
	// Pass 1: segments the LCPs can power directly.
	m.scratchShort = m.scratchShort[:0]
	gcpOutNeeded := 0.0
	maxSegment := 0.0
	for c, need := range d.PerChip {
		if need <= 0 {
			continue
		}
		if m.chips[c].CanAcquire(need) {
			g.lcp[c] = need
		} else {
			m.scratchShort = append(m.scratchShort, c)
			gcpOutNeeded += need
			if need > maxSegment {
				maxSegment = need
			}
		}
	}
	g.maxSegment = maxSegment
	if len(m.scratchShort) == 0 {
		return true, g
	}
	// Pass 2: the GCP powers every short segment in full (segment rule).
	if !m.cfg.UsesGCP() || !m.gcp.CanAcquire(gcpOutNeeded) {
		if m.cfg.UsesGCP() && m.gcp.CanAcquire(0) {
			m.deniedGCP.Inc()
		} else {
			m.deniedChip.Inc()
		}
		m.recycle(g)
		return false, nil
	}
	// Fund the GCP: borrow gcpOutNeeded * E_LCP / E_GCP raw LCP tokens
	// from chips with spare capacity (Eq. 5), greedily from the chips
	// with the most headroom after their own LCP allocations.
	borrowNeed := gcpOutNeeded * m.cfg.LCPEff / m.cfg.GCPEff
	g.borrowed = m.newVec()
	if cap(m.scratchOrder) < len(m.chips) {
		m.scratchOrder = make([]int, len(m.chips))
		m.scratchNeeded = make([]float64, len(m.chips))
	}
	order := m.scratchOrder[:len(m.chips)]
	headroom := m.scratchNeeded[:len(m.chips)]
	for c := range order {
		order[c] = c
		headroom[c] = m.chips[c].Available() - g.lcp[c]
	}
	sort.Slice(order, func(i, j int) bool { return headroom[order[i]] > headroom[order[j]] })
	remaining := borrowNeed
	for _, c := range order {
		if remaining <= epsilon {
			break
		}
		take := headroom[c]
		if take <= 0 {
			continue
		}
		if take > remaining {
			take = remaining
		}
		g.borrowed[c] = take
		remaining -= take
	}
	if remaining > epsilon {
		m.deniedGCP.Inc()
		m.recycle(g)
		return false, nil
	}
	g.gcpOut = gcpOutNeeded
	return true, g
}

// commit applies a planned grant to the pools and records telemetry.
func (m *Manager) commit(d Demand, g *Grant) {
	if m.cfg.EnforcesDIMMBudget() {
		m.dimm.Acquire(g.dimm)
	} else {
		g.dimm = 0
	}
	for c, n := range g.lcp {
		if n > 0 {
			m.chips[c].Acquire(n)
		}
	}
	for c, n := range g.borrowed {
		if n > 0 {
			m.chips[c].Acquire(n)
		}
	}
	if g.gcpOut > 0 {
		m.gcp.Acquire(g.gcpOut)
		if used := m.gcp.InUse(); used > m.gcpMaxOut {
			m.gcpMaxOut = used
		}
		if g.gcpOut > m.gcpMaxGrant {
			m.gcpMaxGrant = g.gcpOut
		}
		if g.maxSegment > m.gcpMaxSegment {
			m.gcpMaxSegment = g.maxSegment
		}
		// Input power funneled through the GCP that does not reach
		// cells: borrowed/E_LCP raw input vs gcpOut useful output.
		m.gcpWasteIn += g.gcpOut*m.cfg.LCPEff/m.cfg.GCPEff - g.gcpOut
		if m.hub.Tracing() {
			m.hub.Emit(obs.Event{Kind: obs.Instant, Cat: "power", Name: "gcp.borrow", ID: -1, V: g.gcpOut})
			m.hub.Emit(obs.Event{Kind: obs.Meter, Cat: "power", Name: "gcp.tokens_in_use", ID: -1, V: m.gcp.InUse()})
		}
	}
	m.grantsIssued.Inc()
}

// Release returns every token held by the grant and recycles it; the grant
// must not be used afterwards. Releasing nil or an already released grant
// is a no-op.
func (m *Manager) Release(g *Grant) {
	if g == nil || g.pooled {
		return
	}
	if g.dimm > 0 {
		m.dimm.Release(g.dimm)
	}
	for c, n := range g.lcp {
		if n > 0 {
			m.chips[c].Release(n)
		}
	}
	for c, n := range g.borrowed {
		if n > 0 {
			m.chips[c].Release(n)
		}
	}
	if g.gcpOut > 0 {
		m.gcp.Release(g.gcpOut)
		if m.hub.Tracing() {
			m.hub.Emit(obs.Event{Kind: obs.Instant, Cat: "power", Name: "gcp.return", ID: -1, V: g.gcpOut})
			m.hub.Emit(obs.Event{Kind: obs.Meter, Cat: "power", Name: "gcp.tokens_in_use", ID: -1, V: m.gcp.InUse()})
		}
	}
	m.recycle(g)
}

// Resize releases old and immediately tries to acquire next; on failure the
// old grant is gone (the write holds nothing and must wait at the iteration
// boundary). This release-then-acquire order is safe for FPB-IPM because
// per-iteration demand never increases within a write; only Multi-RESET's
// RESET→SET transition can fail, which models the short boundary stall.
func (m *Manager) Resize(old *Grant, next Demand) (*Grant, bool) {
	m.Release(old)
	return m.TryAcquire(next)
}

// RecordWriteGCPUsage notes the total GCP output tokens a completed line
// write requested across its phases (Figure 14 telemetry). Writes that
// never touched the GCP record zero.
func (m *Manager) RecordWriteGCPUsage(tokens float64) {
	m.gcpPerWrite.Add(tokens)
}

// MaxGCPOut reports the maximum concurrent GCP output observed (Figure 13).
func (m *Manager) MaxGCPOut() float64 { return m.gcpMaxOut }

// MaxGCPGrant reports the largest GCP output supplied to a single write
// phase.
func (m *Manager) MaxGCPGrant() float64 { return m.gcpMaxGrant }

// MaxGCPSegment reports the largest single chip segment the GCP ever
// powered — the pump-sizing criterion of Figure 13/Table 3: the hot-chip
// shortfall the mapping leaves behind, which a smaller pump could not have
// covered.
func (m *Manager) MaxGCPSegment() float64 { return m.gcpMaxSegment }

// AvgGCPPerWrite reports the mean GCP output tokens requested per line
// write (Figure 14).
func (m *Manager) AvgGCPPerWrite() float64 { return m.gcpPerWrite.Mean() }

// WastedInputPower reports accumulated GCP conversion losses, in
// token-phases (proportional to wasted energy).
func (m *Manager) WastedInputPower() float64 { return m.gcpWasteIn }

// Denials reports how many acquisition attempts failed at the DIMM, chip,
// and GCP levels respectively.
func (m *Manager) Denials() (dimm, chip, gcp uint64) {
	return m.deniedDIMM.Value(), m.deniedChip.Value(), m.deniedGCP.Value()
}

// Grants reports how many acquisitions succeeded.
func (m *Manager) Grants() uint64 { return m.grantsIssued.Value() }

// CheckInvariants panics if pool accounting has drifted; tests call this
// after workloads complete, when all tokens must be free.
func (m *Manager) CheckInvariants(allFree bool) {
	if !allFree {
		return
	}
	if m.dimm.InUse() > epsilon {
		panic(fmt.Sprintf("power: %.6f DIMM tokens leaked", m.dimm.InUse()))
	}
	for c, p := range m.chips {
		if p.InUse() > epsilon {
			panic(fmt.Sprintf("power: %.6f tokens leaked on chip %d", p.InUse(), c))
		}
	}
	if m.gcp.InUse() > epsilon {
		panic(fmt.Sprintf("power: %.6f GCP tokens leaked", m.gcp.InUse()))
	}
}
