package power

import (
	"math"
	"testing"
)

func TestPumpAreaLinearInCurrent(t *testing.T) {
	p := DefaultPumpParams()
	a1 := p.Area(70)
	a2 := p.Area(140)
	if math.Abs(a2-2*a1) > 1e-12*a2 {
		t.Errorf("area not linear in load: %g vs 2*%g", a2, a1)
	}
}

func TestPumpAreaDegenerateVoltage(t *testing.T) {
	p := DefaultPumpParams()
	p.Stages = 0
	p.Vout = 10 // (N+1)*Vdd - Vout < 0
	if a := p.Area(70); math.IsInf(a, 0) || math.IsNaN(a) {
		t.Errorf("degenerate pump area = %g, want finite", a)
	}
}

// TestPumpOverheadMatchesTable3 checks the exact overhead numbers the paper
// reports in Table 3 from its measured max token requests.
func TestPumpOverheadMatchesTable3(t *testing.T) {
	cases := []struct {
		name     string
		tokens   float64
		eff      float64
		overhead float64 // paper value
	}{
		{"GCP-NE-0.95", 66, 0.95, 0.125},
		{"GCP-NE-0.70", 64, 0.70, 0.164},
		{"GCP-VIM-0.95", 16, 0.95, 0.031},
		{"GCP-VIM-0.70", 16, 0.70, 0.041},
		{"GCP-BIM-0.95", 28, 0.95, 0.054},
		{"GCP-BIM-0.70", 28, 0.70, 0.071},
	}
	for _, c := range cases {
		got := PumpOverhead(c.tokens, c.eff, 8)
		if math.Abs(got-c.overhead) > 0.005 {
			t.Errorf("%s: overhead = %.3f, want %.3f", c.name, got, c.overhead)
		}
	}
}

func TestPumpOverhead2xLocal(t *testing.T) {
	// Doubling every LCP adds 8 × 70 input-referred tokens → 100%.
	if got := PumpOverhead(8*BaselineChipTokens*1.0, 1.0, 8); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("2xlocal overhead = %.3f, want 1.0", got)
	}
}

func TestPumpOverheadZeroEfficiency(t *testing.T) {
	if PumpOverhead(10, 0, 8) != 0 {
		t.Error("zero efficiency must return 0, not Inf")
	}
}
