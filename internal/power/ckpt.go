package power

import (
	"fmt"

	"fpb/internal/ckpt"
)

// Quiesced reports whether every pool is fully free — the power subsystem's
// quiesce-barrier condition.
func (m *Manager) Quiesced() bool {
	if m.dimm.InUse() > epsilon || m.gcp.InUse() > epsilon {
		return false
	}
	for _, p := range m.chips {
		if p.InUse() > epsilon {
			return false
		}
	}
	return true
}

// Reconfigure re-sizes every pool from the (rebound) configuration the
// manager was built with. It is only legal at a quiesce barrier — Pool.Reset
// panics if tokens are in use. The pools are mutated in place because the
// hub gauges registered by NewManager hold method values bound to these
// exact instances.
func (m *Manager) Reconfigure() {
	m.dimm.Reset(m.cfg.DIMMTokens)
	for _, p := range m.chips {
		p.Reset(m.cfg.LCPTokens())
	}
	gcpCap := 0.0
	if m.cfg.UsesGCP() {
		gcpCap = m.cfg.GCPTokens()
	}
	m.gcp.Reset(gcpCap)
}

// ResetTelemetry zeroes the manager's measurement telemetry (GCP extrema,
// per-write summary, waste accumulator) at the warmup barrier. The denial
// and grant counters live in the hub registry and are reset with the rest of
// the registry by the barrier sequence.
func (m *Manager) ResetTelemetry() {
	m.gcpMaxOut = 0
	m.gcpMaxGrant = 0
	m.gcpMaxSegment = 0
	m.gcpPerWrite.Reset()
	m.gcpWasteIn = 0
}

// SaveState records the power subsystem in a checkpoint. A quiesced manager
// holds no model state — every token is free and telemetry is measurement
// state reset at the barrier — so the codec only asserts quiescence; the
// restore path rebuilds pools from the measurement configuration.
func (m *Manager) SaveState(w *ckpt.Writer) {
	w.Section("power")
	if !m.Quiesced() {
		panic("power: checkpointing a manager with tokens in use")
	}
}

// RestoreState verifies the freshly built manager is quiescent (it must be:
// it has never issued a grant).
func (m *Manager) RestoreState(r *ckpt.Reader) error {
	r.Section("power")
	if err := r.Err(); err != nil {
		return err
	}
	if !m.Quiesced() {
		return fmt.Errorf("power: restoring into a manager with tokens in use")
	}
	return nil
}
