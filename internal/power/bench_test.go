package power

import (
	"testing"

	"fpb/internal/sim"
)

func BenchmarkTryAcquireReleaseLCP(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeDIMMChip
	m := NewManager(&cfg, nil)
	d := uniformDemand(200, cfg.Chips)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, ok := m.TryAcquire(d)
		if !ok {
			b.Fatal("denied")
		}
		m.Release(g)
	}
}

func BenchmarkTryAcquireReleaseGCP(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeGCP
	m := NewManager(&cfg, nil)
	// Saturate chip 0 so every acquire engages the GCP borrow path.
	busy := make([]float64, cfg.Chips)
	busy[0] = cfg.LCPTokens()
	gBusy, _ := m.TryAcquire(Demand{DIMM: busy[0], PerChip: busy})
	defer m.Release(gBusy)
	per := make([]float64, cfg.Chips)
	per[0] = 20
	d := Demand{DIMM: 20, PerChip: per}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, ok := m.TryAcquire(d)
		if !ok {
			b.Fatal("denied")
		}
		m.Release(g)
	}
}
