package power

import (
	"testing"

	"fpb/internal/sim"
)

// TestManagerRandomWorkloadInvariants drives the manager with a random
// acquire/release/resize sequence and checks that (a) accounting never goes
// negative, (b) Eq. 6 holds at all times (total raw input power within the
// DIMM budget), and (c) everything returns to fully free at the end.
func TestManagerRandomWorkloadInvariants(t *testing.T) {
	for _, scheme := range []sim.Scheme{sim.SchemeDIMMChip, sim.SchemeGCP} {
		for seed := uint64(1); seed <= 5; seed++ {
			cfg := sim.DefaultConfig()
			cfg.Scheme = scheme
			m := NewManager(&cfg, nil)
			rng := sim.NewRNG(seed)
			var live []*Grant
			for step := 0; step < 2000; step++ {
				switch {
				case len(live) > 0 && rng.Bernoulli(0.4):
					// Release a random grant.
					i := rng.Intn(len(live))
					m.Release(live[i])
					live = append(live[:i], live[i+1:]...)
				case len(live) > 0 && rng.Bernoulli(0.2):
					// Resize a random grant to a smaller demand.
					i := rng.Intn(len(live))
					d := randomDemand(rng, cfg.Chips, 20)
					g, ok := m.Resize(live[i], d)
					if ok {
						live[i] = g
					} else {
						live = append(live[:i], live[i+1:]...)
					}
				default:
					d := randomDemand(rng, cfg.Chips, 60)
					if g, ok := m.TryAcquire(d); ok {
						live = append(live, g)
					}
				}
				checkEq6(t, m, &cfg)
			}
			for _, g := range live {
				m.Release(g)
			}
			m.CheckInvariants(true)
		}
	}
}

func randomDemand(rng *sim.RNG, chips int, maxPerChip int) Demand {
	per := make([]float64, chips)
	total := 0.0
	for c := range per {
		if rng.Bernoulli(0.5) {
			per[c] = float64(rng.Intn(maxPerChip))
			total += per[c]
		}
	}
	return Demand{DIMM: total, PerChip: per}
}

// checkEq6: the raw input power drawn from the DIMM — chips' LCP usage plus
// GCP borrowings, all referred to the DIMM input through E_LCP — can never
// exceed PT_DIMM (the conservation the paper states as Eq. 6).
func checkEq6(t *testing.T, m *Manager, cfg *sim.Config) {
	t.Helper()
	var chipUse float64
	for c := 0; c < cfg.Chips; c++ {
		use := cfg.LCPTokens() - m.ChipAvailable(c)
		if use < -1e-9 {
			t.Fatalf("chip %d over-freed: %g in use", c, use)
		}
		chipUse += use
	}
	rawInput := chipUse / cfg.LCPEff
	if rawInput > cfg.DIMMTokens+1e-6 {
		t.Fatalf("Eq.6 violated: raw input %g exceeds DIMM budget %g", rawInput, cfg.DIMMTokens)
	}
	if m.GCPInUse() < -1e-9 {
		t.Fatal("negative GCP usage")
	}
}
