// Package mapping implements the static cell-to-chip mappings of the paper
// (Section 4.3): the naïve mapping (NE), Vertical Interleaving Mapping
// (VIM, Eq. 2) and Braided Interleaving Mapping (BIM, Eq. 3), plus the
// intra-line wear-leveling rotation used by the PWL heuristic of Section 2.2.
//
// All mappings are pure functions from a logical cell index within a memory
// line to the physical chip that stores the cell. The mapping determines how
// a write's cell changes distribute across chips, and therefore how hard the
// per-chip power budget bites.
package mapping

import "fpb/internal/sim"

// Func maps a logical cell index (0..cellsPerLine-1) to a chip index
// (0..chips-1).
type Func func(cell int) int

// wordCells is the number of consecutive logical cells forming one 32-bit
// word in the paper's Fig. 9 illustration (16 2-bit cells per 32-bit word).
const wordCells = 16

// New returns the mapping function for the given scheme.
//
//   - NE (naïve): consecutive cells stored within one chip; cell i lives in
//     chip i/(cellsPerLine/chips) (Fig. 9b).
//   - VIM: chip = cell mod chips (Eq. 2) — consecutive cells round-robin
//     across chips, spreading a word's cells over all chips.
//   - BIM: chip = (cell - cell/16) mod chips (Eq. 3) — like VIM but with a
//     per-word skew so that same-significance cells of different words land
//     on different chips, balancing integer low-order-bit churn.
func New(m sim.Mapping, cellsPerLine, chips int) Func {
	switch m {
	case sim.MapVIM:
		return func(cell int) int { return cell % chips }
	case sim.MapBIM:
		return func(cell int) int { return (cell - cell/wordCells) % chips }
	default:
		perChip := cellsPerLine / chips
		return func(cell int) int { return cell / perChip }
	}
}

// Table precomputes a mapping over a line's cell indices so the write-path
// hot loop does one slice lookup per cell instead of walking a closure
// chain. Rotation offsets and the half-stripe narrowing — which vary per
// line — are composed as integer math over the same table via Select, so
// no per-write closures are allocated.
//
// A Table is not safe for concurrent use: Select mutates the variant state
// its cached Func reads.
type Table struct {
	cells  int
	tab    []int // tab[cell] = base mapping's chip
	hsTab  []int // tab[cell] % (chips/2), for half-stripe lines
	offset int   // current rotation offset, in [0, cells)
	base   int   // first chip of the selected half (half-stripe only)
	half   bool  // whether the half-stripe narrowing is selected
	fn     Func  // cached closure over lookup
}

// NewTable tabulates f over cellsPerLine cells for a DIMM of chips chips.
func NewTable(f Func, cellsPerLine, chips int) *Table {
	t := &Table{cells: cellsPerLine}
	t.tab = make([]int, cellsPerLine)
	t.hsTab = make([]int, cellsPerLine)
	half := chips / 2
	if half == 0 {
		half = 1
	}
	for c := range t.tab {
		t.tab[c] = f(c)
		t.hsTab[c] = f(c) % half
	}
	t.fn = t.lookup
	return t
}

// Select configures the table's variant — rotation offset and, when
// halfStripe is set, which chip half the line occupies — and returns the
// mapping Func. The Func is shared across calls: it is valid until the
// next Select, which suits the controller's build-then-discard usage.
func (t *Table) Select(offset, chips int, halfStripe, upper bool) Func {
	t.offset = offset % t.cells
	t.half = halfStripe
	t.base = 0
	if halfStripe && upper {
		t.base = chips / 2
	}
	return t.fn
}

func (t *Table) lookup(cell int) int {
	idx := cell + t.offset
	if idx >= t.cells {
		idx -= t.cells
	}
	if t.half {
		return t.base + t.hsTab[idx]
	}
	return t.tab[idx]
}

// Rotator implements the overhead-free near-perfect intra-line wear leveling
// used by the PWL heuristic: each line's logical cells are rotated by a
// per-line offset, and the offset is re-randomized every ShiftEvery writes
// to that line (the paper evaluates shifts every 8–100 writes). The rotation
// feeds the cell mapping: PWL's effect is to spread hot cell positions over
// all chips over time.
type Rotator struct {
	ShiftEvery int
	cells      int
	rng        *sim.RNG
	offsets    map[uint64]int
	writes     map[uint64]int
}

// NewRotator creates a rotator for lines of cellsPerLine cells, drawing
// offsets from rng. shiftEvery <= 0 disables rotation (offset stays 0).
func NewRotator(cellsPerLine, shiftEvery int, rng *sim.RNG) *Rotator {
	return &Rotator{
		ShiftEvery: shiftEvery,
		cells:      cellsPerLine,
		rng:        rng,
		offsets:    make(map[uint64]int),
		writes:     make(map[uint64]int),
	}
}

// Offset returns the current rotation offset for a line.
func (r *Rotator) Offset(lineAddr uint64) int {
	if r == nil || r.ShiftEvery <= 0 {
		return 0
	}
	return r.offsets[lineAddr]
}

// RecordWrite notes a write to the line and re-randomizes its offset every
// ShiftEvery writes.
func (r *Rotator) RecordWrite(lineAddr uint64) {
	if r == nil || r.ShiftEvery <= 0 {
		return
	}
	r.writes[lineAddr]++
	if r.writes[lineAddr]%r.ShiftEvery == 0 {
		r.offsets[lineAddr] = r.rng.Intn(r.cells)
	}
}

// Rotated composes a mapping function with a rotation offset: logical cell i
// is stored at physical position (i+offset) mod cells before mapping.
func Rotated(f Func, offset, cells int) Func {
	if offset == 0 {
		return f
	}
	return func(cell int) int { return f((cell + offset) % cells) }
}

// HalfStripe narrows a mapping to half the chips (the paper's Section 2.1
// design alternative): the line's cells land on chips [0, chips/2) or
// [chips/2, chips) depending on upper, with the inner mapping's structure
// preserved modulo the half. Alternating halves by line index balances
// chip wear and load across lines.
func HalfStripe(inner Func, chips int, upper bool) Func {
	half := chips / 2
	base := 0
	if upper {
		base = half
	}
	return func(cell int) int { return base + inner(cell)%half }
}

// PerChipCounts tallies how many of the given cell indices land on each
// chip under mapping f.
func PerChipCounts(cells []int, f Func, chips int) []int {
	counts := make([]int, chips)
	for _, c := range cells {
		counts[f(c)]++
	}
	return counts
}

// Imbalance returns max/mean of per-chip counts — 1.0 means perfectly
// balanced. Used by tests and the mapping-study example to quantify how
// well VIM/BIM spread changes.
func Imbalance(counts []int) float64 {
	if len(counts) == 0 {
		return 0
	}
	sum, max := 0, 0
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(counts))
	return float64(max) / mean
}
