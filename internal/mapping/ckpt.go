package mapping

import (
	"sort"

	"fpb/internal/ckpt"
)

func sortedKeys(m map[uint64]int) []uint64 {
	ks := make([]uint64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// SaveState serializes the rotator's dynamic state: the offset and write
// maps (in ascending line order, so the encoding is map-iteration-free) and
// the RNG stream. ShiftEvery and the cell count are configuration, rebuilt
// by NewRotator on restore.
func (r *Rotator) SaveState(w *ckpt.Writer) {
	w.Section("mapping.rot")
	s := r.rng.State()
	w.U64(s[0])
	w.U64(s[1])
	w.U64(s[2])
	w.U64(s[3])
	offs := sortedKeys(r.offsets)
	w.U64(uint64(len(offs)))
	for _, k := range offs {
		w.U64(k)
		w.I64(int64(r.offsets[k]))
	}
	wrs := sortedKeys(r.writes)
	w.U64(uint64(len(wrs)))
	for _, k := range wrs {
		w.U64(k)
		w.I64(int64(r.writes[k]))
	}
}

// RestoreState loads state written by SaveState, replacing the rotator's
// maps and RNG stream.
func (r *Rotator) RestoreState(rd *ckpt.Reader) error {
	rd.Section("mapping.rot")
	var s [4]uint64
	s[0], s[1], s[2], s[3] = rd.U64(), rd.U64(), rd.U64(), rd.U64()
	nOff := rd.U64()
	if err := rd.Err(); err != nil {
		return err
	}
	offsets := make(map[uint64]int, nOff)
	for i := uint64(0); i < nOff; i++ {
		k, v := rd.U64(), rd.I64()
		offsets[k] = int(v)
	}
	nWr := rd.U64()
	if err := rd.Err(); err != nil {
		return err
	}
	writes := make(map[uint64]int, nWr)
	for i := uint64(0); i < nWr; i++ {
		k, v := rd.U64(), rd.I64()
		writes[k] = int(v)
	}
	if err := rd.Err(); err != nil {
		return err
	}
	r.rng.SetState(s)
	r.offsets = offsets
	r.writes = writes
	return nil
}
