package mapping

import (
	"testing"
	"testing/quick"

	"fpb/internal/sim"
)

const (
	testCells = 1024 // 256B line, 2-bit MLC
	testChips = 8
)

func TestNaiveMappingBlocks(t *testing.T) {
	f := New(sim.MapNaive, testCells, testChips)
	perChip := testCells / testChips
	for cell := 0; cell < testCells; cell++ {
		if got, want := f(cell), cell/perChip; got != want {
			t.Fatalf("NE(%d) = %d, want %d", cell, got, want)
		}
	}
}

func TestVIMEquation2(t *testing.T) {
	f := New(sim.MapVIM, testCells, testChips)
	for cell := 0; cell < testCells; cell++ {
		if got, want := f(cell), cell%testChips; got != want {
			t.Fatalf("VIM(%d) = %d, want %d", cell, got, want)
		}
	}
}

func TestBIMEquation3(t *testing.T) {
	f := New(sim.MapBIM, testCells, testChips)
	for cell := 0; cell < testCells; cell++ {
		if got, want := f(cell), (cell-cell/16)%testChips; got != want {
			t.Fatalf("BIM(%d) = %d, want %d", cell, got, want)
		}
	}
}

func TestBIMSkewsWordsAcrossChips(t *testing.T) {
	// The first cell (lowest-order cell) of consecutive words must land on
	// different chips under BIM — that is its whole point for integer data.
	f := New(sim.MapBIM, testCells, testChips)
	first := f(0)
	same := true
	for w := 1; w < 8; w++ {
		if f(w*16) != first {
			same = false
		}
	}
	if same {
		t.Error("BIM maps the low-order cell of every word to the same chip")
	}
	// VIM, by contrast, puts cell 0 of every word on chip 0.
	v := New(sim.MapVIM, testCells, testChips)
	for w := 0; w < 8; w++ {
		if v(w*16) != 0 {
			t.Error("VIM should map word-start cells all to chip 0")
		}
	}
}

func TestMappingsAreBalancedOverFullLine(t *testing.T) {
	for _, m := range []sim.Mapping{sim.MapNaive, sim.MapVIM, sim.MapBIM} {
		f := New(m, testCells, testChips)
		all := make([]int, testCells)
		for i := range all {
			all[i] = i
		}
		counts := PerChipCounts(all, f, testChips)
		for c, n := range counts {
			if n != testCells/testChips {
				t.Errorf("%v: chip %d holds %d cells, want %d", m, c, n, testCells/testChips)
			}
		}
	}
}

func TestVIMBalancesLowOrderChurn(t *testing.T) {
	// Integer-style churn: the low 4 cells of every word change. Under NE
	// this clusters on few chips; under VIM/BIM it spreads.
	var churn []int
	for w := 0; w < testCells/16; w++ {
		for c := 0; c < 4; c++ {
			churn = append(churn, w*16+c)
		}
	}
	ne := Imbalance(PerChipCounts(churn, New(sim.MapNaive, testCells, testChips), testChips))
	vim := Imbalance(PerChipCounts(churn, New(sim.MapVIM, testCells, testChips), testChips))
	bim := Imbalance(PerChipCounts(churn, New(sim.MapBIM, testCells, testChips), testChips))
	if bim > vim+1e-9 && bim > 1.01 {
		t.Errorf("BIM imbalance %.3f should not exceed VIM %.3f on word churn", bim, vim)
	}
	if vim > 2.01 {
		// VIM spreads the 4 changed cells of each word over chips 0..3
		// only — imbalance 2 — while BIM rotates them across all 8.
		t.Errorf("VIM imbalance = %.3f, want <= 2", vim)
	}
	if bim > 1.01 {
		t.Errorf("BIM imbalance = %.3f, want ~1 (perfectly braided)", bim)
	}
	_ = ne // NE is balanced here too (every chip holds 2 words' cells).
}

func TestBIMBalancesSingleHotWord(t *testing.T) {
	// A single hot word: all 16 cells change. NE puts them all on one
	// chip; VIM/BIM spread them over all 8 chips.
	var churn []int
	for c := 0; c < 16; c++ {
		churn = append(churn, 128+c)
	}
	ne := Imbalance(PerChipCounts(churn, New(sim.MapNaive, testCells, testChips), testChips))
	vim := Imbalance(PerChipCounts(churn, New(sim.MapVIM, testCells, testChips), testChips))
	if ne < 7.9 {
		t.Errorf("NE imbalance for one hot word = %.2f, want 8 (all on one chip)", ne)
	}
	if vim > 1.01 {
		t.Errorf("VIM imbalance for one hot word = %.2f, want 1", vim)
	}
}

func TestMappingRangeProperty(t *testing.T) {
	for _, m := range []sim.Mapping{sim.MapNaive, sim.MapVIM, sim.MapBIM} {
		f := New(m, testCells, testChips)
		err := quick.Check(func(c uint16) bool {
			chip := f(int(c) % testCells)
			return chip >= 0 && chip < testChips
		}, nil)
		if err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func TestRotator(t *testing.T) {
	r := NewRotator(testCells, 4, sim.NewRNG(5))
	if r.Offset(0x100) != 0 {
		t.Error("initial offset must be 0")
	}
	for i := 0; i < 3; i++ {
		r.RecordWrite(0x100)
	}
	if r.Offset(0x100) != 0 {
		t.Error("offset changed before ShiftEvery writes")
	}
	r.RecordWrite(0x100)
	// After 4 writes the offset re-randomizes (may be 0 by chance, so try
	// several lines and require at least one nonzero).
	changed := r.Offset(0x100) != 0
	for l := uint64(0); l < 20 && !changed; l++ {
		for i := 0; i < 4; i++ {
			r.RecordWrite(l)
		}
		changed = r.Offset(l) != 0
	}
	if !changed {
		t.Error("rotator never produced a nonzero offset")
	}
}

func TestRotatorDisabled(t *testing.T) {
	r := NewRotator(testCells, 0, sim.NewRNG(5))
	for i := 0; i < 100; i++ {
		r.RecordWrite(7)
	}
	if r.Offset(7) != 0 {
		t.Error("disabled rotator rotated")
	}
	var nilR *Rotator
	nilR.RecordWrite(1) // must not panic
	if nilR.Offset(1) != 0 {
		t.Error("nil rotator offset nonzero")
	}
}

func TestRotatedMapping(t *testing.T) {
	f := New(sim.MapVIM, testCells, testChips)
	g := Rotated(f, 3, testCells)
	for cell := 0; cell < 32; cell++ {
		if got, want := g(cell), (cell+3)%testChips; got != want {
			t.Fatalf("rotated VIM(%d) = %d, want %d", cell, got, want)
		}
	}
	// Zero offset returns the original function's behaviour.
	h := Rotated(f, 0, testCells)
	for cell := 0; cell < 32; cell++ {
		if h(cell) != f(cell) {
			t.Fatal("zero-offset rotation altered mapping")
		}
	}
}

func TestHalfStripeMapping(t *testing.T) {
	inner := New(sim.MapVIM, testCells, testChips)
	lower := HalfStripe(inner, testChips, false)
	upper := HalfStripe(inner, testChips, true)
	for cell := 0; cell < testCells; cell++ {
		if c := lower(cell); c < 0 || c >= 4 {
			t.Fatalf("lower half mapped cell %d to chip %d", cell, c)
		}
		if c := upper(cell); c < 4 || c >= 8 {
			t.Fatalf("upper half mapped cell %d to chip %d", cell, c)
		}
		if upper(cell)-lower(cell) != 4 {
			t.Fatalf("halves not congruent at cell %d", cell)
		}
	}
	// The half keeps the inner interleave structure modulo 4.
	all := make([]int, testCells)
	for i := range all {
		all[i] = i
	}
	counts := PerChipCounts(all, lower, testChips)
	for c := 0; c < 4; c++ {
		if counts[c] != testCells/4 {
			t.Errorf("chip %d holds %d cells, want %d", c, counts[c], testCells/4)
		}
	}
	for c := 4; c < 8; c++ {
		if counts[c] != 0 {
			t.Errorf("upper chip %d holds %d cells under lower half", c, counts[c])
		}
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	if Imbalance(nil) != 0 {
		t.Error("Imbalance(nil) != 0")
	}
	if Imbalance([]int{0, 0}) != 0 {
		t.Error("Imbalance of zeros != 0")
	}
	if got := Imbalance([]int{4, 4, 4, 4}); got != 1 {
		t.Errorf("balanced imbalance = %g, want 1", got)
	}
}

// TestTableMatchesClosureComposition checks the precomputed table against
// the reference closure chain Rotated(HalfStripe(...)) for every mapping,
// offset, and half selection — the table is the hot-path replacement and
// must agree cell for cell.
func TestTableMatchesClosureComposition(t *testing.T) {
	const cells, chips = 64, 8
	for _, m := range []sim.Mapping{sim.MapNaive, sim.MapVIM, sim.MapBIM} {
		base := New(m, cells, chips)
		tab := NewTable(base, cells, chips)
		for offset := 0; offset < cells; offset += 7 {
			for _, hs := range []bool{false, true} {
				for _, upper := range []bool{false, true} {
					ref := Rotated(base, offset, cells)
					if hs {
						ref = HalfStripe(ref, chips, upper)
					}
					got := tab.Select(offset, chips, hs, upper)
					for cell := 0; cell < cells; cell++ {
						if got(cell) != ref(cell) {
							t.Fatalf("mapping %v offset=%d hs=%v upper=%v cell %d: table=%d ref=%d",
								m, offset, hs, upper, cell, got(cell), ref(cell))
						}
					}
				}
			}
		}
	}
}

// TestTableSelectReconfigures checks that Select fully replaces the prior
// variant state (no leakage between per-line configurations).
func TestTableSelectReconfigures(t *testing.T) {
	const cells, chips = 16, 4
	base := New(sim.MapVIM, cells, chips)
	tab := NewTable(base, cells, chips)
	f := tab.Select(3, chips, true, true)
	_ = f(5)
	f = tab.Select(0, chips, false, false)
	for cell := 0; cell < cells; cell++ {
		if f(cell) != base(cell) {
			t.Fatalf("after reset Select, cell %d: got %d want %d", cell, f(cell), base(cell))
		}
	}
}
