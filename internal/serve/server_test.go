package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpb/internal/sim"
	"fpb/internal/system"
)

// fakeResult builds a deterministic result that depends on the job identity,
// so tests can check the right entry came back.
func fakeResult(cfg sim.Config, wl string) system.Result {
	return system.Result{
		Workload: wl,
		Scheme:   cfg.Scheme.String(),
		CPI:      float64(cfg.Seed%97) + 1,
		Instrs:   cfg.InstrPerCore,
		Metrics:  map[string]float64{"fake.seed": float64(cfg.Seed)},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

func postJob(t *testing.T, url string, spec JobSpec, query string) (int, JobStatus) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, st
}

func getMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// spec returns a small valid job spec; seed varies the job identity.
func spec(seed uint64) JobSpec {
	return JobSpec{Workload: "mcf_m", Scheme: "fpb", Seed: seed, InstrPerCore: 1000}
}

// --- Acceptance (a): k concurrent identical requests, one simulation ---

func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	const k = 8
	var sims atomic.Int64
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Workers:    4,
		QueueDepth: 16,
		Simulate: func(cfg sim.Config, wl string) (system.Result, error) {
			sims.Add(1)
			<-release
			return fakeResult(cfg, wl), nil
		},
	})

	type reply struct {
		code int
		st   JobStatus
	}
	replies := make(chan reply, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, st := postJob(t, ts.URL, spec(7), "")
			replies <- reply{code, st}
		}()
	}
	// Hold the simulation until every request has either started the one
	// job or coalesced onto it, so no request can arrive late and miss
	// the in-flight window.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := getMetrics(t, ts.URL)
		if m["serve.jobs.coalesced"] == k-1 && m["serve.jobs.accepted"] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never coalesced: %v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(replies)

	if n := sims.Load(); n != 1 {
		t.Fatalf("%d identical requests ran %d simulations, want 1", k, n)
	}
	var first *JobStatus
	cachedCount := 0
	for r := range replies {
		if r.code != http.StatusOK {
			t.Fatalf("status %d: %+v", r.code, r.st)
		}
		if r.st.State != StateDone || r.st.Result == nil {
			t.Fatalf("bad reply: %+v", r.st)
		}
		if r.st.Cached {
			cachedCount++
		}
		if first == nil {
			first = &r.st
			continue
		}
		if r.st.ID != first.ID || r.st.Key != first.Key {
			t.Errorf("replies name different jobs: %s vs %s", r.st.ID, first.ID)
		}
		if !reflect.DeepEqual(r.st.Result, first.Result) {
			t.Errorf("replies differ: %+v vs %+v", r.st.Result, first.Result)
		}
	}
	if cachedCount != k-1 {
		t.Errorf("%d replies marked cached/coalesced, want %d", cachedCount, k-1)
	}
}

// --- Acceptance (b): restart over the same store serves from disk ---

func TestRestartServesFromPersistentStore(t *testing.T) {
	dir := t.TempDir()
	var sims atomic.Int64
	s1, ts1 := newTestServer(t, Config{
		Workers:  2,
		StoreDir: dir,
		Simulate: func(cfg sim.Config, wl string) (system.Result, error) {
			sims.Add(1)
			return fakeResult(cfg, wl), nil
		},
	})
	code, st1 := postJob(t, ts1.URL, spec(41), "")
	if code != http.StatusOK || st1.State != StateDone {
		t.Fatalf("first run: %d %+v", code, st1)
	}
	if st1.Cached {
		t.Error("first ever run reported cached")
	}
	ts1.Close()
	s1.Drain()

	// "Restart": a fresh server over the same directory whose simulator
	// must never run.
	_, ts2 := newTestServer(t, Config{
		Workers:  2,
		StoreDir: dir,
		Simulate: func(cfg sim.Config, wl string) (system.Result, error) {
			t.Error("restarted daemon re-simulated a stored job")
			return fakeResult(cfg, wl), nil
		},
	})
	code, st2 := postJob(t, ts2.URL, spec(41), "")
	if code != http.StatusOK || st2.State != StateDone {
		t.Fatalf("warm run: %d %+v", code, st2)
	}
	if !st2.Cached {
		t.Error("warm run not marked cached")
	}
	if !reflect.DeepEqual(st1.Result, st2.Result) {
		t.Errorf("stored result differs:\n%+v\n%+v", st1.Result, st2.Result)
	}
	if sims.Load() != 1 {
		t.Errorf("simulations = %d, want 1", sims.Load())
	}
	m := getMetrics(t, ts2.URL)
	if m["serve.cache.hits"] != 1 {
		t.Errorf("cache hits = %v, want 1", m["serve.cache.hits"])
	}
	if m["serve.store.entries"] != 1 {
		t.Errorf("store entries = %v, want 1", m["serve.store.entries"])
	}
}

// --- Acceptance (c): queue saturation answers 429 and never deadlocks ---

func TestQueueSaturationRejectsWithoutDeadlock(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		RetryAfter: 3 * time.Second,
		Simulate: func(cfg sim.Config, wl string) (system.Result, error) {
			started <- struct{}{}
			<-release
			return fakeResult(cfg, wl), nil
		},
	})

	// Job 1 occupies the only worker; job 2 fills the queue.
	_, stA := postJob(t, ts.URL, spec(1), "?async=1")
	<-started
	_, stB := postJob(t, ts.URL, spec(2), "?async=1")

	// The pool is saturated: further distinct jobs must be pushed back.
	body, _ := json.Marshal(spec(3))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue answered %d (%s), want 429", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want %q", ra, "3")
	}
	m := getMetrics(t, ts.URL)
	if m["serve.jobs.rejected"] != 1 {
		t.Errorf("rejected = %v, want 1", m["serve.jobs.rejected"])
	}

	// Releasing the worker drains everything; the rejected job succeeds
	// on resubmission. Nothing deadlocks.
	close(release)
	for _, id := range []string{stA.ID, stB.ID} {
		waitJobDone(t, ts.URL, id)
	}
	code, stC := postJob(t, ts.URL, spec(3), "")
	if code != http.StatusOK || stC.State != StateDone {
		t.Fatalf("post-saturation job: %d %+v", code, stC)
	}
}

func waitJobDone(t *testing.T, url, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone {
			return st
		}
		if st.State == StateFailed {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- Acceptance (d): shutdown drains in-flight jobs, no lost responses ---

func TestDrainCompletesInFlightJobs(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:    2,
		QueueDepth: 8,
		Simulate: func(cfg sim.Config, wl string) (system.Result, error) {
			started <- struct{}{}
			<-release
			return fakeResult(cfg, wl), nil
		},
	})

	const jobs = 3 // 2 running + 1 queued at drain time
	replies := make(chan JobStatus, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			code, st := postJob(t, ts.URL, spec(seed), "")
			if code != http.StatusOK {
				t.Errorf("drained job got status %d: %+v", code, st)
				return
			}
			replies <- st
		}(uint64(100 + i))
	}
	<-started
	<-started // both workers busy; third job is queued

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()

	// A draining server refuses new work with 503.
	deadline := time.Now().Add(10 * time.Second)
	for {
		body, _ := json.Marshal(spec(999))
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server never refused new work")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(release)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned")
	}
	wg.Wait()
	close(replies)
	got := 0
	for st := range replies {
		if st.State != StateDone || st.Result == nil {
			t.Errorf("lost or failed response: %+v", st)
			continue
		}
		got++
	}
	if got != jobs {
		t.Errorf("drain delivered %d/%d responses", got, jobs)
	}
}

// --- Determinism: served results match in-process simulation exactly ---

func TestServedResultMatchesInProcessRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	_, ts := newTestServer(t, Config{Workers: 1}) // default Simulate = system.RunWorkload

	js := spec(0) // default seed
	cfg, wl, err := js.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := system.RunWorkload(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}

	code, st := postJob(t, ts.URL, js, "")
	if code != http.StatusOK || st.State != StateDone || st.Result == nil {
		t.Fatalf("served run: %d %+v", code, st)
	}
	if !reflect.DeepEqual(*st.Result, want) {
		t.Errorf("served result differs from in-process run:\nserved %+v\nlocal  %+v", *st.Result, want)
	}
	if st.Key != system.Key(cfg, wl) {
		t.Errorf("served key %s != canonical key", st.Key)
	}
}

// --- API edges ---

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:  1,
		Simulate: func(cfg sim.Config, wl string) (system.Result, error) { return fakeResult(cfg, wl), nil },
	})
	cases := []struct {
		name string
		body string
	}{
		{"empty workload", `{}`},
		{"bad scheme", `{"workload":"mcf_m","scheme":"warp-drive"}`},
		{"bad mapping", `{"workload":"mcf_m","mapping":"zigzag"}`},
		{"unknown field", `{"workload":"mcf_m","wat":1}`},
		{"syntax", `{"workload":`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

func TestFailedSimulationReports422(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Simulate: func(cfg sim.Config, wl string) (system.Result, error) {
			return system.Result{}, fmt.Errorf("no such workload %q", wl)
		},
	})
	code, st := postJob(t, ts.URL, spec(5), "")
	if code != http.StatusUnprocessableEntity || st.State != StateFailed {
		t.Fatalf("failed sim: %d %+v", code, st)
	}
	if st.Error == "" {
		t.Error("failure carried no error message")
	}
}

func TestAsyncLifecycle(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Simulate: func(cfg sim.Config, wl string) (system.Result, error) {
			<-release
			return fakeResult(cfg, wl), nil
		},
	})
	code, st := postJob(t, ts.URL, spec(9), "?async=1")
	if code != http.StatusAccepted {
		t.Fatalf("async submit: %d %+v", code, st)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("async state = %s", st.State)
	}
	close(release)
	final := waitJobDone(t, ts.URL, st.ID)
	if final.Result == nil || final.Result.Workload != "mcf_m" {
		t.Errorf("async result: %+v", final.Result)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: status %d, want 404", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:  1,
		Simulate: func(cfg sim.Config, wl string) (system.Result, error) { return fakeResult(cfg, wl), nil },
	})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("healthz body: %v", body)
	}
}
