package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fpb/internal/obs"
	"fpb/internal/sim"
	"fpb/internal/system"
)

// Aliases keep the injected Simulate closures on one line.
type (
	simCfg    = sim.Config
	sysResult = system.Result
)

// syncWriter serializes concurrent slog writes from workers and handlers.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestJobLifecycleRecord follows one job end to end: the response carries a
// lifecycle record with stage timings, a second identical request is a
// cache hit with the same result, every structured log line about the job
// carries its correlation ID, and the stage histograms saw the job.
func TestJobLifecycleRecord(t *testing.T) {
	dir := t.TempDir()
	logs := &syncWriter{}
	s, ts := newTestServer(t, Config{
		Workers:  2,
		StoreDir: dir,
		Logger:   slog.New(slog.NewJSONHandler(logs, &slog.HandlerOptions{Level: slog.LevelDebug})),
		Simulate: func(cfg simCfg, wl string) (sysResult, error) {
			time.Sleep(5 * time.Millisecond)
			return fakeResult(cfg, wl), nil
		},
	})

	code, st := postJob(t, ts.URL, spec(11), "")
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("fresh job: code=%d state=%s err=%s", code, st.State, st.Error)
	}
	if st.Lifecycle == nil {
		t.Fatal("fresh job has no lifecycle record")
	}
	if st.Lifecycle.Outcome != OutcomeFresh {
		t.Fatalf("outcome = %q, want %q", st.Lifecycle.Outcome, OutcomeFresh)
	}
	if st.Lifecycle.SimMs < 5 {
		t.Fatalf("sim_ms = %v, want >= 5 (simulate sleeps 5ms)", st.Lifecycle.SimMs)
	}
	if st.Lifecycle.QueueWaitMs < 0 || st.Lifecycle.StoreWriteMs <= 0 {
		t.Fatalf("stage timings implausible: %+v", st.Lifecycle)
	}

	// Second identical request: answered from the store, marked as such.
	code2, st2 := postJob(t, ts.URL, spec(11), "")
	if code2 != http.StatusOK || !st2.Cached {
		t.Fatalf("repeat job: code=%d cached=%v", code2, st2.Cached)
	}
	if st2.Lifecycle == nil || st2.Lifecycle.Outcome != OutcomeCacheHit {
		t.Fatalf("repeat job lifecycle = %+v, want outcome %q", st2.Lifecycle, OutcomeCacheHit)
	}
	if st2.ID == st.ID {
		t.Fatal("cache hit reused the original correlation ID")
	}

	// Every log line that mentions a job carries its correlation ID, and
	// the fresh job's ID appears on accept, start, and done lines.
	var sawAccept, sawStart, sawDone bool
	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		id, _ := rec["job"].(string)
		msg, _ := rec["msg"].(string)
		switch msg {
		case "job accepted", "job start", "job done", "job failed", "job cache hit", "job coalesced":
			if id == "" {
				t.Fatalf("lifecycle log line without job id: %q", line)
			}
		}
		if id == st.ID {
			switch msg {
			case "job accepted":
				sawAccept = true
			case "job start":
				sawStart = true
			case "job done":
				sawDone = true
			}
		}
	}
	if !sawAccept || !sawStart || !sawDone {
		t.Fatalf("missing lifecycle log lines for %s: accept=%v start=%v done=%v\n%s",
			st.ID, sawAccept, sawStart, sawDone, logs.String())
	}

	// The stage histograms saw exactly the one fresh simulation.
	for _, name := range []string{"serve.job.queue_wait_ms", "serve.job.sim_ms", "serve.job.store_write_ms"} {
		if n := s.reg.Histogram(name, nil).Count(); n != 1 {
			t.Errorf("%s count = %d, want 1", name, n)
		}
	}
}

// TestMetricsContentNegotiation: bare GET keeps the legacy JSON, explicit
// ?format= and Prometheus-style Accept headers switch to the text
// exposition.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:  1,
		Simulate: func(cfg simCfg, wl string) (sysResult, error) { return fakeResult(cfg, wl), nil },
	})
	if code, _ := postJob(t, ts.URL, spec(1), ""); code != http.StatusOK {
		t.Fatalf("job failed: %d", code)
	}

	get := func(query string, hdr map[string]string) (string, string) {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+"/metrics"+query, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics%s = %d", query, resp.StatusCode)
		}
		return resp.Header.Get("Content-Type"), string(body)
	}

	// Default: legacy JSON.
	ct, body := get("", nil)
	if ct != "application/json" || !json.Valid([]byte(body)) {
		t.Fatalf("default /metrics: ct=%q valid-json=%v", ct, json.Valid([]byte(body)))
	}

	// Explicit Prometheus, both spellings plus scraper Accept headers.
	for _, req := range []struct {
		query string
		hdr   map[string]string
	}{
		{"?format=prometheus", nil},
		{"?format=prom", nil},
		{"", map[string]string{"Accept": "text/plain;version=0.0.4;q=0.5,*/*;q=0.1"}},
		{"", map[string]string{"Accept": "application/openmetrics-text;version=1.0.0"}},
	} {
		ct, body := get(req.query, req.hdr)
		if ct != obs.PrometheusContentType {
			t.Fatalf("%s %v: ct=%q", req.query, req.hdr, ct)
		}
		samples, bad := obs.ParsePrometheus(body)
		if len(bad) != 0 {
			t.Fatalf("unparseable exposition lines: %v", bad)
		}
		if samples["serve_jobs_done"] != 1 {
			t.Fatalf("serve_jobs_done = %v, want 1", samples["serve_jobs_done"])
		}
		if !strings.Contains(body, "# TYPE serve_job_sim_ms histogram") {
			t.Fatal("exposition missing histogram TYPE line")
		}
	}

	// JSON remains reachable explicitly even with a Prometheus Accept.
	ct, _ = get("?format=json", map[string]string{"Accept": "text/plain"})
	if ct != "application/json" {
		t.Fatalf("?format=json did not win over Accept: ct=%q", ct)
	}
}

// TestLegacyMetricNamesPresent pins the pre-Prometheus /metrics JSON keys:
// dashboards scrape these exact names, so renames are regressions.
func TestLegacyMetricNamesPresent(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:  1,
		StoreDir: t.TempDir(),
		Simulate: func(cfg simCfg, wl string) (sysResult, error) { return fakeResult(cfg, wl), nil },
	})
	if code, _ := postJob(t, ts.URL, spec(2), ""); code != http.StatusOK {
		t.Fatal("job failed")
	}
	m := getMetrics(t, ts.URL)
	for _, name := range []string{
		"serve.jobs.accepted", "serve.jobs.coalesced", "serve.jobs.rejected",
		"serve.jobs.done", "serve.jobs.failed", "serve.jobs.records",
		"serve.cache.hits", "serve.cache.misses",
		"serve.queue.depth", "serve.queue.capacity",
		"serve.workers.busy", "serve.workers.total",
		"serve.latency_ms.p50", "serve.latency_ms.p95", "serve.latency_ms.p99",
		"serve.latency_ms.mean", "serve.store.entries",
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("legacy metric %q missing from /metrics JSON", name)
		}
	}
}

// TestPprofGate: the profiling endpoints exist only when opted in.
func TestPprofGate(t *testing.T) {
	_, off := newTestServer(t, Config{
		Workers:  1,
		Simulate: func(cfg simCfg, wl string) (sysResult, error) { return fakeResult(cfg, wl), nil },
	})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without opt-in: %d", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{
		Workers:     1,
		EnablePprof: true,
		Simulate:    func(cfg simCfg, wl string) (sysResult, error) { return fakeResult(cfg, wl), nil },
	})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index broken with opt-in: %d", resp.StatusCode)
	}
}
