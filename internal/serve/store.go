package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fpb/internal/system"
)

// Store is a content-addressed, disk-persistent result cache: one JSON file
// per system.Key under a flat directory. Writes are atomic (temp file +
// rename), so a daemon killed mid-Put never leaves a truncated entry, and a
// restarted daemon serves every previously completed job from disk.
type Store struct {
	dir string
}

// OpenStore creates (if needed) and opens the store directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its entry file, refusing anything that is not a bare
// hex content hash (defense against path traversal via a crafted key).
func (s *Store) path(key string) (string, error) {
	if len(key) != 64 || strings.IndexFunc(key, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) >= 0 {
		return "", fmt.Errorf("serve: store: malformed key %q", key)
	}
	return filepath.Join(s.dir, key+".json"), nil
}

// Get loads the result stored under key. ok=false means a clean miss; err
// is reserved for malformed keys and unreadable/corrupt entries.
func (s *Store) Get(key string) (res system.Result, ok bool, err error) {
	p, err := s.path(key)
	if err != nil {
		return system.Result{}, false, err
	}
	b, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return system.Result{}, false, nil
	}
	if err != nil {
		return system.Result{}, false, fmt.Errorf("serve: store: %w", err)
	}
	if err := json.Unmarshal(b, &res); err != nil {
		return system.Result{}, false, fmt.Errorf("serve: store: corrupt entry %s: %w", key, err)
	}
	return res, true, nil
}

// Put stores res under key atomically.
func (s *Store) Put(key string, res system.Result) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	b, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("serve: store: encoding %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), p)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store: writing %s: %w", key, werr)
	}
	return nil
}

// Len counts stored entries (used by the metrics gauge; stores are small).
func (s *Store) Len() int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}
