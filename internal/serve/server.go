package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"fpb/internal/obs"
	"fpb/internal/sim"
	"fpb/internal/stats"
	"fpb/internal/system"
)

// SimulateFunc runs one simulation; the default is system.RunWorkload.
// Tests inject counters, sleeps, and failures through it.
type SimulateFunc func(sim.Config, string) (system.Result, error)

// Config sizes a Server.
type Config struct {
	// Workers bounds concurrent simulations (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 64). A full
	// queue rejects new work with 429 + Retry-After instead of blocking.
	QueueDepth int
	// StoreDir roots the persistent result store; empty disables
	// persistence (results then live only as long as the job records).
	StoreDir string
	// RetryAfter is advertised on 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxJobRecords bounds completed job records kept for async polling
	// (default 1024); the oldest finished records are evicted first.
	MaxJobRecords int
	// Simulate overrides the simulation function (default
	// system.RunWorkload). Used by tests.
	Simulate SimulateFunc
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobRecords <= 0 {
		c.MaxJobRecords = 1024
	}
	if c.Simulate == nil {
		c.Simulate = system.RunWorkload
	}
	return c
}

// job is one accepted unit of work. Its fields past done are written by the
// completing worker before done is closed and are read-only afterwards.
type job struct {
	id  string
	key string
	cfg sim.Config
	wl  string

	done chan struct{} // closed exactly once, on completion

	// Guarded by Server.mu until done is closed.
	state JobState
	res   system.Result
	err   error
}

// status snapshots a job into its wire form. Callers must hold Server.mu
// unless the job's done channel is already closed.
func (j *job) status() JobStatus {
	st := JobStatus{ID: j.id, Key: j.key, State: j.state}
	switch j.state {
	case StateDone:
		res := j.res
		st.Result = &res
	case StateFailed:
		st.Error = j.err.Error()
	}
	return st
}

// Server implements the simulation service. Create with New, mount as an
// http.Handler, stop with Drain.
type Server struct {
	cfg   Config
	store *Store // nil when persistence is disabled
	reg   *obs.Registry
	mux   *http.ServeMux
	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	inflight map[string]*job // queued or running, by key — the dedupe table
	jobs     map[string]*job // every known job, by id (async polling)
	order    []string        // job ids in acceptance order, for eviction
	nextID   uint64
	busy     int // workers currently simulating

	// Metrics (mutated only under mu; read by /metrics under mu).
	cAccepted, cCoalesced, cRejected *obs.Counter
	cDone, cFailed                   *obs.Counter
	cHits, cMisses                   *obs.Counter
	latency                          *stats.Histogram // job latency, ms
}

// New builds a server, opens its store, and starts the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      obs.NewRegistry(),
		queue:    make(chan *job, cfg.QueueDepth),
		inflight: make(map[string]*job),
		jobs:     make(map[string]*job),
		latency:  stats.NewHistogram(60_000),
	}
	if cfg.StoreDir != "" {
		st, err := OpenStore(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		s.store = st
	}
	s.registerMetrics()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// registerMetrics populates the server's obs registry. Gauge closures read
// mu-guarded fields WITHOUT locking: every reader (the /metrics and /healthz
// handlers) snapshots the registry while already holding mu.
func (s *Server) registerMetrics() {
	s.cAccepted = s.reg.Counter("serve.jobs.accepted")
	s.cCoalesced = s.reg.Counter("serve.jobs.coalesced")
	s.cRejected = s.reg.Counter("serve.jobs.rejected")
	s.cDone = s.reg.Counter("serve.jobs.done")
	s.cFailed = s.reg.Counter("serve.jobs.failed")
	s.cHits = s.reg.Counter("serve.cache.hits")
	s.cMisses = s.reg.Counter("serve.cache.misses")
	s.reg.Gauge("serve.queue.depth", func() float64 { return float64(len(s.queue)) })
	s.reg.Gauge("serve.queue.capacity", func() float64 { return float64(s.cfg.QueueDepth) })
	s.reg.Gauge("serve.workers.busy", func() float64 { return float64(s.busy) })
	s.reg.Gauge("serve.workers.total", func() float64 { return float64(s.cfg.Workers) })
	s.reg.Gauge("serve.jobs.records", func() float64 { return float64(len(s.jobs)) })
	s.reg.Gauge("serve.latency_ms.p50", func() float64 { return float64(s.latency.P50()) })
	s.reg.Gauge("serve.latency_ms.p95", func() float64 { return float64(s.latency.P95()) })
	s.reg.Gauge("serve.latency_ms.p99", func() float64 { return float64(s.latency.P99()) })
	s.reg.Gauge("serve.latency_ms.mean", func() float64 { return s.latency.Mean() })
	if s.store != nil {
		// Store.Len does its own IO and needs no lock.
		s.reg.Gauge("serve.store.entries", func() float64 { return float64(s.store.Len()) })
	}
}

// Registry exposes the server's metrics registry (e.g. for logging at exit).
func (s *Server) Registry() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		start := time.Now()
		s.mu.Lock()
		j.state = StateRunning
		s.busy++
		s.mu.Unlock()

		res, err := s.cfg.Simulate(j.cfg, j.wl)
		if err == nil {
			res.Workload = j.wl
			if s.store != nil {
				if perr := s.store.Put(j.key, res); perr != nil {
					// Persistence failures degrade to memory-only.
					fmt.Fprintf(os.Stderr, "fpbd: %v\n", perr)
				}
			}
		}

		s.mu.Lock()
		if err != nil {
			j.state, j.err = StateFailed, err
			s.cFailed.Inc()
		} else {
			j.state, j.res = StateDone, res
			s.cDone.Inc()
		}
		s.busy--
		delete(s.inflight, j.key)
		s.latency.Add(int(time.Since(start).Milliseconds()))
		s.mu.Unlock()
		close(j.done)
	}
}

// submit resolves a request to a job: a store hit returns an already-done
// synthetic job, an identical in-flight job coalesces, and otherwise a new
// job is enqueued — or rejected when the queue is full (coalesced=false,
// job=nil, httpErr carries the status to send).
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func (s *Server) submit(cfg sim.Config, wl string) (j *job, cached bool, err *httpError) {
	key := system.Key(cfg, wl)

	// Store lookup happens outside mu (it is disk IO); the worst case of
	// racing a concurrent completion is a duplicate-free extra read.
	if s.store != nil {
		if res, ok, serr := s.store.Get(key); serr != nil {
			return nil, false, &httpError{http.StatusInternalServerError, serr.Error()}
		} else if ok {
			s.mu.Lock()
			s.cHits.Inc()
			j := s.newJobLocked(key, cfg, wl)
			j.state, j.res = StateDone, res
			s.mu.Unlock()
			close(j.done)
			return j, true, nil
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, &httpError{http.StatusServiceUnavailable, "server is draining"}
	}
	if j, ok := s.inflight[key]; ok {
		s.cCoalesced.Inc()
		return j, true, nil
	}
	j = s.newJobLocked(key, cfg, wl)
	select {
	case s.queue <- j:
	default:
		// Queue full: forget the job record and push back.
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.cRejected.Inc()
		return nil, false, &httpError{http.StatusTooManyRequests, "job queue is full"}
	}
	s.inflight[key] = j
	s.cAccepted.Inc()
	s.cMisses.Inc()
	return j, false, nil
}

// newJobLocked mints a job record and registers it for polling; mu held.
func (s *Server) newJobLocked(key string, cfg sim.Config, wl string) *job {
	s.nextID++
	j := &job{
		id:    fmt.Sprintf("j%06d-%s", s.nextID, key[:8]),
		key:   key,
		cfg:   cfg,
		wl:    wl,
		done:  make(chan struct{}),
		state: StateQueued,
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	return j
}

// evictLocked drops the oldest finished job records above MaxJobRecords.
func (s *Server) evictLocked() {
	for len(s.jobs) > s.cfg.MaxJobRecords && len(s.order) > 0 {
		evicted := false
		for i, id := range s.order {
			j, ok := s.jobs[id]
			if !ok {
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
			if j.state == StateDone || j.state == StateFailed {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live; let the map grow rather than lose jobs
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	body := map[string]any{
		"status":      "ok",
		"queue_depth": len(s.queue),
		"busy":        s.busy,
		"draining":    s.draining,
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.reg.WriteJSON(w); err != nil {
		// Headers are gone; nothing more to do than note it.
		fmt.Fprintf(os.Stderr, "fpbd: metrics dump: %v\n", err)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, JobStatus{State: StateFailed, Error: "bad request: " + err.Error()})
		return
	}
	cfg, wl, err := spec.Resolve()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, JobStatus{State: StateFailed, Error: err.Error()})
		return
	}

	j, cached, herr := s.submit(cfg, wl)
	if herr != nil {
		if herr.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		}
		writeJSON(w, herr.status, JobStatus{State: StateFailed, Error: herr.msg})
		return
	}

	if r.URL.Query().Get("async") == "1" {
		s.mu.Lock()
		st := j.status()
		s.mu.Unlock()
		st.Cached = cached
		code := http.StatusAccepted
		if st.State == StateDone || st.State == StateFailed {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
		return
	}

	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client went away; the job keeps running for any coalesced
		// waiters and for the store.
		return
	}
	st := j.status() // done => fields are frozen, no lock needed
	st.Cached = cached
	code := http.StatusOK
	if st.State == StateFailed {
		code = http.StatusUnprocessableEntity
	}
	writeJSON(w, code, st)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var st JobStatus
	if ok {
		st = j.status()
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, JobStatus{ID: id, State: StateFailed, Error: "unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// Drain stops accepting new jobs, lets the queue and in-flight simulations
// finish (every sync waiter gets its response), and returns when the pool is
// idle. Safe to call once; new submissions during the drain get 503.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	// Safe: every queue send is a non-blocking select made while holding
	// mu AND after checking draining, so no send can race this close.
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "fpbd: encoding response: %v\n", err)
	}
}
