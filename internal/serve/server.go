package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"fpb/internal/ckpt"
	"fpb/internal/obs"
	"fpb/internal/sim"
	"fpb/internal/stats"
	"fpb/internal/system"
)

// SimulateFunc runs one simulation; the default is system.RunWorkload.
// Tests inject counters, sleeps, and failures through it.
type SimulateFunc func(sim.Config, string) (system.Result, error)

// Config sizes a Server.
type Config struct {
	// Workers bounds concurrent simulations (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 64). A full
	// queue rejects new work with 429 + Retry-After instead of blocking.
	QueueDepth int
	// StoreDir roots the persistent result store; empty disables
	// persistence (results then live only as long as the job records).
	StoreDir string
	// CheckpointDir roots the warmup checkpoint store; empty disables
	// warm-starting. Jobs declaring a warmup phase (WarmupCycles > 0) then
	// simulate each distinct warmup prefix once, checkpoint it, and restore
	// it for every later job sharing the prefix — results are byte-identical
	// either way. The store is also exposed over GET/PUT
	// /v1/checkpoints/{key} so sweep coordinators can seed sibling nodes.
	CheckpointDir string
	// RetryAfter is advertised on 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxJobRecords bounds completed job records kept for async polling
	// (default 1024); the oldest finished records are evicted first.
	MaxJobRecords int
	// Simulate overrides the simulation function (default
	// system.RunWorkload). Used by tests.
	Simulate SimulateFunc
	// Logger receives structured job-lifecycle logs (every line carries
	// the job's correlation ID). nil discards them — tests and embedders
	// that don't care stay silent.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — opt-in
	// because profiling endpoints on a fleet daemon are an operator
	// decision, not a default.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobRecords <= 0 {
		c.MaxJobRecords = 1024
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// job is one accepted unit of work. Its fields past done are written by the
// completing worker before done is closed and are read-only afterwards.
type job struct {
	id  string
	key string
	cfg sim.Config
	wl  string

	acceptedAt time.Time // when submit admitted it (wall clock)

	done chan struct{} // closed exactly once, on completion

	// Guarded by Server.mu until done is closed.
	state JobState
	res   system.Result
	err   error
	lc    Lifecycle // per-job lifecycle record, keyed by id everywhere
}

// status snapshots a job into its wire form. Callers must hold Server.mu
// unless the job's done channel is already closed.
func (j *job) status() JobStatus {
	st := JobStatus{ID: j.id, Key: j.key, State: j.state}
	switch j.state {
	case StateDone:
		res := j.res
		st.Result = &res
	case StateFailed:
		st.Error = j.err.Error()
	}
	if j.lc.Outcome != "" {
		lc := j.lc
		st.Lifecycle = &lc
	}
	return st
}

// Server implements the simulation service. Create with New, mount as an
// http.Handler, stop with Drain.
type Server struct {
	cfg   Config
	store *Store      // nil when persistence is disabled
	ckpt  *ckpt.Store // nil when warm-starting is disabled
	reg   *obs.Registry
	log   *slog.Logger
	mux   *http.ServeMux
	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	inflight map[string]*job // queued or running, by key — the dedupe table
	jobs     map[string]*job // every known job, by id (async polling)
	order    []string        // job ids in acceptance order, for eviction
	nextID   uint64
	busy     int // workers currently simulating

	// Metrics. Counters and histograms are individually thread-safe
	// (sync/atomic); gauge closures read mu-guarded fields WITHOUT
	// locking, so every registry snapshot happens under mu (see
	// registerMetrics).
	cAccepted, cCoalesced, cRejected *obs.Counter
	cDone, cFailed                   *obs.Counter
	cHits, cMisses                   *obs.Counter
	cStoreErrors                     *obs.Counter
	cWarmStarts                      *obs.Counter
	latency                          *stats.Histogram // job latency, ms (legacy percentile gauges)
	hQueueWait, hSim, hStore         *obs.Histogram   // lifecycle stage histograms, ms
}

// New builds a server, opens its store, and starts the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      obs.NewRegistry(),
		log:      cfg.Logger,
		queue:    make(chan *job, cfg.QueueDepth),
		inflight: make(map[string]*job),
		jobs:     make(map[string]*job),
		latency:  stats.NewHistogram(60_000),
	}
	if cfg.StoreDir != "" {
		st, err := OpenStore(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		s.store = st
	}
	if cfg.CheckpointDir != "" {
		cs, err := ckpt.NewStore(cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		s.ckpt = cs
	}
	s.registerMetrics()
	if s.cfg.Simulate == nil {
		// Default backend: route through the checkpoint store so jobs
		// sharing a warmup prefix simulate it once per node. With a nil
		// store this is plain system.RunWorkload.
		s.cfg.Simulate = func(cfg sim.Config, wl string) (system.Result, error) {
			res, warmed, err := system.RunWorkloadCheckpointed(cfg, wl, s.ckpt)
			if warmed {
				s.cWarmStarts.Inc()
			}
			return res, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	s.mux.HandleFunc("GET /v1/checkpoints/{key}", s.handleCheckpointGet)
	s.mux.HandleFunc("PUT /v1/checkpoints/{key}", s.handleCheckpointPut)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// registerMetrics populates the server's obs registry. Gauge closures read
// mu-guarded fields WITHOUT locking: every reader (the /metrics and /healthz
// handlers) snapshots the registry while already holding mu.
func (s *Server) registerMetrics() {
	s.cAccepted = s.reg.Counter("serve.jobs.accepted")
	s.cCoalesced = s.reg.Counter("serve.jobs.coalesced")
	s.cRejected = s.reg.Counter("serve.jobs.rejected")
	s.cDone = s.reg.Counter("serve.jobs.done")
	s.cFailed = s.reg.Counter("serve.jobs.failed")
	s.cHits = s.reg.Counter("serve.cache.hits")
	s.cMisses = s.reg.Counter("serve.cache.misses")
	s.cStoreErrors = s.reg.Counter("serve.store.put_errors")
	s.cWarmStarts = s.reg.Counter("serve.jobs.warm_starts")
	s.reg.Gauge("serve.queue.depth", func() float64 { return float64(len(s.queue)) })
	s.reg.Gauge("serve.queue.capacity", func() float64 { return float64(s.cfg.QueueDepth) })
	s.reg.Gauge("serve.workers.busy", func() float64 { return float64(s.busy) })
	s.reg.Gauge("serve.workers.total", func() float64 { return float64(s.cfg.Workers) })
	s.reg.Gauge("serve.jobs.records", func() float64 { return float64(len(s.jobs)) })
	s.reg.Gauge("serve.latency_ms.p50", func() float64 { return float64(s.latency.P50()) })
	s.reg.Gauge("serve.latency_ms.p95", func() float64 { return float64(s.latency.P95()) })
	s.reg.Gauge("serve.latency_ms.p99", func() float64 { return float64(s.latency.P99()) })
	s.reg.Gauge("serve.latency_ms.mean", func() float64 { return s.latency.Mean() })
	s.hQueueWait = s.reg.Histogram("serve.job.queue_wait_ms", obs.LatencyBucketsMs)
	s.hSim = s.reg.Histogram("serve.job.sim_ms", obs.LatencyBucketsMs)
	s.hStore = s.reg.Histogram("serve.job.store_write_ms", obs.LatencyBucketsMs)
	for name, help := range map[string]string{
		"serve.jobs.accepted":      "jobs admitted to the queue (store misses only)",
		"serve.jobs.coalesced":     "requests coalesced onto an identical in-flight job",
		"serve.jobs.rejected":      "jobs rejected with 429 (queue full)",
		"serve.jobs.done":          "simulations completed successfully",
		"serve.jobs.failed":        "simulations that returned an error",
		"serve.cache.hits":         "requests answered from the persistent result store",
		"serve.cache.misses":       "requests that required a fresh simulation",
		"serve.store.put_errors":   "persistence failures (results degraded to memory-only)",
		"serve.jobs.warm_starts":   "simulations restored from a warmup checkpoint",
		"serve.queue.depth":        "jobs waiting for a worker",
		"serve.queue.capacity":     "queue slots before 429 pushback",
		"serve.workers.busy":       "workers currently simulating",
		"serve.workers.total":      "worker pool size",
		"serve.jobs.records":       "job records retained for async polling",
		"serve.job.queue_wait_ms":  "accept-to-dequeue wait per job (ms)",
		"serve.job.sim_ms":         "simulation runtime per job (ms)",
		"serve.job.store_write_ms": "persistent store write latency per job (ms)",
	} {
		s.reg.SetHelp(name, help)
	}
	if s.store != nil {
		// Store.Len does its own IO and needs no lock.
		s.reg.Gauge("serve.store.entries", func() float64 { return float64(s.store.Len()) })
		s.reg.SetHelp("serve.store.entries", "results in the content-addressed store")
	}
	if s.ckpt != nil {
		s.reg.Gauge("serve.ckpt.entries", func() float64 {
			n, _ := s.ckpt.Len()
			return float64(n)
		})
		s.reg.SetHelp("serve.ckpt.entries", "warmup checkpoint images in the store")
	}
}

// Registry exposes the server's metrics registry (e.g. for logging at exit).
// The cluster layer registers its ring/sweep series here so one /metrics
// scrape covers a node's serving and fleet state.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Store exposes the content-addressed result store (nil when persistence is
// disabled). The cluster layer writes replicated results through it and the
// /v1/results endpoint reads from it.
func (s *Server) Store() *Store { return s.store }

// CkptStore exposes the warmup checkpoint store (nil when warm-starting is
// disabled). The cluster layer seeds sibling nodes through it.
func (s *Server) CkptStore() *ckpt.Store { return s.ckpt }

// Logger exposes the server's structured logger so embedding layers (the
// cluster node) log through the same handler and level.
func (s *Server) Logger() *slog.Logger { return s.log }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// worker drains the queue until Drain closes it. Each dequeue stamps the
// job's lifecycle record (queue wait, simulation runtime, store-write
// latency) and logs start/finish with the job's correlation ID.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		start := time.Now()
		queueWait := start.Sub(j.acceptedAt)
		s.mu.Lock()
		j.state = StateRunning
		j.lc.QueueWaitMs = durMs(queueWait)
		s.busy++
		s.mu.Unlock()
		s.hQueueWait.Observe(durMs(queueWait))
		s.log.Debug("job start", "job", j.id, "key", j.key,
			"queue_wait_ms", durMs(queueWait))

		res, err := s.cfg.Simulate(j.cfg, j.wl)
		simDur := time.Since(start)
		s.hSim.Observe(durMs(simDur))
		var storeDur time.Duration
		if err == nil {
			res.Workload = j.wl
			if s.store != nil {
				putStart := time.Now()
				if perr := s.store.Put(j.key, res); perr != nil {
					// Persistence failures degrade to memory-only.
					s.cStoreErrors.Inc()
					s.log.Error("store put failed", "job", j.id, "key", j.key, "err", perr)
				}
				storeDur = time.Since(putStart)
				s.hStore.Observe(durMs(storeDur))
			}
		}

		s.mu.Lock()
		if err != nil {
			j.state, j.err = StateFailed, err
			s.cFailed.Inc()
		} else {
			j.state, j.res = StateDone, res
			s.cDone.Inc()
		}
		j.lc.SimMs = durMs(simDur)
		j.lc.StoreWriteMs = durMs(storeDur)
		s.busy--
		delete(s.inflight, j.key)
		s.latency.Add(int(time.Since(start).Milliseconds()))
		s.mu.Unlock()
		close(j.done)
		if err != nil {
			s.log.Warn("job failed", "job", j.id, "key", j.key,
				"sim_ms", durMs(simDur), "err", err)
		} else {
			s.log.Info("job done", "job", j.id, "key", j.key,
				"queue_wait_ms", durMs(queueWait), "sim_ms", durMs(simDur),
				"store_write_ms", durMs(storeDur))
		}
	}
}

// durMs converts a duration to fractional milliseconds (the unit of every
// lifecycle histogram and log field).
func durMs(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// formatRetryAfter renders the configured backoff as seconds for the
// Retry-After header — exactly, not rounded up to whole seconds, so clients
// configured with a sub-second RetryAfter back off for that long instead of
// a full second. Whole seconds stay integers (the RFC form); fractions are
// non-standard but our client parses them and third-party clients that
// don't simply fall back to their own default.
func formatRetryAfter(d time.Duration) string {
	if d%time.Second == 0 {
		return strconv.Itoa(int(d / time.Second))
	}
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// submit resolves a request to a job: a store hit returns an already-done
// synthetic job, an identical in-flight job coalesces, and otherwise a new
// job is enqueued — or rejected when the queue is full (coalesced=false,
// job=nil, httpErr carries the status to send).
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// Sentinel errors RunLocal maps the HTTP pushback statuses onto, so embedded
// callers (the cluster coordinator running a job on its own node) can
// distinguish "try again / try elsewhere" from a genuine failure without
// going through a loopback socket.
var (
	// ErrBusy is queue-full pushback (the 429 path).
	ErrBusy = errors.New("serve: job queue is full")
	// ErrDraining means the server is shutting down (the 503 path).
	ErrDraining = errors.New("serve: draining")
)

// RunLocal pushes one job through the server's full pipeline — store
// lookup, singleflight dedupe, queue, worker pool, persistence — and blocks
// until it finishes. It is exactly the sync POST /v1/jobs path minus HTTP:
// same backpressure (ErrBusy when the queue is full, ErrDraining during
// shutdown), same lifecycle records, same metrics. cached reports a store
// hit or coalesced join, like JobStatus.Cached.
func (s *Server) RunLocal(cfg sim.Config, wl string) (st JobStatus, cached bool, err error) {
	j, cached, herr := s.submit(cfg, wl)
	if herr != nil {
		switch herr.status {
		case http.StatusTooManyRequests:
			return JobStatus{}, false, ErrBusy
		case http.StatusServiceUnavailable:
			return JobStatus{}, false, ErrDraining
		default:
			return JobStatus{}, false, errors.New(herr.msg)
		}
	}
	<-j.done
	st = j.status() // done => fields frozen, no lock needed
	st.Cached = cached
	return st, cached, nil
}

func (s *Server) submit(cfg sim.Config, wl string) (j *job, cached bool, err *httpError) {
	key := system.Key(cfg, wl)

	// Store lookup happens outside mu (it is disk IO); the worst case of
	// racing a concurrent completion is a duplicate-free extra read.
	if s.store != nil {
		if res, ok, serr := s.store.Get(key); serr != nil {
			return nil, false, &httpError{http.StatusInternalServerError, serr.Error()}
		} else if ok {
			s.mu.Lock()
			s.cHits.Inc()
			j := s.newJobLocked(key, cfg, wl)
			j.state, j.res = StateDone, res
			j.lc.Outcome = OutcomeCacheHit
			s.mu.Unlock()
			close(j.done)
			s.log.Info("job cache hit", "job", j.id, "key", key, "workload", wl)
			return j, true, nil
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false, &httpError{http.StatusServiceUnavailable, "server is draining"}
	}
	if j, ok := s.inflight[key]; ok {
		s.cCoalesced.Inc()
		j.lc.Coalesced++
		s.mu.Unlock()
		s.log.Info("job coalesced", "job", j.id, "key", key, "workload", wl)
		return j, true, nil
	}
	j = s.newJobLocked(key, cfg, wl)
	select {
	case s.queue <- j:
	default:
		// Queue full: forget the job record and push back.
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.cRejected.Inc()
		s.mu.Unlock()
		s.log.Warn("job rejected", "key", key, "workload", wl, "reason", "queue full")
		return nil, false, &httpError{http.StatusTooManyRequests, "job queue is full"}
	}
	j.lc.Outcome = OutcomeFresh
	s.inflight[key] = j
	s.cAccepted.Inc()
	s.cMisses.Inc()
	depth := len(s.queue)
	s.mu.Unlock()
	s.log.Info("job accepted", "job", j.id, "key", key, "workload", wl,
		"queue_depth", depth)
	return j, false, nil
}

// newJobLocked mints a job record — including its correlation ID, which
// every log line, lifecycle record and API response carries — and registers
// it for polling; mu held.
func (s *Server) newJobLocked(key string, cfg sim.Config, wl string) *job {
	s.nextID++
	j := &job{
		id:         fmt.Sprintf("j%06d-%s", s.nextID, key[:8]),
		key:        key,
		cfg:        cfg,
		wl:         wl,
		acceptedAt: time.Now(),
		done:       make(chan struct{}),
		state:      StateQueued,
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	return j
}

// evictLocked drops the oldest finished job records above MaxJobRecords.
func (s *Server) evictLocked() {
	for len(s.jobs) > s.cfg.MaxJobRecords && len(s.order) > 0 {
		evicted := false
		for i, id := range s.order {
			j, ok := s.jobs[id]
			if !ok {
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
			if j.state == StateDone || j.state == StateFailed {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live; let the map grow rather than lose jobs
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	body := map[string]any{
		"status":      "ok",
		"queue_depth": len(s.queue),
		"busy":        s.busy,
		"draining":    s.draining,
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, body)
}

// metricsFormat negotiates the /metrics representation: an explicit
// ?format= wins, then the Accept header; bare requests keep getting the
// legacy JSON so pre-existing tooling never breaks.
func metricsFormat(r *http.Request) string {
	switch r.URL.Query().Get("format") {
	case "json":
		return "json"
	case "prometheus", "prom":
		return "prom"
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "application/json") {
		return "json"
	}
	// Prometheus scrapers send text/plain (with version params) or
	// application/openmetrics-text.
	if strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics") {
		return "prom"
	}
	return "json"
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := metricsFormat(r)
	// Snapshots run under mu: gauge closures read mu-guarded fields.
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if format == "prom" {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		err = s.reg.WritePrometheus(w)
	} else {
		w.Header().Set("Content-Type", "application/json")
		err = s.reg.WriteJSON(w)
	}
	if err != nil {
		// Headers are gone; nothing more to do than note it.
		s.log.Error("metrics dump failed", "format", format, "err", err)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeJSON(w, http.StatusBadRequest, JobStatus{State: StateFailed, Error: "bad request: " + err.Error()})
		return
	}
	cfg, wl, err := spec.Resolve()
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, JobStatus{State: StateFailed, Error: err.Error()})
		return
	}

	j, cached, herr := s.submit(cfg, wl)
	if herr != nil {
		if herr.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", formatRetryAfter(s.cfg.RetryAfter))
		}
		s.writeJSON(w, herr.status, JobStatus{State: StateFailed, Error: herr.msg})
		return
	}

	if r.URL.Query().Get("async") == "1" {
		s.mu.Lock()
		st := j.status()
		s.mu.Unlock()
		st.Cached = cached
		code := http.StatusAccepted
		if st.State == StateDone || st.State == StateFailed {
			code = http.StatusOK
		}
		s.writeJSON(w, code, st)
		return
	}

	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client went away; the job keeps running for any coalesced
		// waiters and for the store.
		s.log.Debug("client disconnected before completion", "job", j.id)
		return
	}
	st := j.status() // done => fields are frozen, no lock needed
	st.Cached = cached
	code := http.StatusOK
	if st.State == StateFailed {
		code = http.StatusUnprocessableEntity
	}
	s.writeJSON(w, code, st)
}

// handleResult serves a stored result by its content key, from the LOCAL
// store only — no proxying, no simulation. Replica-aware callers (the fleet
// client, the sweep coordinator's replication checks) use it to read a key
// from whichever ring owner answers; a miss is a plain 404 so the caller can
// move on to the next replica.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if s.store == nil {
		s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "no persistent store on this node"})
		return
	}
	res, ok, err := s.store.Get(key)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if !ok {
		s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "no result for key " + key})
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

// handleCheckpointGet serves a raw warmup checkpoint image by its prefix key,
// from the LOCAL checkpoint store only. A sweep coordinator uses it to copy a
// warmed image from the node that produced it to siblings about to run grid
// points sharing the prefix.
func (s *Server) handleCheckpointGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if s.ckpt == nil {
		s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "no checkpoint store on this node"})
		return
	}
	if err := ckpt.ValidateKey(key); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	img, ok, err := s.ckpt.Get(key)
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	if !ok {
		s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "no checkpoint for key " + key})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(img); err != nil {
		s.log.Debug("checkpoint send failed", "key", key, "err", err)
	}
}

// handleCheckpointPut accepts a raw checkpoint image for a key. The body is
// validated through ckpt.NewReader before it lands, so a corrupt or truncated
// upload is rejected instead of poisoning the store; images carry their own
// integrity trailer, so nothing beyond structural validity is checked here.
func (s *Server) handleCheckpointPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if s.ckpt == nil {
		s.writeJSON(w, http.StatusNotFound, map[string]string{"error": "no checkpoint store on this node"})
		return
	}
	if err := ckpt.ValidateKey(key); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	// Images hold whole PCM banks; 1 GiB is far above any real image but
	// still bounds a hostile upload.
	img, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reading body: " + err.Error()})
		return
	}
	if _, err := ckpt.NewReader(img); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid checkpoint image: " + err.Error()})
		return
	}
	if err := s.ckpt.Put(key, img); err != nil {
		s.writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.log.Info("checkpoint stored", "key", key, "bytes", len(img))
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var st JobStatus
	if ok {
		st = j.status()
	}
	s.mu.Unlock()
	if !ok {
		s.writeJSON(w, http.StatusNotFound, JobStatus{ID: id, State: StateFailed, Error: "unknown job id"})
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// Drain stops accepting new jobs, lets the queue and in-flight simulations
// finish (every sync waiter gets its response), and returns when the pool is
// idle. Safe to call once; new submissions during the drain get 503.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	// Safe: every queue send is a non-blocking select made while holding
	// mu AND after checking draining, so no send can race this close.
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		s.log.Error("encoding response failed", "err", err)
	}
}
