package serve

import (
	"bytes"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"fpb/internal/ckpt"
	"fpb/internal/sim"
	"fpb/internal/system"
)

func ckptKey() string { return strings.Repeat("ab", 32) }

func httpDo(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, got
}

// TestCheckpointEndpoints pins the raw-image transfer API: round trip, key
// validation, corrupt-upload rejection, and the no-store 404.
func TestCheckpointEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:       1,
		CheckpointDir: t.TempDir(),
		Simulate: func(cfg sim.Config, wl string) (system.Result, error) {
			return fakeResult(cfg, wl), nil
		},
	})

	url := ts.URL + "/v1/checkpoints/" + ckptKey()
	if code, _ := httpDo(t, http.MethodGet, url, nil); code != http.StatusNotFound {
		t.Fatalf("GET missing key: code %d, want 404", code)
	}

	w := ckpt.NewWriter()
	w.Section("test")
	w.U64(42)
	img := w.Finish()
	if code, body := httpDo(t, http.MethodPut, url, img); code != http.StatusNoContent {
		t.Fatalf("PUT valid image: code %d body %s", code, body)
	}
	code, got := httpDo(t, http.MethodGet, url, nil)
	if code != http.StatusOK || !bytes.Equal(got, img) {
		t.Fatalf("GET after PUT: code %d, %d bytes (want %d)", code, len(got), len(img))
	}

	// Corrupt upload: flip a body byte so the integrity trailer fails.
	bad := append([]byte(nil), img...)
	bad[len(bad)/2] ^= 0x80
	if code, _ := httpDo(t, http.MethodPut, url, bad); code != http.StatusBadRequest {
		t.Fatalf("PUT corrupt image: code %d, want 400", code)
	}

	// Invalid keys never reach the store.
	for _, key := range []string{"short", strings.Repeat("Z", 64)} {
		if code, _ := httpDo(t, http.MethodPut, ts.URL+"/v1/checkpoints/"+key, img); code != http.StatusBadRequest {
			t.Errorf("PUT key %q: code %d, want 400", key, code)
		}
	}

	// A server without a checkpoint store answers 404 on both verbs.
	_, ts2 := newTestServer(t, Config{
		Workers: 1,
		Simulate: func(cfg sim.Config, wl string) (system.Result, error) {
			return fakeResult(cfg, wl), nil
		},
	})
	url2 := ts2.URL + "/v1/checkpoints/" + ckptKey()
	if code, _ := httpDo(t, http.MethodGet, url2, nil); code != http.StatusNotFound {
		t.Errorf("GET without store: code %d, want 404", code)
	}
	if code, _ := httpDo(t, http.MethodPut, url2, img); code != http.StatusNotFound {
		t.Errorf("PUT without store: code %d, want 404", code)
	}
}

// TestServeWarmStart drives two real jobs that share a warmup prefix through
// the default (checkpointed) backend: the second must warm-start, and both
// results must be byte-identical to cold in-process runs.
func TestServeWarmStart(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:       1,
		CheckpointDir: t.TempDir(),
	})

	base := JobSpec{
		Workload:     "mcf_m",
		InstrPerCore: 3000,
		WarmupCycles: 40_000,
		WarmupScheme: "dimm+chip",
	}
	for i, scheme := range []string{"dimm+chip", "fpb"} {
		spec := base
		spec.Scheme = scheme
		code, st := postJob(t, ts.URL, spec, "")
		if code != http.StatusOK || st.State != StateDone {
			t.Fatalf("job %d: code %d state %s err %s", i, code, st.State, st.Error)
		}
		cfg, wl, err := spec.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		want, err := system.RunWorkload(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		want.Workload = wl
		if !reflect.DeepEqual(*st.Result, want) {
			t.Errorf("scheme %s: served result differs from cold run", scheme)
		}
	}
	m := getMetrics(t, ts.URL)
	if m["serve.jobs.warm_starts"] != 1 {
		t.Errorf("warm_starts = %v, want 1 (first job produces, second restores)", m["serve.jobs.warm_starts"])
	}
	if m["serve.ckpt.entries"] != 1 {
		t.Errorf("ckpt.entries = %v, want 1 (one shared prefix)", m["serve.ckpt.entries"])
	}
}
