package client

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fpb/internal/cluster/ring"
	"fpb/internal/obs"
	"fpb/internal/serve"
	"fpb/internal/sim"
	"fpb/internal/system"
)

// FleetConfig tunes a Fleet client.
type FleetConfig struct {
	// VNodes is the ring's virtual-node count per member (default
	// ring.DefaultVirtualNodes). Every fleet participant must agree on it.
	VNodes int
	// Cooldown is how long a node that failed a request is skipped before
	// routing optimistically retries it (default ring.DefaultCooldown).
	Cooldown time.Duration
	// ProbeInterval enables a background health prober that re-admits
	// recovered nodes early (and detects silently dead ones). 0 disables
	// it; failure-driven marking plus the cooldown still work.
	ProbeInterval time.Duration
	// RetryBudget bounds how long Do cycles the replica set when every
	// node is busy or down (default 2 minutes, like Client).
	RetryBudget time.Duration
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.VNodes <= 0 {
		c.VNodes = ring.DefaultVirtualNodes
	}
	if c.Cooldown <= 0 {
		c.Cooldown = ring.DefaultCooldown
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 2 * time.Minute
	}
	return c
}

// Fleet is the multi-node, failover-aware client for a consistent-hash
// cluster of fpbd daemons. Each job routes to the ring owner of its
// system.Key — the node whose content-addressed store is hot for that key —
// and walks the key's successor list when the owner is down, draining, or
// pushing back with 429. Placement is deterministic (same ring as the
// daemons themselves), so every client sends the same key to the same node
// and the fleet's caches stay partitioned instead of duplicated.
//
// Health state is failure-driven (a node that errors is skipped for
// Cooldown) and, optionally, probe-driven: with ProbeInterval set, a
// background goroutine re-checks /healthz of every down node so recovered
// nodes rejoin the routing table before their cooldown expires. Close stops
// the prober.
type Fleet struct {
	cfg     FleetConfig
	ring    *ring.Ring
	tracker *ring.Tracker
	clients map[string]*Client

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	// Telemetry (nil-safe until Instrument).
	cRequests  *obs.Counter
	cRetry429  *obs.Counter
	cErrors    *obs.Counter
	cFailovers *obs.Counter
	cProbes    *obs.Counter
	hRequestMs *obs.Histogram
}

// NewFleet builds a fleet client over the node addresses (each "host:port"
// or a full URL; duplicates collapse after normalization). A single address
// degenerates to plain single-node routing, so callers can always construct
// a Fleet and forget whether the deployment is one daemon or twenty.
func NewFleet(addrs []string, cfg FleetConfig) (*Fleet, error) {
	cfg = cfg.withDefaults()
	members := make([]string, 0, len(addrs))
	clients := make(map[string]*Client, len(addrs))
	for _, a := range addrs {
		base := Normalize(a)
		if _, dup := clients[base]; dup {
			continue
		}
		clients[base] = New(base)
		members = append(members, base)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("client: fleet: no node addresses")
	}
	f := &Fleet{
		cfg:     cfg,
		ring:    ring.New(cfg.VNodes, members...),
		tracker: ring.NewTracker(cfg.Cooldown),
		clients: clients,
		stop:    make(chan struct{}),
	}
	if cfg.ProbeInterval > 0 {
		f.wg.Add(1)
		go f.probeLoop()
	}
	return f, nil
}

// Ring exposes the fleet's placement ring (read-only).
func (f *Fleet) Ring() *ring.Ring { return f.ring }

// Nodes returns the normalized member addresses, sorted.
func (f *Fleet) Nodes() []string { return f.ring.Members() }

// Instrument registers the fleet's telemetry into reg: the same client.*
// series a single-node Client exposes (so fpbexp -runstats output is
// uniform) plus fleet-specific failover and health series.
func (f *Fleet) Instrument(reg *obs.Registry) {
	f.cRequests = reg.Counter("client.requests")
	f.cRetry429 = reg.Counter("client.retries_429")
	f.cErrors = reg.Counter("client.errors")
	f.hRequestMs = reg.Histogram("client.request_ms", obs.LatencyBucketsMs)
	f.cFailovers = reg.Counter("client.fleet.failovers")
	f.cProbes = reg.Counter("client.fleet.probes")
	reg.Gauge("client.fleet.nodes", func() float64 { return float64(f.ring.Len()) })
	reg.Gauge("client.fleet.nodes_down", func() float64 { return float64(len(f.tracker.Down())) })
	for name, help := range map[string]string{
		"client.requests":         "jobs submitted to the fleet",
		"client.retries_429":      "429 pushback responses observed across replicas",
		"client.errors":           "job submissions that failed terminally",
		"client.request_ms":       "end-to-end fleet job latency incl. failover (ms)",
		"client.fleet.failovers":  "requests moved to a successor replica after a node failure",
		"client.fleet.probes":     "background health probes issued",
		"client.fleet.nodes":      "configured fleet members",
		"client.fleet.nodes_down": "members currently believed down",
	} {
		reg.SetHelp(name, help)
	}
}

// Close stops the background prober (if any) and waits for it.
func (f *Fleet) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
}

// probeLoop re-probes down members every ProbeInterval so recovered nodes
// rejoin routing promptly. Alive members are left alone — regular traffic
// is their health check.
func (f *Fleet) probeLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), f.cfg.ProbeInterval)
			f.ProbeDown(ctx)
			cancel()
		}
	}
}

// ProbeDown health-checks every member currently marked down, re-admitting
// the ones that answer. Exposed for tests and one-shot tooling.
func (f *Fleet) ProbeDown(ctx context.Context) {
	for _, m := range f.tracker.Down() {
		f.cProbes.Inc()
		if err := f.clients[m].Health(ctx); err == nil {
			f.tracker.MarkAlive(m)
		} else {
			f.tracker.MarkDown(m) // refresh the cooldown
		}
	}
}

// MarkDown force-marks a member down (used by the coordinator when it
// observes a failure through its own traffic).
func (f *Fleet) MarkDown(member string) { f.tracker.MarkDown(Normalize(member)) }

// Do submits one job to the fleet and returns its final status. Routing:
// the replica preference order for the job's system.Key, skipping members
// currently believed down; a transport/5xx failure marks the node down and
// moves on (retry-on-next-replica); a 429 moves on immediately without
// marking the node down. When a full pass over the order yields only busy
// nodes, Do sleeps the smallest advertised Retry-After (jittered) and
// cycles again until ctx or the retry budget expires. 4xx responses are
// terminal — a bad spec fails identically on every replica.
func (f *Fleet) Do(ctx context.Context, spec serve.JobSpec) (serve.JobStatus, error) {
	cfg, wl, err := spec.Resolve()
	if err != nil {
		return serve.JobStatus{}, err
	}
	return f.do(ctx, spec, system.Key(cfg, wl))
}

func (f *Fleet) do(ctx context.Context, spec serve.JobSpec, key string) (serve.JobStatus, error) {
	f.cRequests.Inc()
	start := time.Now()
	st, err := f.doFailover(ctx, spec, key)
	f.hRequestMs.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	if err != nil {
		f.cErrors.Inc()
	}
	return st, err
}

func (f *Fleet) doFailover(ctx context.Context, spec serve.JobSpec, key string) (serve.JobStatus, error) {
	order := f.ring.Owners(key, 0) // full deterministic failover order
	deadline := time.Now().Add(f.cfg.RetryBudget)
	var lastErr error
	for attempt := 0; ; attempt++ {
		busyWait := time.Duration(0)
		tried := 0
		for i, m := range order {
			// Skip members believed down — except on a full pass where
			// nothing was reachable; then try everyone as a last resort.
			if attempt > 0 || f.tracker.Alive(m) {
				st, err := f.clients[m].Submit(ctx, spec)
				tried++
				if err == nil {
					return st, nil
				}
				lastErr = err
				var busy *BusyError
				var status *StatusError
				switch {
				case errors.As(err, &busy):
					f.cRetry429.Inc()
					if busyWait == 0 || busy.After < busyWait {
						busyWait = busy.After
					}
				case errors.As(err, &status) && status.Code < 500 && status.Code != 429:
					// Bad spec or failed simulation: every replica would
					// answer the same. Terminal.
					return serve.JobStatus{}, err
				default:
					// Transport error or 5xx: the node is unhealthy.
					f.tracker.MarkDown(m)
					if i < len(order)-1 {
						f.cFailovers.Inc()
					}
				}
				if ctx.Err() != nil {
					return serve.JobStatus{}, ctx.Err()
				}
			}
		}
		if tried == 0 {
			// Everything was marked down and not yet cooled down; next
			// pass ignores the tracker.
			continue
		}
		if time.Now().After(deadline) {
			return serve.JobStatus{}, fmt.Errorf("client: fleet retry budget exhausted: %w", lastErr)
		}
		select {
		case <-time.After(RetryDelay(busyWait)):
		case <-ctx.Done():
			return serve.JobStatus{}, ctx.Err()
		}
	}
}

// Result fetches a stored result by content key, walking the key's replica
// order: the primary owner first, then successors (which hold it when the
// replication factor is > 1 or a failover executed it elsewhere). ok=false
// means no reachable node holds the key.
func (f *Fleet) Result(ctx context.Context, key string) (system.Result, bool, error) {
	var lastErr error
	for _, m := range f.ring.Owners(key, 0) {
		if !f.tracker.Alive(m) {
			continue
		}
		res, ok, err := f.clients[m].Result(ctx, key)
		if err != nil {
			lastErr = err
			f.tracker.MarkDown(m)
			continue
		}
		if ok {
			return res, true, nil
		}
	}
	return system.Result{}, false, lastErr
}

// Run simulates one (config, workload) pair on the fleet; its signature
// matches exp.Backend, so `fpbexp -remote host1,host2,host3` plugs a whole
// cluster under an experiment Runner.
func (f *Fleet) Run(cfg sim.Config, wl string) (system.Result, error) {
	st, err := f.Do(context.Background(), serve.JobSpec{Workload: wl, Config: &cfg})
	if err != nil {
		return system.Result{}, err
	}
	if st.State != serve.StateDone || st.Result == nil {
		return system.Result{}, fmt.Errorf("client: fleet job %s: state %s: %s", st.ID, st.State, st.Error)
	}
	return *st.Result, nil
}

// Owners reports the replica preference order the fleet would use for one
// (config, workload) pair — handy for tooling (fpbctl members) and tests.
func (f *Fleet) Owners(cfg sim.Config, wl string) []string {
	return f.ring.Owners(system.Key(cfg, wl), 0)
}

// DownNodes lists members currently believed down, sorted.
func (f *Fleet) DownNodes() []string {
	d := f.tracker.Down()
	sort.Strings(d)
	return d
}
