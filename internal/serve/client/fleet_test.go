package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fpb/internal/obs"
	"fpb/internal/serve"
	"fpb/internal/sim"
	"fpb/internal/system"
)

func TestRetryDelayJitterBounds(t *testing.T) {
	hint := 2 * time.Second
	for i := 0; i < 1000; i++ {
		d := RetryDelay(hint)
		if d < hint/2 || d > hint {
			t.Fatalf("RetryDelay(%v) = %v outside [%v, %v]", hint, d, hint/2, hint)
		}
	}
	// No hint: jitter over the default.
	for i := 0; i < 1000; i++ {
		d := RetryDelay(0)
		if d < defaultRetryDelay/2 || d > defaultRetryDelay {
			t.Fatalf("RetryDelay(0) = %v outside [%v, %v]", d, defaultRetryDelay/2, defaultRetryDelay)
		}
	}
}

func TestParseRetryAfterExact(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"1", time.Second},
		{"30", 30 * time.Second},
		{"0.25", 250 * time.Millisecond}, // fractional: our server's exact sub-second form
		{"garbage", 0},
		{"-5", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// HTTP-date form.
	future := time.Now().Add(10 * time.Second).UTC().Format("Mon, 02 Jan 2006 15:04:05 GMT")
	if got := parseRetryAfter(future); got < 8*time.Second || got > 10*time.Second {
		t.Errorf("parseRetryAfter(http-date) = %v, want ~10s", got)
	}
}

// TestServerAdvertisesExactRetryAfter checks the server emits a fractional
// Retry-After for sub-second configs and the client honors it: the Submit
// error's After matches the configured value exactly.
func TestServerAdvertisesExactRetryAfter(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s, err := serve.New(serve.Config{
		Workers: 1, QueueDepth: 1, RetryAfter: 250 * time.Millisecond,
		Simulate: func(cfg sim.Config, wl string) (system.Result, error) {
			<-block
			return system.Result{Workload: wl}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	// Cleanup (not defer): it must run AFTER the deferred close(block)
	// releases the in-flight handlers ts.Close waits for.
	t.Cleanup(ts.Close)
	c := New(ts.URL)

	// Fill the worker and the queue with async submissions (sync ones would
	// block this goroutine on the never-finishing fake simulation), then
	// confirm saturation via /healthz before probing for the 429.
	for i := 0; i < 2; i++ {
		body := fmt.Sprintf(`{"workload":"mix_1","seed":%d}`, i+1)
		resp, err := http.Post(ts.URL+"/v1/jobs?async=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			QueueDepth int `json:"queue_depth"`
			Busy       int `json:"busy"`
		}
		jerr := json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if jerr == nil && h.Busy == 1 && h.QueueDepth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never saturated (busy=%d depth=%d)", h.Busy, h.QueueDepth)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cfg := sim.DefaultConfig()
	cfg.Seed = 99
	_, err = c.Submit(context.Background(), serve.JobSpec{Workload: "mix_1", Config: &cfg})
	busy, ok := err.(*BusyError)
	if !ok {
		t.Fatalf("expected BusyError from saturated daemon, got %v", err)
	}
	if busy.After != 250*time.Millisecond {
		t.Fatalf("BusyError.After = %v, want exactly 250ms", busy.After)
	}
}

// fleetDaemons starts n daemons with deterministic fake simulations and
// returns their servers, test listeners, and a fleet over them.
func fleetDaemons(t *testing.T, n int, cfgf func(i int) serve.Config, fc FleetConfig) ([]*serve.Server, []*httptest.Server, *Fleet) {
	t.Helper()
	servers := make([]*serve.Server, n)
	tss := make([]*httptest.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := serve.New(cfgf(i))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		t.Cleanup(func() { ts.Close(); s.Drain() })
		servers[i], tss[i], addrs[i] = s, ts, ts.URL
	}
	f, err := NewFleet(addrs, fc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return servers, tss, f
}

// deterministicSim returns a Simulate func whose Result depends only on the
// job — never on which node ran it — mirroring the real engine's contract.
func deterministicSim(count *atomic.Int64) serve.SimulateFunc {
	return func(cfg sim.Config, wl string) (system.Result, error) {
		count.Add(1)
		return system.Result{Workload: wl, CPI: float64(cfg.Seed) * 2, Scheme: cfg.Scheme.String()}, nil
	}
}

func TestFleetRoutesToRingOwner(t *testing.T) {
	counts := make([]atomic.Int64, 3)
	_, tss, f := fleetDaemons(t, 3, func(i int) serve.Config {
		return serve.Config{Workers: 1, Simulate: deterministicSim(&counts[i])}
	}, FleetConfig{})

	// Every distinct job lands on its ring owner; re-running the same jobs
	// hits the same nodes (deterministic placement).
	for seed := uint64(1); seed <= 8; seed++ {
		cfg := sim.DefaultConfig()
		cfg.Seed = seed
		owner := f.Owners(cfg, "mix_1")[0]
		res, err := f.Run(cfg, "mix_1")
		if err != nil {
			t.Fatal(err)
		}
		if res.CPI != float64(seed)*2 {
			t.Fatalf("seed %d: CPI = %v", seed, res.CPI)
		}
		// The owner must be one of the three started daemons.
		found := false
		for _, ts := range tss {
			if Normalize(ts.URL) == owner {
				found = true
			}
		}
		if !found {
			t.Fatalf("owner %q is not a fleet member", owner)
		}
	}
	total := counts[0].Load() + counts[1].Load() + counts[2].Load()
	if total != 8 {
		t.Fatalf("fleet simulated %d jobs, want 8", total)
	}
}

func TestFleetFailsOverToReplicaOnNodeDeath(t *testing.T) {
	counts := make([]atomic.Int64, 3)
	_, tss, f := fleetDaemons(t, 3, func(i int) serve.Config {
		return serve.Config{Workers: 1, Simulate: deterministicSim(&counts[i])}
	}, FleetConfig{Cooldown: time.Minute})
	reg := obs.NewRegistry()
	f.Instrument(reg)

	cfg := sim.DefaultConfig()
	cfg.Seed = 7
	owner := f.Owners(cfg, "lbm_m")[0]

	// Kill the primary owner of this key.
	for _, ts := range tss {
		if Normalize(ts.URL) == owner {
			ts.CloseClientConnections()
			ts.Close()
		}
	}

	res, err := f.Run(cfg, "lbm_m")
	if err != nil {
		t.Fatalf("fleet did not fail over: %v", err)
	}
	if res.CPI != 14 {
		t.Fatalf("replica produced CPI %v, want 14", res.CPI)
	}
	if down := f.DownNodes(); len(down) != 1 || down[0] != owner {
		t.Fatalf("DownNodes = %v, want [%s]", down, owner)
	}
	if v, _ := reg.Value("client.fleet.failovers"); v < 1 {
		t.Fatalf("client.fleet.failovers = %v, want >= 1", v)
	}

	// Subsequent jobs owned by the dead node route straight to replicas
	// without re-dialing it (it is marked down).
	for seed := uint64(10); seed < 20; seed++ {
		c := sim.DefaultConfig()
		c.Seed = seed
		if _, err := f.Run(c, "lbm_m"); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestFleetFailsOverOn429(t *testing.T) {
	// Node saturation: one daemon has a zero-size pool substitute — a
	// Simulate that blocks forever — and queue depth 1, so after the first
	// job it answers 429. The fleet must route around it immediately.
	block := make(chan struct{})
	defer close(block)
	var busyCount, okCount atomic.Int64
	servers := make([]*serve.Server, 2)
	addrs := make([]string, 2)
	var tss []*httptest.Server
	for i := 0; i < 2; i++ {
		var simf serve.SimulateFunc
		if i == 0 {
			simf = func(cfg sim.Config, wl string) (system.Result, error) {
				busyCount.Add(1)
				<-block
				return system.Result{}, nil
			}
		} else {
			simf = deterministicSim(&okCount)
		}
		s, err := serve.New(serve.Config{Workers: 1, QueueDepth: 1, RetryAfter: 50 * time.Millisecond, Simulate: simf})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		t.Cleanup(func() { ts.Close() })
		servers[i], addrs[i] = s, ts.URL
		tss = append(tss, ts)
	}
	_ = servers
	_ = tss
	f, err := NewFleet(addrs, FleetConfig{RetryBudget: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Saturate node 0 with async submissions (sync ones would block this
	// goroutine on the never-finishing simulation): one running + one
	// queued, confirmed via /healthz.
	for i := 0; i < 2; i++ {
		body := fmt.Sprintf(`{"workload":"mix_1","seed":%d}`, 100+i)
		resp, err := http.Post(addrs[0]+"/v1/jobs?async=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(addrs[0] + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			QueueDepth int `json:"queue_depth"`
			Busy       int `json:"busy"`
		}
		jerr := json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if jerr == nil && h.Busy == 1 && h.QueueDepth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node 0 never saturated (busy=%d depth=%d)", h.Busy, h.QueueDepth)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Now run many jobs through the fleet; all whose owner is node 0 must
	// fail over to node 1 and complete.
	for seed := uint64(1); seed <= 6; seed++ {
		cfg := sim.DefaultConfig()
		cfg.Seed = seed
		if _, err := f.Run(cfg, "mix_1"); err != nil {
			t.Fatalf("seed %d did not fail over from busy node: %v", seed, err)
		}
	}
	if okCount.Load() < 1 {
		t.Fatal("healthy node never simulated anything")
	}
	// The busy node must not be marked down — 429 is pushback, not death.
	if down := f.DownNodes(); len(down) != 0 {
		t.Fatalf("429 marked a node down: %v", down)
	}
}

func TestFleetTerminalErrorsDoNotFailOver(t *testing.T) {
	counts := make([]atomic.Int64, 2)
	_, _, f := fleetDaemons(t, 2, func(i int) serve.Config {
		return serve.Config{Workers: 1, Simulate: deterministicSim(&counts[i])}
	}, FleetConfig{})

	// An invalid spec is a 400 — terminal everywhere, no failover loop.
	_, err := f.Do(context.Background(), serve.JobSpec{})
	if err == nil {
		t.Fatal("empty spec should fail")
	}
	if counts[0].Load()+counts[1].Load() != 0 {
		t.Fatal("invalid spec reached a simulator")
	}
}

func TestFleetProbeReadmitsRecoveredNode(t *testing.T) {
	var count atomic.Int64
	_, tss, f := fleetDaemons(t, 2, func(i int) serve.Config {
		return serve.Config{Workers: 1, Simulate: deterministicSim(&count)}
	}, FleetConfig{Cooldown: time.Hour}) // cooldown too long to self-heal

	m := Normalize(tss[0].URL)
	f.MarkDown(m)
	if down := f.DownNodes(); len(down) != 1 {
		t.Fatalf("DownNodes = %v", down)
	}
	// The node is actually healthy; one probe pass re-admits it.
	f.ProbeDown(context.Background())
	if down := f.DownNodes(); len(down) != 0 {
		t.Fatalf("probe did not re-admit healthy node: %v", down)
	}
}

func TestFleetResultReplicaRead(t *testing.T) {
	dirs := make([]string, 2)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	var count atomic.Int64
	servers, tss, f := fleetDaemons(t, 2, func(i int) serve.Config {
		return serve.Config{Workers: 1, StoreDir: dirs[i], Simulate: deterministicSim(&count)}
	}, FleetConfig{})

	cfg := sim.DefaultConfig()
	cfg.Seed = 3
	key := system.Key(cfg, "ast_m")
	want, err := f.Run(cfg, "ast_m")
	if err != nil {
		t.Fatal(err)
	}

	// The result is in the owner's store; a ring-aware read finds it.
	got, ok, err := f.Result(context.Background(), key)
	if err != nil || !ok {
		t.Fatalf("Result: ok=%v err=%v", ok, err)
	}
	if got.CPI != want.CPI || got.Workload != want.Workload {
		t.Fatalf("replica read mismatch: %+v vs %+v", got, want)
	}
	_ = servers
	_ = tss
}
