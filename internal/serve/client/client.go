// Package client is the Go client for the fpbd simulation service
// (internal/serve). It submits jobs synchronously, transparently retrying
// queue-full (429) pushback with the server-advertised Retry-After delay,
// and adapts to exp.Backend so fpbexp can offload whole figure runs to a
// shared daemon.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fpb/internal/obs"
	"fpb/internal/serve"
	"fpb/internal/sim"
	"fpb/internal/system"
)

// Client talks to one fpbd daemon.
type Client struct {
	base string
	hc   *http.Client
	// RetryBudget bounds how long Do keeps retrying 429 pushback before
	// giving up (default 2 minutes; the queue of a busy daemon drains at
	// simulation granularity, so waits are long but bounded).
	RetryBudget time.Duration

	// Caller-side telemetry, populated by Instrument. All fields are
	// nil-safe no-ops until then.
	cRequests  *obs.Counter
	cRetry429  *obs.Counter
	cErrors    *obs.Counter
	hRequestMs *obs.Histogram
}

// Instrument registers the client's remote-call telemetry — request count,
// 429 retries, terminal errors, and end-to-end request latency (including
// retry waits) — into reg. Call once, before concurrent use.
func (c *Client) Instrument(reg *obs.Registry) {
	c.cRequests = reg.Counter("client.requests")
	c.cRetry429 = reg.Counter("client.retries_429")
	c.cErrors = reg.Counter("client.errors")
	c.hRequestMs = reg.Histogram("client.request_ms", obs.LatencyBucketsMs)
	reg.SetHelp("client.requests", "jobs submitted to the remote daemon")
	reg.SetHelp("client.retries_429", "429 pushback retries while submitting")
	reg.SetHelp("client.errors", "job submissions that failed terminally")
	reg.SetHelp("client.request_ms", "end-to-end remote job latency incl. retries (ms)")
}

// New returns a client for addr ("host:port" or a full http:// URL).
func New(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		base:        strings.TrimRight(addr, "/"),
		hc:          &http.Client{},
		RetryBudget: 2 * time.Minute,
	}
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: health: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: health: %s", resp.Status)
	}
	return nil
}

// Do submits one job synchronously and returns its final status. 429
// responses are retried after the advertised Retry-After until ctx or the
// retry budget expires; other non-2xx statuses fail immediately.
func (c *Client) Do(ctx context.Context, spec serve.JobSpec) (serve.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return serve.JobStatus{}, fmt.Errorf("client: encoding spec: %w", err)
	}
	c.cRequests.Inc()
	start := time.Now()
	st, err := c.doRetries(ctx, body)
	// Latency includes retry waits: it is the caller-observed cost of the
	// remote call, not the server's service time.
	c.hRequestMs.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	if err != nil {
		c.cErrors.Inc()
	}
	return st, err
}

func (c *Client) doRetries(ctx context.Context, body []byte) (serve.JobStatus, error) {
	deadline := time.Now().Add(c.RetryBudget)
	for {
		st, retry, err := c.post(ctx, body)
		if err == nil || !retry {
			return st, err
		}
		if time.Now().After(deadline) {
			return serve.JobStatus{}, fmt.Errorf("client: retry budget exhausted: %w", err)
		}
		c.cRetry429.Inc()
		select {
		case <-time.After(retryDelay(retryAfterHeader(err))):
		case <-ctx.Done():
			return serve.JobStatus{}, ctx.Err()
		}
	}
}

// retryableError carries the Retry-After hint out of post.
type retryableError struct {
	after time.Duration
	msg   string
}

func (e *retryableError) Error() string { return e.msg }

func retryAfterHeader(err error) time.Duration {
	if re, ok := err.(*retryableError); ok {
		return re.after
	}
	return 0
}

func retryDelay(hint time.Duration) time.Duration {
	if hint > 0 {
		return hint
	}
	return 500 * time.Millisecond
}

func (c *Client) post(ctx context.Context, body []byte) (serve.JobStatus, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return serve.JobStatus{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return serve.JobStatus{}, false, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return serve.JobStatus{}, false, fmt.Errorf("client: reading response: %w", err)
	}
	var st serve.JobStatus
	if jerr := json.Unmarshal(raw, &st); jerr != nil && resp.StatusCode == http.StatusOK {
		return serve.JobStatus{}, false, fmt.Errorf("client: decoding response: %w", jerr)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return st, false, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		after := time.Duration(0)
		if sec, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil {
			after = time.Duration(sec) * time.Second
		}
		return serve.JobStatus{}, true, &retryableError{after: after,
			msg: fmt.Sprintf("server busy (429): %s", st.Error)}
	default:
		msg := st.Error
		if msg == "" {
			msg = strings.TrimSpace(string(raw))
		}
		return serve.JobStatus{}, false, fmt.Errorf("client: %s: %s", resp.Status, msg)
	}
}

// Run simulates one (config, workload) pair on the daemon. Its signature
// matches exp.Backend, so `fpbexp -remote` plugs it straight into a Runner.
func (c *Client) Run(cfg sim.Config, wl string) (system.Result, error) {
	st, err := c.Do(context.Background(), serve.JobSpec{Workload: wl, Config: &cfg})
	if err != nil {
		return system.Result{}, err
	}
	if st.State != serve.StateDone || st.Result == nil {
		return system.Result{}, fmt.Errorf("client: job %s: state %s: %s", st.ID, st.State, st.Error)
	}
	return *st.Result, nil
}
