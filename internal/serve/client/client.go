// Package client is the Go client for the fpbd simulation service
// (internal/serve). It submits jobs synchronously, transparently retrying
// queue-full (429) pushback with the server-advertised Retry-After delay
// (jittered, so a saturated fleet never sees synchronized retry storms), and
// adapts to exp.Backend so fpbexp can offload whole figure runs to a shared
// daemon. Fleet (fleet.go) layers consistent-hash routing and
// retry-on-next-replica failover over a set of these single-node clients.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fpb/internal/obs"
	"fpb/internal/serve"
	"fpb/internal/sim"
	"fpb/internal/system"
)

// Client talks to one fpbd daemon.
type Client struct {
	base string
	hc   *http.Client
	// RetryBudget bounds how long Do keeps retrying 429 pushback before
	// giving up (default 2 minutes; the queue of a busy daemon drains at
	// simulation granularity, so waits are long but bounded).
	RetryBudget time.Duration

	// Caller-side telemetry, populated by Instrument. All fields are
	// nil-safe no-ops until then.
	cRequests  *obs.Counter
	cRetry429  *obs.Counter
	cErrors    *obs.Counter
	hRequestMs *obs.Histogram
}

// Instrument registers the client's remote-call telemetry — request count,
// 429 retries, terminal errors, and end-to-end request latency (including
// retry waits) — into reg. Call once, before concurrent use.
func (c *Client) Instrument(reg *obs.Registry) {
	c.cRequests = reg.Counter("client.requests")
	c.cRetry429 = reg.Counter("client.retries_429")
	c.cErrors = reg.Counter("client.errors")
	c.hRequestMs = reg.Histogram("client.request_ms", obs.LatencyBucketsMs)
	reg.SetHelp("client.requests", "jobs submitted to the remote daemon")
	reg.SetHelp("client.retries_429", "429 pushback retries while submitting")
	reg.SetHelp("client.errors", "job submissions that failed terminally")
	reg.SetHelp("client.request_ms", "end-to-end remote job latency incl. retries (ms)")
}

// Normalize canonicalizes a daemon address ("host:port" or a full http://
// URL) into the base-URL form every fleet layer uses as the node's identity.
// Ring placement hashes these strings, so all participants must normalize
// the same way — spelling a node "10.0.0.1:8080" here and
// "http://10.0.0.1:8080" there would split it into two ring members.
func Normalize(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// New returns a client for addr ("host:port" or a full http:// URL).
func New(addr string) *Client {
	return &Client{
		base:        Normalize(addr),
		hc:          &http.Client{},
		RetryBudget: 2 * time.Minute,
	}
}

// Base returns the client's normalized base URL (its fleet identity).
func (c *Client) Base() string { return c.base }

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: health: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: health: %s", resp.Status)
	}
	return nil
}

// Do submits one job synchronously and returns its final status. 429
// responses are retried after the advertised Retry-After (with jitter, see
// RetryDelay) until ctx or the retry budget expires; other non-2xx statuses
// fail immediately.
func (c *Client) Do(ctx context.Context, spec serve.JobSpec) (serve.JobStatus, error) {
	c.cRequests.Inc()
	start := time.Now()
	st, err := c.doRetries(ctx, spec)
	// Latency includes retry waits: it is the caller-observed cost of the
	// remote call, not the server's service time.
	c.hRequestMs.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	if err != nil {
		c.cErrors.Inc()
	}
	return st, err
}

func (c *Client) doRetries(ctx context.Context, spec serve.JobSpec) (serve.JobStatus, error) {
	deadline := time.Now().Add(c.RetryBudget)
	for {
		st, err := c.Submit(ctx, spec)
		var busy *BusyError
		if err == nil || !errors.As(err, &busy) {
			return st, err
		}
		if time.Now().After(deadline) {
			return serve.JobStatus{}, fmt.Errorf("client: retry budget exhausted: %w", err)
		}
		c.cRetry429.Inc()
		select {
		case <-time.After(RetryDelay(busy.After)):
		case <-ctx.Done():
			return serve.JobStatus{}, ctx.Err()
		}
	}
}

// BusyError is 429 pushback from a daemon whose job queue is full. After
// carries the server's exact Retry-After value (0 when absent/unparseable).
// It is retryable: on the same node after waiting, or immediately on the
// next replica (what Fleet does).
type BusyError struct {
	Node  string
	After time.Duration
	Msg   string
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("server busy (429): %s", e.Msg)
}

// StatusError is a terminal non-2xx response (bad spec, failed simulation,
// draining node, internal error). Code classifies it: 5xx/503 suggest the
// node itself is unhealthy (Fleet fails over), 4xx means the request itself
// is bad and would fail identically on every replica.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: %d: %s", e.Code, e.Msg)
}

// defaultRetryDelay is used when a 429 carries no parseable Retry-After.
const defaultRetryDelay = 500 * time.Millisecond

// RetryDelay converts a Retry-After hint into the wait actually slept: the
// server's exact advertised value (or defaultRetryDelay when absent),
// jittered uniformly over [d/2, d] ("equal jitter"). Without jitter, every
// client a saturated daemon rejected in the same window would sleep the
// identical advertised delay and stampede back in lockstep, re-saturating
// the queue; the randomized half keeps mean backoff at 3d/4 while spreading
// re-arrivals across half the advertised window.
func RetryDelay(hint time.Duration) time.Duration {
	d := hint
	if d <= 0 {
		d = defaultRetryDelay
	}
	half := d / 2
	// math/rand's global source is safe for concurrent use; retry timing
	// deliberately does NOT come from the simulation's deterministic RNG —
	// it must differ across clients, never across results.
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// parseRetryAfter reads a Retry-After header value: delay-seconds (integer
// per the RFC, fractional as our server emits for sub-second configs) or an
// HTTP-date. Returns 0 when absent or unparseable.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.ParseFloat(h, 64); err == nil && secs >= 0 {
		return time.Duration(secs * float64(time.Second))
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// Submit posts spec exactly once — no retries, no waiting. Queue-full
// pushback returns a *BusyError carrying the parsed Retry-After; any other
// non-OK response returns a *StatusError; transport failures return the
// wrapped net/http error. Fleet builds replica failover on this: it wants
// the 429 immediately so it can try the next ring owner instead of camping
// on a saturated node.
func (c *Client) Submit(ctx context.Context, spec serve.JobSpec) (serve.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return serve.JobStatus{}, fmt.Errorf("client: encoding spec: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return serve.JobStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return serve.JobStatus{}, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return serve.JobStatus{}, fmt.Errorf("client: reading response: %w", err)
	}
	var st serve.JobStatus
	if jerr := json.Unmarshal(raw, &st); jerr != nil && resp.StatusCode == http.StatusOK {
		return serve.JobStatus{}, fmt.Errorf("client: decoding response: %w", jerr)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return st, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		return serve.JobStatus{}, &BusyError{
			Node:  c.base,
			After: parseRetryAfter(resp.Header.Get("Retry-After")),
			Msg:   st.Error,
		}
	default:
		msg := st.Error
		if msg == "" {
			msg = strings.TrimSpace(string(raw))
		}
		return serve.JobStatus{}, &StatusError{Code: resp.StatusCode, Msg: msg}
	}
}

// Result fetches the stored result for a content key (GET /v1/results/{key})
// from this node's local store. ok=false is a clean miss (the node does not
// hold the key); err covers transport and server failures.
func (c *Client) Result(ctx context.Context, key string) (res system.Result, ok bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/results/"+key, nil)
	if err != nil {
		return system.Result{}, false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return system.Result{}, false, fmt.Errorf("client: result: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return system.Result{}, false, fmt.Errorf("client: result: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		if err := json.Unmarshal(raw, &res); err != nil {
			return system.Result{}, false, fmt.Errorf("client: result: %w", err)
		}
		return res, true, nil
	case http.StatusNotFound:
		return system.Result{}, false, nil
	default:
		return system.Result{}, false, &StatusError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(raw))}
	}
}

// Run simulates one (config, workload) pair on the daemon. Its signature
// matches exp.Backend, so `fpbexp -remote` plugs it straight into a Runner.
func (c *Client) Run(cfg sim.Config, wl string) (system.Result, error) {
	st, err := c.Do(context.Background(), serve.JobSpec{Workload: wl, Config: &cfg})
	if err != nil {
		return system.Result{}, err
	}
	if st.State != serve.StateDone || st.Result == nil {
		return system.Result{}, fmt.Errorf("client: job %s: state %s: %s", st.ID, st.State, st.Error)
	}
	return *st.Result, nil
}
