package client

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"fpb/internal/exp"
	"fpb/internal/obs"
	"fpb/internal/serve"
	"fpb/internal/sim"
	"fpb/internal/system"
)

func startDaemon(t *testing.T, cfg serve.Config) (*serve.Server, *Client) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, New(ts.URL)
}

func fake(sims *atomic.Int64, delay time.Duration) serve.SimulateFunc {
	return func(cfg sim.Config, wl string) (system.Result, error) {
		sims.Add(1)
		time.Sleep(delay)
		return system.Result{Workload: wl, CPI: float64(cfg.Seed) + 1}, nil
	}
}

func TestClientRoundTrip(t *testing.T) {
	var sims atomic.Int64
	_, c := startDaemon(t, serve.Config{Workers: 2, Simulate: fake(&sims, 0)})

	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health: %v", err)
	}
	cfg := sim.DefaultConfig()
	cfg.Seed = 11
	res, err := c.Run(cfg, "lbm_m")
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "lbm_m" || res.CPI != 12 {
		t.Errorf("res = %+v", res)
	}
}

func TestClientRetriesQueueFull(t *testing.T) {
	var sims atomic.Int64
	_, c := startDaemon(t, serve.Config{
		Workers:    1,
		QueueDepth: 1,
		RetryAfter: time.Millisecond, // rounds up to 1s header; client honors it
		Simulate:   fake(&sims, 50*time.Millisecond),
	})
	c.RetryBudget = 30 * time.Second

	// More concurrent distinct jobs than worker+queue slots: some submits
	// must see 429 and retry until the queue drains.
	const jobs = 6
	errc := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		go func(seed uint64) {
			cfg := sim.DefaultConfig()
			cfg.Seed = seed
			_, err := c.Run(cfg, "mcf_m")
			errc <- err
		}(uint64(i + 1))
	}
	for i := 0; i < jobs; i++ {
		if err := <-errc; err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
	if sims.Load() != jobs {
		t.Errorf("simulations = %d, want %d", sims.Load(), jobs)
	}
}

// TestRunnerOffloadsToDaemon wires the client into exp.Runner as its
// Backend: a figure-style Prewarm against a shared daemon must simulate each
// distinct pair exactly once and serve Runner reads from the remote results.
func TestRunnerOffloadsToDaemon(t *testing.T) {
	var sims atomic.Int64
	_, c := startDaemon(t, serve.Config{Workers: 4, QueueDepth: 32, Simulate: fake(&sims, 0)})

	r := exp.NewRunner(exp.Options{
		InstrPerCore: 1000,
		Workloads:    []string{"mcf_m", "lbm_m"},
		Workers:      4,
		Backend:      c.Run,
	})
	base := r.BaseConfig()
	mod := base
	mod.Seed = 99
	if err := r.Prewarm([]sim.Config{base, mod}, []string{"mcf_m", "lbm_m"}); err != nil {
		t.Fatal(err)
	}
	// Every Run below must be a warm hit — no new daemon simulations.
	for _, cfg := range []sim.Config{base, mod} {
		for _, wl := range []string{"mcf_m", "lbm_m"} {
			res, err := r.Run(cfg, wl)
			if err != nil {
				t.Fatal(err)
			}
			if res.Workload != wl {
				t.Errorf("remote result for %s: %+v", wl, res)
			}
		}
	}
	if sims.Load() != 4 {
		t.Errorf("daemon ran %d simulations, want 4", sims.Load())
	}
	if r.Simulations() != 4 {
		t.Errorf("runner recorded %d backend calls, want 4", r.Simulations())
	}
}

// TestClientAndRunnerTelemetry: the instrumented client and an exp.Runner
// sharing one registry record requests, 429 retries, backend calls and
// latency histograms — the caller-side half of the fleet observability
// story.
func TestClientAndRunnerTelemetry(t *testing.T) {
	var sims atomic.Int64
	_, c := startDaemon(t, serve.Config{
		Workers:    1,
		QueueDepth: 1,
		RetryAfter: time.Millisecond,
		Simulate:   fake(&sims, 20*time.Millisecond),
	})
	c.RetryBudget = 30 * time.Second
	reg := obs.NewRegistry()
	c.Instrument(reg)

	r := exp.NewRunner(exp.Options{
		InstrPerCore: 1000,
		Workloads:    []string{"mcf_m"},
		Workers:      4,
		Backend:      c.Run,
		Metrics:      reg,
	})
	// 4 distinct configs against 1 worker + 1 queue slot: some submissions
	// must hit 429 pushback and retry.
	cfgs := make([]sim.Config, 4)
	for i := range cfgs {
		cfgs[i] = r.BaseConfig()
		cfgs[i].Seed = uint64(i + 1)
	}
	if err := r.Prewarm(cfgs, []string{"mcf_m"}); err != nil {
		t.Fatal(err)
	}

	if v, _ := reg.Value("client.requests"); v != 4 {
		t.Errorf("client.requests = %v, want 4", v)
	}
	if v, _ := reg.Value("client.retries_429"); v < 1 {
		t.Errorf("client.retries_429 = %v, want >= 1 (1 worker, 1 slot, 4 jobs)", v)
	}
	if v, _ := reg.Value("client.errors"); v != 0 {
		t.Errorf("client.errors = %v, want 0", v)
	}
	if v, _ := reg.Value("exp.sims"); v != 4 {
		t.Errorf("exp.sims = %v, want 4", v)
	}
	if n := reg.Histogram("client.request_ms", nil).Count(); n != 4 {
		t.Errorf("client.request_ms count = %d, want 4", n)
	}
	if n := reg.Histogram("exp.backend_ms", nil).Count(); n != 4 {
		t.Errorf("exp.backend_ms count = %d, want 4", n)
	}
}
