package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fpb/internal/sim"
	"fpb/internal/system"
)

func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := system.Key(sim.DefaultConfig(), "mcf_m")

	if _, ok, err := st.Get(key); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	want := system.Result{Workload: "mcf_m", CPI: 42.5, Writes: 7,
		Metrics: map[string]float64{"mem.writes": 7}}
	if err := st.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(key)
	if !ok || err != nil {
		t.Fatalf("after Put: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip: got %+v want %+v", got, want)
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
	// No temp litter after an atomic Put.
	ents, _ := os.ReadDir(st.Dir())
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "put-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestStoreRejectsMalformedKeys(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"",
		"short",
		"../../../../etc/passwd0000000000000000000000000000000000000000000000",
		strings.Repeat("Z", 64),
	} {
		if _, _, err := st.Get(key); err == nil {
			t.Errorf("Get(%q) accepted a malformed key", key)
		}
		if err := st.Put(key, system.Result{}); err == nil {
			t.Errorf("Put(%q) accepted a malformed key", key)
		}
	}
}

func TestStoreReportsCorruptEntries(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := system.Key(sim.DefaultConfig(), "mcf_m")
	if err := os.WriteFile(filepath.Join(st.Dir(), key+".json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(key); ok || err == nil {
		t.Errorf("corrupt entry: ok=%v err=%v, want error", ok, err)
	}
}
