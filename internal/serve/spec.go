// Package serve is the simulation-as-a-service layer: an HTTP JSON API
// (mounted by cmd/fpbd) that accepts simulation jobs, runs them on a bounded
// worker pool behind a FIFO queue with explicit backpressure, coalesces
// concurrent identical requests into one simulation, and persists results in
// a content-addressed disk store so restarts serve warm answers without
// re-simulating. Stdlib-only, like the rest of the tree.
//
// Endpoints:
//
//	GET  /healthz           liveness + queue/worker snapshot
//	GET  /metrics           the server's obs metrics registry; legacy JSON
//	                        by default, Prometheus text exposition with
//	                        ?format=prometheus or an Accept header of
//	                        text/plain / application/openmetrics-text
//	POST /v1/jobs           run a job (blocks until done); ?async=1 returns
//	                        202 immediately with an id to poll
//	GET  /v1/jobs/{id}      status/result of a previously submitted job
//	GET  /v1/checkpoints/{key}  raw warmup checkpoint image from the local store
//	PUT  /v1/checkpoints/{key}  store a checkpoint image (validated on upload)
//	GET  /debug/pprof/...   runtime profiles, only when Config.EnablePprof
//
// Jobs are identified by system.Key — the SHA-256 of the canonical
// (config, workload) serialization — so two requests that spell the same
// simulation differently still share one queue slot, one worker, and one
// store entry. Each accepted job additionally gets a correlation ID
// (JobStatus.ID) that appears on every structured log line and in the
// job's Lifecycle record, so one grep follows a job accept → queue →
// worker → store.
package serve

import (
	"fmt"

	"fpb/internal/sim"
	"fpb/internal/system"
)

// JobSpec is the request body of POST /v1/jobs. Either a full sim.Config is
// supplied in Config, or the server starts from sim.DefaultConfig; the
// scalar convenience fields then override whichever base was chosen (so a
// curl one-liner needs nothing but a workload and a scheme name).
type JobSpec struct {
	// Workload names the workload to simulate (required).
	Workload string `json:"workload"`
	// Config optionally carries the full simulator configuration.
	Config *sim.Config `json:"config,omitempty"`
	// Scheme/Mapping name overrides, as accepted by sim.ParseScheme and
	// sim.ParseMapping ("fpb", "dimm+chip", "bim", ...).
	Scheme  string `json:"scheme,omitempty"`
	Mapping string `json:"mapping,omitempty"`
	// Seed overrides the RNG seed when non-zero.
	Seed uint64 `json:"seed,omitempty"`
	// InstrPerCore overrides the per-core instruction budget when non-zero.
	InstrPerCore uint64 `json:"instr_per_core,omitempty"`
	// WarmupCycles declares a warmup phase when non-zero
	// (sim.Config.WarmupCycles): the node warm-starts the job from its
	// checkpoint store when the warmup prefix's image is present.
	WarmupCycles uint64 `json:"warmup_cycles,omitempty"`
	// WarmupScheme names the scheme the warmup phase runs under (default:
	// the config's WarmupScheme, i.e. Ideal for a default config).
	WarmupScheme string `json:"warmup_scheme,omitempty"`
}

// Resolve produces the validated (config, workload) pair the spec denotes.
func (s JobSpec) Resolve() (sim.Config, string, error) {
	if s.Workload == "" {
		return sim.Config{}, "", fmt.Errorf("serve: job spec: workload is required")
	}
	cfg := sim.DefaultConfig()
	if s.Config != nil {
		cfg = *s.Config
	}
	if s.Scheme != "" {
		sc, err := sim.ParseScheme(s.Scheme)
		if err != nil {
			return sim.Config{}, "", fmt.Errorf("serve: job spec: %w", err)
		}
		cfg.Scheme = sc
	}
	if s.Mapping != "" {
		m, err := sim.ParseMapping(s.Mapping)
		if err != nil {
			return sim.Config{}, "", fmt.Errorf("serve: job spec: %w", err)
		}
		cfg.CellMapping = m
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.InstrPerCore != 0 {
		cfg.InstrPerCore = s.InstrPerCore
	}
	if s.WarmupCycles != 0 {
		cfg.WarmupCycles = s.WarmupCycles
	}
	if s.WarmupScheme != "" {
		ws, err := sim.ParseScheme(s.WarmupScheme)
		if err != nil {
			return sim.Config{}, "", fmt.Errorf("serve: job spec: warmup scheme: %w", err)
		}
		cfg.WarmupScheme = ws
	}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, "", fmt.Errorf("serve: job spec: %w", err)
	}
	return cfg, s.Workload, nil
}

// JobState enumerates a job's lifecycle.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: a worker is simulating it.
	StateRunning JobState = "running"
	// StateDone: finished successfully; Result is populated.
	StateDone JobState = "done"
	// StateFailed: the simulation returned an error; Error is populated.
	StateFailed JobState = "failed"
)

// Lifecycle outcomes.
const (
	// OutcomeFresh: the job was admitted to the queue and simulated.
	OutcomeFresh = "fresh"
	// OutcomeCacheHit: the job was answered from the persistent store.
	OutcomeCacheHit = "cache-hit"
)

// Lifecycle is the per-job trace record, keyed by the job's correlation ID.
// Stage timings are wall-clock milliseconds measured by the server; zero
// values mean the stage has not happened (yet) for this job. Lifecycle is
// observability data only — it never feeds the content-addressed key or the
// stored result, so identical specs still dedupe regardless of timing.
type Lifecycle struct {
	// Outcome is OutcomeFresh or OutcomeCacheHit.
	Outcome string `json:"outcome"`
	// Coalesced counts additional requests that attached to this job
	// while it was in flight.
	Coalesced int `json:"coalesced,omitempty"`
	// QueueWaitMs is accept-to-dequeue wait.
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	// SimMs is the simulation runtime.
	SimMs float64 `json:"sim_ms,omitempty"`
	// StoreWriteMs is the persistent store write latency.
	StoreWriteMs float64 `json:"store_write_ms,omitempty"`
}

// JobStatus is the response body of POST /v1/jobs and GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	Key   string   `json:"key"`
	State JobState `json:"state"`
	// Cached reports the result was served from the persistent store (or
	// coalesced onto an identical in-flight job) rather than freshly
	// simulated for this request.
	Cached bool           `json:"cached,omitempty"`
	Result *system.Result `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
	// Lifecycle carries the job's trace record once the server has begun
	// tracking it (outcome known).
	Lifecycle *Lifecycle `json:"lifecycle,omitempty"`
}
