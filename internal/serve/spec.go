// Package serve is the simulation-as-a-service layer: an HTTP JSON API
// (mounted by cmd/fpbd) that accepts simulation jobs, runs them on a bounded
// worker pool behind a FIFO queue with explicit backpressure, coalesces
// concurrent identical requests into one simulation, and persists results in
// a content-addressed disk store so restarts serve warm answers without
// re-simulating. Stdlib-only, like the rest of the tree.
//
// Endpoints:
//
//	GET  /healthz           liveness + queue/worker snapshot
//	GET  /metrics           JSON dump of the server's obs metrics registry
//	POST /v1/jobs           run a job (blocks until done); ?async=1 returns
//	                        202 immediately with an id to poll
//	GET  /v1/jobs/{id}      status/result of a previously submitted job
//
// Jobs are identified by system.Key — the SHA-256 of the canonical
// (config, workload) serialization — so two requests that spell the same
// simulation differently still share one queue slot, one worker, and one
// store entry.
package serve

import (
	"fmt"

	"fpb/internal/sim"
	"fpb/internal/system"
)

// JobSpec is the request body of POST /v1/jobs. Either a full sim.Config is
// supplied in Config, or the server starts from sim.DefaultConfig; the
// scalar convenience fields then override whichever base was chosen (so a
// curl one-liner needs nothing but a workload and a scheme name).
type JobSpec struct {
	// Workload names the workload to simulate (required).
	Workload string `json:"workload"`
	// Config optionally carries the full simulator configuration.
	Config *sim.Config `json:"config,omitempty"`
	// Scheme/Mapping name overrides, as accepted by sim.ParseScheme and
	// sim.ParseMapping ("fpb", "dimm+chip", "bim", ...).
	Scheme  string `json:"scheme,omitempty"`
	Mapping string `json:"mapping,omitempty"`
	// Seed overrides the RNG seed when non-zero.
	Seed uint64 `json:"seed,omitempty"`
	// InstrPerCore overrides the per-core instruction budget when non-zero.
	InstrPerCore uint64 `json:"instr_per_core,omitempty"`
}

// Resolve produces the validated (config, workload) pair the spec denotes.
func (s JobSpec) Resolve() (sim.Config, string, error) {
	if s.Workload == "" {
		return sim.Config{}, "", fmt.Errorf("serve: job spec: workload is required")
	}
	cfg := sim.DefaultConfig()
	if s.Config != nil {
		cfg = *s.Config
	}
	if s.Scheme != "" {
		sc, err := sim.ParseScheme(s.Scheme)
		if err != nil {
			return sim.Config{}, "", fmt.Errorf("serve: job spec: %w", err)
		}
		cfg.Scheme = sc
	}
	if s.Mapping != "" {
		m, err := sim.ParseMapping(s.Mapping)
		if err != nil {
			return sim.Config{}, "", fmt.Errorf("serve: job spec: %w", err)
		}
		cfg.CellMapping = m
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.InstrPerCore != 0 {
		cfg.InstrPerCore = s.InstrPerCore
	}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, "", fmt.Errorf("serve: job spec: %w", err)
	}
	return cfg, s.Workload, nil
}

// JobState enumerates a job's lifecycle.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: a worker is simulating it.
	StateRunning JobState = "running"
	// StateDone: finished successfully; Result is populated.
	StateDone JobState = "done"
	// StateFailed: the simulation returned an error; Error is populated.
	StateFailed JobState = "failed"
)

// JobStatus is the response body of POST /v1/jobs and GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	Key   string   `json:"key"`
	State JobState `json:"state"`
	// Cached reports the result was served from the persistent store (or
	// coalesced onto an identical in-flight job) rather than freshly
	// simulated for this request.
	Cached bool           `json:"cached,omitempty"`
	Result *system.Result `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}
