package ring

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestPlacementDeterministicAndOrderIndependent(t *testing.T) {
	a := New(64, "n1", "n2", "n3")
	b := New(64, "n3", "n1", "n2", "n2", "")
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("Len = %d, %d; want 3", a.Len(), b.Len())
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		oa, ob := a.Owners(key, 2), b.Owners(key, 2)
		if len(oa) != 2 || len(ob) != 2 {
			t.Fatalf("Owners(%q) lengths %d, %d", key, len(oa), len(ob))
		}
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("Owners(%q) differ between construction orders: %v vs %v", key, oa, ob)
			}
		}
	}
}

func TestOwnersDistinctAndFull(t *testing.T) {
	r := New(32, "a", "b", "c", "d")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		all := r.Owners(key, 0) // full failover order
		if len(all) != 4 {
			t.Fatalf("full owner list has %d entries: %v", len(all), all)
		}
		seen := map[string]bool{}
		for _, m := range all {
			if seen[m] {
				t.Fatalf("duplicate member in owner list: %v", all)
			}
			seen[m] = true
		}
		// Requesting more than the member count clamps.
		if got := r.Owners(key, 99); len(got) != 4 {
			t.Fatalf("Owners(n=99) = %d entries", len(got))
		}
	}
}

func TestBalanceAndShares(t *testing.T) {
	members := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080", "10.0.0.4:8080", "10.0.0.5:8080"}
	r := New(DefaultVirtualNodes, members...)

	shares := r.Shares()
	sum := 0.0
	for _, m := range members {
		s := shares[m]
		sum += s
		if s < 0.05 || s > 0.45 {
			t.Errorf("share of %s = %.3f, badly unbalanced", m, s)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %.6f, want 1", sum)
	}

	// Empirical placement should roughly match the analytic shares.
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d-%d", i, rng.Int63()))]++
	}
	for _, m := range members {
		frac := float64(counts[m]) / n
		if diff := frac - shares[m]; diff < -0.05 || diff > 0.05 {
			t.Errorf("member %s: empirical %.3f vs analytic share %.3f", m, frac, shares[m])
		}
	}
}

func TestMembershipChangeMovesFewKeys(t *testing.T) {
	before := New(64, "a", "b", "c", "d")
	after := New(64, "a", "b", "c") // d removed
	moved, total := 0, 5000
	for i := 0; i < total; i++ {
		key := fmt.Sprintf("key-%d", i)
		ob, oa := before.Owner(key), after.Owner(key)
		if ob != "d" && ob != oa {
			moved++
		}
	}
	// Keys not owned by the removed member must not move at all; allow zero
	// tolerance — that is the consistent-hashing contract.
	if moved != 0 {
		t.Fatalf("%d/%d keys owned by surviving members moved on member removal", moved, total)
	}
}

func TestSingleMemberOwnsEverything(t *testing.T) {
	r := New(8, "solo")
	if got := r.Owner("anything"); got != "solo" {
		t.Fatalf("Owner = %q", got)
	}
	shares := r.Shares()
	if s := shares["solo"]; s < 0.999 || s > 1.001 {
		t.Fatalf("solo share = %v", s)
	}
}

func TestEmptyRing(t *testing.T) {
	r := New(8)
	if r.Owner("k") != "" || r.Owners("k", 3) != nil || r.Len() != 0 {
		t.Fatal("empty ring should own nothing")
	}
}

func TestTrackerCooldownAndRecovery(t *testing.T) {
	now := time.Unix(1000, 0)
	tr := NewTracker(5 * time.Second)
	tr.SetClock(func() time.Time { return now })

	if !tr.Alive("n1") {
		t.Fatal("unknown member should be alive")
	}
	tr.MarkDown("n1")
	if tr.Alive("n1") {
		t.Fatal("n1 should be down")
	}
	if d := tr.Down(); len(d) != 1 || d[0] != "n1" {
		t.Fatalf("Down = %v", d)
	}

	// Explicit recovery.
	tr.MarkAlive("n1")
	if !tr.Alive("n1") {
		t.Fatal("MarkAlive should clear down state")
	}

	// Cooldown-based recovery.
	tr.MarkDown("n1")
	now = now.Add(6 * time.Second)
	if !tr.Alive("n1") {
		t.Fatal("cooldown elapsed; n1 should be retryable")
	}
	if d := tr.Down(); len(d) != 0 {
		t.Fatalf("Down after recovery = %v", d)
	}
}
