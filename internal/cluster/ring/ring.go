// Package ring implements the consistent-hash ring that places
// content-addressed simulation keys (system.Key) onto fleet nodes, plus a
// small health tracker the routing layers overlay on it.
//
// Placement is deterministic and order-independent: every participant —
// daemons, the sweep coordinator, failover clients — that is configured with
// the same member set computes the same owner list for every key, with no
// coordination protocol. Each member contributes a fixed number of virtual
// points (hashes of "member#i"), so keyspace shares stay roughly even and
// adding or removing one member only moves the keys in its arcs.
//
// The ring itself is immutable after construction; membership changes build
// a new ring. Liveness is NOT part of placement — a down node still owns its
// arcs, and callers walk the successor list (Owners) to find a live replica.
// Keeping placement independent of health is what makes failover
// deterministic: every client agrees on the preference order of nodes for a
// key regardless of what it currently believes about their health.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// DefaultVirtualNodes is the per-member virtual point count. 64 points keeps
// the max/min keyspace share ratio under ~1.5 for small fleets while the
// ring stays tiny (a 16-node fleet is 1024 points).
const DefaultVirtualNodes = 64

type point struct {
	h    uint64
	node string
}

// Ring is an immutable consistent-hash ring over a member set.
type Ring struct {
	vnodes  int
	members []string // sorted, deduplicated
	points  []point  // sorted by hash
}

// New builds a ring with vnodes virtual points per member (vnodes <= 0 uses
// DefaultVirtualNodes). Duplicate and empty member names are dropped; the
// resulting placement is independent of the order members are given in.
func New(vnodes int, members ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{h: pointHash(m, i), node: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.h != b.h {
			return a.h < b.h
		}
		// Hash collisions between distinct members are broken by name so
		// placement stays deterministic.
		return a.node < b.node
	})
	return r
}

// pointHash hashes one virtual point. SHA-256 (truncated to 64 bits) rather
// than a fast hash: point hashing happens only at ring construction, and the
// even distribution matters more than speed.
func pointHash(member string, i int) uint64 {
	sum := sha256.Sum256([]byte(member + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// KeyHash positions a content key on the ring. Keys are system.Key hex
// strings (already uniformly distributed), but hashing again keeps placement
// well-defined for arbitrary strings.
func KeyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Len reports the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the sorted member set (a copy).
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Contains reports whether member is on the ring.
func (r *Ring) Contains(member string) bool {
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}

// Owner returns the primary owner of key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct members in preference order for key: the
// owner of the first virtual point at or clockwise after the key's hash,
// then the next distinct members clockwise. n <= 0 (or n beyond the member
// count) returns every member, so Owners(key, Len()) is the full failover
// order for the key.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	h := KeyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}

// Shares returns each member's owned fraction of the keyspace (primary
// ownership only; fractions sum to 1 on a non-empty ring). The serving
// daemons export their own share as a gauge so a Prometheus view shows ring
// balance at a glance.
func (r *Ring) Shares() map[string]float64 {
	out := make(map[string]float64, len(r.members))
	if len(r.points) == 0 {
		return out
	}
	const whole = float64(1<<63) * 2 // 2^64 as float64
	for i, p := range r.points {
		// The arc ENDING at point i (hash h_i) belongs to p.node: keys hash
		// into (h_{i-1}, h_i] and search clockwise to h_i first.
		prev := r.points[(i+len(r.points)-1)%len(r.points)].h
		arc := p.h - prev // wraps correctly in uint64 arithmetic
		if len(r.points) == 1 {
			arc = ^uint64(0)
		}
		out[p.node] += float64(arc) / whole
	}
	return out
}

// Tracker overlays liveness on a member set. It holds no network code: the
// owner (a probing loop, a client that just saw a connection error) feeds it
// observations, and routing layers consult Alive to skip members that are
// currently believed down. A down member recovers either by an explicit
// MarkAlive (a successful probe) or automatically once its cooldown expires,
// so a fleet with no prober still retries dead nodes eventually instead of
// blacklisting them forever.
type Tracker struct {
	mu       sync.Mutex
	cooldown time.Duration
	now      func() time.Time
	down     map[string]time.Time // member -> instant it may be retried
}

// DefaultCooldown is how long a MarkDown member is skipped before routing
// retries it absent an explicit MarkAlive.
const DefaultCooldown = 5 * time.Second

// NewTracker builds a tracker; cooldown <= 0 uses DefaultCooldown.
func NewTracker(cooldown time.Duration) *Tracker {
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	return &Tracker{cooldown: cooldown, now: time.Now, down: make(map[string]time.Time)}
}

// SetClock replaces the tracker's time source (tests).
func (t *Tracker) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
}

// MarkDown records a failed interaction with member: Alive(member) turns
// false until the cooldown elapses or MarkAlive is called.
func (t *Tracker) MarkDown(member string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down[member] = t.now().Add(t.cooldown)
}

// MarkAlive clears a member's down state (e.g. after a successful probe).
func (t *Tracker) MarkAlive(member string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.down, member)
}

// Alive reports whether member is currently believed reachable.
func (t *Tracker) Alive(member string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	until, ok := t.down[member]
	if !ok {
		return true
	}
	if !t.now().Before(until) {
		// Cooldown elapsed: optimistically retryable again.
		delete(t.down, member)
		return true
	}
	return false
}

// Down returns the members currently believed down, sorted.
func (t *Tracker) Down() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := make([]string, 0, len(t.down))
	for m, until := range t.down {
		if now.Before(until) {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// String renders the ring compactly for logs: "ring{3 members × 64 vnodes}".
func (r *Ring) String() string {
	return fmt.Sprintf("ring{%d members × %d vnodes}", len(r.members), r.vnodes)
}
