package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"fpb/internal/cluster/ring"
	"fpb/internal/obs"
	"fpb/internal/serve"
	"fpb/internal/serve/client"
)

// CoordinatorConfig sizes the sweep coordinator of one node.
type CoordinatorConfig struct {
	// Self is this node's ring identity (normalized address). Units owned
	// by Self execute through the local serve.Server directly — no
	// loopback HTTP.
	Self string
	// Members is the full ring member set, Self included.
	Members []string
	// Replicas is the replication factor R: each completed unit is pushed
	// to the first R ring owners of its key (default 2, clamped to the
	// fleet size). R=1 means no cross-node copies.
	Replicas int
	// VNodes per member (default ring.DefaultVirtualNodes). All fleet
	// participants must agree.
	VNodes int
	// PerNodeInflight bounds concurrently dispatched units per target node
	// (default 4) so one sweep cannot bury a node's queue and starve
	// interactive jobs into 429s.
	PerNodeInflight int
	// MaxSweeps bounds retained sweep records (default 64; oldest finished
	// records evicted first).
	MaxSweeps int
	// RetryBudget bounds how long a unit cycles the replica set when every
	// node is busy or down (default 2 minutes).
	RetryBudget time.Duration
	// Cooldown is the down-node skip window (default ring.DefaultCooldown).
	Cooldown time.Duration
	// ProbeInterval enables background health probing of down members.
	ProbeInterval time.Duration
	// Local runs a unit on this node (wired to serve.Server.RunLocal).
	Local func(spec serve.JobSpec) (serve.JobStatus, bool, error)
	// Logger receives structured sweep lifecycle logs (nil discards).
	Logger *slog.Logger
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = ring.DefaultVirtualNodes
	}
	if c.PerNodeInflight <= 0 {
		c.PerNodeInflight = 4
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 64
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 2 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// sweepRun is one live sweep. Mutable fields are guarded by mu.
type sweepRun struct {
	id     string
	units  []Unit
	incRes bool
	cancel context.CancelFunc
	start  time.Time
	done   chan struct{}

	mu         sync.Mutex
	state      SweepState
	completed  int
	failed     int
	replicated int
	perNode    map[string]int
	outcomes   []JobOutcome
	elapsed    time.Duration
}

func (sr *sweepRun) status() SweepStatus {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	st := SweepStatus{
		ID:         sr.id,
		State:      sr.state,
		Total:      len(sr.units),
		Completed:  sr.completed,
		Failed:     sr.failed,
		Replicated: sr.replicated,
		PerNode:    make(map[string]int, len(sr.perNode)),
		Jobs:       make([]JobOutcome, len(sr.outcomes)),
	}
	for n, c := range sr.perNode {
		st.PerNode[n] = c
	}
	copy(st.Jobs, sr.outcomes)
	el := sr.elapsed
	if el == 0 {
		el = time.Since(sr.start)
	}
	st.ElapsedMs = float64(el.Nanoseconds()) / 1e6
	if sr.state == SweepFailed {
		for _, o := range sr.outcomes {
			if o.Error != "" {
				st.Error = o.Error
				break
			}
		}
	}
	return st
}

// Coordinator fans sweeps out across the ring. One lives in every Node, so
// any fpbd can coordinate; sweeps are independent, and two coordinators
// dispatching overlapping keys still simulate each key once per node thanks
// to the servers' singleflight + store dedupe.
type Coordinator struct {
	cfg     CoordinatorConfig
	ring    *ring.Ring
	tracker *ring.Tracker
	clients map[string]*client.Client
	hc      *http.Client
	log     *slog.Logger

	mu      sync.Mutex
	sweeps  map[string]*sweepRun
	order   []string
	nextID  uint64
	sems    map[string]chan struct{}
	running int

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	// Telemetry (nil-safe until Instrument).
	cSweeps, cSweepsDone, cSweepsFailed, cSweepsCancelled *obs.Counter
	cJobsDispatched, cJobsDone, cJobsFailed, cJobsRetried *obs.Counter
	cFailovers, cReplicasPushed, cReplicaErrors           *obs.Counter
	hJobMs, hSweepMs                                      *obs.Histogram
	perNodeDone                                           map[string]*obs.Counter
}

// NewCoordinator builds a coordinator. Members are normalized; Self must be
// among them (it is added if missing).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	cfg.Self = client.Normalize(cfg.Self)
	members := []string{cfg.Self}
	for _, m := range cfg.Members {
		members = append(members, client.Normalize(m))
	}
	co := &Coordinator{
		cfg:     cfg,
		ring:    ring.New(cfg.VNodes, members...),
		tracker: ring.NewTracker(cfg.Cooldown),
		clients: make(map[string]*client.Client),
		hc:      &http.Client{},
		log:     cfg.Logger,
		sweeps:  make(map[string]*sweepRun),
		sems:    make(map[string]chan struct{}),
		stop:    make(chan struct{}),
	}
	for _, m := range co.ring.Members() {
		co.clients[m] = client.New(m)
		co.sems[m] = make(chan struct{}, cfg.PerNodeInflight)
	}
	if cfg.ProbeInterval > 0 {
		co.wg.Add(1)
		go co.probeLoop()
	}
	return co, nil
}

// Ring exposes the coordinator's placement ring.
func (co *Coordinator) Ring() *ring.Ring { return co.ring }

// Members reports the configured member set, sorted.
func (co *Coordinator) Members() MembersStatus {
	return MembersStatus{
		Self:     co.cfg.Self,
		Members:  co.ring.Members(),
		Down:     co.tracker.Down(),
		Replicas: co.cfg.Replicas,
		VNodes:   co.cfg.VNodes,
		Shares:   co.ring.Shares(),
	}
}

// nodeMetricName renders a member address into a metrics-name segment:
// "http://127.0.0.1:8081" -> "127_0_0_1_8081".
func nodeMetricName(addr string) string {
	addr = strings.TrimPrefix(addr, "http://")
	addr = strings.TrimPrefix(addr, "https://")
	var b strings.Builder
	for _, r := range addr {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Instrument registers the coordinator's fleet telemetry into reg (the
// owning node's serve registry, so one /metrics scrape covers both layers):
// ring ownership gauges, per-node dispatch counters, sweep counters, and
// the sweep/job latency histograms.
func (co *Coordinator) Instrument(reg *obs.Registry) {
	co.cSweeps = reg.Counter("cluster.sweeps.accepted")
	co.cSweepsDone = reg.Counter("cluster.sweeps.done")
	co.cSweepsFailed = reg.Counter("cluster.sweeps.failed")
	co.cSweepsCancelled = reg.Counter("cluster.sweeps.cancelled")
	co.cJobsDispatched = reg.Counter("cluster.jobs.dispatched")
	co.cJobsDone = reg.Counter("cluster.jobs.done")
	co.cJobsFailed = reg.Counter("cluster.jobs.failed")
	co.cJobsRetried = reg.Counter("cluster.jobs.retried")
	co.cFailovers = reg.Counter("cluster.jobs.failovers")
	co.cReplicasPushed = reg.Counter("cluster.replicas.pushed")
	co.cReplicaErrors = reg.Counter("cluster.replicas.errors")
	co.hJobMs = reg.Histogram("cluster.sweep.job_ms", obs.LatencyBucketsMs)
	co.hSweepMs = reg.Histogram("cluster.sweep.duration_ms", obs.ExpBuckets(1, 10, 8))
	reg.Gauge("cluster.ring.members", func() float64 { return float64(co.ring.Len()) })
	reg.Gauge("cluster.ring.owned_share", func() float64 { return co.ring.Shares()[co.cfg.Self] })
	reg.Gauge("cluster.members.down", func() float64 { return float64(len(co.tracker.Down())) })
	reg.Gauge("cluster.sweeps.running", func() float64 {
		co.mu.Lock()
		defer co.mu.Unlock()
		return float64(co.running)
	})
	co.perNodeDone = make(map[string]*obs.Counter, co.ring.Len())
	for _, m := range co.ring.Members() {
		name := "cluster.node." + nodeMetricName(m) + ".jobs_done"
		co.perNodeDone[m] = reg.Counter(name)
		reg.SetHelp(name, "sweep units completed by "+m)
	}
	for name, help := range map[string]string{
		"cluster.sweeps.accepted":   "sweeps accepted by this coordinator",
		"cluster.sweeps.done":       "sweeps that completed every unit",
		"cluster.sweeps.failed":     "sweeps with at least one terminal unit failure",
		"cluster.sweeps.cancelled":  "sweeps cancelled before completion",
		"cluster.sweeps.running":    "sweeps currently executing",
		"cluster.jobs.dispatched":   "sweep unit dispatch attempts",
		"cluster.jobs.done":         "sweep units completed",
		"cluster.jobs.failed":       "sweep units failed terminally",
		"cluster.jobs.retried":      "unit dispatches retried after 429 pushback",
		"cluster.jobs.failovers":    "unit dispatches moved to a successor replica",
		"cluster.replicas.pushed":   "results replicated to ring successors",
		"cluster.replicas.errors":   "replica pushes that failed",
		"cluster.sweep.job_ms":      "per-unit dispatch-to-done latency (ms)",
		"cluster.sweep.duration_ms": "whole-sweep duration (ms)",
		"cluster.ring.members":      "configured ring members",
		"cluster.ring.owned_share":  "fraction of the keyspace this node owns",
		"cluster.members.down":      "members currently believed down",
	} {
		reg.SetHelp(name, help)
	}
}

// probeLoop re-probes down members so recovered nodes rejoin routing early.
func (co *Coordinator) probeLoop() {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), co.cfg.ProbeInterval)
			for _, m := range co.tracker.Down() {
				if err := co.clients[m].Health(ctx); err == nil {
					co.tracker.MarkAlive(m)
				} else {
					co.tracker.MarkDown(m)
				}
			}
			cancel()
		}
	}
}

// Shutdown cancels every running sweep and stops the prober. Completed
// units keep their stored results; a restarted sweep re-runs only misses.
func (co *Coordinator) Shutdown() {
	co.mu.Lock()
	for _, sr := range co.sweeps {
		sr.cancel()
	}
	co.mu.Unlock()
	co.stopOnce.Do(func() { close(co.stop) })
	co.wg.Wait()
}

// Submit accepts a sweep: expands it, registers the run, and starts the
// fan-out in the background. The returned status is the initial snapshot
// (state running, completed 0).
func (co *Coordinator) Submit(spec SweepSpec) (SweepStatus, error) {
	units, err := spec.Expand()
	if err != nil {
		return SweepStatus{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	co.mu.Lock()
	co.nextID++
	sr := &sweepRun{
		id:       fmt.Sprintf("s%06d", co.nextID),
		units:    units,
		incRes:   spec.IncludeResults,
		cancel:   cancel,
		start:    time.Now(),
		done:     make(chan struct{}),
		state:    SweepRunning,
		perNode:  make(map[string]int),
		outcomes: make([]JobOutcome, len(units)),
	}
	for i, u := range units {
		sr.outcomes[i] = JobOutcome{
			Key: u.Key, Workload: u.Workload, Scheme: u.Scheme,
			Mapping: u.Mapping, State: serve.StateQueued,
		}
	}
	co.sweeps[sr.id] = sr
	co.order = append(co.order, sr.id)
	co.evictLocked()
	co.running++
	co.mu.Unlock()
	co.cSweeps.Inc()
	co.log.Info("sweep accepted", "sweep", sr.id, "units", len(units),
		"schemes", len(spec.Schemes), "workloads", len(spec.Workloads))

	co.wg.Add(1)
	go co.runSweep(ctx, sr)
	return sr.status(), nil
}

// evictLocked drops the oldest finished sweep records above MaxSweeps.
func (co *Coordinator) evictLocked() {
	for len(co.sweeps) > co.cfg.MaxSweeps && len(co.order) > 0 {
		evicted := false
		for i, id := range co.order {
			sr := co.sweeps[id]
			sr.mu.Lock()
			finished := sr.state != SweepRunning
			sr.mu.Unlock()
			if finished {
				delete(co.sweeps, id)
				co.order = append(co.order[:i], co.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// Status returns a sweep's snapshot.
func (co *Coordinator) Status(id string) (SweepStatus, bool) {
	co.mu.Lock()
	sr, ok := co.sweeps[id]
	co.mu.Unlock()
	if !ok {
		return SweepStatus{}, false
	}
	return sr.status(), true
}

// Sweeps lists every retained sweep's snapshot, oldest first.
func (co *Coordinator) Sweeps() []SweepStatus {
	co.mu.Lock()
	ids := make([]string, len(co.order))
	copy(ids, co.order)
	runs := make([]*sweepRun, 0, len(ids))
	for _, id := range ids {
		if sr, ok := co.sweeps[id]; ok {
			runs = append(runs, sr)
		}
	}
	co.mu.Unlock()
	out := make([]SweepStatus, len(runs))
	for i, sr := range runs {
		out[i] = sr.status()
	}
	return out
}

// Cancel aborts a running sweep. Returns false for unknown ids; cancelling
// a finished sweep is a no-op (true).
func (co *Coordinator) Cancel(id string) bool {
	co.mu.Lock()
	sr, ok := co.sweeps[id]
	co.mu.Unlock()
	if !ok {
		return false
	}
	sr.cancel()
	return true
}

// Wait blocks until the sweep finishes (or ctx expires) and returns its
// final status.
func (co *Coordinator) Wait(ctx context.Context, id string) (SweepStatus, error) {
	co.mu.Lock()
	sr, ok := co.sweeps[id]
	co.mu.Unlock()
	if !ok {
		return SweepStatus{}, fmt.Errorf("cluster: unknown sweep %s", id)
	}
	select {
	case <-sr.done:
		return sr.status(), nil
	case <-ctx.Done():
		return sr.status(), ctx.Err()
	}
}

// runSweep executes every unit (bounded per-node by the semaphores) and
// settles the sweep's final state.
func (co *Coordinator) runSweep(ctx context.Context, sr *sweepRun) {
	defer co.wg.Done()
	var wg sync.WaitGroup
	for i := range sr.units {
		wg.Add(1)
		go func(u Unit) {
			defer wg.Done()
			co.runUnit(ctx, sr, u)
		}(sr.units[i])
	}
	wg.Wait()

	sr.mu.Lock()
	sr.elapsed = time.Since(sr.start)
	switch {
	case ctx.Err() != nil && sr.completed+sr.failed < len(sr.units):
		sr.state = SweepCancelled
	case sr.failed > 0:
		sr.state = SweepFailed
	default:
		sr.state = SweepDone
	}
	state := sr.state
	completed, failed, elapsed := sr.completed, sr.failed, sr.elapsed
	sr.mu.Unlock()
	close(sr.done)

	co.mu.Lock()
	co.running--
	co.mu.Unlock()
	co.hSweepMs.Observe(float64(elapsed.Nanoseconds()) / 1e6)
	switch state {
	case SweepDone:
		co.cSweepsDone.Inc()
	case SweepFailed:
		co.cSweepsFailed.Inc()
	case SweepCancelled:
		co.cSweepsCancelled.Inc()
	}
	co.log.Info("sweep finished", "sweep", sr.id, "state", string(state),
		"completed", completed, "failed", failed,
		"elapsed_ms", float64(elapsed.Nanoseconds())/1e6)
}

// execOn runs one unit on one member: the local fast path for Self, the
// single-attempt HTTP submit for everyone else. busy=true maps 429/queue
// pushback; down=true means the member looks dead (transport error, 5xx,
// draining) and the caller should fail over.
func (co *Coordinator) execOn(ctx context.Context, member string, u Unit) (st serve.JobStatus, busy, down bool, err error) {
	if member == co.cfg.Self && co.cfg.Local != nil {
		st, _, err = co.cfg.Local(u.spec)
		switch {
		case err == nil:
			return st, false, false, nil
		case errors.Is(err, serve.ErrBusy):
			return serve.JobStatus{}, true, false, err
		case errors.Is(err, serve.ErrDraining):
			return serve.JobStatus{}, false, true, err
		default:
			// Local execution failure: a simulation error, terminal.
			return serve.JobStatus{}, false, false, err
		}
	}
	st, err = co.clients[member].Submit(ctx, u.spec)
	if err == nil {
		return st, false, false, nil
	}
	var busyErr *client.BusyError
	if errors.As(err, &busyErr) {
		return serve.JobStatus{}, true, false, err
	}
	var statusErr *client.StatusError
	if errors.As(err, &statusErr) && statusErr.Code < 500 {
		// 4xx: the unit itself is bad (failed simulation, bad spec);
		// every replica would answer identically.
		return serve.JobStatus{}, false, false, err
	}
	return serve.JobStatus{}, false, true, err
}

// runUnit dispatches one unit: ring owner first, then successors, skipping
// down members, bounded by the per-node in-flight semaphores. 429 pushback
// moves to the next replica immediately; when the whole preference order is
// busy it sleeps the advertised Retry-After (jittered) and cycles. A
// terminal failure (the simulation itself errors) fails the unit — and
// therefore the sweep — without retry, because the engine is deterministic:
// the same config fails the same way everywhere.
func (co *Coordinator) runUnit(ctx context.Context, sr *sweepRun, u Unit) {
	order := co.ring.Owners(u.Key, 0)
	deadline := time.Now().Add(co.cfg.RetryBudget)
	start := time.Now()
	attempts := 0
	var lastErr error
	for pass := 0; ; pass++ {
		var busyWait time.Duration
		sawBusy := false
		for i, member := range order {
			if ctx.Err() != nil {
				co.recordUnit(sr, u, "", serve.JobStatus{}, attempts, ctx.Err())
				return
			}
			if pass == 0 && !co.tracker.Alive(member) {
				continue
			}
			if err := co.acquire(ctx, member); err != nil {
				co.recordUnit(sr, u, "", serve.JobStatus{}, attempts, err)
				return
			}
			attempts++
			co.cJobsDispatched.Inc()
			st, busy, down, err := co.execOn(ctx, member, u)
			co.release(member)
			switch {
			case err == nil:
				co.hJobMs.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
				co.recordUnit(sr, u, member, st, attempts, nil)
				co.replicate(ctx, sr, u, member, st)
				return
			case busy:
				sawBusy = true
				co.cJobsRetried.Inc()
				var busyErr *client.BusyError
				if errors.As(err, &busyErr) && (busyWait == 0 || busyErr.After < busyWait) {
					busyWait = busyErr.After
				}
				lastErr = err
			case down:
				co.tracker.MarkDown(member)
				if i < len(order)-1 {
					co.cFailovers.Inc()
				}
				co.log.Warn("unit failover", "sweep", sr.id, "key", u.Key[:8],
					"member", member, "err", err)
				lastErr = err
			default:
				// Terminal: deterministic failure, no replica can differ.
				co.recordUnit(sr, u, member, serve.JobStatus{}, attempts, err)
				return
			}
		}
		if ctx.Err() != nil {
			co.recordUnit(sr, u, "", serve.JobStatus{}, attempts, ctx.Err())
			return
		}
		if !sawBusy && pass > 0 {
			// A full last-resort pass over every member (down ones
			// included) found nothing alive.
			co.recordUnit(sr, u, "", serve.JobStatus{}, attempts,
				fmt.Errorf("cluster: no reachable member for unit: %w", lastErr))
			return
		}
		if time.Now().After(deadline) {
			co.recordUnit(sr, u, "", serve.JobStatus{}, attempts,
				fmt.Errorf("cluster: unit retry budget exhausted: %w", lastErr))
			return
		}
		select {
		case <-time.After(client.RetryDelay(busyWait)):
		case <-ctx.Done():
			co.recordUnit(sr, u, "", serve.JobStatus{}, attempts, ctx.Err())
			return
		}
	}
}

func (co *Coordinator) acquire(ctx context.Context, member string) error {
	select {
	case co.sems[member] <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (co *Coordinator) release(member string) { <-co.sems[member] }

// recordUnit settles one unit's outcome in the sweep record.
func (co *Coordinator) recordUnit(sr *sweepRun, u Unit, member string, st serve.JobStatus, attempts int, err error) {
	sr.mu.Lock()
	o := &sr.outcomes[u.Index]
	o.Attempts = attempts
	if err != nil {
		o.State = serve.StateFailed
		o.Error = err.Error()
		sr.failed++
	} else if st.State == serve.StateDone {
		o.State = serve.StateDone
		o.Node = member
		o.Cached = st.Cached
		if sr.incRes {
			o.Result = st.Result
		}
		sr.completed++
		sr.perNode[member]++
	} else {
		o.State = serve.StateFailed
		o.Error = fmt.Sprintf("unexpected job state %s: %s", st.State, st.Error)
		sr.failed++
	}
	failed := o.State == serve.StateFailed
	sr.mu.Unlock()
	if failed {
		co.cJobsFailed.Inc()
	} else {
		co.cJobsDone.Inc()
		co.perNodeDone[member].Inc()
	}
}

// replicate pushes a completed result to the R ring owners of its key
// (minus the member that already holds it). Pushes are synchronous within
// the unit's goroutine — a sweep is not "done" until its replica fan-out
// settled — but failures only count and log; the result is already durable
// on the executing node.
func (co *Coordinator) replicate(ctx context.Context, sr *sweepRun, u Unit, executed string, st serve.JobStatus) {
	if co.cfg.Replicas <= 1 || st.Result == nil {
		return
	}
	for _, target := range co.ring.Owners(u.Key, co.cfg.Replicas) {
		if target == executed || !co.tracker.Alive(target) {
			continue
		}
		if err := co.pushReplica(ctx, target, ReplicaPut{Key: u.Key, Result: *st.Result}); err != nil {
			co.cReplicaErrors.Inc()
			co.log.Warn("replica push failed", "sweep", sr.id, "key", u.Key[:8],
				"target", target, "err", err)
			continue
		}
		co.cReplicasPushed.Inc()
		sr.mu.Lock()
		sr.replicated++
		sr.mu.Unlock()
	}
}

// pushReplica POSTs one result to target's /v1/replicate. Self-pushes go
// through HTTP too only when Local is unset; with Local they are skipped by
// the caller (the executing node already stored the result).
func (co *Coordinator) pushReplica(ctx context.Context, target string, rp ReplicaPut) error {
	body, err := json.Marshal(rp)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/replicate", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := co.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("cluster: replicate to %s: %s", target, resp.Status)
	}
	return nil
}

// PlacementTable renders which member owns each unit of a spec — used by
// fpbctl to preview a sweep's spread without running it.
func (co *Coordinator) PlacementTable(units []Unit) map[string][]string {
	out := make(map[string][]string)
	for _, u := range units {
		owner := co.ring.Owner(u.Key)
		out[owner] = append(out[owner], fmt.Sprintf("%s/%s/%s", u.Scheme, u.Mapping, u.Workload))
	}
	for _, v := range out {
		sort.Strings(v)
	}
	return out
}
