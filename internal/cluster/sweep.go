// Package cluster turns N independent fpbd daemons into one simulation
// fleet. It has three layers:
//
//  1. a consistent-hash ring (internal/cluster/ring) keyed by system.Key,
//     so every node's content-addressed store stays hot for its own key
//     range and repeat queries are cache hits wherever they enter the fleet;
//  2. a sweep coordinator: POST /v1/sweeps expands N configs × M workloads
//     into a job DAG (simulate-on-owner → replicate-to-successors), fans the
//     units out to their ring owners under bounded per-node in-flight
//     limits, retries on the next replica when an owner is down or pushes
//     back, and exposes pollable progress (completed/total, per-node
//     counts) at GET /v1/sweeps/{id};
//  3. cross-node result replication: each completed unit is pushed to the R
//     ring successors of its key, so any single node's death loses no
//     results and replica reads (GET /v1/results/{key}) keep serving.
//
// Every fpbd process embeds a Node — serve.Server plus coordinator plus
// membership — so there is no dedicated coordinator process: any node
// accepts sweeps, and clients (internal/serve/client.Fleet, cmd/fpbctl)
// fail over between nodes with the same deterministic ring placement the
// nodes themselves use.
//
// Determinism contract: the simulation engine is bit-deterministic, so a
// sweep produces byte-identical Results regardless of node count, placement,
// failover events, or which node coordinated it — enforced by
// TestSweepDeterministicAcrossFleetAndFailover.
package cluster

import (
	"fmt"

	"fpb/internal/serve"
	"fpb/internal/sim"
	"fpb/internal/system"
)

// SweepSpec is the request body of POST /v1/sweeps: the cross product of
// schemes × mappings × workloads over an optional base config — the shape of
// every figure-style evaluation batch (schemes × workloads at fixed
// mapping, mappings × workloads at fixed scheme, or the full cube).
type SweepSpec struct {
	// Schemes to sweep (required, >= 1; names as sim.ParseScheme accepts).
	Schemes []string `json:"schemes"`
	// Mappings to sweep (optional; empty keeps the base config's mapping).
	Mappings []string `json:"mappings,omitempty"`
	// Workloads to sweep (required, >= 1).
	Workloads []string `json:"workloads"`
	// Config optionally overrides the base sim.Config (default
	// sim.DefaultConfig, like single-job specs).
	Config *sim.Config `json:"config,omitempty"`
	// Seed / InstrPerCore override the base config when non-zero.
	Seed         uint64 `json:"seed,omitempty"`
	InstrPerCore uint64 `json:"instr_per_core,omitempty"`
	// WarmupCycles declares a shared warmup phase for every unit (non-zero;
	// sim.Config.WarmupCycles). Units landing on the same node then simulate
	// their common warmup prefix once and warm-start from its checkpoint —
	// results stay byte-identical to cold runs.
	WarmupCycles uint64 `json:"warmup_cycles,omitempty"`
	// WarmupScheme names the scheme the warmup phase runs under.
	WarmupScheme string `json:"warmup_scheme,omitempty"`
	// IncludeResults carries every unit's full Result in the sweep status.
	// Meant for small sweeps and tests; large sweeps should read results
	// from the stores via GET /v1/results/{key}.
	IncludeResults bool `json:"include_results,omitempty"`
}

// Unit is one expanded job of a sweep: its spec, its content key (the ring
// placement key), and the labels it came from.
type Unit struct {
	Index    int    `json:"index"`
	Key      string `json:"key"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Mapping  string `json:"mapping,omitempty"`

	spec serve.JobSpec
}

// Expand produces the sweep's units in deterministic order (scheme-major,
// then mapping, then workload) with every spec validated and keyed. An
// invalid scheme/mapping/config fails the whole expansion — a sweep is
// accepted completely or not at all.
func (s SweepSpec) Expand() ([]Unit, error) {
	if len(s.Schemes) == 0 {
		return nil, fmt.Errorf("cluster: sweep: at least one scheme is required")
	}
	if len(s.Workloads) == 0 {
		return nil, fmt.Errorf("cluster: sweep: at least one workload is required")
	}
	mappings := s.Mappings
	if len(mappings) == 0 {
		mappings = []string{""}
	}
	units := make([]Unit, 0, len(s.Schemes)*len(mappings)*len(s.Workloads))
	for _, scheme := range s.Schemes {
		for _, mapping := range mappings {
			for _, wl := range s.Workloads {
				spec := serve.JobSpec{
					Workload:     wl,
					Config:       s.Config,
					Scheme:       scheme,
					Mapping:      mapping,
					Seed:         s.Seed,
					InstrPerCore: s.InstrPerCore,
					WarmupCycles: s.WarmupCycles,
					WarmupScheme: s.WarmupScheme,
				}
				cfg, _, err := spec.Resolve()
				if err != nil {
					return nil, fmt.Errorf("cluster: sweep: %s/%s/%s: %w", scheme, mapping, wl, err)
				}
				units = append(units, Unit{
					Index:    len(units),
					Key:      system.Key(cfg, wl),
					Workload: wl,
					Scheme:   scheme,
					Mapping:  mapping,
					spec:     spec,
				})
			}
		}
	}
	return units, nil
}

// SweepState enumerates a sweep's lifecycle.
type SweepState string

const (
	// SweepRunning: units are being dispatched/executed.
	SweepRunning SweepState = "running"
	// SweepDone: every unit completed successfully.
	SweepDone SweepState = "done"
	// SweepFailed: at least one unit failed terminally.
	SweepFailed SweepState = "failed"
	// SweepCancelled: cancelled before completion; completed units keep
	// their results (they are in the stores), pending units were abandoned.
	SweepCancelled SweepState = "cancelled"
)

// JobOutcome is the per-unit record in a sweep status.
type JobOutcome struct {
	Key      string `json:"key"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Mapping  string `json:"mapping,omitempty"`
	// Node is the member that executed (or cached) the unit.
	Node  string         `json:"node,omitempty"`
	State serve.JobState `json:"state"`
	// Cached reports the unit was answered from a store or coalesced
	// instead of freshly simulated.
	Cached bool `json:"cached,omitempty"`
	// Attempts counts dispatch attempts (1 = owner answered first try;
	// more = failover or busy-retry happened).
	Attempts int            `json:"attempts,omitempty"`
	Error    string         `json:"error,omitempty"`
	Result   *system.Result `json:"result,omitempty"`
}

// SweepStatus is the wire form of a sweep: POST /v1/sweeps returns it and
// GET /v1/sweeps/{id} polls it. Progress streams through Completed/Total
// and the per-node counts; Jobs carries per-unit detail.
type SweepStatus struct {
	ID    string     `json:"id"`
	State SweepState `json:"state"`
	Total int        `json:"total"`
	// Completed counts units that finished successfully; Failed counts
	// terminal unit failures. Completed+Failed == Total when the sweep
	// leaves SweepRunning (unless cancelled).
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// PerNode counts completed units by executing node — the live view of
	// how the ring spread the sweep.
	PerNode map[string]int `json:"per_node,omitempty"`
	// Replicated counts successful replica pushes to ring successors.
	Replicated int          `json:"replicated"`
	Jobs       []JobOutcome `json:"jobs,omitempty"`
	Error      string       `json:"error,omitempty"`
	ElapsedMs  float64      `json:"elapsed_ms"`
}

// MembersStatus is the wire form of GET /v1/cluster/members.
type MembersStatus struct {
	Self     string   `json:"self"`
	Members  []string `json:"members"`
	Down     []string `json:"down,omitempty"`
	Replicas int      `json:"replicas"`
	VNodes   int      `json:"vnodes"`
	// Shares maps each member to its owned keyspace fraction.
	Shares map[string]float64 `json:"shares,omitempty"`
}

// ReplicaPut is the body of POST /v1/replicate: a completed result pushed
// to a ring successor's store.
type ReplicaPut struct {
	Key    string        `json:"key"`
	Result system.Result `json:"result"`
}
