package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"fpb/internal/serve"
)

// NodeConfig assembles one fleet member: the local serve.Server plus the
// cluster layer (ring membership, sweep coordination, replica intake).
type NodeConfig struct {
	// Serve configures the embedded single-node server (workers, queue,
	// store, logger...).
	Serve serve.Config
	// Self is this node's advertised address — its ring identity. Required
	// for multi-node fleets; defaults to "self" for a standalone node so
	// tests and single-daemon deployments need no address.
	Self string
	// Peers are the other fleet members' advertised addresses. Every node
	// must be configured with the same member set (Self ∪ Peers) — the
	// ring is static per process; membership changes are a restart.
	Peers []string
	// Replicas / VNodes / PerNodeInflight / RetryBudget / Cooldown /
	// ProbeInterval forward to CoordinatorConfig.
	Replicas        int
	VNodes          int
	PerNodeInflight int
	RetryBudget     time.Duration
	Cooldown        time.Duration
	ProbeInterval   time.Duration
}

// Node is one fpbd process in a fleet: an http.Handler layering the cluster
// endpoints over the embedded serve.Server's. Single-job traffic
// (POST /v1/jobs, /healthz, /metrics, ...) falls through to the server;
// sweep and membership traffic lands in the coordinator.
//
//	POST /v1/sweeps             accept a sweep (?wait=1 blocks until done)
//	GET  /v1/sweeps             list retained sweeps
//	GET  /v1/sweeps/{id}        poll progress (completed/total, per-node)
//	POST /v1/sweeps/{id}/cancel abort a running sweep
//	GET  /v1/cluster/members    ring membership, shares, down set
//	POST /v1/replicate          replica intake: store a pushed result
type Node struct {
	srv *serve.Server
	co  *Coordinator
	mux *http.ServeMux
}

// NewNode builds the server, the coordinator on top of it, and the combined
// route table, and registers the cluster metrics into the server's registry.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Self == "" {
		if len(cfg.Peers) > 0 {
			return nil, fmt.Errorf("cluster: node: -peers requires an advertised self address")
		}
		cfg.Self = "self"
	}
	srv, err := serve.New(cfg.Serve)
	if err != nil {
		return nil, err
	}
	co, err := NewCoordinator(CoordinatorConfig{
		Self:            cfg.Self,
		Members:         cfg.Peers,
		Replicas:        cfg.Replicas,
		VNodes:          cfg.VNodes,
		PerNodeInflight: cfg.PerNodeInflight,
		RetryBudget:     cfg.RetryBudget,
		Cooldown:        cfg.Cooldown,
		ProbeInterval:   cfg.ProbeInterval,
		Logger:          srv.Logger(),
		Local: func(spec serve.JobSpec) (serve.JobStatus, bool, error) {
			cfg, wl, err := spec.Resolve()
			if err != nil {
				return serve.JobStatus{}, false, err
			}
			return srv.RunLocal(cfg, wl)
		},
	})
	if err != nil {
		srv.Drain()
		return nil, err
	}
	co.Instrument(srv.Registry())
	n := &Node{srv: srv, co: co, mux: http.NewServeMux()}
	n.mux.HandleFunc("POST /v1/sweeps", n.handleSweepSubmit)
	n.mux.HandleFunc("GET /v1/sweeps", n.handleSweepList)
	n.mux.HandleFunc("GET /v1/sweeps/{id}", n.handleSweepStatus)
	n.mux.HandleFunc("POST /v1/sweeps/{id}/cancel", n.handleSweepCancel)
	n.mux.HandleFunc("GET /v1/cluster/members", n.handleMembers)
	n.mux.HandleFunc("POST /v1/replicate", n.handleReplicate)
	n.mux.Handle("/", srv)
	return n, nil
}

// Server exposes the embedded single-node server.
func (n *Node) Server() *serve.Server { return n.srv }

// Coordinator exposes the node's sweep coordinator.
func (n *Node) Coordinator() *Coordinator { return n.co }

// ServeHTTP implements http.Handler.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) { n.mux.ServeHTTP(w, r) }

// Drain stops the node: cancels running sweeps, stops the prober, then
// drains the server's worker pool. Safe to call once at shutdown.
func (n *Node) Drain() {
	n.co.Shutdown()
	n.srv.Drain()
}

func (n *Node) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// handleSweepSubmit accepts a SweepSpec. The default reply is 202 with the
// initial status (poll GET /v1/sweeps/{id}); ?wait=1 blocks until the sweep
// settles and replies 200 with the final status — the fpbctl fast path for
// small sweeps.
func (n *Node) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		n.writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request: " + err.Error()})
		return
	}
	st, err := n.co.Submit(spec)
	if err != nil {
		n.writeJSON(w, http.StatusUnprocessableEntity, apiError{Error: err.Error()})
		return
	}
	if r.URL.Query().Get("wait") == "" {
		n.writeJSON(w, http.StatusAccepted, st)
		return
	}
	final, err := n.co.Wait(r.Context(), st.ID)
	if err != nil && !errors.Is(err, context.Canceled) {
		n.writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	n.writeJSON(w, http.StatusOK, final)
}

func (n *Node) handleSweepList(w http.ResponseWriter, r *http.Request) {
	n.writeJSON(w, http.StatusOK, n.co.Sweeps())
}

func (n *Node) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := n.co.Status(r.PathValue("id"))
	if !ok {
		n.writeJSON(w, http.StatusNotFound, apiError{Error: "unknown sweep id"})
		return
	}
	n.writeJSON(w, http.StatusOK, st)
}

func (n *Node) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !n.co.Cancel(id) {
		n.writeJSON(w, http.StatusNotFound, apiError{Error: "unknown sweep id"})
		return
	}
	st, _ := n.co.Status(id)
	n.writeJSON(w, http.StatusOK, st)
}

func (n *Node) handleMembers(w http.ResponseWriter, r *http.Request) {
	n.writeJSON(w, http.StatusOK, n.co.Members())
}

// handleReplicate is the replica intake: a ring successor stores a result
// pushed by the coordinator that executed it. The key is re-validated by
// the store's path discipline; nodes without persistence accept and drop
// (204) so replication remains best-effort symmetric across mixed fleets.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	var rp ReplicaPut
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&rp); err != nil {
		n.writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request: " + err.Error()})
		return
	}
	store := n.srv.Store()
	if store == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if err := store.Put(rp.Key, rp.Result); err != nil {
		n.writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusOK)
}
