package cluster

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fpb/internal/serve"
	"fpb/internal/sim"
	"fpb/internal/system"
)

// fleetHarness is a running N-node fleet over real TCP listeners.
type fleetHarness struct {
	addrs []string
	nodes []*Node
	https []*http.Server
}

// startFleet reserves n listeners first (so every node knows the full member
// set before it starts), then boots one Node per listener. simulate==nil
// runs the real engine. Per-node store dirs come from t.TempDir.
func startFleet(t *testing.T, n int, simulate func(node int) serve.SimulateFunc) *fleetHarness {
	t.Helper()
	h := &fleetHarness{}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		h.addrs = append(h.addrs, "http://"+ln.Addr().String())
	}
	for i := range lns {
		var peers []string
		for j, a := range h.addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		cfg := NodeConfig{
			Serve: serve.Config{
				Workers:       2,
				QueueDepth:    64,
				StoreDir:      t.TempDir(),
				CheckpointDir: t.TempDir(),
				RetryAfter:    50 * time.Millisecond,
			},
			Self:     h.addrs[i],
			Peers:    peers,
			Replicas: 2,
			Cooldown: 200 * time.Millisecond,
		}
		if simulate != nil {
			cfg.Serve.Simulate = simulate(i)
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		h.nodes = append(h.nodes, node)
		hs := &http.Server{Handler: node}
		h.https = append(h.https, hs)
		go hs.Serve(lns[i])
	}
	return h
}

// kill hard-closes node i's HTTP server: the listener and every active
// connection die immediately, like a crashed process.
func (h *fleetHarness) kill(i int) { h.https[i].Close() }

func (h *fleetHarness) stop(skip map[int]bool) {
	for i, hs := range h.https {
		if !skip[i] {
			hs.Close()
			h.nodes[i].Drain()
		}
	}
}

func postSweep(t *testing.T, addr string, spec SweepSpec, wait bool) SweepStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	url := addr + "/v1/sweeps"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: %s", resp.Status)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode sweep status: %v", err)
	}
	return st
}

func pollSweep(t *testing.T, addr, id string, timeout time.Duration) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(addr + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatalf("GET sweep: %v", err)
		}
		var st SweepStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode sweep: %v", err)
		}
		if st.State != SweepRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still running after %v: %+v", id, timeout, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSweepExpand(t *testing.T) {
	spec := SweepSpec{
		Schemes:   []string{"fpb", "ideal"},
		Workloads: []string{"mcf_m", "xal_m"},
		Seed:      7,
	}
	units, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 4 {
		t.Fatalf("got %d units, want 4", len(units))
	}
	// Deterministic scheme-major order and stable keys.
	wantOrder := []string{"fpb/mcf_m", "fpb/xal_m", "ideal/mcf_m", "ideal/xal_m"}
	for i, u := range units {
		if got := u.Scheme + "/" + u.Workload; got != wantOrder[i] {
			t.Fatalf("unit %d: got %s, want %s", i, got, wantOrder[i])
		}
		if len(u.Key) != 64 {
			t.Fatalf("unit %d: malformed key %q", i, u.Key)
		}
		if u.Index != i {
			t.Fatalf("unit %d: index %d", i, u.Index)
		}
	}
	again, _ := spec.Expand()
	for i := range units {
		if units[i].Key != again[i].Key {
			t.Fatalf("unit %d: key changed across expansions", i)
		}
	}

	// One bad scheme rejects the whole sweep.
	bad := spec
	bad.Schemes = []string{"fpb", "no-such-scheme"}
	if _, err := bad.Expand(); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
	if _, err := (SweepSpec{Workloads: []string{"mcf_m"}}).Expand(); err == nil {
		t.Fatal("expected error for empty schemes")
	}
}

// TestSweepDeterministicAcrossFleet is the core acceptance check: a 3-node
// fleet sweep over 2 schemes × 2 workloads (real engine) returns Results
// byte-identical to running the same configs in process.
func TestSweepDeterministicAcrossFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("real-engine fleet sweep")
	}
	spec := SweepSpec{
		Schemes:        []string{"fpb", "ideal"},
		Workloads:      []string{"mcf_m", "xal_m"},
		Seed:           42,
		InstrPerCore:   1000,
		IncludeResults: true,
	}
	units, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// In-process reference, bytes per key.
	ref := make(map[string][]byte, len(units))
	for _, u := range units {
		js := serve.JobSpec{Workload: u.Workload, Scheme: u.Scheme, Seed: spec.Seed, InstrPerCore: spec.InstrPerCore}
		cfg, wl, err := js.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		res, err := system.RunWorkload(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(res)
		ref[u.Key] = b
	}

	h := startFleet(t, 3, nil)
	defer h.stop(nil)

	st := postSweep(t, h.addrs[0], spec, true)
	if st.State != SweepDone {
		t.Fatalf("sweep state %s (err %q), want done", st.State, st.Error)
	}
	if st.Completed != len(units) || st.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", st.Completed, st.Failed, len(units))
	}
	for _, jo := range st.Jobs {
		if jo.State != serve.StateDone || jo.Result == nil {
			t.Fatalf("unit %s/%s: state %s err %q", jo.Scheme, jo.Workload, jo.State, jo.Error)
		}
		got, _ := json.Marshal(*jo.Result)
		if !bytes.Equal(got, ref[jo.Key]) {
			t.Errorf("unit %s/%s: fleet result differs from in-process run", jo.Scheme, jo.Workload)
		}
	}

	// Replication: every unit's result is readable, byte-identical, from
	// every one of the first R ring owners of its key.
	ring := h.nodes[0].Coordinator().Ring()
	for _, u := range units {
		for _, owner := range ring.Owners(u.Key, 2) {
			resp, err := http.Get(owner + "/v1/results/" + u.Key)
			if err != nil {
				t.Fatalf("GET result from %s: %v", owner, err)
			}
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				t.Fatalf("replica %s missing result %s: %s", owner, u.Key[:8], resp.Status)
			}
			var res system.Result
			err = json.NewDecoder(resp.Body).Decode(&res)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			got, _ := json.Marshal(res)
			if !bytes.Equal(got, ref[u.Key]) {
				t.Errorf("replica %s: stored result differs for %s", owner, u.Key[:8])
			}
		}
	}

	// Submitting the identical sweep again is answered entirely from the
	// stores (cache hits), still byte-identical.
	st2 := postSweep(t, h.addrs[1], spec, true)
	if st2.State != SweepDone {
		t.Fatalf("repeat sweep state %s, want done", st2.State)
	}
	for _, jo := range st2.Jobs {
		got, _ := json.Marshal(*jo.Result)
		if !bytes.Equal(got, ref[jo.Key]) {
			t.Errorf("repeat unit %s/%s differs", jo.Scheme, jo.Workload)
		}
		if !jo.Cached {
			t.Errorf("repeat unit %s/%s not served from cache", jo.Scheme, jo.Workload)
		}
	}
}

// fakeResult is the deterministic stand-in simulation used by failover
// tests: a pure function of (config, workload), so any node computes the
// same bytes.
func fakeResult(cfg sim.Config, wl string) system.Result {
	return system.Result{
		Workload: wl,
		Scheme:   cfg.Scheme.String(),
		CPI:      float64(cfg.Seed%97) + 1,
		Instrs:   cfg.InstrPerCore,
		Metrics:  map[string]float64{"fake.seed": float64(cfg.Seed)},
	}
}

// TestSweepCompletesWhenNodeKilledMidSweep kills a node while its units are
// in flight and asserts the sweep still completes with results identical to
// an undisturbed run — the replica-failover acceptance criterion.
func TestSweepCompletesWhenNodeKilledMidSweep(t *testing.T) {
	spec := SweepSpec{
		Schemes:        []string{"fpb", "ideal", "gcp", "dimm-only"},
		Workloads:      []string{"mcf_m", "xal_m", "mum_m", "lbm_m"},
		Seed:           9,
		InstrPerCore:   500,
		IncludeResults: true,
	}
	units, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(gate) }) }
	defer release()

	victimStarted := make(chan struct{})
	var startedOnce sync.Once

	// Every node's simulate blocks on the gate; the victim (chosen after
	// placement is known) additionally signals when it starts simulating,
	// so the kill provably lands mid-sweep.
	victim := -1
	h := startFleet(t, 3, func(node int) serve.SimulateFunc {
		return func(cfg sim.Config, wl string) (system.Result, error) {
			if node == victim {
				startedOnce.Do(func() { close(victimStarted) })
			}
			<-gate
			return fakeResult(cfg, wl), nil
		}
	})
	skip := map[int]bool{}
	defer func() { h.stop(skip) }()

	// Choose coordinator and victim from actual placement: the coordinator
	// is any node that does not own every unit; the victim is a different
	// node that owns at least one unit (so failover provably happens).
	ring := h.nodes[0].Coordinator().Ring()
	owned := make(map[string]int)
	for _, u := range units {
		owned[ring.Owner(u.Key)]++
	}
	coordIdx, victimIdx := -1, -1
	for i, a := range h.addrs {
		if owned[a] < len(units) && coordIdx < 0 {
			coordIdx = i
		}
	}
	for i, a := range h.addrs {
		if i != coordIdx && owned[a] > 0 {
			victimIdx = i
			break
		}
	}
	if coordIdx < 0 || victimIdx < 0 {
		t.Fatalf("degenerate placement: %v", owned) // ~3·(1/3)^16 odds
	}
	victim = victimIdx
	skip[victimIdx] = true // killed below; Drain would be redundant

	st := postSweep(t, h.addrs[coordIdx], spec, false)
	select {
	case <-victimStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("victim never started simulating")
	}
	h.kill(victimIdx)
	release()

	final := pollSweep(t, h.addrs[coordIdx], st.ID, 30*time.Second)
	if final.State != SweepDone {
		t.Fatalf("sweep state %s (err %q), want done despite node kill", final.State, final.Error)
	}
	if final.Completed != len(units) {
		t.Fatalf("completed %d, want %d", final.Completed, len(units))
	}
	if n := final.PerNode[h.addrs[victimIdx]]; n != 0 {
		t.Fatalf("killed node credited with %d completions", n)
	}
	failedOver := false
	for _, jo := range final.Jobs {
		if jo.State != serve.StateDone || jo.Result == nil {
			t.Fatalf("unit %s/%s: state %s err %q", jo.Scheme, jo.Workload, jo.State, jo.Error)
		}
		if jo.Attempts > 1 {
			failedOver = true
		}
		js := serve.JobSpec{Workload: jo.Workload, Scheme: jo.Scheme, Seed: spec.Seed, InstrPerCore: spec.InstrPerCore}
		cfg, wl, _ := js.Resolve()
		want, _ := json.Marshal(fakeResult(cfg, wl))
		got, _ := json.Marshal(*jo.Result)
		if !bytes.Equal(got, want) {
			t.Errorf("unit %s/%s: result differs after failover", jo.Scheme, jo.Workload)
		}
	}
	if !failedOver {
		t.Error("no unit recorded a failover attempt despite the kill")
	}

	// The coordinator's metrics recorded the event.
	resp, err := http.Get(h.addrs[coordIdx] + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, needle := range []string{"cluster_jobs_failovers", "cluster_ring_members 3", "cluster_sweeps_done"} {
		if !strings.Contains(text, needle) {
			t.Errorf("metrics exposition missing %q", needle)
		}
	}
}

func TestNodeEndpoints(t *testing.T) {
	h := startFleet(t, 1, func(int) serve.SimulateFunc {
		return func(cfg sim.Config, wl string) (system.Result, error) { return fakeResult(cfg, wl), nil }
	})
	defer h.stop(nil)
	addr := h.addrs[0]

	// Members.
	resp, err := http.Get(addr + "/v1/cluster/members")
	if err != nil {
		t.Fatal(err)
	}
	var ms MembersStatus
	json.NewDecoder(resp.Body).Decode(&ms)
	resp.Body.Close()
	if ms.Self != h.addrs[0] || len(ms.Members) != 1 || ms.Replicas != 2 {
		t.Fatalf("members: %+v", ms)
	}
	if s := ms.Shares[ms.Self]; s < 0.999 || s > 1.001 {
		t.Fatalf("single node should own the whole keyspace, got %v", s)
	}

	// Bad sweep spec.
	resp, _ = http.Post(addr+"/v1/sweeps", "application/json", strings.NewReader(`{"schemes":["fpb"]}`))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("empty workloads: %s", resp.Status)
	}
	resp.Body.Close()

	// Unknown sweep id.
	resp, _ = http.Get(addr + "/v1/sweeps/s999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep: %s", resp.Status)
	}
	resp.Body.Close()
	resp, _ = http.Post(addr+"/v1/sweeps/s999999/cancel", "application/json", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown: %s", resp.Status)
	}
	resp.Body.Close()

	// A working sweep appears in the list.
	st := postSweep(t, addr, SweepSpec{Schemes: []string{"fpb"}, Workloads: []string{"mcf_m"}, Seed: 3}, true)
	if st.State != SweepDone || st.Completed != 1 {
		t.Fatalf("sweep: %+v", st)
	}
	resp, _ = http.Get(addr + "/v1/sweeps")
	var list []SweepStatus
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list: %+v", list)
	}

	// Replica intake round-trips through the store.
	key := strings.Repeat("ab", 32)
	body, _ := json.Marshal(ReplicaPut{Key: key, Result: system.Result{Workload: "w", Cycles: 5}})
	resp, _ = http.Post(addr+"/v1/replicate", "application/json", bytes.NewReader(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replicate: %s", resp.Status)
	}
	resp.Body.Close()
	res, ok, err := h.nodes[0].Server().Store().Get(key)
	if err != nil || !ok || res.Cycles != 5 {
		t.Fatalf("replicated entry: %v %v %+v", ok, err, res)
	}
	// Malformed keys are rejected, not written.
	body, _ = json.Marshal(ReplicaPut{Key: "../evil", Result: system.Result{}})
	resp, _ = http.Post(addr+"/v1/replicate", "application/json", bytes.NewReader(body))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed replicate key: %s", resp.Status)
	}
	resp.Body.Close()
}

func TestSweepCancel(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	h := startFleet(t, 1, func(int) serve.SimulateFunc {
		return func(cfg sim.Config, wl string) (system.Result, error) {
			<-gate
			return fakeResult(cfg, wl), nil
		}
	})
	defer func() { release(); h.stop(nil) }()
	addr := h.addrs[0]

	st := postSweep(t, addr, SweepSpec{Schemes: []string{"fpb", "ideal"}, Workloads: []string{"mcf_m", "xal_m"}, Seed: 5}, false)
	resp, err := http.Post(addr+"/v1/sweeps/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	release()
	final := pollSweep(t, addr, st.ID, 10*time.Second)
	if final.State != SweepCancelled && final.State != SweepDone {
		// Cancelled is expected; Done is a benign race when the release
		// beats the cancellation into the workers.
		t.Fatalf("state after cancel: %s", final.State)
	}
}

// TestSweepWarmStartSingleNode runs a real warm sweep on a one-node fleet:
// three schemes share one warmup prefix, so the node simulates the warmup
// once, warm-starts the other two units, and every result is byte-identical
// to a cold in-process run of the same declared config.
func TestSweepWarmStartSingleNode(t *testing.T) {
	h := startFleet(t, 1, nil)
	defer h.stop(nil)

	spec := SweepSpec{
		Schemes:        []string{"dimm+chip", "gcp", "fpb"},
		Workloads:      []string{"mcf_m"},
		InstrPerCore:   3000,
		WarmupCycles:   40_000,
		WarmupScheme:   "dimm+chip",
		IncludeResults: true,
	}
	st := postSweep(t, h.addrs[0], spec, true)
	if st.State != SweepDone || st.Completed != 3 {
		t.Fatalf("sweep: state %s completed %d/%d err %q", st.State, st.Completed, st.Total, st.Error)
	}
	for _, jo := range st.Jobs {
		js := serve.JobSpec{
			Workload:     jo.Workload,
			Scheme:       jo.Scheme,
			InstrPerCore: spec.InstrPerCore,
			WarmupCycles: spec.WarmupCycles,
			WarmupScheme: spec.WarmupScheme,
		}
		cfg, wl, err := js.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		want, err := system.RunWorkload(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		want.Workload = wl
		got, err := json.Marshal(jo.Result)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, cold) {
			t.Errorf("scheme %s: swept result differs from cold run", jo.Scheme)
		}
	}

	// The node warm-started every unit after the first.
	resp, err := http.Get(h.addrs[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m["serve.jobs.warm_starts"] != 2 {
		t.Errorf("warm_starts = %v, want 2", m["serve.jobs.warm_starts"])
	}
	if m["serve.ckpt.entries"] != 1 {
		t.Errorf("ckpt.entries = %v, want 1 (one shared prefix)", m["serve.ckpt.entries"])
	}
}
