package core

import (
	"fpb/internal/obs"
	"fpb/internal/pcm"
	"fpb/internal/power"
	"fpb/internal/sim"
)

// Ticket is the live state of an admitted write: which phase of its plan it
// is in and what tokens it currently holds.
type Ticket struct {
	Profile *pcm.WriteProfile
	Plan    *WritePlan

	phase   int
	grant   *power.Grant
	paused  bool
	waiting bool
	gcpUsed float64
}

// PhaseIndex reports the current phase (0-based).
func (t *Ticket) PhaseIndex() int { return t.phase }

// PhaseDuration reports how long the current phase lasts.
func (t *Ticket) PhaseDuration() sim.Cycle { return t.Plan.Phases[t.phase].Duration }

// InReset reports whether the current phase is a RESET (sub-)iteration.
func (t *Ticket) InReset() bool { return t.Plan.Phases[t.phase].Reset }

// Progress reports the fraction of phases completed, in [0, 1).
func (t *Ticket) Progress() float64 {
	return float64(t.phase) / float64(len(t.Plan.Phases))
}

// Waiting reports whether the write is stalled at a phase boundary for
// tokens.
func (t *Ticket) Waiting() bool { return t.waiting }

// Paused reports whether the write is paused (write pausing).
func (t *Ticket) Paused() bool { return t.paused }

// GCPUsed reports accumulated GCP output tokens across the write's phases.
func (t *Ticket) GCPUsed() float64 { return t.gcpUsed }

// AdvanceResult tells the controller what happened at a phase boundary.
type AdvanceResult int

const (
	// AdvanceDone: the write completed; all tokens are released.
	AdvanceDone AdvanceResult = iota
	// AdvanceNext: the next phase's tokens are held; schedule its end.
	AdvanceNext
	// AdvanceWait: the next phase's tokens are unavailable; the write
	// holds nothing and must Retry when tokens free up. Only Multi-RESET
	// plans can hit this (demand is otherwise non-increasing).
	AdvanceWait
)

// Scheduler admits writes and walks their plans against the power manager.
// It is the run-time half of FPB; Planner is the policy half.
type Scheduler struct {
	cfg     *sim.Config
	planner *Planner
	mgr     *power.Manager
	hub     *obs.Hub

	// Telemetry, registered in the hub's metrics registry.
	started      *obs.Counter
	completed    *obs.Counter
	mrWrites     *obs.Counter
	multiRound   *obs.Counter
	waitStalls   *obs.Counter
	admitFailure *obs.Counter
}

// NewScheduler wires a scheduler over the power manager and registers its
// metrics into hub (nil hub: detached metrics, no tracing).
func NewScheduler(cfg *sim.Config, mgr *power.Manager, hub *obs.Hub) *Scheduler {
	return &Scheduler{
		cfg:          cfg,
		planner:      NewPlanner(cfg),
		mgr:          mgr,
		hub:          hub,
		started:      hub.Counter("core.scheduler.started"),
		completed:    hub.Counter("core.scheduler.completed"),
		mrWrites:     hub.Counter("core.scheduler.multireset_splits"),
		multiRound:   hub.Counter("core.scheduler.multiround_writes"),
		waitStalls:   hub.Counter("core.scheduler.wait_stalls"),
		admitFailure: hub.Counter("core.scheduler.admit_failures"),
	}
}

// Manager exposes the underlying power manager (for telemetry readers).
func (s *Scheduler) Manager() *power.Manager { return s.mgr }

// TryStart attempts to admit the write. Per the paper, the base plan is
// tried first; if its first phase cannot be granted and Multi-RESET is
// enabled, progressively larger RESET splits (2..MultiResetSplit) are tried
// — the greedy "start a portion of the RESETs as early as possible"
// strategy of Section 6.2. Returns (ticket, true) on admission.
func (s *Scheduler) TryStart(prof *pcm.WriteProfile) (*Ticket, bool) {
	if s.cfg.MultiResetAlways && s.cfg.UsesMultiReset() && prof.Changed > 0 {
		// Ablation mode: unconditional split, no shortfall probe.
		m := s.cfg.MultiResetSplit
		if m > pcm.MaxMultiResetSplit {
			m = pcm.MaxMultiResetSplit
		}
		plan := s.planner.PlanMR(prof, m)
		if g, ok := s.mgr.TryAcquire(plan.Phases[0].Demand); ok {
			s.mrWrites.Inc()
			return s.admit(prof, plan, g), true
		}
		s.planner.Release(plan)
		s.admitFailure.Inc()
		return nil, false
	}
	plan := s.planner.Plan(prof)
	if g, ok := s.mgr.TryAcquire(plan.Phases[0].Demand); ok {
		return s.admit(prof, plan, g), true
	}
	s.planner.Release(plan)
	if s.cfg.UsesMultiReset() && prof.Changed > 0 {
		for m := 2; m <= s.cfg.MultiResetSplit && m <= pcm.MaxMultiResetSplit; m++ {
			mrPlan := s.planner.PlanMR(prof, m)
			if g, ok := s.mgr.TryAcquire(mrPlan.Phases[0].Demand); ok {
				s.mrWrites.Inc()
				return s.admit(prof, mrPlan, g), true
			}
			s.planner.Release(mrPlan)
		}
	}
	s.admitFailure.Inc()
	return nil, false
}

func (s *Scheduler) admit(prof *pcm.WriteProfile, plan *WritePlan, g *power.Grant) *Ticket {
	s.started.Inc()
	if plan.Rounds > 1 {
		s.multiRound.Inc()
	}
	if s.hub.Tracing() {
		// V carries the Multi-RESET split factor (0/1: unsplit).
		s.hub.Emit(obs.Event{Kind: obs.Instant, Cat: "core", Name: "write.admit",
			ID: -1, V: float64(plan.MRSplit)})
	}
	return &Ticket{
		Profile: prof,
		Plan:    plan,
		grant:   g,
		gcpUsed: g.GCPTokens(),
	}
}

// Advance moves the ticket past the end of its current phase. On
// AdvanceNext the grant now covers the new phase; on AdvanceWait the write
// holds no tokens and the controller must call Retry when power frees up;
// on AdvanceDone everything is released and telemetry recorded.
func (s *Scheduler) Advance(t *Ticket) AdvanceResult {
	t.phase++
	if t.phase >= len(t.Plan.Phases) {
		s.finish(t)
		return AdvanceDone
	}
	g, ok := s.mgr.Resize(t.grant, t.Plan.Phases[t.phase].Demand)
	if !ok {
		t.grant = nil
		t.waiting = true
		s.waitStalls.Inc()
		return AdvanceWait
	}
	t.grant = g
	t.gcpUsed += g.GCPTokens()
	return AdvanceNext
}

// Retry attempts to acquire the tokens for the phase a waiting write is
// stalled on. It reports whether the write may proceed.
func (s *Scheduler) Retry(t *Ticket) bool {
	if !t.waiting {
		return true
	}
	g, ok := s.mgr.TryAcquire(t.Plan.Phases[t.phase].Demand)
	if !ok {
		return false
	}
	t.grant = g
	t.gcpUsed += g.GCPTokens()
	t.waiting = false
	return true
}

// Pause releases the write's tokens at an iteration boundary (write
// pausing, Qureshi et al. HPCA'10). The bank can then serve reads.
func (s *Scheduler) Pause(t *Ticket) {
	if t.paused {
		return
	}
	s.mgr.Release(t.grant)
	t.grant = nil
	t.paused = true
}

// Resume re-acquires the paused phase's tokens; it reports whether the
// write resumed (false: stay paused and retry later).
func (s *Scheduler) Resume(t *Ticket) bool {
	if !t.paused {
		return true
	}
	g, ok := s.mgr.TryAcquire(t.Plan.Phases[t.phase].Demand)
	if !ok {
		return false
	}
	t.grant = g
	t.gcpUsed += g.GCPTokens()
	t.paused = false
	return true
}

// Cancel abandons the write (write cancellation): all tokens are released
// and the ticket becomes dead. The controller re-issues the write from
// scratch later. The plan is recycled, so the ticket's phase accessors
// must not be used afterwards.
func (s *Scheduler) Cancel(t *Ticket) {
	s.mgr.Release(t.grant)
	t.grant = nil
	t.phase = len(t.Plan.Phases)
	s.planner.Release(t.Plan)
	t.Plan = nil
}

// finish completes the write and recycles its plan.
func (s *Scheduler) finish(t *Ticket) {
	s.mgr.Release(t.grant)
	t.grant = nil
	s.mgr.RecordWriteGCPUsage(t.gcpUsed)
	s.completed.Inc()
	s.planner.Release(t.Plan)
	t.Plan = nil
}

// Stats reports scheduler telemetry: admitted writes, completions,
// Multi-RESET admissions, multi-round writes, and boundary stalls.
func (s *Scheduler) Stats() (started, completed, mr, multiRound, stalls, admitFail uint64) {
	return s.started.Value(), s.completed.Value(), s.mrWrites.Value(),
		s.multiRound.Value(), s.waitStalls.Value(), s.admitFailure.Value()
}
