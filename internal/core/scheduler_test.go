package core

import (
	"testing"

	"fpb/internal/pcm"
	"fpb/internal/power"
	"fpb/internal/sim"
)

func newSched(cfg *sim.Config) *Scheduler {
	return NewScheduler(cfg, power.NewManager(cfg, nil), nil)
}

func runToCompletion(t *testing.T, s *Scheduler, tk *Ticket) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		switch s.Advance(tk) {
		case AdvanceDone:
			return
		case AdvanceWait:
			if !s.Retry(tk) {
				t.Fatal("write stalled with no competitor holding tokens")
			}
		}
	}
	t.Fatal("write did not complete in 1000 phases")
}

func TestFigure5Scenario(t *testing.T) {
	// Per-write heuristic: WR-B (40 tokens) cannot start while WR-A holds
	// 50 of the 80 available. Under IPM, WR-A's RESET completion reclaims
	// 25 tokens and WR-B starts.
	a := wrA(8)
	b := manualProfile(40, []int{36, 20, 12, 6, 0}, 8)

	cfgPW := fig5Config(sim.SchemeDIMMChip)
	sPW := newSched(&cfgPW)
	tkA, ok := sPW.TryStart(a)
	if !ok {
		t.Fatal("per-write: WR-A not admitted")
	}
	if _, ok := sPW.TryStart(b); ok {
		t.Fatal("per-write: WR-B admitted alongside WR-A (only 30 tokens free)")
	}
	runToCompletion(t, sPW, tkA)
	if _, ok := sPW.TryStart(b); !ok {
		t.Fatal("per-write: WR-B not admitted after WR-A finished")
	}

	cfgIPM := fig5Config(sim.SchemeIPM)
	sIPM := newSched(&cfgIPM)
	tkA2, ok := sIPM.TryStart(a)
	if !ok {
		t.Fatal("IPM: WR-A not admitted")
	}
	if _, ok := sIPM.TryStart(b); ok {
		t.Fatal("IPM: WR-B admitted during WR-A's RESET")
	}
	// WR-A finishes its RESET: allocation drops 50 → 25, freeing 25.
	if res := sIPM.Advance(tkA2); res != AdvanceNext {
		t.Fatalf("Advance = %v, want AdvanceNext", res)
	}
	if got := sIPM.Manager().DIMMAvailable(); got != 55 {
		t.Fatalf("APT after WR-A RESET = %g, want 55 (Fig. 5b)", got)
	}
	if _, ok := sIPM.TryStart(b); !ok {
		t.Fatal("IPM: WR-B not admitted after RESET reclamation (Fig. 5b)")
	}
}

func TestFigure6MultiReset(t *testing.T) {
	// Fig. 6: APT 80, WR-A takes 50. WR-B needs 60 — blocked without MR,
	// admitted with a 2-way split (30 tokens).
	cfg := fig5Config(sim.SchemeIPMMR)
	cfg.MultiResetSplit = 3
	s := newSched(&cfg)
	a := wrA(8)
	b := manualProfile(60, []int{58, 30, 14, 6, 0}, 8)
	if _, ok := s.TryStart(a); !ok {
		t.Fatal("WR-A not admitted")
	}
	tkB, ok := s.TryStart(b)
	if !ok {
		t.Fatal("WR-B not admitted despite Multi-RESET")
	}
	if tkB.Plan.MRSplit != 2 {
		t.Errorf("MRSplit = %d, want 2 (smallest sufficient split)", tkB.Plan.MRSplit)
	}
	_, _, mr, _, _, _ := s.Stats()
	if mr != 1 {
		t.Errorf("MR admissions = %d, want 1", mr)
	}
}

func TestMultiResetNotUsedWhenDisabled(t *testing.T) {
	cfg := fig5Config(sim.SchemeIPM) // no MR
	s := newSched(&cfg)
	if _, ok := s.TryStart(wrA(8)); !ok {
		t.Fatal("WR-A not admitted")
	}
	b := manualProfile(60, []int{58, 30, 14, 6, 0}, 8)
	if _, ok := s.TryStart(b); ok {
		t.Fatal("WR-B admitted without MR despite 30-token APT")
	}
}

func TestTicketLifecycle(t *testing.T) {
	cfg := fig5Config(sim.SchemeIPM)
	s := newSched(&cfg)
	prof := wrA(8)
	tk, ok := s.TryStart(prof)
	if !ok {
		t.Fatal("not admitted")
	}
	if tk.PhaseIndex() != 0 || !tk.InReset() {
		t.Error("fresh ticket not in RESET phase")
	}
	if tk.PhaseDuration() != cfg.ResetCycles {
		t.Errorf("RESET duration = %d", tk.PhaseDuration())
	}
	if tk.Progress() != 0 {
		t.Error("fresh progress != 0")
	}
	runToCompletion(t, s, tk)
	if s.Manager().DIMMAvailable() != cfg.DIMMTokens {
		t.Errorf("tokens leaked: %g available, want %g",
			s.Manager().DIMMAvailable(), cfg.DIMMTokens)
	}
	s.Manager().CheckInvariants(true)
	started, completed, _, _, _, _ := s.Stats()
	if started != 1 || completed != 1 {
		t.Errorf("stats = %d started / %d completed", started, completed)
	}
}

func TestMultiResetDemandBumpWaits(t *testing.T) {
	// Multi-RESET is the only plan shape whose demand can *increase*
	// mid-write: sub-RESETs of 60/3 = 20 tokens, then the first SET
	// needs 60×0.5 = 30. Arrange APT so the bump cannot be granted and
	// the write must wait at the boundary.
	cfg := fig5Config(sim.SchemeIPMMR)
	s := newSched(&cfg)
	blocker, ok := s.TryStart(manualProfile(55, []int{53, 28, 12, 0}, 8))
	if !ok {
		t.Fatal("blocker not admitted") // holds 55, APT 25
	}
	b := manualProfile(60, []int{58, 30, 14, 6, 0}, 8)
	tkB, ok := s.TryStart(b) // MR2 needs 30 > 25; MR3 groups of 20 fit
	if !ok {
		t.Fatal("WR-B not admitted with MR")
	}
	if tkB.Plan.MRSplit != 3 {
		t.Fatalf("MRSplit = %d, want 3", tkB.Plan.MRSplit)
	}
	// Sub-RESETs 2 and 3: demand stays 20 → fine.
	if res := s.Advance(tkB); res != AdvanceNext {
		t.Fatalf("sub-RESET 2 advance = %v", res)
	}
	if res := s.Advance(tkB); res != AdvanceNext {
		t.Fatalf("sub-RESET 3 advance = %v", res)
	}
	// First SET needs 30; APT = 80-55-20+20(released) = 25 < 30 → wait.
	if res := s.Advance(tkB); res != AdvanceWait {
		t.Fatalf("SET advance = %v, want AdvanceWait", res)
	}
	if !tkB.Waiting() {
		t.Error("ticket not marked waiting")
	}
	if s.Retry(tkB) {
		t.Error("retry succeeded with no tokens freed")
	}
	// Blocker finishes its RESET: allocation 55 → 27.5, freeing 27.5;
	// APT = 52.5 ≥ 30 → WR-B resumes.
	if res := s.Advance(blocker); res != AdvanceNext {
		t.Fatal("blocker advance failed")
	}
	if !s.Retry(tkB) {
		t.Fatal("WR-B did not resume after tokens freed")
	}
	runToCompletion(t, s, tkB)
	runToCompletion(t, s, blocker)
	s.Manager().CheckInvariants(true)
}

func TestPauseResume(t *testing.T) {
	cfg := fig5Config(sim.SchemeIPM)
	s := newSched(&cfg)
	tk, _ := s.TryStart(wrA(8))
	avail := s.Manager().DIMMAvailable()
	s.Pause(tk)
	if !tk.Paused() {
		t.Error("not paused")
	}
	if got := s.Manager().DIMMAvailable(); got != avail+50 {
		t.Errorf("pause freed %g tokens, want 50", got-avail)
	}
	s.Pause(tk) // idempotent
	if !s.Resume(tk) {
		t.Fatal("resume failed with free tokens")
	}
	if s.Manager().DIMMAvailable() != avail {
		t.Error("resume did not retake tokens")
	}
	if !s.Resume(tk) {
		t.Error("resume of running ticket must be true")
	}
	runToCompletion(t, s, tk)
}

func TestResumeFailsWhenTokensTaken(t *testing.T) {
	cfg := fig5Config(sim.SchemeIPM)
	s := newSched(&cfg)
	tk, _ := s.TryStart(wrA(8)) // 50 tokens
	s.Pause(tk)
	other, ok := s.TryStart(manualProfile(60, []int{30, 0}, 8))
	if !ok {
		t.Fatal("competitor not admitted into paused window")
	}
	if s.Resume(tk) {
		t.Error("resume succeeded with only 20 tokens free")
	}
	runToCompletion(t, s, other)
	if !s.Resume(tk) {
		t.Error("resume failed after competitor finished")
	}
	runToCompletion(t, s, tk)
	s.Manager().CheckInvariants(true)
}

func TestCancelReleasesEverything(t *testing.T) {
	cfg := fig5Config(sim.SchemeIPM)
	s := newSched(&cfg)
	tk, _ := s.TryStart(wrA(8))
	s.Cancel(tk)
	if s.Manager().DIMMAvailable() != cfg.DIMMTokens {
		t.Error("cancel leaked tokens")
	}
	s.Manager().CheckInvariants(true)
}

func TestGCPUsedAccumulates(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeGCP
	s := newSched(&cfg)
	// Saturate chip 0 with a direct write so the next one needs the GCP.
	hot := &pcm.WriteProfile{
		Changed:       60,
		TotalIters:    1,
		PerChip:       []int{60, 0, 0, 0, 0, 0, 0, 0},
		RemainTotal:   []int{60, 0},
		RemainPerChip: [][]int{{60, 0, 0, 0, 0, 0, 0, 0}, {0, 0, 0, 0, 0, 0, 0, 0}},
	}
	if _, ok := s.TryStart(hot); !ok {
		t.Fatal("first hot write not admitted")
	}
	hot2 := &pcm.WriteProfile{
		Changed:       30,
		TotalIters:    1,
		PerChip:       []int{30, 0, 0, 0, 0, 0, 0, 0},
		RemainTotal:   []int{30, 0},
		RemainPerChip: [][]int{{30, 0, 0, 0, 0, 0, 0, 0}, {0, 0, 0, 0, 0, 0, 0, 0}},
	}
	tk2, ok := s.TryStart(hot2)
	if !ok {
		t.Fatal("second hot write not admitted despite GCP")
	}
	if tk2.GCPUsed() != 30 {
		t.Errorf("GCPUsed = %g, want 30", tk2.GCPUsed())
	}
	runToCompletion(t, s, tk2)
	if got := s.Manager().AvgGCPPerWrite(); got != 30 {
		t.Errorf("AvgGCPPerWrite = %g, want 30", got)
	}
}

func TestChipBlockingFigure3(t *testing.T) {
	// Fig. 3: WR-A changes 4 cells (1/1/2 per chip... adapted to 8 chips):
	// a chip at its budget blocks WR-B even though the DIMM has room.
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeDIMMChip
	s := newSched(&cfg)
	lcp := cfg.LCPTokens() // 66.5
	mk := func(onChip1 int) *pcm.WriteProfile {
		per := make([]int, 8)
		per[1] = onChip1
		p := &pcm.WriteProfile{
			Changed:       onChip1,
			TotalIters:    1,
			PerChip:       per,
			RemainTotal:   []int{onChip1, 0},
			RemainPerChip: [][]int{per, make([]int, 8)},
		}
		return p
	}
	a := mk(int(lcp)) // 66 cells on chip 1
	if _, ok := s.TryStart(a); !ok {
		t.Fatal("WR-A not admitted")
	}
	// WR-B wants 3 more cells on chip 1: DIMM has 494 tokens free, but
	// chip 1 has only 0.5 — blocked, the exact pathology of Fig. 3.
	if _, ok := s.TryStart(mk(3)); ok {
		t.Fatal("WR-B admitted past chip 1's budget")
	}
	// The same WR-B under a GCP goes through.
	cfgG := cfg
	cfgG.Scheme = sim.SchemeGCP
	sG := newSched(&cfgG)
	if _, ok := sG.TryStart(a); !ok {
		t.Fatal("GCP: WR-A not admitted")
	}
	if _, ok := sG.TryStart(mk(3)); !ok {
		t.Fatal("GCP: WR-B still blocked")
	}
}
