package core

import (
	"math"
	"testing"

	"fpb/internal/pcm"
	"fpb/internal/sim"
)

// manualProfile builds a WriteProfile by hand so tests control the exact
// iteration behaviour (the paper's Fig. 5/6 walkthroughs).
func manualProfile(changed int, remainAfter []int, chips int) *pcm.WriteProfile {
	p := &pcm.WriteProfile{
		Changed:    changed,
		TotalIters: len(remainAfter),
		PerChip:    make([]int, chips),
	}
	// Spread changes round-robin across chips.
	for i := 0; i < changed; i++ {
		p.PerChip[i%chips]++
	}
	p.RemainTotal = append([]int{changed}, remainAfter...)
	p.RemainPerChip = make([][]int, len(p.RemainTotal))
	for k, total := range p.RemainTotal {
		per := make([]int, chips)
		for i := 0; i < total; i++ {
			per[i%chips]++
		}
		p.RemainPerChip[k] = per
	}
	p.MRGroups = make([][][]int, pcm.MaxMultiResetSplit+1)
	for m := 2; m <= pcm.MaxMultiResetSplit; m++ {
		g := make([][]int, chips)
		for c := range g {
			g[c] = make([]int, m)
			for i := 0; i < p.PerChip[c]; i++ {
				// Offset the round-robin by chip so per-chip
				// remainders spread across groups and group totals
				// stay globally balanced.
				g[c][(i+c)%m]++
			}
		}
		p.MRGroups[m] = g
	}
	return p
}

// fig5Config reproduces the Section 3 discussion setting: only the DIMM
// budget matters (chip budgets non-binding), 80 available power tokens,
// SET power = RESET/2.
func fig5Config(scheme sim.Scheme) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scheme = scheme
	cfg.DIMMTokens = 80
	cfg.LocalScale = 100 // chip budgets effectively unlimited
	cfg.SetPowerRatio = 0.5
	return cfg
}

// wrA is WR-A of Fig. 5: 50 cell changes, 1 RESET + 3 SETs; 2 cells finish
// at RESET, then 22, 14, 12 per SET iteration.
func wrA(chips int) *pcm.WriteProfile {
	return manualProfile(50, []int{48, 26, 12, 0}, chips)
}

func TestIPMAllocationsMatchFigure5(t *testing.T) {
	cfg := fig5Config(sim.SchemeIPM)
	pl := NewPlanner(&cfg)
	plan := pl.Plan(wrA(cfg.Chips))
	if plan.Rounds != 1 {
		t.Fatalf("Rounds = %d, want 1", plan.Rounds)
	}
	// Paper Fig. 5(b): allocated tokens 50, 25, 24, 13.
	want := []float64{50, 25, 24, 13}
	if len(plan.Phases) != len(want) {
		t.Fatalf("phases = %d, want %d", len(plan.Phases), len(want))
	}
	for i, w := range want {
		if got := plan.Phases[i].Demand.DIMM; math.Abs(got-w) > 1e-9 {
			t.Errorf("iteration %d allocation = %g, want %g (Fig. 5b)", i+1, got, w)
		}
	}
	if !plan.Phases[0].Reset || plan.Phases[1].Reset {
		t.Error("RESET flags wrong")
	}
}

func TestPerWritePlanHoldsPeakForWholeWrite(t *testing.T) {
	cfg := fig5Config(sim.SchemeDIMMOnly)
	pl := NewPlanner(&cfg)
	prof := wrA(cfg.Chips)
	plan := pl.Plan(prof)
	if len(plan.Phases) != 1 {
		t.Fatalf("per-write plan has %d phases, want 1", len(plan.Phases))
	}
	if plan.Phases[0].Demand.DIMM != 50 {
		t.Errorf("demand = %g, want 50", plan.Phases[0].Demand.DIMM)
	}
	wantDur := cfg.ResetCycles + 3*cfg.SetCycles
	if plan.Phases[0].Duration != wantDur {
		t.Errorf("duration = %d, want %d", plan.Phases[0].Duration, wantDur)
	}
	if plan.TotalDuration() != wantDur {
		t.Errorf("TotalDuration = %d, want %d", plan.TotalDuration(), wantDur)
	}
}

func TestDIMMOnlyPlanHasNoChipDemand(t *testing.T) {
	cfg := fig5Config(sim.SchemeDIMMOnly)
	pl := NewPlanner(&cfg)
	plan := pl.Plan(wrA(cfg.Chips))
	if plan.Phases[0].Demand.PerChip != nil {
		t.Error("DIMM-only plan carries per-chip demand")
	}
	cfgChip := fig5Config(sim.SchemeDIMMChip)
	plan2 := NewPlanner(&cfgChip).Plan(wrA(cfgChip.Chips))
	if plan2.Phases[0].Demand.PerChip == nil {
		t.Error("DIMM+chip plan missing per-chip demand")
	}
}

func TestIdealPlanHasZeroDemand(t *testing.T) {
	cfg := fig5Config(sim.SchemeIdeal)
	pl := NewPlanner(&cfg)
	plan := pl.Plan(wrA(cfg.Chips))
	if len(plan.Phases) != 1 || plan.Phases[0].Demand.DIMM != 0 {
		t.Error("Ideal plan must be a single zero-demand phase")
	}
	if plan.TotalDuration() != cfg.ResetCycles+3*cfg.SetCycles {
		t.Error("Ideal plan duration wrong")
	}
}

func TestMultiResetLowersPeakDemand(t *testing.T) {
	// Fig. 6: WR-B changes 60 cells; a single RESET needs 60 tokens but a
	// 2-way split needs only 30 per sub-RESET.
	cfg := fig5Config(sim.SchemeIPMMR)
	pl := NewPlanner(&cfg)
	wrB := manualProfile(60, []int{58, 30, 14, 6, 0}, cfg.Chips)
	base := pl.Plan(wrB)
	mr := pl.PlanMR(wrB, 2)
	if base.PeakDIMMDemand() != 60 {
		t.Errorf("base peak = %g, want 60", base.PeakDIMMDemand())
	}
	if got := mr.PeakDIMMDemand(); got != 30 {
		t.Errorf("MR2 peak = %g, want 30 (Fig. 6b)", got)
	}
	// Latency cost: m-1 extra RESET slots.
	if mr.TotalDuration() != base.TotalDuration()+cfg.ResetCycles {
		t.Errorf("MR2 duration %d, want base+1 RESET %d",
			mr.TotalDuration(), base.TotalDuration()+cfg.ResetCycles)
	}
	if mr.MRSplit != 2 {
		t.Errorf("MRSplit = %d", mr.MRSplit)
	}
	// Sub-RESET demands partition the full RESET demand.
	sum := 0.0
	for _, ph := range mr.Phases {
		if ph.Reset {
			sum += ph.Demand.DIMM
		}
	}
	if sum != 60 {
		t.Errorf("sub-RESET demands sum to %g, want 60", sum)
	}
}

func TestPlanMRRangePanics(t *testing.T) {
	cfg := fig5Config(sim.SchemeIPMMR)
	pl := NewPlanner(&cfg)
	defer func() {
		if recover() == nil {
			t.Error("PlanMR(1) did not panic")
		}
	}()
	pl.PlanMR(wrA(cfg.Chips), 1)
}

func TestIPMDemandNonIncreasing(t *testing.T) {
	cfg := fig5Config(sim.SchemeIPM)
	cfg.DIMMTokens = 2000
	pl := NewPlanner(&cfg)
	b := pcm.NewBuilder(&cfg, sim.NewRNG(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + trial*7
		cells := make([]int, 0, n)
		for i := 0; i < n && i < cfg.CellsPerLine(); i++ {
			cells = append(cells, i)
		}
		prof := b.BuildFromCells(0, cells, nil, func(c int) int { return c % cfg.Chips }, false)
		plan := pl.Plan(prof)
		for i := 1; i < len(plan.Phases); i++ {
			if plan.Phases[i].Demand.DIMM > plan.Phases[i-1].Demand.DIMM+1e-9 {
				t.Fatalf("trial %d: IPM demand increased at phase %d", trial, i)
			}
		}
	}
}

func TestIPMTokenHoldingNeverExceedsPerWrite(t *testing.T) {
	// The whole point of IPM: integrated token-cycles held must be at
	// most the per-write heuristic's allocation.
	cfgIPM := fig5Config(sim.SchemeIPM)
	cfgPW := fig5Config(sim.SchemeDIMMChip)
	prof := wrA(8)
	ipm := NewPlanner(&cfgIPM).Plan(prof)
	pw := NewPlanner(&cfgPW).Plan(prof)
	hold := func(p *WritePlan) float64 {
		total := 0.0
		for _, ph := range p.Phases {
			total += ph.Demand.DIMM * float64(ph.Duration)
		}
		return total
	}
	if hold(ipm) >= hold(pw) {
		t.Errorf("IPM token-cycles %.0f not below per-write %.0f", hold(ipm), hold(pw))
	}
}

func TestMultiRoundTriggeredByHotChip(t *testing.T) {
	// 128 changed cells all on chip 0 (NE mapping of a hot word region)
	// exceed the 66.5-token LCP; without a GCP the write must run in two
	// rounds, as Section 3.2's multi-round discussion describes.
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeDIMMChip
	prof := &pcm.WriteProfile{
		Changed:       128,
		TotalIters:    2,
		PerChip:       []int{128, 0, 0, 0, 0, 0, 0, 0},
		RemainTotal:   []int{128, 100, 0},
		RemainPerChip: [][]int{{128, 0, 0, 0, 0, 0, 0, 0}, {100, 0, 0, 0, 0, 0, 0, 0}, {0, 0, 0, 0, 0, 0, 0, 0}},
	}
	plan := NewPlanner(&cfg).Plan(prof)
	if plan.Rounds != 2 {
		t.Fatalf("Rounds = %d, want 2 for a 128-cell single-chip write", plan.Rounds)
	}
	for _, ph := range plan.Phases {
		if ph.Demand.PerChip[0] > cfg.LCPTokens()+1e-9 {
			t.Errorf("phase demand %.1f exceeds chip capacity %.1f", ph.Demand.PerChip[0], cfg.LCPTokens())
		}
	}
	// The same write under a GCP fits in one round: the GCP (66.5 output
	// tokens) cannot cover 128 either, so still two rounds — but halving
	// to 64 fits the LCP directly.
	cfg.Scheme = sim.SchemeGCP
	plan2 := NewPlanner(&cfg).Plan(prof)
	if plan2.Rounds != 2 {
		t.Errorf("GCP Rounds = %d, want 2 (64-token halves fit the LCP)", plan2.Rounds)
	}
}

func TestMultiRoundDIMMOnly(t *testing.T) {
	// 1024 changed cells against a 560-token DIMM: two rounds
	// (Section 3.2: "the line is written in two rounds").
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeDIMMOnly
	prof := manualProfile(1024, []int{900, 400, 0}, cfg.Chips)
	plan := NewPlanner(&cfg).Plan(prof)
	if plan.Rounds != 2 {
		t.Fatalf("Rounds = %d, want 2", plan.Rounds)
	}
	if got := plan.PeakDIMMDemand(); got != 512 {
		t.Errorf("peak demand = %g, want 512", got)
	}
	// Duration doubles: the rounds do not overlap. TotalIters is 3
	// (RESET + 2 SETs) for the 3-entry remain list.
	single := cfg.ResetCycles + 2*cfg.SetCycles
	if plan.TotalDuration() != 2*single {
		t.Errorf("duration = %d, want %d", plan.TotalDuration(), 2*single)
	}
}

func TestZeroChangeWritePlan(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeDIMMChip
	prof := manualProfile(0, []int{0}, cfg.Chips)
	plan := NewPlanner(&cfg).Plan(prof)
	if plan.Rounds != 1 || plan.PeakDIMMDemand() != 0 {
		t.Error("zero-change write should be a free single round")
	}
}
