package core

import (
	"testing"

	"fpb/internal/mapping"
	"fpb/internal/pcm"
	"fpb/internal/sim"
	"fpb/internal/testutil"
)

// TestPlanSteadyStateZeroAlloc guards the plan/chunk pools: once primed,
// Plan + Release must not touch the allocator — this is the per-write-
// attempt hot path of the FPB scheduler.
func TestPlanSteadyStateZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeGCPIPM // chip budgets enforced: per-chip vectors in play
	rng := sim.NewRNG(7)
	b := pcm.NewBuilder(&cfg, rng)
	cells := make([]int, 128)
	for i := range cells {
		cells[i] = i * 3 % cfg.CellsPerLine()
	}
	prof := b.BuildFromCells(0x40, cells, nil, mapping.New(cfg.CellMapping, cfg.CellsPerLine(), cfg.Chips), false)

	pl := NewPlanner(&cfg)
	// Prime the pools (both the unsplit and the MR shapes).
	pl.Release(pl.Plan(prof))
	pl.Release(pl.PlanMR(prof, 2))
	allocs := testing.AllocsPerRun(1000, func() {
		plan := pl.Plan(prof)
		pl.Release(plan)
	})
	if allocs != 0 {
		t.Fatalf("Plan+Release allocated %.1f objects/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		plan := pl.PlanMR(prof, 2)
		pl.Release(plan)
	})
	if allocs != 0 {
		t.Fatalf("PlanMR+Release allocated %.1f objects/op, want 0", allocs)
	}
}

// TestProfileBuildSteadyStateZeroAlloc guards the profile pool end to end:
// Build + Release over realistic line content must be allocation-free once
// the pool holds a profile of sufficient shape.
func TestProfileBuildSteadyStateZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	cfg := sim.DefaultConfig()
	rng := sim.NewRNG(11)
	b := pcm.NewBuilder(&cfg, rng)
	mapFn := mapping.New(cfg.CellMapping, cfg.CellsPerLine(), cfg.Chips)
	old := make([]byte, cfg.L3LineB)
	new := make([]byte, cfg.L3LineB)
	for i := range new {
		old[i] = byte(i)
		new[i] = byte(i * 7)
	}
	b.Release(b.Build(0x80, old, new, mapFn, cfg.WriteTruncation))
	allocs := testing.AllocsPerRun(1000, func() {
		b.Release(b.Build(0x80, old, new, mapFn, cfg.WriteTruncation))
	})
	if allocs != 0 {
		t.Fatalf("Build+Release allocated %.1f objects/op, want 0", allocs)
	}
}
