// Package core implements the paper's contribution: fine-grained write
// power budgeting (FPB) for MLC PCM. It turns a write's physical profile
// (internal/pcm) into a *power plan* — the sequence of token allocations the
// write holds over its lifetime — under any of the evaluated schemes:
//
//   - Ideal: no power restriction.
//   - Per-write budgeting (Hay et al., MICRO'11): one allocation sized for
//     the RESET demand, held for the whole write (DIMM-only and DIMM+chip).
//   - FPB-IPM: per-iteration allocations that track the step-down power
//     demand of the program-and-verify sequence, reclaiming tokens after
//     the RESET and after every SET iteration (Section 3).
//   - Multi-RESET: splitting the power-hungry RESET iteration into m
//     sub-RESETs to lower the peak demand (Section 3.2).
//   - FPB-GCP: chip-level shortfalls covered by the global charge pump
//     (Section 4) — realized in internal/power and engaged through the
//     per-chip demands this package emits.
//
// It also implements the paper's multi-round write fallback (Section 3.2's
// comparison): a write whose demand exceeds what the budgets can ever
// supply is executed as R sequential rounds over disjoint cell subsets.
package core

import (
	"fmt"

	"fpb/internal/pcm"
	"fpb/internal/power"
	"fpb/internal/sim"
)

// Phase is one contiguous stretch of a write during which its token
// allocation is constant.
type Phase struct {
	Duration sim.Cycle
	Demand   power.Demand
	// Reset marks RESET (sub-)iterations; used by write-pausing, which
	// may only pause between iterations, and by telemetry.
	Reset bool
}

// WritePlan is the full power/timing schedule for one line write.
type WritePlan struct {
	Phases []Phase
	// MRSplit is the Multi-RESET split factor used (0 or 1 when the
	// RESET was not split).
	MRSplit int
	// Rounds > 1 marks a multi-round write: the phase list already
	// contains every round, over cell subsets scaled by 1/Rounds.
	Rounds int

	// pooled marks a plan returned to its Planner's pool; it must not be
	// used until the Planner hands it out again.
	pooled bool
}

// TotalDuration sums the phase durations.
func (p *WritePlan) TotalDuration() sim.Cycle {
	var d sim.Cycle
	for _, ph := range p.Phases {
		d += ph.Duration
	}
	return d
}

// PeakDIMMDemand returns the largest per-phase DIMM demand; the admission
// test of the per-write heuristic and the Multi-RESET trigger compare this
// against available tokens.
func (p *WritePlan) PeakDIMMDemand() float64 {
	peak := 0.0
	for _, ph := range p.Phases {
		if ph.Demand.DIMM > peak {
			peak = ph.Demand.DIMM
		}
	}
	return peak
}

// Planner builds WritePlans for a fixed configuration.
//
// Plans are pooled: Release returns one (with its per-chip demand vectors)
// to the planner for reuse, making steady-state planning allocation-free.
// A Planner must not be shared across goroutines.
type Planner struct {
	cfg       *sim.Config
	free      []*WritePlan
	chunkFree [][]float64 // pooled per-chip demand vectors, each len cfg.Chips
	counts    []int       // scratch for the Multi-RESET sub-iteration branch
}

// NewPlanner returns a planner for the configuration.
func NewPlanner(cfg *sim.Config) *Planner {
	return &Planner{cfg: cfg}
}

// Release returns a plan (and the per-chip demand vectors inside its
// phases) to the planner's pool. The plan must not be used afterwards;
// releasing nil or an already pooled plan is a no-op.
func (pl *Planner) Release(plan *WritePlan) {
	if plan == nil || plan.pooled {
		return
	}
	plan.pooled = true
	for i := range plan.Phases {
		if per := plan.Phases[i].Demand.PerChip; per != nil {
			pl.chunkFree = append(pl.chunkFree, per)
			plan.Phases[i].Demand.PerChip = nil
		}
	}
	plan.Phases = plan.Phases[:0]
	pl.free = append(pl.free, plan)
}

// newPlan pops the pool or allocates a fresh plan.
func (pl *Planner) newPlan() *WritePlan {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free = pl.free[:n-1]
		p.pooled = false
		return p
	}
	return &WritePlan{}
}

// newChunk pops a pooled per-chip vector or allocates one. Callers
// overwrite every element, so chunks are not zeroed.
func (pl *Planner) newChunk() []float64 {
	if n := len(pl.chunkFree); n > 0 {
		c := pl.chunkFree[n-1]
		pl.chunkFree = pl.chunkFree[:n-1]
		return c
	}
	return make([]float64, pl.cfg.Chips)
}

// resizeInts returns s resized to n elements, zeroed, reusing its backing
// array when capacity allows.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// chipDemand fills a pooled per-chip vector with counts×factor×scale, or
// returns nil when chip budgets are not enforced.
func (pl *Planner) chipDemand(counts []int, factor, scale float64) []float64 {
	if !pl.cfg.EnforcesChipBudget() || counts == nil {
		return nil
	}
	per := pl.newChunk()
	for c, n := range counts {
		per[c] = float64(n) * factor * scale
	}
	return per
}

// Plan builds the write plan for the profile under the configured scheme,
// without Multi-RESET (callers apply MR separately when the base plan
// cannot be admitted). Multi-round scaling is applied automatically when
// the demand exceeds budget capacities.
func (pl *Planner) Plan(prof *pcm.WriteProfile) *WritePlan {
	return pl.plan(prof, 0)
}

// PlanMR builds the plan with the RESET split into m sub-iterations.
// It panics if m is out of the precomputed range.
func (pl *Planner) PlanMR(prof *pcm.WriteProfile, m int) *WritePlan {
	if m < 2 || m > pcm.MaxMultiResetSplit {
		panic(fmt.Sprintf("core: Multi-RESET split %d out of range [2,%d]", m, pcm.MaxMultiResetSplit))
	}
	return pl.plan(prof, m)
}

func (pl *Planner) plan(prof *pcm.WriteProfile, mr int) *WritePlan {
	plan := pl.newPlan()
	plan.MRSplit = mr
	rounds := pl.requiredRounds(prof, mr)
	plan.Rounds = rounds
	scale := 1.0 / float64(rounds)
	for r := 0; r < rounds; r++ {
		pl.roundPhases(plan, prof, mr, scale)
	}
	return plan
}

// roundPhases appends the phases of one write round to the plan, with all
// demands scaled by scale (1/Rounds).
func (pl *Planner) roundPhases(plan *WritePlan, prof *pcm.WriteProfile, mr int, scale float64) {
	cfg := pl.cfg

	switch {
	case cfg.Scheme == sim.SchemeIdeal:
		// No budgeting: a single zero-demand phase spanning the write.
		plan.Phases = append(plan.Phases, Phase{
			Duration: prof.Duration(cfg, mr),
			Reset:    true,
		})

	case !cfg.UsesIPM():
		// Per-write heuristic: the full RESET-sized demand is held for
		// the entire duration of the longest cell write — exactly the
		// pessimism Figure 5(a) illustrates.
		plan.Phases = append(plan.Phases, Phase{
			Duration: prof.Duration(cfg, mr),
			Demand: power.Demand{
				DIMM:    float64(prof.Changed) * scale,
				PerChip: pl.chipDemand(prof.PerChip, 1, scale),
			},
			Reset: true,
		})

	default:
		// FPB-IPM: one phase per iteration with step-down demand.
		ratio := cfg.SetPowerRatio
		if mr > 1 {
			// Multi-RESET: m sub-RESETs over static cell groups.
			pl.counts = resizeInts(pl.counts, len(prof.PerChip))
			for g := 0; g < mr; g++ {
				total := 0
				for c := range prof.PerChip {
					n := prof.MRGroups[mr][c][g]
					pl.counts[c] = n
					total += n
				}
				plan.Phases = append(plan.Phases, Phase{
					Duration: cfg.ResetCycles,
					Demand: power.Demand{
						DIMM:    float64(total) * scale,
						PerChip: pl.chipDemand(pl.counts, 1, scale),
					},
					Reset: true,
				})
			}
		} else {
			plan.Phases = append(plan.Phases, Phase{
				Duration: cfg.ResetCycles,
				Demand: power.Demand{
					DIMM:    float64(prof.Changed) * scale,
					PerChip: pl.chipDemand(prof.PerChip, 1, scale),
				},
				Reset: true,
			})
		}
		// SET iterations 2..TotalIters. The allocation for iteration j
		// is computed from information available at its start: iteration
		// 2 reclaims (C-1)/C of the RESET allocation (demand = Changed ×
		// SetPowerRatio); iteration j >= 3 is sized by the cells still
		// unfinished after iteration j-2, reported by the chips at the
		// end of that iteration (Section 3.1).
		for j := 2; j <= prof.TotalIters; j++ {
			basis := prof.Changed
			basisPer := prof.PerChip
			if j >= 3 {
				basis = prof.RemainTotal[j-2]
				basisPer = prof.RemainPerChip[j-2]
			}
			plan.Phases = append(plan.Phases, Phase{
				Duration: cfg.SetCycles,
				Demand: power.Demand{
					DIMM:    float64(basis) * ratio * scale,
					PerChip: pl.chipDemand(basisPer, ratio, scale),
				},
			})
		}
	}
}

// maxFeasibilityRounds bounds the multi-round search; no realistic
// configuration needs more (a 1024-cell line against a 66-token chip budget
// needs 2 rounds under the worst mapping).
const maxFeasibilityRounds = 64

// requiredRounds returns the smallest R such that every phase demand of the
// write, scaled by 1/R, fits within the *capacities* of the budgets (not
// current availability) — i.e. the write can eventually issue when alone in
// the system. This is the paper's multi-round write.
func (pl *Planner) requiredRounds(prof *pcm.WriteProfile, mr int) int {
	cfg := pl.cfg
	// The half-stripe layout physically accesses every line in two
	// rounds regardless of power budgets (Section 2.1).
	minRounds := 1
	if cfg.HalfStripe {
		minRounds = 2
	}
	if cfg.Scheme == sim.SchemeIdeal {
		return minRounds
	}
	for r := minRounds; r <= maxFeasibilityRounds; r++ {
		if pl.feasibleAtScale(prof, mr, 1.0/float64(r)) {
			return r
		}
	}
	return maxFeasibilityRounds
}

// feasibleAtScale checks whether the write's peak phase demands, scaled,
// fit the static budget capacities.
func (pl *Planner) feasibleAtScale(prof *pcm.WriteProfile, mr int, scale float64) bool {
	cfg := pl.cfg
	const eps = 1e-9
	// DIMM level: the peak demand is the (possibly split) RESET.
	peakDIMM := float64(prof.Changed) * scale
	if cfg.UsesIPM() && mr > 1 {
		peakDIMM = 0
		for g := 0; g < mr; g++ {
			total := 0
			for c := range prof.PerChip {
				total += prof.MRGroups[mr][c][g]
			}
			if d := float64(total) * scale; d > peakDIMM {
				peakDIMM = d
			}
		}
		// SET iterations may exceed a sub-RESET's demand.
		if d := float64(prof.Changed) * cfg.SetPowerRatio * scale; d > peakDIMM {
			peakDIMM = d
		}
	}
	if cfg.EnforcesDIMMBudget() && peakDIMM > cfg.DIMMTokens+eps {
		return false
	}
	if !cfg.EnforcesChipBudget() {
		return true
	}
	// Chip level: each segment must fit its LCP, or be coverable by the
	// GCP; GCP-covered segments must jointly fit the GCP output and the
	// borrow must be fundable from the remaining headroom.
	lcpCap := cfg.LCPTokens()
	gcpCap := 0.0
	if cfg.UsesGCP() {
		gcpCap = cfg.GCPTokens()
	}
	peakChip := func(c int) float64 {
		d := float64(prof.PerChip[c]) * scale
		if cfg.UsesIPM() && mr > 1 {
			d = 0
			for g := 0; g < mr; g++ {
				if v := float64(prof.MRGroups[mr][c][g]) * scale; v > d {
					d = v
				}
			}
			if v := float64(prof.PerChip[c]) * cfg.SetPowerRatio * scale; v > d {
				d = v
			}
		}
		return d
	}
	gcpNeed, direct := 0.0, 0.0
	for c := range prof.PerChip {
		d := peakChip(c)
		switch {
		case d <= lcpCap+eps:
			direct += d
		case d <= gcpCap+eps:
			gcpNeed += d
		default:
			return false
		}
	}
	if gcpNeed == 0 {
		return true
	}
	if gcpNeed > gcpCap+eps {
		return false
	}
	borrow := gcpNeed * cfg.LCPEff / cfg.GCPEff
	headroom := float64(cfg.Chips)*lcpCap - direct
	return borrow <= headroom+eps
}
