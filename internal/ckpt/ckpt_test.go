package ckpt

import (
	"bytes"
	"math"
	"testing"
)

// TestWriterReaderRoundTrip pins the primitive encodings: every value written
// comes back exactly, and the image survives its own integrity check.
func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Section("test")
	w.U8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xDEADBEEF)
	w.U64(1<<63 + 12345)
	w.I64(-42)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.Bytes([]byte{1, 2, 3})
	w.Bytes(nil)
	w.String("hello, 世界")
	w.U64s([]uint64{7, 8, 9})
	img := w.Finish()

	r, err := NewReader(img)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	r.Section("test")
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8: got %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32: got %#x", got)
	}
	if got := r.U64(); got != 1<<63+12345 {
		t.Errorf("U64: got %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64: got %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64: got %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 -Inf: got %v", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes: got %v", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("empty Bytes: got %v", got)
	}
	if got := r.String(); got != "hello, 世界" {
		t.Errorf("String: got %q", got)
	}
	got := r.U64s()
	if len(got) != 3 || got[0] != 7 || got[2] != 9 {
		t.Errorf("U64s: got %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
}

// TestReaderRejects pins the loud-failure contract of the header checks and
// the sticky error model.
func TestReaderRejects(t *testing.T) {
	w := NewWriter()
	w.U64(1)
	img := w.Finish()

	if _, err := NewReader(img[:4]); err == nil {
		t.Error("truncated image accepted")
	}
	bad := append([]byte(nil), img...)
	bad[0] ^= 0xFF
	if _, err := NewReader(bad); err == nil {
		t.Error("bad magic accepted")
	}
	flip := append([]byte(nil), img...)
	flip[len(flip)-1] ^= 0x01
	if _, err := NewReader(flip); err == nil {
		t.Error("corrupt trailer accepted")
	}

	r, err := NewReader(img)
	if err != nil {
		t.Fatal(err)
	}
	r.Section("nope") // payload is a U64, not this section
	if r.Err() == nil {
		t.Error("section mismatch not detected")
	}
	first := r.Err()
	_ = r.U64() // past the end; sticky error must keep the first cause
	if r.Err() != first {
		t.Errorf("sticky error replaced: %v -> %v", first, r.Err())
	}
}

// FuzzCheckpointRoundTrip fuzzes the format on two axes at once. The raw
// image bytes go through NewReader, which must never panic or accept a
// tampered trailer; and the fuzz inputs are also interpreted as values for a
// write-read round trip, which must reproduce them exactly.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint64(0), "s")
	f.Add([]byte{0xFF}, uint64(1<<40), "section")
	f.Add(NewWriter().Finish(), uint64(42), "")
	f.Fuzz(func(t *testing.T, raw []byte, v uint64, name string) {
		// Axis 1: arbitrary bytes must decode safely or fail loudly.
		if r, err := NewReader(raw); err == nil {
			r.Section(name)
			_ = r.U64()
			_ = r.Bytes()
			_ = r.U64s()
			_ = r.String()
		}

		// Axis 2: a well-formed image must round-trip bit for bit.
		w := NewWriter()
		w.Section(name)
		w.U64(v)
		w.Bytes(raw)
		w.F64(math.Float64frombits(v))
		img := w.Finish()
		r, err := NewReader(img)
		if err != nil {
			t.Fatalf("own image rejected: %v", err)
		}
		r.Section(name)
		if got := r.U64(); got != v {
			t.Fatalf("U64 round trip: wrote %d, read %d", v, got)
		}
		if got := r.Bytes(); !bytes.Equal(got, raw) {
			t.Fatalf("Bytes round trip: wrote %d bytes, read %d", len(raw), len(got))
		}
		if got := r.F64(); math.Float64bits(got) != v {
			t.Fatalf("F64 round trip: bits %#x != %#x", math.Float64bits(got), v)
		}
		if err := r.Err(); err != nil {
			t.Fatalf("decode error on own image: %v", err)
		}

		// Tampering with any byte of the body must fail the integrity check.
		if len(img) > 0 {
			mut := append([]byte(nil), img...)
			mut[int(v)%len(mut)] ^= 0x80
			if r2, err := NewReader(mut); err == nil {
				// The flipped bit landed in... nowhere it can hide: body
				// flips break the hash, trailer flips break the comparison,
				// magic flips fail the prefix check.
				_ = r2
				t.Fatal("tampered image passed the integrity check")
			}
		}
	})
}
