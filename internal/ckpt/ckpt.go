// Package ckpt implements byte-deterministic serialization of quiesced
// simulator state: a little-endian binary format with named sections, a
// format-version magic, and a SHA-256 integrity trailer.
//
// The format deliberately captures *quiesced* systems only (see DESIGN.md
// §13): a checkpoint is taken at a barrier where every core is parked at an
// instruction boundary, the memory controller has drained its queues and
// banks, all power tokens are free, and the event heap is empty. At such a
// barrier the calendar queue, in-flight requests, and token grants are all
// trivially empty, so the image reduces to pure model state — PCM array
// content, cache metadata, wear counters, RNG streams, and generator
// cursors — and restoring it under any compatible measurement configuration
// reproduces the uninterrupted run bit for bit.
//
// Determinism contract: encoding the same component state twice yields the
// same bytes (map-backed state is emitted in sorted key order), so images
// are content-addressable and byte-comparable across machines.
package ckpt

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// magic identifies a checkpoint image; the trailing byte is the format
// version. Bump it on any layout change: old images must fail loudly, not
// deserialize into garbage state.
var magic = []byte("FPBCKPT\x01")

// Codec is implemented by every component that persists state across a
// checkpoint. SaveState must emit a byte-deterministic encoding of the
// component's model state at a quiesce barrier; RestoreState must read
// exactly what SaveState wrote and leave the component indistinguishable
// from one that reached the barrier by simulation.
type Codec interface {
	SaveState(w *Writer)
	RestoreState(r *Reader) error
}

// Writer builds a checkpoint image in memory. All integers are fixed-width
// little-endian; there is no varint coding, so the encoding of a value never
// depends on its magnitude and images stay byte-comparable.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the image header already emitted.
func NewWriter() *Writer {
	w := &Writer{buf: make([]byte, 0, 1<<20)}
	w.buf = append(w.buf, magic...)
	return w
}

// Len reports the bytes written so far (header included).
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 appends a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 by its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// U64s appends a length-prefixed slice of uint64.
func (w *Writer) U64s(vs []uint64) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// Section emits a named section marker. Markers carry no length — decode
// order is fixed by the format — but they turn a reader/writer mismatch
// into an immediate, named error instead of silently misaligned fields.
func (w *Writer) Section(name string) {
	w.String(name)
}

// Finish appends the SHA-256 integrity trailer and returns the complete
// image. The Writer must not be used afterwards.
func (w *Writer) Finish() []byte {
	sum := sha256.Sum256(w.buf)
	w.buf = append(w.buf, sum[:]...)
	return w.buf
}

// Reader decodes a checkpoint image. Errors are sticky: after the first
// failure every subsequent read returns zero values and Err/RestoreState
// report the original cause, so decode paths do not need per-field checks.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader validates the image's magic, version, and SHA-256 trailer and
// returns a Reader positioned after the header.
func NewReader(img []byte) (*Reader, error) {
	if len(img) < len(magic)+sha256.Size {
		return nil, fmt.Errorf("ckpt: image truncated (%d bytes)", len(img))
	}
	if string(img[:len(magic)]) != string(magic) {
		return nil, fmt.Errorf("ckpt: bad magic or unsupported format version")
	}
	body := img[:len(img)-sha256.Size]
	want := img[len(img)-sha256.Size:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(want) {
		return nil, fmt.Errorf("ckpt: integrity check failed (image corrupt)")
	}
	return &Reader{buf: body, off: len(magic)}, nil
}

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("ckpt: "+format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("unexpected end of image at offset %d (want %d bytes)", r.off, n)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes reads a length-prefixed byte slice. The returned slice aliases the
// image buffer; callers that keep it must copy.
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("byte slice length %d exceeds remaining image", n)
		return nil
	}
	return r.take(int(n))
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// U64s reads a length-prefixed slice of uint64.
func (r *Reader) U64s() []uint64 {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off)/8 {
		r.fail("uint64 slice length %d exceeds remaining image", n)
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = r.U64()
	}
	return vs
}

// Section consumes a section marker and verifies its name, anchoring the
// decode against writer/reader drift.
func (r *Reader) Section(name string) {
	got := r.String()
	if r.err == nil && got != name {
		r.fail("section mismatch: want %q, found %q", name, got)
	}
}
