package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store is a content-addressed checkpoint image store: one file per key
// under a directory, written atomically. Keys are 64-character lowercase
// hex strings (SHA-256, the same shape as system.Key), validated before any
// path is formed so a hostile key cannot escape the store directory.
//
// Store also coordinates concurrent producers in-process: the first caller
// to Claim a missing key becomes its producer, and everyone else blocks in
// Wait until the producer Puts the image (or abandons the claim). That is
// what turns a sweep of grid points sharing one warmup prefix into a single
// warmup simulation followed by N restores.
type Store struct {
	dir string

	mu     sync.Mutex
	claims map[string]chan struct{} // key -> closed when settled
}

// NewStore opens (creating if needed) a checkpoint store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("ckpt: store directory must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: create store directory: %w", err)
	}
	return &Store{dir: dir, claims: make(map[string]chan struct{})}, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its on-disk location, rejecting anything that is not a
// 64-character lowercase hex digest.
func (s *Store) path(key string) (string, error) {
	if err := ValidateKey(key); err != nil {
		return "", err
	}
	return filepath.Join(s.dir, key+".fpbckpt"), nil
}

// ValidateKey reports whether key is a well-formed checkpoint key (64
// lowercase hex characters).
func ValidateKey(key string) error {
	if len(key) != 64 {
		return fmt.Errorf("ckpt: invalid key %q: want 64 hex characters", key)
	}
	for _, c := range key {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return fmt.Errorf("ckpt: invalid key %q: want lowercase hex", key)
		}
	}
	return nil
}

// Get returns the stored image for key, or (nil, false, nil) if absent.
func (s *Store) Get(key string) ([]byte, bool, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, false, err
	}
	img, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("ckpt: read %s: %w", key, err)
	}
	return img, true, nil
}

// Put stores an image under key (atomic write: temp file + rename) and
// settles any in-process claim so waiters wake up.
func (s *Store) Put(key string, img []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: write %s: %w", key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(img); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: write %s: %w", key, err)
	}
	if err := os.Rename(tmpName, p); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: write %s: %w", key, err)
	}
	s.settle(key)
	return nil
}

// Len reports how many images the store holds.
func (s *Store) Len() (int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("ckpt: list store: %w", err)
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".fpbckpt") {
			n++
		}
	}
	return n, nil
}

// Claim registers the caller as the producer for key if no image exists and
// nobody else holds the claim. It returns:
//
//   - img, when the image is already stored (no claim taken);
//   - claimed=true, when the caller must now produce the image and finish
//     with Put (success) or Abandon (failure);
//   - neither, when another in-process producer holds the claim — call Wait.
func (s *Store) Claim(key string) (img []byte, claimed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if img, ok, err := s.Get(key); err != nil || ok {
		return img, false, err
	}
	if _, busy := s.claims[key]; busy {
		return nil, false, nil
	}
	s.claims[key] = make(chan struct{})
	return nil, true, nil
}

// Wait blocks until the key's in-process claim settles, then re-reads the
// store. ok is false if the producer abandoned the claim without storing an
// image (the caller should fall back to a cold run or re-Claim).
func (s *Store) Wait(key string) (img []byte, ok bool, err error) {
	s.mu.Lock()
	ch, busy := s.claims[key]
	s.mu.Unlock()
	if busy {
		<-ch
	}
	return s.Get(key)
}

// Abandon releases a claim taken by Claim without storing an image, waking
// waiters so they can fall back to cold runs.
func (s *Store) Abandon(key string) { s.settle(key) }

func (s *Store) settle(key string) {
	s.mu.Lock()
	if ch, ok := s.claims[key]; ok {
		close(ch)
		delete(s.claims, key)
	}
	s.mu.Unlock()
}
