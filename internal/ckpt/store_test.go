package ckpt

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func testKey(b byte) string {
	return strings.Repeat(string([]byte{'a' + b%6}), 64)
}

func TestStorePutGet(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	if _, ok, _ := s.Get(key); ok {
		t.Fatal("empty store returned an image")
	}
	img := NewWriter().Finish()
	if err := s.Put(key, img); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok || !bytes.Equal(got, img) {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if n, _ := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"", "short", strings.Repeat("A", 64), // uppercase
		strings.Repeat("z", 64),                        // not hex
		"../../../../etc/passwd0000000000000000000000", // traversal shape
	} {
		if err := s.Put(key, nil); err == nil {
			t.Errorf("Put accepted invalid key %q", key)
		}
		if _, _, err := s.Get(key); err == nil {
			t.Errorf("Get accepted invalid key %q", key)
		}
	}
}

// TestStoreClaimWait pins the singleflight protocol: one producer, waiters
// blocked until Put; Abandon wakes waiters empty-handed.
func TestStoreClaimWait(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	img, claimed, err := s.Claim(key)
	if err != nil || img != nil || !claimed {
		t.Fatalf("first Claim: img=%v claimed=%v err=%v", img, claimed, err)
	}
	if _, c2, _ := s.Claim(key); c2 {
		t.Fatal("second Claim also won")
	}
	want := NewWriter().Finish()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, ok, err := s.Wait(key)
			if err != nil || !ok || !bytes.Equal(got, want) {
				t.Errorf("Wait: ok=%v err=%v", ok, err)
			}
		}()
	}
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// The claim settled: a later Claim sees the stored image.
	img, claimed, err = s.Claim(key)
	if err != nil || claimed || !bytes.Equal(img, want) {
		t.Fatalf("Claim after Put: claimed=%v err=%v", claimed, err)
	}

	// Abandon path: waiters wake with ok=false.
	key2 := testKey(2)
	if _, claimed, _ = s.Claim(key2); !claimed {
		t.Fatal("claim on fresh key lost")
	}
	done := make(chan bool)
	go func() {
		_, ok, _ := s.Wait(key2)
		done <- ok
	}()
	s.Abandon(key2)
	if ok := <-done; ok {
		t.Error("waiter got an image from an abandoned claim")
	}
}
