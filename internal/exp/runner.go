// Package exp defines one experiment per table and figure of the paper's
// evaluation (Figures 2, 4, 10–23 and Table 3). Each experiment runs the
// required simulations — memoized and in parallel across workloads and
// schemes — and renders the same rows/series the paper reports, normalized
// the same way (speedups over DIMM+chip for Section 6, over Ideal for
// Figure 4).
package exp

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"fpb/internal/ckpt"
	"fpb/internal/obs"
	"fpb/internal/sim"
	"fpb/internal/stats"
	"fpb/internal/system"
)

// Workloads is the evaluation order of the 13 simulated workloads.
var Workloads = []string{
	"ast_m", "bwa_m", "lbm_m", "les_m", "mcf_m", "xal_m",
	"mum_m", "tig_m", "qso_m", "cop_m", "mix_1", "mix_2", "mix_3",
}

// Backend resolves one (config, workload) simulation. The default (nil)
// backend is in-process system.RunWorkload; serve/client.Client.Run plugs in
// a shared fpbd daemon instead, turning figure regeneration into mostly
// cache hits against its persistent store.
type Backend func(cfg sim.Config, wl string) (system.Result, error)

// Options scales an experiment run.
type Options struct {
	// InstrPerCore is the per-core instruction budget of every
	// simulation (default 100k; benchmarks use less, full paper-style
	// runs more).
	InstrPerCore uint64
	// Workloads restricts the workload set (default: all 13).
	Workloads []string
	// MetricsDir, when non-empty, receives one metrics-registry JSON dump
	// per simulated (config, workload) pair. Filenames are deterministic:
	// <workload>_<scheme>_<fnv64a of the config>.json.
	MetricsDir string
	// Workers bounds Prewarm's simulation parallelism (default:
	// GOMAXPROCS). With a remote Backend it bounds in-flight requests
	// instead, since the daemon runs the actual simulations.
	Workers int
	// Backend overrides how simulations run; nil means in-process.
	Backend Backend
	// Shards selects the parallel simulation engine for every in-process
	// run (sim.Config.Shards). Results are bit-identical to sequential
	// execution, so it only changes wall-clock time, never a figure.
	Shards int
	// WarmupCycles/WarmupScheme declare a warmup phase on BaseConfig
	// (sim.Config.WarmupCycles/WarmupScheme): every simulation runs that
	// many cycles under the warmup scheme before measurement begins. Like
	// Shards they are applied to the base config, so every figure variant
	// shares the declaration — which is what makes their warmup prefixes
	// shared. Zero disables warmup.
	WarmupCycles uint64
	WarmupScheme sim.Scheme
	// CheckpointDir, when non-empty, warm-starts in-process simulations:
	// each distinct warmup prefix (system.CheckpointKey) is simulated once,
	// checkpointed at the measurement barrier into this directory, and every
	// later grid point sharing the prefix restores the image instead of
	// re-running warmup. Results are bit-identical either way. Ignored with
	// a remote Backend (the daemon keeps its own store).
	CheckpointDir string
	// Metrics, when non-nil, receives the runner's execution telemetry:
	// simulations run, backend retries/failures, and backend latency.
	// These describe how an experiment batch executed, never its figures.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.InstrPerCore == 0 {
		o.InstrPerCore = 100_000
	}
	if len(o.Workloads) == 0 {
		o.Workloads = Workloads
	}
	return o
}

// Experiment is one reproducible table/figure. Run returns an error when a
// simulation backend fails (e.g. a remote fpbd daemon becomes unreachable);
// the table is only valid when the error is nil.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes the result the paper reports for this experiment
	// (used by EXPERIMENTS.md generation).
	Paper string
	Run   func(r *Runner) (*stats.Table, error)
}

// Runner executes simulations with memoization; experiments share it so
// common baselines (e.g. DIMM+chip) run once. Memoization is
// singleflight: concurrent Run calls for the same (config, workload) pair
// share one simulation instead of duplicating it.
type Runner struct {
	opt   Options
	store *ckpt.Store // warm-start checkpoint store; nil disables
	mu    sync.Mutex
	cache map[key]*entry
	sims  uint64 // simulations actually executed (not served from cache)
	warms uint64 // executed simulations that warm-started from a checkpoint

	// Telemetry (nil-safe no-ops without Options.Metrics).
	cSims      *obs.Counter
	cWarms     *obs.Counter
	cRetries   *obs.Counter
	cFailures  *obs.Counter
	hBackendMs *obs.Histogram
}

type key struct {
	cfg sim.Config
	wl  string
}

// entry is one memoized simulation; once makes concurrent first callers
// collapse onto a single execution. A failed execution memoizes its error
// the same way a successful one memoizes its result: the backend already
// got a retry (see Run), so hammering it with every downstream read of the
// same pair would only amplify the outage.
type entry struct {
	once sync.Once
	res  system.Result
	err  error
}

// NewRunner builds a runner for the options, creating MetricsDir if set.
func NewRunner(opt Options) *Runner {
	opt = opt.withDefaults()
	if opt.MetricsDir != "" {
		if err := os.MkdirAll(opt.MetricsDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "exp: metrics dir: %v\n", err)
			opt.MetricsDir = ""
		}
	}
	r := &Runner{opt: opt, cache: make(map[key]*entry)}
	if opt.CheckpointDir != "" {
		st, err := ckpt.NewStore(opt.CheckpointDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "exp: checkpoint store disabled: %v\n", err)
		} else {
			r.store = st
		}
	}
	if reg := opt.Metrics; reg != nil {
		r.cSims = reg.Counter("exp.sims")
		r.cWarms = reg.Counter("exp.warm_starts")
		r.cRetries = reg.Counter("exp.backend.retries")
		r.cFailures = reg.Counter("exp.backend.failures")
		r.hBackendMs = reg.Histogram("exp.backend_ms", obs.LatencyBucketsMs)
		reg.SetHelp("exp.sims", "simulations executed (memoization misses)")
		reg.SetHelp("exp.warm_starts", "executed simulations restored from a warmup checkpoint")
		reg.SetHelp("exp.backend.retries", "backend calls retried after a transient failure")
		reg.SetHelp("exp.backend.failures", "simulations that failed even after the retry")
		reg.SetHelp("exp.backend_ms", "backend call latency per fresh simulation (ms)")
	}
	return r
}

// Opt returns the effective options.
func (r *Runner) Opt() Options { return r.opt }

// BaseConfig is the Table 1 configuration at the runner's scale.
func (r *Runner) BaseConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.InstrPerCore = r.opt.InstrPerCore
	cfg.Shards = r.opt.Shards
	cfg.WarmupCycles = r.opt.WarmupCycles
	cfg.WarmupScheme = r.opt.WarmupScheme
	return cfg
}

// Run simulates one (config, workload) pair, memoized. Concurrent calls
// with an identical pair block on one shared simulation; every other pair
// proceeds in parallel.
//
// A backend failure is retried once (remote daemons drop requests across
// restarts; the retry absorbs exactly that class of transient), then
// memoized and returned with the workload and scheme in the error chain so
// the caller can tell which simulation of a figure died.
func (r *Runner) Run(cfg sim.Config, wl string) (system.Result, error) {
	k := key{cfg: cfg, wl: wl}
	r.mu.Lock()
	e, ok := r.cache[k]
	if !ok {
		e = &entry{}
		r.cache[k] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		run := r.opt.Backend
		if run == nil {
			// In-process default: route through the checkpoint store, so
			// grid points sharing a warmup prefix simulate it once. The
			// store's claim/wait protocol coordinates concurrent Prewarm
			// workers; with a nil store this is plain RunWorkload.
			run = func(cfg sim.Config, wl string) (system.Result, error) {
				res, warmed, err := system.RunWorkloadCheckpointed(cfg, wl, r.store)
				if warmed {
					r.cWarms.Inc()
					r.mu.Lock()
					r.warms++
					r.mu.Unlock()
				}
				return res, err
			}
		}
		start := time.Now()
		res, err := run(cfg, wl)
		if err != nil {
			r.cRetries.Inc()
			res, err = run(cfg, wl) // retry once
		}
		r.hBackendMs.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
		if err != nil {
			r.cFailures.Inc()
			e.err = fmt.Errorf("exp: running %s (scheme %v): %w", wl, cfg.Scheme, err)
			return
		}
		r.dumpMetrics(cfg, wl, res)
		r.cSims.Inc()
		r.mu.Lock()
		r.sims++
		r.mu.Unlock()
		e.res = res
	})
	return e.res, e.err
}

// Simulations reports how many simulations actually executed (cache misses);
// tests use it to prove memoization coalesces duplicate work.
func (r *Runner) Simulations() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sims
}

// WarmStarts reports how many executed simulations restored their warmup
// phase from a checkpoint instead of simulating it.
func (r *Runner) WarmStarts() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.warms
}

// dumpMetrics writes one metrics-registry snapshot per fresh simulation to
// Options.MetricsDir. The filename hashes the full config so every distinct
// variant of a workload gets its own stable file across runs. Dump failures
// don't abort the experiment; they are reported once per file on stderr.
func (r *Runner) dumpMetrics(cfg sim.Config, wl string, res system.Result) {
	if r.opt.MetricsDir == "" || len(res.Metrics) == 0 {
		return
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", cfg)
	scheme := strings.NewReplacer("+", "-", "/", "-", " ", "-").Replace(res.Scheme)
	path := filepath.Join(r.opt.MetricsDir,
		fmt.Sprintf("%s_%s_%016x.json", wl, scheme, h.Sum64()))
	f, err := os.Create(path)
	if err == nil {
		err = obs.EncodeSeries(f, res.Metrics)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "exp: metrics dump %s: %v\n", path, err)
	}
}

// Prewarm runs all (config, workload) combinations in parallel, bounded by
// Options.Workers (GOMAXPROCS when unset), so subsequent Run calls hit the
// cache. It returns the first simulation error (the rest of the batch still
// completes, so every surviving pair is warm).
//
// The semaphore is acquired inside the worker goroutine: the dispatch loop
// itself never blocks on a slot, so already-cached pairs are skipped
// immediately even while slow simulations hold every slot.
func (r *Runner) Prewarm(cfgs []sim.Config, wls []string) error {
	workers := r.opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for _, cfg := range cfgs {
		for _, wl := range wls {
			cfg, wl := cfg, wl
			r.mu.Lock()
			_, cached := r.cache[key{cfg: cfg, wl: wl}]
			r.mu.Unlock()
			if cached {
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if _, err := r.Run(cfg, wl); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}()
		}
	}
	wg.Wait()
	return firstErr
}

// systemResult shortens metric-closure signatures in the figure files.
type systemResult = system.Result

// Variant is one labeled configuration column of a figure.
type Variant struct {
	Label  string
	Mutate func(*sim.Config)
}

func (r *Runner) cfgOf(v Variant) sim.Config {
	cfg := r.BaseConfig()
	if v.Mutate != nil {
		v.Mutate(&cfg)
	}
	return cfg
}

// SpeedupTable renders per-workload speedups of each variant over the norm
// variant (Eq. 7: CPI_norm / CPI_variant), plus a gmean row — the layout of
// every speedup figure in the paper.
func (r *Runner) SpeedupTable(title string, norm Variant, variants []Variant) (*stats.Table, error) {
	cfgs := []sim.Config{r.cfgOf(norm)}
	for _, v := range variants {
		cfgs = append(cfgs, r.cfgOf(v))
	}
	if err := r.Prewarm(cfgs, r.opt.Workloads); err != nil {
		return nil, err
	}

	cols := []string{"workload"}
	for _, v := range variants {
		cols = append(cols, v.Label)
	}
	t := stats.NewTable(title, cols...)
	perVariant := make([][]float64, len(variants))
	for _, wl := range r.opt.Workloads {
		base, err := r.Run(r.cfgOf(norm), wl)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, len(variants))
		for i, v := range variants {
			res, err := r.Run(r.cfgOf(v), wl)
			if err != nil {
				return nil, err
			}
			s := system.Speedup(base, res)
			row = append(row, s)
			perVariant[i] = append(perVariant[i], s)
		}
		t.AddRow(wl, row...)
	}
	gmeans := make([]float64, len(variants))
	for i := range variants {
		gmeans[i] = stats.GeoMean(perVariant[i])
	}
	t.AddRow("gmean", gmeans...)
	return t, nil
}

// MetricTable renders an arbitrary per-workload metric for each variant,
// with an aggregate row computed by agg (e.g. max for Fig. 13, mean for
// Fig. 14).
func (r *Runner) MetricTable(title string, variants []Variant,
	metric func(system.Result) float64, aggLabel string,
	agg func([]float64) float64) (*stats.Table, error) {
	cfgs := make([]sim.Config, 0, len(variants))
	for _, v := range variants {
		cfgs = append(cfgs, r.cfgOf(v))
	}
	if err := r.Prewarm(cfgs, r.opt.Workloads); err != nil {
		return nil, err
	}

	cols := []string{"workload"}
	for _, v := range variants {
		cols = append(cols, v.Label)
	}
	t := stats.NewTable(title, cols...)
	perVariant := make([][]float64, len(variants))
	for _, wl := range r.opt.Workloads {
		row := make([]float64, 0, len(variants))
		for i, v := range variants {
			res, err := r.Run(r.cfgOf(v), wl)
			if err != nil {
				return nil, err
			}
			m := metric(res)
			row = append(row, m)
			perVariant[i] = append(perVariant[i], m)
		}
		t.AddRow(wl, row...)
	}
	aggs := make([]float64, len(variants))
	for i := range perVariant {
		aggs[i] = agg(perVariant[i])
	}
	t.AddRow(aggLabel, aggs...)
	return t, nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// registry is populated by the figure files' init functions.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// paperOrder fixes the presentation order independent of init order.
var paperOrder = []string{
	"fig2", "fig4", "fig10", "fig11", "fig12", "fig13", "tab3", "fig14",
	"fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
	"fig22", "fig23", "abl-gcpsize", "abl-mrtrigger", "abl-setratio", "abl-halfstripe",
}

// All returns every experiment in paper order (unlisted experiments come
// last in registration order).
func All() []Experiment {
	rank := make(map[string]int, len(paperOrder))
	for i, id := range paperOrder {
		rank[id] = i
	}
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i].ID]
		rj, jok := rank[out[j].ID]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		}
		return false
	})
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
