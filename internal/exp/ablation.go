package exp

import (
	"fmt"

	"fpb/internal/sim"
	"fpb/internal/stats"
)

// Ablations beyond the paper's figures, for the design choices DESIGN.md §5
// calls out. They use the same runner/normalization machinery as the paper
// experiments.

// ablation-gcpsize: the paper sizes the GCP equal to one LCP by default.
// How sensitive is FPB-GCP to that choice?
func init() {
	register(Experiment{
		ID:    "abl-gcpsize",
		Title: "Ablation: GCP output sizing",
		Paper: "(extension) paper default sizes the GCP as one LCP; half/double explore the area-performance trade",
		Run:   runAblGCPSize,
	})
}

func runAblGCPSize(r *Runner) (*stats.Table, error) {
	mk := func(label string, scale float64) Variant {
		return Variant{
			Label: label,
			Mutate: func(c *sim.Config) {
				c.Scheme = sim.SchemeGCP
				c.CellMapping = sim.MapBIM
				c.GCPEff = 0.70
				c.GCPMaxTokens = c.LCPTokens() * scale
			},
		}
	}
	variants := []Variant{
		mk("GCP-0.5xLCP", 0.5),
		mk("GCP-1xLCP", 1.0),
		mk("GCP-2xLCP", 2.0),
	}
	return r.SpeedupTable("Ablation: GCP size (speedup vs DIMM+chip)", dimmChip, variants)
}

// ablation-halfstripe: the paper's Section 2.1 cell-stripping alternative —
// each line across half the chips, accessed in two rounds. The paper
// rejects it because doubled array latency "will harm system performance";
// this ablation quantifies that choice under both the baseline and FPB.
func init() {
	register(Experiment{
		ID:    "abl-halfstripe",
		Title: "Ablation: half-stripe two-round cell layout",
		Paper: "(Section 2.1) the paper predicts doubled read/write latency harms performance; full stripe is the baseline",
		Run:   runAblHalfStripe,
	})
}

func runAblHalfStripe(r *Runner) (*stats.Table, error) {
	mk := func(label string, scheme sim.Scheme, half bool) Variant {
		return Variant{
			Label: label,
			Mutate: func(c *sim.Config) {
				c.Scheme = scheme
				c.HalfStripe = half
				if scheme == sim.SchemeGCPIPMMR {
					c.CellMapping = sim.MapBIM
					c.GCPEff = 0.70
				}
			},
		}
	}
	variants := []Variant{
		mk("base-half", sim.SchemeDIMMChip, true),
		mk("FPB-full", sim.SchemeGCPIPMMR, false),
		mk("FPB-half", sim.SchemeGCPIPMMR, true),
	}
	return r.SpeedupTable("Ablation: half-stripe layout (speedup vs full-stripe DIMM+chip)", dimmChip, variants)
}

// ablation-mrtrigger: the paper triggers Multi-RESET greedily on admission
// shortfall (Section 6.2); the alternative splits every RESET
// unconditionally. Shortfall-triggered should win: it pays the extra RESET
// latency only when it buys admission.
func init() {
	register(Experiment{
		ID:    "abl-mrtrigger",
		Title: "Ablation: Multi-RESET trigger policy",
		Paper: "(extension) paper uses greedy split-on-shortfall; always-split pays the latency unconditionally",
		Run:   runAblMRTrigger,
	})
}

func runAblMRTrigger(r *Runner) (*stats.Table, error) {
	mk := func(label string, always bool) Variant {
		return Variant{
			Label: label,
			Mutate: func(c *sim.Config) {
				c.Scheme = sim.SchemeGCPIPMMR
				c.CellMapping = sim.MapBIM
				c.GCPEff = 0.70
				c.MultiResetSplit = 3
				c.MultiResetAlways = always
			},
		}
	}
	variants := []Variant{
		mk("MR-on-shortfall", false),
		mk("MR-always", true),
	}
	return r.SpeedupTable("Ablation: Multi-RESET trigger (speedup vs DIMM+chip)", dimmChip, variants)
}

// ablation-setratio: IPM's reclamation factor is (C-1)/C where C is the
// RESET/SET power ratio. The paper's model uses C=2 (SET = RESET/2); this
// sweeps the ratio to show IPM's benefit grows with C.
func init() {
	register(Experiment{
		ID:    "abl-setratio",
		Title: "Ablation: SET/RESET power ratio",
		Paper: "(extension) IPM reclaims (C-1)/C of RESET tokens; a lower SET/RESET ratio means more reclamation",
		Run:   runAblSetRatio,
	})
}

func runAblSetRatio(r *Runner) (*stats.Table, error) {
	ratios := []float64{0.25, 0.5, 0.75}
	variants := make([]Variant, 0, len(ratios))
	for _, ratio := range ratios {
		ratio := ratio
		variants = append(variants, Variant{
			Label: fmt.Sprintf("IPM-set/reset=%.2f", ratio),
			Mutate: func(c *sim.Config) {
				c.Scheme = sim.SchemeGCPIPMMR
				c.CellMapping = sim.MapBIM
				c.GCPEff = 0.70
				c.SetPowerRatio = ratio
			},
		})
	}
	// Normalize each column to DIMM+chip at the same ratio (the device
	// changed, so the baseline must change with it).
	cols := []string{"workload"}
	for _, v := range variants {
		cols = append(cols, v.Label)
	}
	t := stats.NewTable("Ablation: SET power ratio (speedup vs same-ratio DIMM+chip)", cols...)
	var cfgs []sim.Config
	bases := make([]sim.Config, len(ratios))
	techs := make([]sim.Config, len(ratios))
	for i, ratio := range ratios {
		b := r.BaseConfig()
		b.Scheme = sim.SchemeDIMMChip
		b.SetPowerRatio = ratio
		bases[i] = b
		techs[i] = r.cfgOf(variants[i])
		cfgs = append(cfgs, b, techs[i])
	}
	if err := r.Prewarm(cfgs, r.Opt().Workloads); err != nil {
		return nil, err
	}
	perCol := make([][]float64, len(ratios))
	for _, wl := range r.Opt().Workloads {
		row := make([]float64, 0, len(ratios))
		for i := range ratios {
			s, err := speedupOf(r, bases[i], techs[i], wl)
			if err != nil {
				return nil, err
			}
			row = append(row, s)
			perCol[i] = append(perCol[i], s)
		}
		t.AddRow(wl, row...)
	}
	g := make([]float64, len(ratios))
	for i := range perCol {
		g[i] = stats.GeoMean(perCol[i])
	}
	t.AddRow("gmean", g...)
	return t, nil
}
