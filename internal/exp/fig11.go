package exp

import (
	"fmt"

	"fpb/internal/sim"
	"fpb/internal/stats"
)

// gcpVariant builds a FPB-GCP configuration column.
func gcpVariant(mapping sim.Mapping, eff float64) Variant {
	return Variant{
		Label: fmt.Sprintf("GCP-%v-%.2f", mapping, eff),
		Mutate: func(c *sim.Config) {
			c.Scheme = sim.SchemeGCP
			c.CellMapping = mapping
			c.GCPEff = eff
		},
	}
}

var dimmChip = Variant{Label: "DIMM+chip", Mutate: func(c *sim.Config) { c.Scheme = sim.SchemeDIMMChip }}

// Figure 11: FPB-GCP speedup over DIMM+chip for different GCP power
// efficiencies, naive mapping. The paper: 0.95 → +36.3% (matching
// DIMM-only), 0.70 → +23.7%, 0.50 → +2.8%.
func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Figure 11: GCP speedup vs power efficiency",
		Paper: "vs DIMM+chip: GCP-NE-0.95 +36.3% (=DIMM-only), GCP-NE-0.7 +23.7%, GCP-NE-0.5 +2.8%",
		Run:   runFig11,
	})
}

func runFig11(r *Runner) (*stats.Table, error) {
	variants := []Variant{
		{Label: "DIMM-only", Mutate: func(c *sim.Config) { c.Scheme = sim.SchemeDIMMOnly }},
		gcpVariant(sim.MapNaive, 0.95),
		gcpVariant(sim.MapNaive, 0.70),
		gcpVariant(sim.MapNaive, 0.50),
	}
	return r.SpeedupTable("Figure 11: speedup vs DIMM+chip for GCP power efficiencies", dimmChip, variants)
}

// Figure 12: cell-mapping optimizations under the GCP. VIM/BIM at 70%
// efficiency come within 2% / 1.4% of DIMM-only and stay effective at 50%.
func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "Figure 12: cell mapping optimizations",
		Paper: "VIM/BIM-0.7 within 2%/1.4% of DIMM-only; VIM/BIM keep GCP effective at 0.5 efficiency",
		Run:   runFig12,
	})
}

func runFig12(r *Runner) (*stats.Table, error) {
	variants := []Variant{
		gcpVariant(sim.MapNaive, 0.70),
		gcpVariant(sim.MapVIM, 0.70),
		gcpVariant(sim.MapVIM, 0.50),
		gcpVariant(sim.MapBIM, 0.70),
		gcpVariant(sim.MapBIM, 0.50),
	}
	return r.SpeedupTable("Figure 12: speedup vs DIMM+chip for cell mappings", dimmChip, variants)
}

// fig13Variants is the mapping × efficiency grid shared by Figures 13/14.
func fig13Variants() []Variant {
	return []Variant{
		gcpVariant(sim.MapNaive, 0.70),
		gcpVariant(sim.MapNaive, 0.50),
		gcpVariant(sim.MapVIM, 0.70),
		gcpVariant(sim.MapVIM, 0.50),
		gcpVariant(sim.MapBIM, 0.70),
		gcpVariant(sim.MapBIM, 0.50),
	}
}

// Figure 13: maximum power tokens concurrently requested from the GCP —
// this sizes the pump (Table 3). Paper maxima: NE 66, VIM 16, BIM 28.
func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Figure 13: max GCP tokens requested",
		Paper: "max over workloads: NE 66, VIM 16, BIM 28 tokens",
		Run:   runFig13,
	})
}

func runFig13(r *Runner) (*stats.Table, error) {
	// The pump-sizing criterion is the largest single chip segment the
	// GCP ever powered: the hot-chip shortfall the cell mapping leaves
	// behind, which a smaller pump could not have covered.
	return r.MetricTable("Figure 13: maximum GCP tokens requested for one chip segment",
		fig13Variants(),
		func(res systemResult) float64 { return res.MaxGCPSegment },
		"max", maxOf)
}

// Figure 14: average GCP tokens requested per line write — proportional to
// the energy wasted in the inefficient global pump. VIM/BIM cut waste by
// 78.5%/64.4% vs NE at 0.7 efficiency.
func init() {
	register(Experiment{
		ID:    "fig14",
		Title: "Figure 14: average GCP tokens per write",
		Paper: "VIM and BIM reduce GCP energy waste by 78.5% and 64.4% vs NE at 0.7 efficiency",
		Run:   runFig14,
	})
}

func runFig14(r *Runner) (*stats.Table, error) {
	return r.MetricTable("Figure 14: average GCP output tokens requested per line write",
		fig13Variants(),
		func(res systemResult) float64 { return res.AvgGCPTokens },
		"avg", meanOf)
}

// Figure 15: BIM keeps the GCP effective as its efficiency decays toward
// 10%, shown for astar, mcf and mix_1.
func init() {
	register(Experiment{
		ID:    "fig15",
		Title: "Figure 15: BIM speedup as GCP efficiency decreases",
		Paper: "BIM stays effective down to ~0.2 efficiency on mix_1; speedup decays smoothly",
		Run:   runFig15,
	})
}

func runFig15(r *Runner) (*stats.Table, error) {
	effs := []float64{0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}
	wls := []string{"ast_m", "mcf_m", "mix_1"}
	cols := []string{"efficiency"}
	cols = append(cols, wls...)
	t := stats.NewTable("Figure 15: GCP-BIM speedup vs DIMM+chip as efficiency decreases", cols...)
	var cfgs []sim.Config
	base := r.cfgOf(dimmChip)
	cfgs = append(cfgs, base)
	for _, e := range effs {
		cfgs = append(cfgs, r.cfgOf(gcpVariant(sim.MapBIM, e)))
	}
	if err := r.Prewarm(cfgs, wls); err != nil {
		return nil, err
	}
	for _, e := range effs {
		row := make([]float64, 0, len(wls))
		for _, wl := range wls {
			s, err := speedupOf(r, base, r.cfgOf(gcpVariant(sim.MapBIM, e)), wl)
			if err != nil {
				return nil, err
			}
			row = append(row, s)
		}
		t.AddRow(fmt.Sprintf("%.1f", e), row...)
	}
	return t, nil
}

func speedupOf(r *Runner, base, tech sim.Config, wl string) (float64, error) {
	b, err := r.Run(base, wl)
	if err != nil {
		return 0, err
	}
	v, err := r.Run(tech, wl)
	if err != nil {
		return 0, err
	}
	if v.CPI == 0 {
		return 0, nil
	}
	return b.CPI / v.CPI, nil
}
