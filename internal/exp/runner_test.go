package exp

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpb/internal/sim"
	"fpb/internal/system"
)

// TestMemoizationCoalescesConcurrentRuns: N concurrent Run calls with an
// identical (config, workload) pair must simulate exactly once and all
// observe the same result.
func TestMemoizationCoalescesConcurrentRuns(t *testing.T) {
	var backendCalls atomic.Uint64
	r := NewRunner(Options{
		InstrPerCore: 1000,
		Backend: func(cfg sim.Config, wl string) (system.Result, error) {
			backendCalls.Add(1)
			// Widen the window in which a racy implementation would
			// start a duplicate simulation.
			time.Sleep(20 * time.Millisecond)
			return system.Result{Workload: wl, CPI: float64(cfg.Seed) + 3.5}, nil
		},
	})

	const n = 16
	cfg := r.BaseConfig()
	results := make([]system.Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run(cfg, "mcf_m")
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	if got := backendCalls.Load(); got != 1 {
		t.Fatalf("%d concurrent identical Run calls simulated %d times, want exactly 1", n, got)
	}
	if got := r.Simulations(); got != 1 {
		t.Errorf("Runner.Simulations() = %d, want 1", got)
	}
	for i, res := range results {
		if !reflect.DeepEqual(res, results[0]) {
			t.Fatalf("result %d differs: %+v vs %+v", i, res, results[0])
		}
	}

	// A different pair still simulates.
	other := cfg
	other.Seed++
	if _, err := r.Run(other, "mcf_m"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(cfg, "lbm_m"); err != nil {
		t.Fatal(err)
	}
	if got := r.Simulations(); got != 3 {
		t.Errorf("after two distinct runs Simulations() = %d, want 3", got)
	}
}

// TestPrewarmHonorsWorkersOption: Options.Workers bounds Prewarm's
// parallelism (the pre-option behavior was a hard-coded GOMAXPROCS).
func TestPrewarmHonorsWorkersOption(t *testing.T) {
	var cur, peak atomic.Int64
	r := NewRunner(Options{
		InstrPerCore: 1000,
		Workers:      2,
		Backend: func(cfg sim.Config, wl string) (system.Result, error) {
			if c := cur.Add(1); c > peak.Load() {
				peak.Store(c)
			}
			time.Sleep(10 * time.Millisecond)
			cur.Add(-1)
			return system.Result{Workload: wl}, nil
		},
	})
	cfgs := make([]sim.Config, 4)
	for i := range cfgs {
		cfgs[i] = r.BaseConfig()
		cfgs[i].Seed = uint64(i + 1)
	}
	if err := r.Prewarm(cfgs, []string{"mcf_m", "lbm_m"}); err != nil {
		t.Fatal(err)
	}
	if r.Simulations() != 8 {
		t.Errorf("Prewarm ran %d simulations, want 8", r.Simulations())
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("Prewarm peak parallelism %d exceeds Workers=2", p)
	}
}

// TestRunRetriesBackendOnce: a backend that fails its first call and
// succeeds on the retry must yield a result, not an error — one transient
// remote failure may not kill a figure run.
func TestRunRetriesBackendOnce(t *testing.T) {
	var calls atomic.Uint64
	r := NewRunner(Options{
		InstrPerCore: 1000,
		Backend: func(cfg sim.Config, wl string) (system.Result, error) {
			if calls.Add(1) == 1 {
				return system.Result{}, errors.New("daemon restarting")
			}
			return system.Result{Workload: wl, CPI: 2}, nil
		},
	})
	res, err := r.Run(r.BaseConfig(), "mcf_m")
	if err != nil {
		t.Fatalf("Run after one transient failure: %v", err)
	}
	if res.CPI != 2 {
		t.Errorf("retried result = %+v", res)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("backend called %d times, want 2 (original + retry)", got)
	}
}

// TestRunMemoizesBackendError: a pair whose backend fails twice returns a
// wrapped error carrying the workload, and repeated Run calls for the same
// pair serve the memoized error without hitting the backend again.
func TestRunMemoizesBackendError(t *testing.T) {
	var calls atomic.Uint64
	sentinel := errors.New("connection refused")
	r := NewRunner(Options{
		InstrPerCore: 1000,
		Backend: func(cfg sim.Config, wl string) (system.Result, error) {
			calls.Add(1)
			return system.Result{}, sentinel
		},
	})
	cfg := r.BaseConfig()
	_, err := r.Run(cfg, "mcf_m")
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run error = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), "mcf_m") {
		t.Errorf("error %q does not name the workload", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("backend called %d times, want 2 (original + retry)", got)
	}
	if _, err := r.Run(cfg, "mcf_m"); !errors.Is(err, sentinel) {
		t.Fatalf("second Run error = %v, want memoized sentinel", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("backend re-called after memoized failure: %d calls", got)
	}
	if r.Simulations() != 0 {
		t.Errorf("failed runs counted as simulations: %d", r.Simulations())
	}
}

// TestPrewarmReportsFirstErrorAndFinishesBatch: one failing pair must not
// abort the rest of the batch (the survivors stay warm for later reads),
// but Prewarm has to surface the failure.
func TestPrewarmReportsFirstErrorAndFinishesBatch(t *testing.T) {
	var calls atomic.Uint64
	r := NewRunner(Options{
		InstrPerCore: 1000,
		Workers:      2,
		Backend: func(cfg sim.Config, wl string) (system.Result, error) {
			calls.Add(1)
			if wl == "lbm_m" {
				return system.Result{}, errors.New("boom")
			}
			return system.Result{Workload: wl}, nil
		},
	})
	err := r.Prewarm([]sim.Config{r.BaseConfig()}, []string{"mcf_m", "lbm_m", "xal_m"})
	if err == nil || !strings.Contains(err.Error(), "lbm_m") {
		t.Fatalf("Prewarm error = %v, want failure naming lbm_m", err)
	}
	// mcf_m and xal_m simulated once each; lbm_m tried twice (retry).
	if got := calls.Load(); got != 4 {
		t.Errorf("backend calls = %d, want 4", got)
	}
	if r.Simulations() != 2 {
		t.Errorf("Simulations() = %d, want 2 surviving pairs", r.Simulations())
	}
	// The surviving pairs are warm: reading them adds no backend calls.
	if _, err := r.Run(r.BaseConfig(), "xal_m"); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("warm read hit the backend: %d calls", got)
	}
}

// TestPrewarmDispatchNotBlockedBySlowSimulations: with every worker slot
// held by slow simulations, the dispatch loop must still finish scanning
// the batch (cached pairs are skipped before any slot is acquired). The
// pre-fix dispatcher acquired the semaphore in the loop, so a full batch
// scan waited on the slowest simulations.
func TestPrewarmDispatchNotBlockedBySlowSimulations(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	r := NewRunner(Options{
		InstrPerCore: 1000,
		Workers:      1,
		Backend: func(cfg sim.Config, wl string) (system.Result, error) {
			started <- struct{}{}
			<-release
			return system.Result{Workload: wl}, nil
		},
	})
	cfgs := make([]sim.Config, 4)
	for i := range cfgs {
		cfgs[i] = r.BaseConfig()
		cfgs[i].Seed = uint64(i + 1)
	}
	done := make(chan error, 1)
	go func() { done <- r.Prewarm(cfgs, []string{"mcf_m"}) }()
	<-started // one simulation holds the only slot
	// The dispatcher must already have spawned every remaining worker:
	// none of them blocks dispatch, they all wait on the semaphore.
	// Releasing the backend lets the batch drain one at a time.
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if r.Simulations() != 4 {
		t.Errorf("Prewarm ran %d simulations, want 4", r.Simulations())
	}
}

// TestRunnerWarmStartSweep is the end-to-end warm-start contract at the
// experiment layer: a sweep of schemes sharing one warmup prefix simulates
// the prefix exactly once, warm-starts everything else, and produces tables
// identical to a checkpoint-free runner's.
func TestRunnerWarmStartSweep(t *testing.T) {
	mk := func(dir string) *Runner {
		return NewRunner(Options{
			InstrPerCore:  3000,
			Workloads:     []string{"mcf_m"},
			WarmupCycles:  40_000,
			CheckpointDir: dir,
		})
	}
	norm := Variant{Label: "DIMM+chip", Mutate: func(c *sim.Config) { c.Scheme = sim.SchemeDIMMChip }}
	variants := []Variant{
		{Label: "GCP", Mutate: func(c *sim.Config) { c.Scheme = sim.SchemeGCP }},
		{Label: "GCP+IPM", Mutate: func(c *sim.Config) { c.Scheme = sim.SchemeGCPIPM }},
		{Label: "FPB", Mutate: func(c *sim.Config) { c.Scheme = sim.SchemeGCPIPMMR }},
	}

	warm := mk(t.TempDir())
	got, err := warm.SpeedupTable("t", norm, variants)
	if err != nil {
		t.Fatal(err)
	}
	if sims := warm.Simulations(); sims != 4 {
		t.Fatalf("sweep ran %d simulations, want 4", sims)
	}
	// Exactly one grid point (the checkpoint producer) ran the warmup
	// phase; the other three restored it.
	if ws := warm.WarmStarts(); ws != 3 {
		t.Errorf("WarmStarts() = %d, want 3", ws)
	}

	cold := mk("")
	want, err := cold.SpeedupTable("t", norm, variants)
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmStarts() != 0 {
		t.Errorf("checkpoint-free runner reported warm starts")
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("warm-started sweep table differs from cold sweep table:\n cold: %+v\n warm: %+v", want, got)
	}
}
