package exp

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fpb/internal/sim"
	"fpb/internal/system"
)

// TestMemoizationCoalescesConcurrentRuns: N concurrent Run calls with an
// identical (config, workload) pair must simulate exactly once and all
// observe the same result.
func TestMemoizationCoalescesConcurrentRuns(t *testing.T) {
	var backendCalls atomic.Uint64
	r := NewRunner(Options{
		InstrPerCore: 1000,
		Backend: func(cfg sim.Config, wl string) (system.Result, error) {
			backendCalls.Add(1)
			// Widen the window in which a racy implementation would
			// start a duplicate simulation.
			time.Sleep(20 * time.Millisecond)
			return system.Result{Workload: wl, CPI: float64(cfg.Seed) + 3.5}, nil
		},
	})

	const n = 16
	cfg := r.BaseConfig()
	results := make([]system.Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Run(cfg, "mcf_m")
		}(i)
	}
	wg.Wait()

	if got := backendCalls.Load(); got != 1 {
		t.Fatalf("%d concurrent identical Run calls simulated %d times, want exactly 1", n, got)
	}
	if got := r.Simulations(); got != 1 {
		t.Errorf("Runner.Simulations() = %d, want 1", got)
	}
	for i, res := range results {
		if !reflect.DeepEqual(res, results[0]) {
			t.Fatalf("result %d differs: %+v vs %+v", i, res, results[0])
		}
	}

	// A different pair still simulates.
	other := cfg
	other.Seed++
	r.Run(other, "mcf_m")
	r.Run(cfg, "lbm_m")
	if got := r.Simulations(); got != 3 {
		t.Errorf("after two distinct runs Simulations() = %d, want 3", got)
	}
}

// TestPrewarmHonorsWorkersOption: Options.Workers bounds Prewarm's
// parallelism (the pre-option behavior was a hard-coded GOMAXPROCS).
func TestPrewarmHonorsWorkersOption(t *testing.T) {
	var cur, peak atomic.Int64
	r := NewRunner(Options{
		InstrPerCore: 1000,
		Workers:      2,
		Backend: func(cfg sim.Config, wl string) (system.Result, error) {
			if c := cur.Add(1); c > peak.Load() {
				peak.Store(c)
			}
			time.Sleep(10 * time.Millisecond)
			cur.Add(-1)
			return system.Result{Workload: wl}, nil
		},
	})
	cfgs := make([]sim.Config, 4)
	for i := range cfgs {
		cfgs[i] = r.BaseConfig()
		cfgs[i].Seed = uint64(i + 1)
	}
	r.Prewarm(cfgs, []string{"mcf_m", "lbm_m"})
	if r.Simulations() != 8 {
		t.Errorf("Prewarm ran %d simulations, want 8", r.Simulations())
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("Prewarm peak parallelism %d exceeds Workers=2", p)
	}
}
