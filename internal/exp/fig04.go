package exp

import (
	"fpb/internal/sim"
	"fpb/internal/stats"
)

// Figure 4: performance of simple power-management heuristics under MLC
// PCM power restrictions, normalized to Ideal (no power limit). The paper's
// headline motivation: DIMM-only loses 33%, DIMM+chip 51%; PWL, bigger
// local pumps, and out-of-order write scheduling barely help (except
// 2xlocal).
func init() {
	register(Experiment{
		ID:    "fig4",
		Title: "Figure 4: performance under power restrictions",
		Paper: "vs Ideal: DIMM-only 0.67, DIMM+chip 0.49, PWL ~+2%, 1.5xlocal 0.80, 2xlocal ~DIMM-only, sche-X ~no gain",
		Run:   runFig4,
	})
}

func runFig4(r *Runner) (*stats.Table, error) {
	norm := Variant{Label: "Ideal", Mutate: func(c *sim.Config) { c.Scheme = sim.SchemeIdeal }}
	variants := []Variant{
		{Label: "Ideal", Mutate: func(c *sim.Config) { c.Scheme = sim.SchemeIdeal }},
		{Label: "DIMM-only", Mutate: func(c *sim.Config) { c.Scheme = sim.SchemeDIMMOnly }},
		{Label: "DIMM+chip", Mutate: func(c *sim.Config) { c.Scheme = sim.SchemeDIMMChip }},
		{Label: "PWL", Mutate: func(c *sim.Config) {
			c.Scheme = sim.SchemeDIMMChip
			c.PWL = true
		}},
		{Label: "1.5xlocal", Mutate: func(c *sim.Config) {
			c.Scheme = sim.SchemeDIMMChip
			c.LocalScale = 1.5
		}},
		{Label: "2xlocal", Mutate: func(c *sim.Config) {
			c.Scheme = sim.SchemeDIMMChip
			c.LocalScale = 2.0
		}},
		{Label: "sche24", Mutate: func(c *sim.Config) {
			c.Scheme = sim.SchemeDIMMChip
			c.WriteQueueSched = 24
		}},
		{Label: "sche48", Mutate: func(c *sim.Config) {
			c.Scheme = sim.SchemeDIMMChip
			c.WriteQueueEntries = 48
			c.WriteQueueSched = 48
		}},
		{Label: "sche96", Mutate: func(c *sim.Config) {
			c.Scheme = sim.SchemeDIMMChip
			c.WriteQueueEntries = 96
			c.WriteQueueSched = 96
		}},
	}
	return r.SpeedupTable("Figure 4: speedup vs Ideal (no power limit)", norm, variants)
}

// Figure 10: percentage of execution cycles spent in write bursts for the
// baseline (DIMM+chip). The paper reports an average of 52.2%.
func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Figure 10: % of time in write burst (baseline)",
		Paper: "average 52.2% of execution time in write burst for the DIMM+chip baseline",
		Run:   runFig10,
	})
}

func runFig10(r *Runner) (*stats.Table, error) {
	base := Variant{Label: "burst-fraction", Mutate: func(c *sim.Config) { c.Scheme = sim.SchemeDIMMChip }}
	return r.MetricTable("Figure 10: fraction of execution cycles in write burst",
		[]Variant{base},
		func(res systemResult) float64 { return res.BurstFraction },
		"mean", meanOf)
}
