package exp

import (
	"fpb/internal/pcm"
	"fpb/internal/sim"
	"fpb/internal/stats"
	"fpb/internal/workload"
)

// Figure 2: average cell changes per PCM line write for 2-bit MLC vs SLC at
// 256 B / 128 B / 64 B line sizes. This is a data census, not a timing
// simulation: each workload's value-mutation model is applied repeatedly to
// line content and the differential-write cell changes counted.
func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Figure 2: cell changes per line write",
		Paper: "2-bit MLC changes fewer cells than SLC; larger lines change more cells (~100-500 cells at 256B)",
		Run:   runFig2,
	})
}

// fig2Workloads matches the figure's x axis; "other" aggregates the
// remaining simulated benchmarks.
var fig2Workloads = []string{"bwa_m", "lbm_m", "mcf_m", "xal_m", "mum_m", "tig_m", "other"}

const fig2WritesPerSample = 300

func runFig2(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Figure 2: average cell changes per line write",
		"workload", "256B-mlc", "256B-slc", "128B-mlc", "128B-slc", "64B-mlc", "64B-slc")
	lineSizes := []int{256, 128, 64}

	sample := func(names []string) ([]float64, error) {
		cells := make([]float64, 0, 6)
		for _, lineB := range lineSizes {
			var mlc, slc stats.Summary
			for _, name := range names {
				wl, err := workload.ByName(name, 8)
				if err != nil {
					return nil, err
				}
				// One mutator per distinct profile in the mix.
				seen := map[string]bool{}
				for i, prof := range wl.Cores {
					if seen[prof.Name] {
						continue
					}
					seen[prof.Name] = true
					// Seed per benchmark so same-class programs
					// (e.g. the FP trio) still produce distinct
					// draws, as distinct programs would.
					seed := uint64(1000 + i)
					for _, ch := range prof.Name {
						seed = seed*131 + uint64(ch)
					}
					mut := workload.NewMutator(prof.Value, sim.NewRNG(seed))
					old := workload.BaselineContent(seed*4096, lineB)
					for w := 0; w < fig2WritesPerSample; w++ {
						next := mut.Next(old, lineB)
						mlc.Add(float64(pcm.CountChangedCells(old, next, 2)))
						slc.Add(float64(pcm.CountChangedCells(old, next, 1)))
						old = next
					}
				}
			}
			cells = append(cells, mlc.Mean(), slc.Mean())
		}
		return cells, nil
	}

	var perCol [][]float64
	for _, name := range fig2Workloads {
		names := []string{name}
		if name == "other" {
			names = []string{"ast_m", "les_m", "qso_m", "cop_m", "mix_1", "mix_2", "mix_3"}
		}
		row, err := sample(names)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, row...)
		for i, v := range row {
			if i >= len(perCol) {
				perCol = append(perCol, nil)
			}
			perCol[i] = append(perCol[i], v)
		}
	}
	g := make([]float64, len(perCol))
	for i := range perCol {
		g[i] = stats.GeoMean(perCol[i])
	}
	t.AddRow("gmean", g...)
	return t, nil
}
