package exp

import (
	"fmt"

	"fpb/internal/power"
	"fpb/internal/sim"
	"fpb/internal/stats"
)

// Table 3: charge pump area overhead, measured by input-referred power
// tokens relative to the baseline DIMM (8 chips × 70 tokens = 560). The
// GCP's size is the maximum output it was ever asked for (Figure 13's
// data), divided by its efficiency.
func init() {
	register(Experiment{
		ID:    "tab3",
		Title: "Table 3: charge pump area overhead",
		Paper: "2xlocal 100%; GCP-NE-0.95 12.5%, NE-0.7 16.4%, VIM-0.95 3.1%, VIM-0.7 4.1%, BIM-0.95 5.4%, BIM-0.7 7.1%",
		Run:   runTable3,
	})
}

func runTable3(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Table 3: charge pump overhead (input-referred power tokens)",
		"scheme", "tokens", "overhead")
	t.AddStringRow("Baseline (8 chips)", fmt.Sprintf("%.0f", power.BaselineChipTokens*8), "-")
	t.AddStringRow("2xLocal (8 chips)", fmt.Sprintf("%.0f", power.BaselineChipTokens*16), "100.0%")

	grid := []struct {
		mapping sim.Mapping
		eff     float64
	}{
		{sim.MapNaive, 0.95}, {sim.MapNaive, 0.70},
		{sim.MapVIM, 0.95}, {sim.MapVIM, 0.70},
		{sim.MapBIM, 0.95}, {sim.MapBIM, 0.70},
	}
	var cfgs []sim.Config
	for _, g := range grid {
		cfgs = append(cfgs, r.cfgOf(gcpVariant(g.mapping, g.eff)))
	}
	if err := r.Prewarm(cfgs, r.Opt().Workloads); err != nil {
		return nil, err
	}
	for _, g := range grid {
		cfg := r.cfgOf(gcpVariant(g.mapping, g.eff))
		// Size the pump by the largest single-write GCP demand seen
		// across workloads (Figure 13's measurement).
		maxTokens := 0.0
		for _, wl := range r.Opt().Workloads {
			res, err := r.Run(cfg, wl)
			if err != nil {
				return nil, err
			}
			if m := res.MaxGCPSegment; m > maxTokens {
				maxTokens = m
			}
		}
		overhead := power.PumpOverhead(maxTokens, g.eff, cfg.Chips)
		t.AddStringRow(
			fmt.Sprintf("GCP-%v-%.2f", g.mapping, g.eff),
			fmt.Sprintf("%.0f/%.2f = %.0f", maxTokens, g.eff, maxTokens/g.eff),
			fmt.Sprintf("%.1f%%", overhead*100),
		)
	}
	return t, nil
}
