package exp

import (
	"fmt"
	"strings"
	"testing"

	"fpb/internal/sim"
)

func TestRegistryCoversEveryFigureAndTable(t *testing.T) {
	want := []string{
		"fig2", "fig4", "fig10", "fig11", "fig12", "fig13", "tab3",
		"fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
		"fig21", "fig22", "fig23",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want at least %d", len(All()), len(want))
	}
	// Paper order: fig2 first, tab3 right after fig13.
	all := All()
	if all[0].ID != "fig2" {
		t.Errorf("first experiment is %s, want fig2", all[0].ID)
	}
	idx := map[string]int{}
	for i, e := range all {
		idx[e.ID] = i
	}
	if idx["tab3"] != idx["fig13"]+1 {
		t.Error("tab3 not ordered after fig13")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id resolved")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.InstrPerCore == 0 || len(o.Workloads) != 13 {
		t.Errorf("defaults not applied: %+v", o)
	}
}

func TestFig2TableShape(t *testing.T) {
	r := NewRunner(Options{InstrPerCore: 10_000})
	e, _ := ByID("fig2")
	tb, err := e.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != len(fig2Workloads)+1 { // + gmean
		t.Fatalf("fig2 rows = %d, want %d", tb.NumRows(), len(fig2Workloads)+1)
	}
	out := tb.String()
	for _, col := range []string{"256B-mlc", "64B-slc", "gmean", "mcf_m"} {
		if !strings.Contains(out, col) {
			t.Errorf("fig2 output missing %q", col)
		}
	}
}

func TestFig2MLCBelowSLCAndSizeMonotone(t *testing.T) {
	r := NewRunner(Options{InstrPerCore: 10_000})
	e, _ := ByID("fig2")
	tb, err := e.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	// Columns: workload, 256B-mlc, 256B-slc, 128B-mlc, 128B-slc, 64B-mlc, 64B-slc
	for i := 0; i < tb.NumRows(); i++ {
		row := tb.Row(i)
		mlc256, slc256 := atof(t, row[1]), atof(t, row[2])
		mlc64 := atof(t, row[5])
		if mlc256 > slc256 {
			t.Errorf("%s: 256B MLC %.0f above SLC %.0f (paper: MLC changes fewer cells)",
				row[0], mlc256, slc256)
		}
		if mlc64 > mlc256 {
			t.Errorf("%s: 64B changes %.0f above 256B %.0f (paper: larger lines change more)",
				row[0], mlc64, mlc256)
		}
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}

// TestRunnerMemoizes ensures a repeated Run is served from cache (same
// pointer-free result, no recomputation observable via timing is flaky, so
// just check value equality and that Prewarm covers Run).
func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(Options{InstrPerCore: 5_000, Workloads: []string{"xal_m"}})
	cfg := r.BaseConfig()
	a, aerr := r.Run(cfg, "xal_m")
	b, berr := r.Run(cfg, "xal_m")
	if aerr != nil || berr != nil {
		t.Fatal(aerr, berr)
	}
	// Result holds a metrics map, so compare representative scalars.
	if a.Cycles != b.Cycles || a.Writes != b.Writes || a.CPI != b.CPI ||
		len(a.Metrics) != len(b.Metrics) {
		t.Error("memoized results differ")
	}
}

// TestSmallFigureRuns executes the cheap simulation-backed figures at a tiny
// scale with two workloads to catch wiring regressions.
func TestSmallFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed figures are slow")
	}
	r := NewRunner(Options{InstrPerCore: 8_000, Workloads: []string{"mcf_m", "xal_m"}})
	for _, id := range []string{"fig10", "fig11", "fig17", "tab3"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		tb, err := e.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tb.NumRows() == 0 {
			t.Errorf("%s produced an empty table", id)
		}
	}
}

// TestFig15TableShape: rows are efficiencies, columns the three featured
// workloads; speedups must stay positive and finite.
func TestFig15TableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	r := NewRunner(Options{InstrPerCore: 8_000})
	e, _ := ByID("fig15")
	tb, err := e.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 7 { // efficiencies 0.7 .. 0.1
		t.Fatalf("fig15 rows = %d, want 7", tb.NumRows())
	}
	for i := 0; i < tb.NumRows(); i++ {
		row := tb.Row(i)
		if len(row) != 4 {
			t.Fatalf("fig15 row %d has %d cells", i, len(row))
		}
		for _, cell := range row[1:] {
			v := atof(t, cell)
			if v <= 0 || v > 100 {
				t.Errorf("fig15 speedup %g out of range", v)
			}
		}
	}
}

// TestSweepNormalizationUsesSameX: Figure 22's columns are normalized to a
// DIMM+chip baseline with the *same* token budget; with a single workload
// and the same budget in both rows of a degenerate sweep, the speedup of
// an identical config must be exactly 1.
func TestSweepNormalizationUsesSameX(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	r := NewRunner(Options{InstrPerCore: 8_000, Workloads: []string{"xal_m"}})
	tb, err := sweepTable(r, "degenerate", []string{"x"},
		func(c *sim.Config, i int) { fpbRevert(c) })
	if err != nil {
		t.Fatal(err)
	}
	got := atof(t, tb.Row(0)[1])
	if got != 1 {
		t.Errorf("self-normalized speedup = %g, want exactly 1 (memoized identical configs)", got)
	}
}

// fpbRevert turns any config back into the plain DIMM+chip baseline so the
// sweep's "FPB" and baseline columns coincide.
func fpbRevert(c *sim.Config) {
	c.Scheme = sim.SchemeDIMMChip
	c.CellMapping = sim.MapNaive
	c.MultiResetSplit = 3
	c.GCPEff = 0.70
}

// TestFig4OrderingAtSmallScale checks the headline ordering of the
// motivation figure: DIMM+chip is the worst of the three main schemes.
func TestFig4OrderingAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	r := NewRunner(Options{InstrPerCore: 20_000, Workloads: []string{"mcf_m", "lbm_m"}})
	e, _ := ByID("fig4")
	tb, err := e.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	// gmean row: columns Ideal, DIMM-only, DIMM+chip, ...
	g := tb.Row(tb.NumRows() - 1)
	ideal, dimmOnly, dimmChip := atof(t, g[1]), atof(t, g[2]), atof(t, g[3])
	if !(ideal >= dimmOnly && dimmOnly >= dimmChip) {
		t.Errorf("fig4 ordering violated: Ideal %.3f, DIMM-only %.3f, DIMM+chip %.3f",
			ideal, dimmOnly, dimmChip)
	}
}
