package exp

import (
	"fmt"

	"fpb/internal/sim"
	"fpb/internal/stats"
)

// fpbVariant builds scheme columns on top of GCP-BIM-0.7 (the paper's
// default for Section 6.2 onward).
func fpbVariant(label string, scheme sim.Scheme, eff float64, mr int) Variant {
	return Variant{
		Label: label,
		Mutate: func(c *sim.Config) {
			c.Scheme = scheme
			c.CellMapping = sim.MapBIM
			c.GCPEff = eff
			if mr > 0 {
				c.MultiResetSplit = mr
			}
		},
	}
}

// Figure 16: FPB-IPM and Multi-RESET on top of GCP-BIM-0.7, vs DIMM+chip,
// with Ideal as the ceiling. IPM +26.9% over GCP-BIM; IPM+MR +30.7% over
// GCP-BIM and +75.6% over DIMM+chip, within 12.2% of Ideal. gm0.5/gm0.3
// show the geometric means when GCP efficiency drops.
func init() {
	register(Experiment{
		ID:    "fig16",
		Title: "Figure 16: IPM and Multi-RESET speedup",
		Paper: "vs DIMM+chip: IPM+MR +75.6% (within 12.2% of Ideal); IPM +26.9% over GCP-BIM; stable at E=0.5, drops at 0.3",
		Run:   runFig16,
	})
}

func runFig16(r *Runner) (*stats.Table, error) {
	variants := []Variant{
		fpbVariant("GCP-BIM", sim.SchemeGCP, 0.70, 0),
		fpbVariant("IPM", sim.SchemeGCPIPM, 0.70, 0),
		fpbVariant("IPM+MR", sim.SchemeGCPIPMMR, 0.70, 3),
		{Label: "Ideal", Mutate: func(c *sim.Config) { c.Scheme = sim.SchemeIdeal }},
	}
	t, err := r.SpeedupTable("Figure 16: IPM and Multi-RESET speedup vs DIMM+chip", dimmChip, variants)
	if err != nil {
		return nil, err
	}

	// gm0.5 / gm0.3 rows: geometric means with reduced GCP efficiency.
	for _, eff := range []float64{0.5, 0.3} {
		lowVariants := []Variant{
			fpbVariant("GCP-BIM", sim.SchemeGCP, eff, 0),
			fpbVariant("IPM", sim.SchemeGCPIPM, eff, 0),
			fpbVariant("IPM+MR", sim.SchemeGCPIPMMR, eff, 3),
			{Label: "Ideal", Mutate: func(c *sim.Config) { c.Scheme = sim.SchemeIdeal }},
		}
		var cfgs []sim.Config
		for _, v := range lowVariants {
			cfgs = append(cfgs, r.cfgOf(v))
		}
		if err := r.Prewarm(append(cfgs, r.cfgOf(dimmChip)), r.Opt().Workloads); err != nil {
			return nil, err
		}
		gms := make([]float64, len(lowVariants))
		for i, v := range lowVariants {
			var ss []float64
			for _, wl := range r.Opt().Workloads {
				s, err := speedupOf(r, r.cfgOf(dimmChip), r.cfgOf(v), wl)
				if err != nil {
					return nil, err
				}
				ss = append(ss, s)
			}
			gms[i] = stats.GeoMean(ss)
		}
		t.AddRow(fmt.Sprintf("gm%.1f", eff), gms...)
	}
	return t, nil
}

// Figure 17: how many sub-RESETs Multi-RESET should split into. The paper
// finds 3 best; 4 loses ~2% to the longer write latency.
func init() {
	register(Experiment{
		ID:    "fig17",
		Title: "Figure 17: Multi-RESET iteration split limit",
		Paper: "best split is 3; 4 is ~2% worse due to added RESET latency",
		Run:   runFig17,
	})
}

func runFig17(r *Runner) (*stats.Table, error) {
	variants := []Variant{
		fpbVariant("IPM+MR2", sim.SchemeGCPIPMMR, 0.70, 2),
		fpbVariant("IPM+MR3", sim.SchemeGCPIPMMR, 0.70, 3),
		fpbVariant("IPM+MR4", sim.SchemeGCPIPMMR, 0.70, 4),
	}
	return r.SpeedupTable("Figure 17: Multi-RESET split count speedup vs DIMM+chip", dimmChip, variants)
}

// Figure 18: write throughput, normalized to DIMM+chip. The paper: GCP
// +58.8%, GCP+IPM+MR 3.4x, Ideal 22% above full FPB.
func init() {
	register(Experiment{
		ID:    "fig18",
		Title: "Figure 18: write throughput improvement",
		Paper: "vs DIMM+chip: GCP 1.59x, GCP+IPM+MR 3.4x, Ideal 22% above FPB",
		Run:   runFig18,
	})
}

func runFig18(r *Runner) (*stats.Table, error) {
	variants := []Variant{
		fpbVariant("GCP", sim.SchemeGCP, 0.70, 0),
		fpbVariant("GCP+IPM", sim.SchemeGCPIPM, 0.70, 0),
		fpbVariant("GCP+IPM+MR", sim.SchemeGCPIPMMR, 0.70, 3),
		{Label: "Ideal", Mutate: func(c *sim.Config) { c.Scheme = sim.SchemeIdeal }},
	}
	var cfgs []sim.Config
	for _, v := range variants {
		cfgs = append(cfgs, r.cfgOf(v))
	}
	if err := r.Prewarm(append(cfgs, r.cfgOf(dimmChip)), r.Opt().Workloads); err != nil {
		return nil, err
	}

	cols := []string{"workload"}
	for _, v := range variants {
		cols = append(cols, v.Label)
	}
	t := stats.NewTable("Figure 18: write throughput normalized to DIMM+chip", cols...)
	perVariant := make([][]float64, len(variants))
	for _, wl := range r.Opt().Workloads {
		base, err := r.Run(r.cfgOf(dimmChip), wl)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, len(variants))
		for i, v := range variants {
			res, err := r.Run(r.cfgOf(v), wl)
			if err != nil {
				return nil, err
			}
			n := 0.0
			if base.WriteThroughput > 0 {
				n = res.WriteThroughput / base.WriteThroughput
			}
			row = append(row, n)
			perVariant[i] = append(perVariant[i], n)
		}
		t.AddRow(wl, row...)
	}
	g := make([]float64, len(variants))
	for i := range perVariant {
		g[i] = stats.GeoMean(perVariant[i])
	}
	t.AddRow("gmean", g...)
	return t, nil
}
