package exp

import (
	"fmt"

	"fpb/internal/sim"
	"fpb/internal/stats"
)

// fpbFull is the combined FPB configuration of Section 6.4: IPM + MR3 with
// BIM at 70% GCP efficiency.
func fpbFull(c *sim.Config) {
	c.Scheme = sim.SchemeGCPIPMMR
	c.CellMapping = sim.MapBIM
	c.GCPEff = 0.70
	c.MultiResetSplit = 3
}

// sweepTable runs the Section 6.4 design-space pattern: for each parameter
// value X, FPB and DIMM+chip are both run at X and the speedup is FPB(X) /
// DIMM+chip(X) — "each bar is normalized to DIMM+chip that has the same X
// value".
func sweepTable(r *Runner, title string, labels []string, apply func(*sim.Config, int)) (*stats.Table, error) {
	cols := []string{"workload"}
	cols = append(cols, labels...)
	t := stats.NewTable(title, cols...)

	var cfgs []sim.Config
	baseCfgs := make([]sim.Config, len(labels))
	fpbCfgs := make([]sim.Config, len(labels))
	for i := range labels {
		b := r.BaseConfig()
		b.Scheme = sim.SchemeDIMMChip
		apply(&b, i)
		baseCfgs[i] = b
		f := r.BaseConfig()
		fpbFull(&f)
		apply(&f, i)
		fpbCfgs[i] = f
		cfgs = append(cfgs, b, f)
	}
	if err := r.Prewarm(cfgs, r.Opt().Workloads); err != nil {
		return nil, err
	}

	perCol := make([][]float64, len(labels))
	for _, wl := range r.Opt().Workloads {
		row := make([]float64, 0, len(labels))
		for i := range labels {
			s, err := speedupOf(r, baseCfgs[i], fpbCfgs[i], wl)
			if err != nil {
				return nil, err
			}
			row = append(row, s)
			perCol[i] = append(perCol[i], s)
		}
		t.AddRow(wl, row...)
	}
	g := make([]float64, len(labels))
	for i := range perCol {
		g[i] = stats.GeoMean(perCol[i])
	}
	t.AddRow("gmean", g...)
	return t, nil
}

// Figure 19: FPB speedup for 64/128/256 B memory line sizes. Paper:
// +41.3%, +61.8%, +75.6%.
func init() {
	register(Experiment{
		ID:    "fig19",
		Title: "Figure 19: line size sensitivity",
		Paper: "FPB gains +41.3%/+61.8%/+75.6% for 64B/128B/256B lines",
		Run: func(r *Runner) (*stats.Table, error) {
			sizes := []int{64, 128, 256}
			return sweepTable(r, "Figure 19: FPB speedup vs DIMM+chip per line size",
				[]string{"64B", "128B", "256B"},
				func(c *sim.Config, i int) { c.L3LineB = sizes[i] })
		},
	})
}

// Figure 20: last-level cache capacity sensitivity. Paper: +39.9% (8MB),
// +62.1% (16MB), +75.6% (32MB), +23.4% (128MB).
func init() {
	register(Experiment{
		ID:    "fig20",
		Title: "Figure 20: LLC capacity sensitivity",
		Paper: "FPB gains +39.9%/+62.1%/+75.6%/+23.4% for 8/16/32/128 MB per-core LLC",
		Run: func(r *Runner) (*stats.Table, error) {
			sizes := []int{8, 16, 32, 128}
			return sweepTable(r, "Figure 20: FPB speedup vs DIMM+chip per LLC capacity",
				[]string{"8M", "16M", "32M", "128M"},
				func(c *sim.Config, i int) { c.L3SizeMB = sizes[i] })
		},
	})
}

// Figure 21: write queue size sensitivity. Paper: +75.6%/+85.2%/+88.1% for
// 24/48/96 entries, saturating at 48.
func init() {
	register(Experiment{
		ID:    "fig21",
		Title: "Figure 21: write queue size sensitivity",
		Paper: "FPB gains +75.6%/+85.2%/+88.1% for 24/48/96-entry write queues; saturates at 48",
		Run: func(r *Runner) (*stats.Table, error) {
			sizes := []int{24, 48, 96}
			return sweepTable(r, "Figure 21: FPB speedup vs DIMM+chip per write queue size",
				[]string{"24", "48", "96"},
				func(c *sim.Config, i int) { c.WriteQueueEntries = sizes[i] })
		},
	})
}

// Figure 22: power token budget sensitivity (±1/8 of the DIMM budget —
// one LCP's worth of area). Paper: FPB does better under tighter budgets.
func init() {
	register(Experiment{
		ID:    "fig22",
		Title: "Figure 22: power token budget sensitivity",
		Paper: "FPB's advantage grows as the token budget tightens (466 > 532 > 598 relative gains)",
		Run: func(r *Runner) (*stats.Table, error) {
			tokens := []float64{466, 532, 598}
			labels := make([]string, len(tokens))
			for i, tk := range tokens {
				labels[i] = fmt.Sprintf("%.0f", tk)
			}
			return sweepTable(r, "Figure 22: FPB speedup vs DIMM+chip per token budget",
				labels,
				func(c *sim.Config, i int) { c.DIMMTokens = tokens[i] })
		},
	})
}

// Figure 23: FPB combined with write cancellation, write pausing and write
// truncation (320-entry queues: 40 per bank). Paper: FPB+WC+WP+WT reaches
// +175.8% over DIMM+chip, a 57% gain over FPB alone.
func init() {
	register(Experiment{
		ID:    "fig23",
		Title: "Figure 23: FPB with WC, WP and WT",
		Paper: "FPB+WC+WP+WT +175.8% over DIMM+chip (+57% over FPB alone)",
		Run:   runFig23,
	})
}

func runFig23(r *Runner) (*stats.Table, error) {
	bigQueues := func(c *sim.Config) {
		c.ReadQueueEntries = 320
		c.WriteQueueEntries = 320
	}
	variants := []Variant{
		{Label: "FPB", Mutate: fpbFull},
		{Label: "FPB+WC", Mutate: func(c *sim.Config) {
			fpbFull(c)
			bigQueues(c)
			c.WriteCancellation = true
		}},
		{Label: "FPB+WC+WP", Mutate: func(c *sim.Config) {
			fpbFull(c)
			bigQueues(c)
			c.WriteCancellation = true
			c.WritePausing = true
		}},
		{Label: "FPB+WC+WP+WT", Mutate: func(c *sim.Config) {
			fpbFull(c)
			bigQueues(c)
			c.WriteCancellation = true
			c.WritePausing = true
			c.WriteTruncation = true
		}},
	}
	return r.SpeedupTable("Figure 23: FPB with read-latency schemes, speedup vs DIMM+chip", dimmChip, variants)
}
