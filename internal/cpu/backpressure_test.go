package cpu

import (
	"testing"

	"fpb/internal/cache"
	"fpb/internal/mem"
	"fpb/internal/sim"
	"fpb/internal/trace"
	"fpb/internal/workload"
)

// TestCoresBlockOnFullReadQueue runs many cores against a tiny read queue;
// every access misses, so cores must repeatedly wait for queue space, and
// all must still finish.
func TestCoresBlockOnFullReadQueue(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeIdeal
	cfg.InstrPerCore = 600
	cfg.ReadQueueEntries = 2
	cfg.L3SizeMB = 1
	eng := sim.NewEngine()
	mc := mem.NewController(eng, &cfg, nil)
	finished := 0
	var cores []*Core
	for i := 0; i < cfg.Cores; i++ {
		// Distinct cold lines per access, all cores to the same banks.
		var accs []trace.Access
		for k := 0; k < 700; k++ {
			accs = append(accs, trace.Access{
				Addr: uint64(i)<<40 | uint64(k)*uint64(cfg.L3LineB)*7,
			})
		}
		hier := cache.NewHierarchy(&cfg)
		mut := workload.NewMutator(workload.ValueInt, sim.NewRNG(uint64(i)))
		c := New(i, eng, &cfg, hier, trace.NewSliceSource(accs), mut, mc,
			func(*Core) { finished++ })
		cores = append(cores, c)
	}
	for _, c := range cores {
		c.Start()
	}
	for finished < len(cores) {
		if !eng.Step() {
			t.Fatalf("deadlock with full read queue: %d/%d cores finished",
				finished, len(cores))
		}
	}
	for _, c := range cores {
		reads, _ := c.MemCounts()
		if reads == 0 {
			t.Errorf("core %d recorded no reads", c.ID)
		}
	}
}

// TestCoreBlocksOnFullWriteQueue drives dirty streaming through a 1-entry
// write queue.
func TestCoreBlocksOnFullWriteQueue(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeIdeal
	cfg.InstrPerCore = 20000
	cfg.WriteQueueEntries = 1
	cfg.L1SizeKB = 8
	cfg.L2SizeKB = 32
	cfg.L3SizeMB = 1
	eng := sim.NewEngine()
	mc := mem.NewController(eng, &cfg, workload.BaselineContent)
	hier := cache.NewHierarchy(&cfg)
	mut := workload.NewMutator(workload.ValueStream, sim.NewRNG(1))
	var accs []trace.Access
	for k := 0; k < 21000; k++ {
		accs = append(accs, trace.Access{Write: true, Addr: uint64(k) * 256})
	}
	done := false
	c := New(0, eng, &cfg, hier, trace.NewSliceSource(accs), mut, mc,
		func(*Core) { done = true })
	c.Start()
	for !done {
		if !eng.Step() {
			t.Fatal("deadlock with 1-entry write queue")
		}
	}
	_, writes := c.MemCounts()
	if writes == 0 {
		t.Fatal("no writebacks with a full L3 stream")
	}
}
