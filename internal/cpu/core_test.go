package cpu

import (
	"testing"

	"fpb/internal/cache"
	"fpb/internal/mem"
	"fpb/internal/sim"
	"fpb/internal/trace"
	"fpb/internal/workload"
)

func testRig(t *testing.T, accesses []trace.Access, budget uint64) (*sim.Engine, *Core, *mem.Controller) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeIdeal
	cfg.InstrPerCore = budget
	// Shrink the hierarchy so dirty-bit propagation (L1 → L2 → L3 →
	// memory) completes within test-sized access counts.
	cfg.L1SizeKB = 8
	cfg.L2SizeKB = 32
	cfg.L3SizeMB = 1
	eng := sim.NewEngine()
	mc := mem.NewController(eng, &cfg, workload.BaselineContent)
	hier := cache.NewHierarchy(&cfg)
	mut := workload.NewMutator(workload.ValueInt, sim.NewRNG(1))
	var done bool
	c := New(0, eng, &cfg, hier, trace.NewRepeat(accesses), mut, mc, func(*Core) { done = true })
	_ = done
	return eng, c, mc
}

func TestCoreRetiresBudget(t *testing.T) {
	accs := []trace.Access{{Gap: 9, Addr: 0x40}}
	eng, c, _ := testRig(t, accs, 1000)
	c.Start()
	eng.Run(0)
	if !c.Finished() {
		t.Fatal("core never finished")
	}
	if c.InstrRetired() < 1000 {
		t.Errorf("retired %d instructions, want >= 1000", c.InstrRetired())
	}
	if c.FinishCycle() == 0 {
		t.Error("finish cycle not recorded")
	}
	if c.CPI() <= 0 {
		t.Error("CPI not positive")
	}
}

func TestCoreCacheHitSpeed(t *testing.T) {
	// Repeated access to one line: everything after the first fill is an
	// L1 hit, so CPI ≈ (gap + L1 hit) / (gap + 1).
	accs := []trace.Access{{Gap: 9, Addr: 0x40}}
	eng, c, _ := testRig(t, accs, 100_000)
	c.Start()
	eng.Run(0)
	cpi := c.CPI()
	if cpi > 1.5 {
		t.Errorf("hot-loop CPI = %.2f, want near (9+2)/10 = 1.1", cpi)
	}
}

func TestCoreBlocksOnMemoryRead(t *testing.T) {
	// Stream of cold lines: every access costs a PCM round trip, so CPI
	// must be dominated by memory latency.
	var accs []trace.Access
	for i := 0; i < 4096; i++ {
		accs = append(accs, trace.Access{Gap: 0, Addr: uint64(i) * 256 * 17}) // distinct lines
	}
	eng, c, _ := testRig(t, accs, 3000)
	c.Start()
	eng.Run(0)
	if cpi := c.CPI(); cpi < 500 {
		t.Errorf("cold-stream CPI = %.1f, want >> read latency/instr (>500)", cpi)
	}
	reads, _ := c.MemCounts()
	if reads == 0 {
		t.Error("no demand reads recorded")
	}
}

func TestCoreGeneratesWritebacks(t *testing.T) {
	// Dirty streaming stores over > L3 span force dirty evictions.
	var accs []trace.Access
	for i := 0; i < 3*4096; i++ { // 3x the 1MB L3 (4096 lines of 256B)
		accs = append(accs, trace.Access{Gap: 0, Write: true, Addr: uint64(i) * 256})
	}
	eng, c, mc := testRig(t, accs, 9000)
	c.Start()
	eng.Run(0)
	_, writes := c.MemCounts()
	if writes == 0 {
		t.Fatal("no writebacks enqueued")
	}
	_, _, _, done, _, _ := mc.Counts()
	if done == 0 {
		t.Error("no writes completed at the controller")
	}
}

func TestCoreFinishesExactlyOnce(t *testing.T) {
	finishes := 0
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeIdeal
	cfg.InstrPerCore = 100
	eng := sim.NewEngine()
	mc := mem.NewController(eng, &cfg, nil)
	hier := cache.NewHierarchy(&cfg)
	mut := workload.NewMutator(workload.ValueInt, sim.NewRNG(1))
	c := New(0, eng, &cfg, hier, trace.NewRepeat([]trace.Access{{Gap: 4, Addr: 0x40}}),
		mut, mc, func(*Core) { finishes++ })
	c.Start()
	eng.Run(0)
	if finishes != 1 {
		t.Errorf("onFinish ran %d times", finishes)
	}
}

func TestCoreSourceExhaustionFinishes(t *testing.T) {
	accs := []trace.Access{{Gap: 1, Addr: 0x40}, {Gap: 1, Addr: 0x80}}
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeIdeal
	cfg.InstrPerCore = 1 << 40 // budget never reached
	eng := sim.NewEngine()
	mc := mem.NewController(eng, &cfg, nil)
	hier := cache.NewHierarchy(&cfg)
	mut := workload.NewMutator(workload.ValueInt, sim.NewRNG(1))
	c := New(0, eng, &cfg, hier, trace.NewSliceSource(accs), mut, mc, nil)
	c.Start()
	eng.Run(0)
	if !c.Finished() {
		t.Error("core did not finish on trace exhaustion")
	}
	if c.InstrRetired() != 4 {
		t.Errorf("retired %d, want 4", c.InstrRetired())
	}
}
