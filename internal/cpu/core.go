// Package cpu models the simulated in-order cores: each core consumes its
// trace (gap instructions at one cycle each, then a memory access through
// its private cache hierarchy), blocks on demand PCM reads and on full
// memory-controller queues, and retires instructions until its budget is
// spent. This is the trace-driven equivalent of the paper's 8-core, 4 GHz,
// single-issue in-order CMP.
package cpu

import (
	"fpb/internal/cache"
	"fpb/internal/mem"
	"fpb/internal/sim"
	"fpb/internal/trace"
	"fpb/internal/workload"
)

// Core is one simulated CPU core.
type Core struct {
	ID int

	eng  *sim.Engine
	cfg  *sim.Config
	hier *cache.Hierarchy
	src  trace.Source
	mut  *workload.Mutator
	mc   *mem.Controller

	budget       uint64
	instrRetired uint64
	finished     bool
	finishCycle  sim.Cycle
	onFinish     func(*Core)

	// Warmup-barrier state. When a run has a warmup phase the core executes
	// with measuring=false and no instruction budget until the clock reaches
	// pauseAt, then parks at the next instruction boundary without scheduling
	// further events. ResumeMeasurement un-parks it into the measured phase.
	pauseAt   sim.Cycle
	parked    bool
	measuring bool

	// Per-core memory telemetry for PKI calibration.
	demandReads uint64
	memWrites   uint64

	// pendingWBs are dirty evictions not yet accepted by the write queue.
	pendingWBs []wbItem
	// after the blocking phase, the access may still owe a demand read.
	pendingFill uint64
	hasFill     bool
	tailLatency sim.Cycle

	// Bound method values are created once here: evaluating c.method on
	// the step hot path would allocate a fresh closure per call.
	drainFn func()
	issueFn func()
	readyFn func()
}

type wbItem struct {
	addr uint64
	data []byte
}

// New creates a core. onFinish runs once when the instruction budget is
// retired.
func New(id int, eng *sim.Engine, cfg *sim.Config, hier *cache.Hierarchy,
	src trace.Source, mut *workload.Mutator, mc *mem.Controller, onFinish func(*Core)) *Core {
	c := &Core{
		ID: id, eng: eng, cfg: cfg, hier: hier, src: src, mut: mut, mc: mc,
		budget: cfg.InstrPerCore, onFinish: onFinish,
		pauseAt: sim.MaxCycle, measuring: true,
	}
	c.drainFn = c.drainWritebacks
	c.issueFn = c.issueDemandRead
	c.readyFn = c.readDone
	return c
}

// Start begins execution at the current cycle.
func (c *Core) Start() { c.step() }

// SetBarrier arms a warmup barrier: the core runs unmeasured (no instruction
// budget, no retirement counting toward the Result) and parks at the first
// instruction boundary at or after cycle at. Must be called before Start.
func (c *Core) SetBarrier(at sim.Cycle) {
	c.pauseAt = at
	c.measuring = false
}

// Parked reports whether the core is stopped at the warmup barrier.
func (c *Core) Parked() bool { return c.parked }

// RestoreParked marks a freshly built core as already sitting at the quiesce
// barrier, for the checkpoint-restore path: the core must not be Started;
// ResumeMeasurement launches it directly into the measured phase.
func (c *Core) RestoreParked() {
	c.parked = true
	c.measuring = false
}

// ResumeMeasurement un-parks the core into the measured phase: measurement
// counters reset to zero, the instruction budget is re-read from the config
// (which the barrier sequence rebinds to the measurement config), and the
// core takes its first measured step at the current cycle. Cores must be
// resumed in ID order so event sequence numbers match the cold run.
func (c *Core) ResumeMeasurement() {
	if c.finished {
		return
	}
	c.parked = false
	c.measuring = true
	c.pauseAt = sim.MaxCycle
	c.instrRetired = 0
	c.demandReads = 0
	c.memWrites = 0
	c.hier.ResetStats()
	c.budget = c.cfg.InstrPerCore
	c.step()
}

// Hierarchy returns the core's private cache hierarchy.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// Finished reports whether the core retired its budget.
func (c *Core) Finished() bool { return c.finished }

// FinishCycle reports when the core finished (valid once Finished).
func (c *Core) FinishCycle() sim.Cycle { return c.finishCycle }

// InstrRetired reports retired instructions so far.
func (c *Core) InstrRetired() uint64 { return c.instrRetired }

// MemCounts reports the core's demand reads and memory writes (writebacks
// it enqueued), for R/W-PKI measurement.
func (c *Core) MemCounts() (reads, writes uint64) { return c.demandReads, c.memWrites }

// step fetches and executes the next access.
func (c *Core) step() {
	if c.finished {
		return
	}
	if !c.measuring && c.eng.Now() >= c.pauseAt {
		// Warmup barrier: park at this instruction boundary. No event is
		// scheduled, so the queue drains and the system can quiesce.
		c.parked = true
		return
	}
	if c.measuring && c.instrRetired >= c.budget {
		c.finish()
		return
	}
	a, ok := c.src.Next()
	if !ok {
		c.finish()
		return
	}
	c.instrRetired += a.Instructions()

	out := c.hier.Access(a.Addr, a.Write)
	latency := sim.Cycle(a.Gap) + c.hier.HitLatency(out.Level)

	// Queue the side effects: fill reads are fire-and-forget; dirty
	// writebacks must be accepted by the write queue before the core
	// proceeds (backpressure), and a memory-level miss blocks on the
	// demand read.
	for _, fr := range out.FillReads {
		c.mc.EnqueueFillRead(fr)
	}
	c.pendingWBs = c.pendingWBs[:0]
	for _, wb := range out.Writebacks {
		c.pendingWBs = append(c.pendingWBs, wbItem{addr: wb, data: c.synthesize(wb)})
	}
	c.hasFill = out.Level == cache.LevelMemory
	c.pendingFill = out.FillAddr
	c.tailLatency = latency
	c.eng.After(latency, c.drainFn)
}

// synthesize produces the new content of a written-back line using the
// core's value-mutation model over the line's current PCM content.
func (c *Core) synthesize(lineAddr uint64) []byte {
	old := c.mc.Store().Get(lineAddr)
	if old == nil {
		old = workload.BaselineContent(lineAddr, c.cfg.L3LineB)
	}
	return c.mut.Next(old, c.cfg.L3LineB)
}

// drainWritebacks pushes pending writebacks into the write queue, stalling
// on backpressure, then issues the demand read if one is owed.
func (c *Core) drainWritebacks() {
	for len(c.pendingWBs) > 0 {
		wb := c.pendingWBs[0]
		if !c.mc.TryEnqueueWrite(wb.addr, wb.data) {
			c.mc.WaitWriteSpace(c.drainFn)
			return
		}
		c.memWrites++
		c.pendingWBs = c.pendingWBs[1:]
	}
	c.issueDemandRead()
}

// issueDemandRead blocks the core on the PCM read for a memory-level miss.
func (c *Core) issueDemandRead() {
	if !c.hasFill {
		c.step()
		return
	}
	addr := c.pendingFill
	if !c.mc.TryEnqueueRead(addr, c.readyFn) {
		c.mc.WaitReadSpace(func() {
			if !c.mc.TryEnqueueRead(addr, c.readyFn) {
				// Space was taken by another waiter; queue again.
				c.mc.WaitReadSpace(c.issueFn)
				return
			}
			c.demandReads++
			c.hasFill = false
		})
		return
	}
	c.demandReads++
	c.hasFill = false
}

// readDone resumes execution after the demand read returns.
func (c *Core) readDone() {
	c.step()
}

func (c *Core) finish() {
	c.finished = true
	c.finishCycle = c.eng.Now()
	if c.onFinish != nil {
		c.onFinish(c)
	}
}

// CPI reports the core's cycles-per-instruction at finish time (or so
// far, if still running).
func (c *Core) CPI() float64 {
	if c.instrRetired == 0 {
		return 0
	}
	cyc := c.finishCycle
	if !c.finished {
		cyc = c.eng.Now()
	}
	return float64(cyc) / float64(c.instrRetired)
}
