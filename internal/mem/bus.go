// Package mem implements the PCM memory subsystem of Figure 1: the on-CPU
// memory controller (read/write queues, reads-first scheduling, the
// write-burst policy of Hay et al.), the on-DIMM bridge chip that owns
// non-deterministic MLC write management (universal memory interface, Fang
// et al. PACT'11), bank state machines, and the data buses. The bridge
// drives internal/core's FPB scheduler at every iteration boundary and
// integrates write cancellation, write pausing and write truncation.
package mem

import "fpb/internal/sim"

// transferBytesPerCycle is the data-bus width: 8 bytes per CPU cycle
// (DDR3-1066x16-class bandwidth against a 4 GHz core clock).
const transferBytesPerCycle = 8

// Bus is a serially shared resource (a data channel). Reservations are
// granted in request order at the earliest free time.
type Bus struct {
	freeAt sim.Cycle
	busy   sim.Cycle // accumulated occupancy for utilization stats
}

// Reserve books the bus for duration cycles starting no earlier than now;
// it returns the granted start time.
func (b *Bus) Reserve(now sim.Cycle, duration sim.Cycle) sim.Cycle {
	start := now
	if b.freeAt > start {
		start = b.freeAt
	}
	b.freeAt = start + duration
	b.busy += duration
	return start
}

// FreeAt reports when the bus next becomes free.
func (b *Bus) FreeAt() sim.Cycle { return b.freeAt }

// BusyCycles reports total reserved cycles.
func (b *Bus) BusyCycles() sim.Cycle { return b.busy }

// transferCycles returns the channel occupancy of moving lineB bytes.
func transferCycles(lineB int) sim.Cycle {
	c := sim.Cycle(lineB / transferBytesPerCycle)
	if c == 0 {
		c = 1
	}
	return c
}
