package mem

import (
	"fmt"
	"sort"

	"fpb/internal/ckpt"
	"fpb/internal/mapping"
	"fpb/internal/sim"
)

// rotShiftEvery is the rotator's effective shift interval under cfg: PWL off
// means no rotation, regardless of the configured interval.
func rotShiftEvery(cfg *sim.Config) int {
	if cfg.PWL {
		return cfg.PWLShiftWrites
	}
	return 0
}

// Quiesced reports whether the memory subsystem is at a checkpointable
// barrier: no queued or in-flight work, no core waiting for queue space, no
// burst draining, and every power token free.
func (c *Controller) Quiesced() bool {
	return c.Drained() && !c.burst &&
		len(c.readSpaceWaiters) == 0 && len(c.writeSpaceWaiters) == 0 &&
		c.sched.Manager().Quiesced()
}

// Rebind re-derives every configuration-dependent structure after the warmup
// barrier swapped the shared config's policy fields to the measurement
// values: the cell mapping and its tables, the rotator's shift interval, and
// the power pools. Structural fields (banks, chips, line size, queue depths)
// must be unchanged — the warmup config pins only policy fields.
func (c *Controller) Rebind() {
	cfg := c.cfg
	c.mapFn = mapping.New(cfg.CellMapping, cfg.CellsPerLine(), cfg.Chips)
	c.mapTab = mapping.NewTable(c.mapFn, cfg.CellsPerLine(), cfg.Chips)
	for i := range c.laneTables {
		c.laneTables[i] = mapping.NewTable(c.mapFn, cfg.CellsPerLine(), cfg.Chips)
	}
	c.rot.ShiftEvery = rotShiftEvery(cfg)
	c.sched.Manager().Reconfigure()
}

// ResetMeasurement zeroes the subsystem's measurement statistics at the
// warmup barrier: latency/energy summaries, the latency histogram, burst
// time, bus utilization, power telemetry, and every hub-registry counter.
// Model state (store content, wear counts, rotation offsets) is untouched.
func (c *Controller) ResetMeasurement() {
	c.readLatency.Reset()
	c.writeLatency.Reset()
	c.writeLatHist.Reset()
	c.cellChanges.Reset()
	c.writeEnergy.Reset()
	c.burstCycles = 0
	c.chanBus.busy = 0
	c.dimmBus.busy = 0
	c.sched.Manager().ResetTelemetry()
	c.hub.Registry().ResetMeasurement()
}

// SaveState serializes the controller's model state at a quiesce barrier:
// PCM store content, rotator state, per-line wear counts (ascending address
// order), and the bus reservation horizons. Queues, banks, and power grants
// are all provably empty at the barrier and are not captured; SaveState
// panics if they are not.
func (c *Controller) SaveState(w *ckpt.Writer) {
	w.Section("mem")
	if !c.Quiesced() {
		panic("mem: checkpointing a controller that is not quiesced")
	}
	c.store.SaveState(w)
	c.rot.SaveState(w)
	addrs := make([]uint64, 0, len(c.lineWrites))
	for a := range c.lineWrites {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.U64(uint64(len(addrs)))
	for _, a := range addrs {
		w.U64(a)
		w.U64(c.lineWrites[a])
	}
	w.U64(c.maxLineWr)
	w.U64(uint64(c.chanBus.freeAt))
	w.U64(uint64(c.dimmBus.freeAt))
}

// RestoreState loads model state written by SaveState into a freshly built
// (idle) controller.
func (c *Controller) RestoreState(r *ckpt.Reader) error {
	r.Section("mem")
	if !c.Quiesced() {
		return fmt.Errorf("mem: restoring into a controller with in-flight work")
	}
	if err := c.store.RestoreState(r); err != nil {
		return err
	}
	if err := c.rot.RestoreState(r); err != nil {
		return err
	}
	n := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	lw := make(map[uint64]uint64, n)
	for i := uint64(0); i < n; i++ {
		a, cnt := r.U64(), r.U64()
		lw[a] = cnt
	}
	maxWr := r.U64()
	chanFree, dimmFree := sim.Cycle(r.U64()), sim.Cycle(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	c.lineWrites = lw
	c.maxLineWr = maxWr
	c.chanBus.freeAt = chanFree
	c.dimmBus.freeAt = dimmFree
	// Lane readers cache page lookups into the pre-restore (empty) store
	// pages; reset them against the restored content.
	for i := range c.laneReaders {
		c.laneReaders[i] = c.store.Reader()
	}
	return nil
}
