package mem

import (
	"fpb/internal/core"
	"fpb/internal/mapping"
	"fpb/internal/obs"
	"fpb/internal/pcm"
	"fpb/internal/power"
	"fpb/internal/sim"
	"fpb/internal/stats"
)

// wcProgressThreshold: write cancellation aborts an in-flight write for a
// pending read only when the write has completed less than this fraction of
// its iterations (Qureshi et al. HPCA'10 — cancelling nearly-finished
// writes wastes more than it saves).
const wcProgressThreshold = 0.75

// wcMaxCancels bounds how many times one write may be cancelled; past it
// the write runs to completion (or pauses, if WP is on). Without this bound
// a read-heavy stream can starve writes indefinitely.
const wcMaxCancels = 4

// wcQueueWatermark disables cancellation once the write queue is this full,
// as Qureshi et al. do — cancelling while writes back up only hastens a
// blocking write burst.
const wcQueueWatermark = 0.8

// maxFillQueue bounds the background fill-read queue; under saturation the
// oldest fills are dropped (they model bandwidth, not data).
const maxFillQueue = 64

// latBucketCycles is the write-latency histogram resolution: latencies are
// recorded in 64-cycle buckets, so percentile reports are exact to 16 ns at
// the default 4 GHz clock.
const latBucketCycles = 64

// latMaxBuckets caps the histogram range (64 * 16384 ≈ 1M cycles); longer
// latencies land in the overflow bucket and report as the range maximum.
const latMaxBuckets = 16384

// BaselineFunc synthesizes the pre-existing content of a never-written
// line (memory has history before the measurement window; see DESIGN.md).
type BaselineFunc func(lineAddr uint64, lineBytes int) []byte

// bankState tracks what one PCM bank is doing.
type bankState struct {
	busy     bool     // array occupied (read, or write programming)
	wr       *writeOp // non-nil while a write owns the bank
	readBusy bool     // a read is using the array during a write pause
	// busyUntil is the latest cycle the bank is known to stay occupied —
	// array reads book their full latency, writes book each power phase as
	// it is scheduled. It only feeds the parallel engine's adaptive
	// speculation horizon (a write queued behind this bank cannot issue
	// before busyUntil, so its profile build can be batched that far out);
	// an underestimate is harmless — the profile is simply ready early and
	// stays cached — so the write path never has to keep it exact.
	busyUntil sim.Cycle
}

// writeOp is an in-flight line write at the bridge.
type writeOp struct {
	req      *WriteRequest
	prof     *pcm.WriteProfile
	ticket   *core.Ticket
	bank     int
	phaseEv  *sim.Event
	pauseReq bool
	paused   bool
	resuming bool // already queued on resumeOps
	started  sim.Cycle
}

// Controller is the memory controller plus DIMM bridge of Figure 1.
type Controller struct {
	eng      *sim.Engine
	cfg      *sim.Config
	sched    *core.Scheduler
	store    *pcm.Store
	builder  *pcm.Builder
	amap     *pcm.AddressMap
	mapFn    mapping.Func
	mapTab   *mapping.Table
	rot      *mapping.Rotator
	baseline BaselineFunc

	rdq   []*ReadRequest // demand reads, capacity-limited
	fillq []*ReadRequest // background fills, best-effort
	wrq   []*WriteRequest
	banks []bankState

	waitingOps []*writeOp // stalled at a phase boundary for tokens
	resumeOps  []*writeOp // paused, read done, waiting for tokens

	burst       bool
	burstStart  sim.Cycle
	burstCycles sim.Cycle

	chanBus Bus // MC <-> DIMM data channel
	dimmBus Bus // DIMM-internal bus (read-before-write traffic)

	readSpaceWaiters  []func()
	writeSpaceWaiters []func()

	scheduling bool
	rerun      bool

	// Parallel-engine speculation state (nil when the engine is
	// sequential). Each lane owns a Builder, mapping Table and store
	// Reader so prepare workers never share mutable scratch; laneRR is a
	// per-bank round-robin over the bank's chip lanes, advanced serially
	// at enqueue time so lane assignment is schedule-order deterministic.
	laneBuilders []*pcm.Builder
	laneTables   []*mapping.Table
	laneReaders  []*pcm.Reader
	laneRR       []uint32

	// Telemetry. Counters live in the hub's metrics registry; the
	// summaries/histogram stay local and are exported as gauges.
	hub          *obs.Hub
	demandReads  *obs.Counter
	fillsIssued  *obs.Counter
	fillsDropped *obs.Counter
	writesDone   *obs.Counter
	wcCancels    *obs.Counter
	wpPauses     *obs.Counter
	// Speculation-cache counters (exec scope: they describe how the
	// parallel engine executed, not what the memory model computed, so
	// they are excluded from Result.Metrics). nil — and so no-ops — on
	// the sequential engine.
	specPublished *obs.Counter
	specDropped   *obs.Counter
	specHits      *obs.Counter
	specStale     *obs.Counter
	readLatency   stats.Summary
	writeLatency  stats.Summary
	writeLatHist  *stats.Histogram // bucketed by latBucketCycles for percentiles
	cellChanges   stats.Summary
	writeEnergy   stats.Summary // pJ per line write
	lineWrites    map[uint64]uint64
	maxLineWr     uint64
}

// NewController wires the full memory subsystem for the configuration,
// including the observability hub every component registers its metrics
// into (tracing stays off until a tracer is attached via Hub().SetTracer).
func NewController(eng *sim.Engine, cfg *sim.Config, baseline BaselineFunc) *Controller {
	rng := sim.NewRNG(cfg.Seed).Derive(0xB71D6E)
	hub := obs.NewHub()
	hub.SetClock(func() uint64 { return uint64(eng.Now()) })
	c := &Controller{
		eng:          eng,
		cfg:          cfg,
		hub:          hub,
		sched:        core.NewScheduler(cfg, power.NewManager(cfg, hub), hub),
		store:        pcm.NewStore(cfg.L3LineB),
		builder:      pcm.NewBuilder(cfg, rng.Derive(1)),
		amap:         pcm.NewAddressMap(cfg.L3LineB, cfg.Banks),
		mapFn:        mapping.New(cfg.CellMapping, cfg.CellsPerLine(), cfg.Chips),
		baseline:     baseline,
		banks:        make([]bankState, cfg.Banks),
		lineWrites:   make(map[uint64]uint64),
		writeLatHist: stats.NewHistogram(latMaxBuckets),
	}
	c.mapTab = mapping.NewTable(c.mapFn, cfg.CellsPerLine(), cfg.Chips)
	// The rotator — and its Derive(2) stream — is created unconditionally so
	// the controller consumes the root RNG the same way under every policy
	// config: a warmup build (PWL pinned off) and a measurement build must
	// leave the derivation sequence aligned for checkpoint restore. PWL
	// gates the rotator's effect through ShiftEvery (0 disables rotation).
	c.rot = mapping.NewRotator(cfg.CellsPerLine(), rotShiftEvery(cfg), rng.Derive(2))
	if eng.Sharded() {
		lanes := cfg.Lanes()
		c.laneBuilders = make([]*pcm.Builder, lanes)
		c.laneTables = make([]*mapping.Table, lanes)
		c.laneReaders = make([]*pcm.Reader, lanes)
		c.laneRR = make([]uint32, cfg.Banks)
		// Per-lane RNG streams split from the seed via SplitMix64
		// (RNG.Derive). Profile iteration draws are content-seeded inside
		// Build, so lane builders produce bit-identical profiles to the
		// serial builder no matter which lane builds a write.
		laneRNG := rng.Derive(3)
		for l := 0; l < lanes; l++ {
			c.laneBuilders[l] = pcm.NewBuilder(cfg, laneRNG.Derive(uint64(l)))
			c.laneTables[l] = mapping.NewTable(c.mapFn, cfg.CellsPerLine(), cfg.Chips)
			c.laneReaders[l] = c.store.Reader()
		}
		c.specPublished = hub.ExecCounter("mem.spec.published")
		c.specDropped = hub.ExecCounter("mem.spec.dropped")
		c.specHits = hub.ExecCounter("mem.spec.hits")
		c.specStale = hub.ExecCounter("mem.spec.stale")
	}
	if baseline == nil {
		c.baseline = func(uint64, int) []byte { return nil } // all zeros
	}
	c.demandReads = hub.Counter("mem.reads.demand")
	c.fillsIssued = hub.Counter("mem.reads.fill")
	c.fillsDropped = hub.Counter("mem.reads.fill_dropped")
	c.writesDone = hub.Counter("mem.writes.done")
	c.wcCancels = hub.Counter("mem.wc.cancels")
	c.wpPauses = hub.Counter("mem.wp.pauses")
	hub.Gauge("mem.rdq.depth", func() float64 { return float64(len(c.rdq)) })
	hub.Gauge("mem.fillq.depth", func() float64 { return float64(len(c.fillq)) })
	hub.Gauge("mem.wrq.depth", func() float64 { return float64(len(c.wrq)) })
	hub.Gauge("mem.banks.busy", func() float64 {
		n := 0
		for i := range c.banks {
			if c.banks[i].busy || c.banks[i].readBusy {
				n++
			}
		}
		return float64(n)
	})
	hub.Gauge("mem.burst.active", func() float64 {
		if c.burst {
			return 1
		}
		return 0
	})
	hub.Gauge("mem.read.latency_mean", c.readLatency.Mean)
	hub.Gauge("mem.write.latency_mean", c.writeLatency.Mean)
	hub.Gauge("mem.write.latency_p50", func() float64 { p, _, _ := c.WriteLatencyPercentiles(); return p })
	hub.Gauge("mem.write.latency_p95", func() float64 { _, p, _ := c.WriteLatencyPercentiles(); return p })
	hub.Gauge("mem.write.latency_p99", func() float64 { _, _, p := c.WriteLatencyPercentiles(); return p })
	return c
}

// Store exposes the PCM content store.
func (c *Controller) Store() *pcm.Store { return c.store }

// Scheduler exposes the FPB scheduler (telemetry).
func (c *Controller) Scheduler() *core.Scheduler { return c.sched }

// Hub exposes the observability hub shared by the whole memory subsystem
// (controller, scheduler, power manager). Attach a tracer or read the
// metrics registry through it.
func (c *Controller) Hub() *obs.Hub { return c.hub }

// --- Enqueue API (called by cores) ---

// TryEnqueueRead submits a demand read; done runs when data returns. A
// false return means the read queue is full: register with WaitReadSpace.
func (c *Controller) TryEnqueueRead(addr uint64, done func()) bool {
	if len(c.rdq) >= c.cfg.ReadQueueEntries {
		return false
	}
	c.rdq = append(c.rdq, &ReadRequest{
		Addr: c.amap.LineAddr(addr), Demand: true, Done: done, enqueued: c.eng.Now(),
	})
	c.schedule()
	return true
}

// EnqueueFillRead submits a background fill read (never blocks; may drop
// under saturation).
func (c *Controller) EnqueueFillRead(addr uint64) {
	if len(c.fillq) >= maxFillQueue {
		c.fillsDropped.Inc()
		return
	}
	c.fillq = append(c.fillq, &ReadRequest{
		Addr: c.amap.LineAddr(addr), enqueued: c.eng.Now(),
	})
	c.schedule()
}

// TryEnqueueWrite submits a dirty-line writeback with its new content. A
// false return means the write queue is full (this is also the write-burst
// trigger): register with WaitWriteSpace.
func (c *Controller) TryEnqueueWrite(addr uint64, data []byte) bool {
	if len(c.wrq) >= c.cfg.WriteQueueEntries {
		c.enterBurst()
		c.schedule()
		return false
	}
	req := &WriteRequest{
		Addr: c.amap.LineAddr(addr), Data: data, enqueued: c.eng.Now(),
	}
	c.wrq = append(c.wrq, req)
	c.scheduleSpec(req)
	if len(c.wrq) >= c.cfg.WriteQueueEntries {
		c.enterBurst()
	}
	c.schedule()
	return true
}

// WaitReadSpace registers fn to run once when read-queue space frees.
func (c *Controller) WaitReadSpace(fn func()) {
	c.readSpaceWaiters = append(c.readSpaceWaiters, fn)
}

// WaitWriteSpace registers fn to run once when write-queue space frees.
func (c *Controller) WaitWriteSpace(fn func()) {
	c.writeSpaceWaiters = append(c.writeSpaceWaiters, fn)
}

// --- Burst mode ---

func (c *Controller) enterBurst() {
	if !c.burst {
		c.burst = true
		c.burstStart = c.eng.Now()
		if c.hub.Tracing() {
			c.hub.Emit(obs.Event{Kind: obs.Instant, Cat: "mem", Name: "burst.enter",
				ID: -1, V: float64(len(c.wrq))})
		}
	}
}

func (c *Controller) maybeExitBurst() {
	if c.burst && len(c.wrq) == 0 {
		c.burst = false
		c.burstCycles += c.eng.Now() - c.burstStart
		if c.hub.Tracing() {
			c.hub.Emit(obs.Event{Kind: obs.Span, Cat: "mem", Name: "burst",
				ID: -1, Dur: uint64(c.eng.Now() - c.burstStart)})
		}
	}
}

// InBurst reports whether a write burst is draining.
func (c *Controller) InBurst() bool { return c.burst }

// BurstCycles reports accumulated write-burst time (Figure 10). If a burst
// is in progress it is counted up to now.
func (c *Controller) BurstCycles() sim.Cycle {
	total := c.burstCycles
	if c.burst {
		total += c.eng.Now() - c.burstStart
	}
	return total
}

// --- Scheduling core ---

// schedule makes every issue decision currently possible. It is re-entrant
// safe: nested calls (from callbacks) set a flag and the outermost loop
// re-evaluates.
func (c *Controller) schedule() {
	if c.scheduling {
		c.rerun = true
		return
	}
	c.scheduling = true
	for {
		c.rerun = false
		c.maybeExitBurst()
		c.retryStalledWrites()
		c.resumeOrphanedPauses()
		if !c.burst {
			c.issueReads()
		}
		c.issueWrites()
		if !c.burst {
			c.issueFills()
		}
		if !c.rerun {
			break
		}
	}
	c.scheduling = false
}

// retryStalledWrites gives writes stalled at phase boundaries (Multi-RESET
// demand bumps, failed pause-resumes) priority over new issues.
func (c *Controller) retryStalledWrites() {
	keep := c.waitingOps[:0]
	for _, op := range c.waitingOps {
		if c.sched.Retry(op.ticket) {
			c.schedulePhaseEnd(op)
		} else {
			keep = append(keep, op)
		}
	}
	c.waitingOps = keep

	keepR := c.resumeOps[:0]
	for _, op := range c.resumeOps {
		if c.sched.Resume(op.ticket) {
			op.paused = false
			op.resuming = false
			c.emitResume(op)
			c.schedulePhaseEnd(op)
		} else {
			keepR = append(keepR, op)
		}
	}
	c.resumeOps = keepR
}

// emitResume traces a paused write restarting.
func (c *Controller) emitResume(op *writeOp) {
	if c.hub.Tracing() {
		c.hub.Emit(obs.Event{Kind: obs.Instant, Cat: "mem", Name: "write.resume",
			ID: op.bank, Addr: op.req.Addr})
	}
}

// resumeOrphanedPauses restarts paused writes no read is going to use: a
// burst began (reads are blocked anyway) or the pending read for their bank
// was served or went elsewhere. Without this, a pause taken just before a
// burst would strand its bank forever.
func (c *Controller) resumeOrphanedPauses() {
	for i := range c.banks {
		b := &c.banks[i]
		if b.wr == nil || !b.wr.paused || b.wr.resuming || b.readBusy {
			continue
		}
		if c.burst || !c.hasDemandReadFor(i) {
			c.tryResume(b.wr)
		}
	}
}

// hasDemandReadFor reports whether any queued demand read targets the bank.
func (c *Controller) hasDemandReadFor(bank int) bool {
	for _, req := range c.rdq {
		if c.amap.Bank(req.Addr) == bank {
			return true
		}
	}
	return false
}

// issueReads starts demand reads on available banks, applying write
// cancellation / pausing to banks busy with writes.
func (c *Controller) issueReads() {
	for i := 0; i < len(c.rdq); {
		req := c.rdq[i]
		bank := c.amap.Bank(req.Addr)
		b := &c.banks[bank]
		switch {
		case !b.busy && !b.readBusy:
			c.rdq = append(c.rdq[:i], c.rdq[i+1:]...)
			c.notifyReadSpace()
			c.startRead(bank, req, false)
			continue
		case b.wr != nil && !b.wr.paused && !b.readBusy:
			op := b.wr
			if c.canCancel(op) {
				c.cancelWrite(op)
				// Bank is free now; issue this read on the next
				// loop pass.
				c.rerun = true
				return
			}
			if c.cfg.WritePausing {
				op.pauseReq = true
			}
		case b.wr != nil && b.wr.paused && !b.readBusy:
			// Paused write: the array is free for one read.
			c.rdq = append(c.rdq[:i], c.rdq[i+1:]...)
			c.notifyReadSpace()
			c.startRead(bank, req, true)
			continue
		}
		i++
	}
}

// issueWrites starts writes per the paper's policy: writes issue when no
// demand read is pending, or unconditionally during a write burst. Hay et
// al.'s heuristic "issues writes continuously as long as power demands can
// be satisfied", so by default the scan continues past power-denied
// entries across the whole queue (this also makes sche-X — the same scan
// over an X-entry window — indistinguishable from the baseline at equal
// queue size, matching the paper's "little effect" finding).
// WriteQueueSched < 0 selects strict FIFO power order for ablation.
func (c *Controller) issueWrites() {
	if !c.burst && len(c.rdq) > 0 {
		return
	}
	window := len(c.wrq)
	if c.cfg.WriteQueueSched > 0 {
		window = c.cfg.WriteQueueSched
	}
	scanned := 0
	powerOOO := c.cfg.WriteQueueSched >= 0
	for i := 0; i < len(c.wrq) && scanned < window; {
		req := c.wrq[i]
		bank := c.amap.Bank(req.Addr)
		b := &c.banks[bank]
		if b.busy || b.readBusy || b.wr != nil {
			i++
			scanned++
			continue
		}
		prof := c.profileFor(req)
		ticket, ok := c.sched.TryStart(prof)
		if !ok {
			// Not admitted: the profile stays cached on the request and
			// is revalidated — not rebuilt — on the next attempt.
			if !powerOOO {
				break
			}
			i++
			scanned++
			continue
		}
		c.wrq = append(c.wrq[:i], c.wrq[i+1:]...)
		c.notifyWriteSpace()
		c.startWrite(bank, req, prof, ticket)
	}
}

// issueFills starts background fill reads on banks nothing else wants.
func (c *Controller) issueFills() {
	for i := 0; i < len(c.fillq); {
		req := c.fillq[i]
		bank := c.amap.Bank(req.Addr)
		b := &c.banks[bank]
		if b.busy || b.readBusy || b.wr != nil {
			i++
			continue
		}
		c.fillq = append(c.fillq[:i], c.fillq[i+1:]...)
		c.startRead(bank, req, false)
	}
}

func (c *Controller) notifyReadSpace() {
	if len(c.readSpaceWaiters) > 0 {
		fn := c.readSpaceWaiters[0]
		c.readSpaceWaiters = c.readSpaceWaiters[1:]
		fn()
	}
}

func (c *Controller) notifyWriteSpace() {
	if len(c.writeSpaceWaiters) > 0 {
		fn := c.writeSpaceWaiters[0]
		c.writeSpaceWaiters = c.writeSpaceWaiters[1:]
		fn()
	}
}

// --- Reads ---

// startRead occupies the bank for the array access, then transfers data on
// the channel and completes the request.
func (c *Controller) startRead(bank int, req *ReadRequest, duringPause bool) {
	b := &c.banks[bank]
	if duringPause {
		b.readBusy = true
	} else {
		b.busy = true
	}
	if req.Demand {
		c.demandReads.Inc()
	} else {
		c.fillsIssued.Inc()
	}
	arrayDone := c.cfg.MCToBank + c.cfg.ReadCycles()
	c.holdBank(bank, c.eng.Now()+arrayDone)
	c.eng.After(arrayDone, func() {
		if duringPause {
			b.readBusy = false
			c.tryResume(b.wr)
		} else {
			b.busy = false
		}
		start := c.chanBus.Reserve(c.eng.Now(), transferCycles(c.cfg.L3LineB))
		doneAt := start + transferCycles(c.cfg.L3LineB) + c.cfg.MCToBank
		c.eng.At(doneAt, func() {
			if req.Demand {
				c.readLatency.Add(float64(c.eng.Now() - req.enqueued))
				if c.hub.Tracing() {
					c.hub.Emit(obs.Event{Kind: obs.Span, Cat: "mem", Name: "read",
						ID: bank, Addr: req.Addr, Dur: uint64(c.eng.Now() - req.enqueued)})
				}
			}
			if req.Done != nil {
				req.Done()
			}
			c.schedule()
		})
		c.schedule()
	})
}

// --- Writes ---

// releaseProf returns a profile to the pool of the Builder that built it
// (the serial builder or a lane builder). Releases only happen on the
// serial path, so lane-builder pools are never touched concurrently with
// their prepare-phase use.
func (c *Controller) releaseProf(p *pcm.WriteProfile) {
	if p == nil {
		return
	}
	if o := p.Owner(); o != nil {
		o.Release(p)
		return
	}
	c.builder.Release(p)
}

// scheduleSpec speculatively builds the request's write profile on the
// parallel engine. The prepare runs the same pure profile construction the
// serial path would — against per-lane scratch — and the commit publishes
// the result onto the request, tagged with the content version and rotation
// offset it was built from. profileFor serves the cache only while both
// tags still hold, and a rebuild under unchanged tags is bit-identical, so
// speculation never changes results; it only moves build work off the
// serial path. Lane choice (bank-major, round-robin over the bank's chips)
// balances hot banks across lanes and is itself unobservable.
func (c *Controller) scheduleSpec(req *WriteRequest) {
	if c.laneBuilders == nil {
		return
	}
	bank := c.amap.Bank(req.Addr)
	lane := bank*c.cfg.Chips + int(c.laneRR[bank])%c.cfg.Chips
	c.laneRR[bank]++
	b, tab, rd := c.laneBuilders[lane], c.laneTables[lane], c.laneReaders[lane]
	var prof *pcm.WriteProfile
	var ver uint64
	var rot int
	req.specEv = c.eng.SpeculateAfter(lane, c.specDelay(bank), func() {
		// Prepare: reads shared state the sweep barrier froze (store
		// pages, lineWrites, rotation offsets), writes only lane scratch.
		ver = c.lineWrites[req.Addr]
		rot = c.rot.Offset(req.Addr)
		old := rd.Get(req.Addr)
		if old == nil {
			old = c.baseline(req.Addr, c.cfg.L3LineB)
		}
		mapF := tab.Select(rot, c.cfg.Chips, c.cfg.HalfStripe,
			c.amap.LineIndex(req.Addr)%2 == 1)
		prof = b.Build(req.Addr, old, req.Data, mapF, c.cfg.WriteTruncation)
	}, func() {
		// Commit (serial): publish unless the write already issued —
		// the in-flight op owns its profile and must not lose it. The
		// handle is cleared first: after this commit the event is
		// recycled, and a stale handle could cancel an innocent event.
		req.specEv = nil
		if prof == nil {
			return
		}
		if req.inflight {
			c.releaseProf(prof)
			c.specDropped.Inc()
			return
		}
		c.releaseProf(req.prof)
		req.prof, req.profVer, req.profRot = prof, ver, rot
		req.profSpec = true
		c.specPublished.Inc()
	})
}

// specTightUtil is the power-utilization threshold past which speculation
// horizons stretch further: when admission is the bottleneck, queued writes
// wait well beyond their bank's busy time, so their profile builds can be
// batched deeper without risking a build-after-need miss.
const specTightUtil = 0.85

// holdBank records that a bank stays occupied at least until the given
// cycle (monotone max; see bankState.busyUntil).
func (c *Controller) holdBank(bank int, until sim.Cycle) {
	if b := &c.banks[bank]; until > b.busyUntil {
		b.busyUntil = until
	}
}

// specDelay derives the speculation distance for a write entering bank's
// queue: how far ahead of now its profile-build lane event is scheduled.
// The floor is ShardHorizon lookaheads — the batching horizon one prepare
// sweep amortizes over. Unless ShardStaticLookahead pins it there, the
// distance adapts to when the write could actually issue: at least the
// bank's known busy time, plus — when power admission is tight — a pulse
// width per write already queued for the same bank. Any distance is
// result-safe (profiles are tag-validated and rebuilt serially when stale,
// and startWrite cancels the event if the write issues first), so an
// overestimate only wastes one speculative build; the cap just bounds how
// far lane heaps can grow.
func (c *Controller) specDelay(bank int) sim.Cycle {
	la := c.cfg.LookaheadCycles()
	h := sim.Cycle(c.cfg.ShardHorizon)
	if h == 0 {
		h = sim.DefaultShardHorizon
	}
	d := la * h
	if c.cfg.ShardStaticLookahead {
		return d
	}
	now := c.eng.Now()
	if bu := c.banks[bank].busyUntil; bu > now && bu-now > d {
		d = bu - now
	}
	if c.sched.Manager().Utilization() > specTightUtil {
		pulse := c.cfg.ResetCycles
		if c.cfg.SetCycles < pulse {
			pulse = c.cfg.SetCycles
		}
		for _, w := range c.wrq {
			if c.amap.Bank(w.Addr) == bank {
				d += pulse
			}
		}
	}
	if max := 16 * la * h; d > max {
		d = max
	}
	return d
}

// profileFor returns the write's physical profile — the bridge's
// read-before-write comparison against stored content — serving the
// request's cached (possibly speculative) profile while its content-version
// and rotation tags still match. The profile stays cached on the request
// until the write issues, so denied issue attempts stop paying for
// rebuilds: a rebuild under unchanged tags is bit-identical by construction
// (Build seeds its draws from the content hash).
func (c *Controller) profileFor(req *WriteRequest) *pcm.WriteProfile {
	ver := c.lineWrites[req.Addr]
	rot := c.rot.Offset(req.Addr)
	if req.prof != nil {
		if req.profVer == ver && req.profRot == rot {
			if req.profSpec {
				// Count each speculatively built profile at most once.
				req.profSpec = false
				c.specHits.Inc()
			}
			return req.prof
		}
		if req.profSpec {
			req.profSpec = false
			c.specStale.Inc()
		}
		c.releaseProf(req.prof)
		req.prof = nil
	}
	old := c.store.Get(req.Addr)
	if old == nil {
		old = c.baseline(req.Addr, c.cfg.L3LineB)
	}
	// The composed rotation + half-stripe variant is served from the
	// precomputed table: no closure chain, no per-attempt allocations.
	mapF := c.mapTab.Select(rot, c.cfg.Chips,
		c.cfg.HalfStripe, c.amap.LineIndex(req.Addr)%2 == 1)
	prof := c.builder.Build(req.Addr, old, req.Data, mapF, c.cfg.WriteTruncation)
	req.prof, req.profVer, req.profRot = prof, ver, rot
	return prof
}

// startWrite occupies the bank and walks the write's power plan. The
// programming start is delayed by the data transfer and, for FPB schemes,
// the read-before-write on the DIMM-internal bus (Section 3.1).
func (c *Controller) startWrite(bank int, req *WriteRequest, prof *pcm.WriteProfile, ticket *core.Ticket) {
	b := &c.banks[bank]
	b.busy = true
	req.inflight = true
	if req.specEv != nil {
		// The write beat its speculative build to the bank: the commit
		// would only be dropped, so cancel the event and skip the prepare
		// work too.
		c.eng.Cancel(req.specEv)
		req.specEv = nil
		c.specDropped.Inc()
	}
	op := &writeOp{req: req, prof: prof, ticket: ticket, bank: bank, started: c.eng.Now()}
	b.wr = op
	if c.hub.Tracing() {
		c.hub.Emit(obs.Event{Kind: obs.Instant, Cat: "mem", Name: "write.issue",
			ID: bank, Addr: req.Addr, V: float64(prof.Changed)})
		c.hub.Emit(obs.Event{Kind: obs.Meter, Cat: "mem", Name: "wrq.depth",
			ID: -1, V: float64(len(c.wrq))})
	}
	if c.rot != nil {
		c.rot.RecordWrite(req.Addr)
	}
	xfer := c.chanBus.Reserve(c.eng.Now(), transferCycles(c.cfg.L3LineB)) +
		transferCycles(c.cfg.L3LineB)
	begin := c.cfg.MCToBank + (xfer - c.eng.Now())
	if c.cfg.UsesIPM() {
		// Read-before-write: the array read proceeds inside the bank
		// the write already owns (banks read in parallel); only the
		// old data's transfer to the bridge serializes on the internal
		// DIMM bus.
		t := transferCycles(c.cfg.L3LineB)
		arrayDone := c.eng.Now() + c.cfg.MCToBank + c.cfg.ReadCycles()
		rbw := c.dimmBus.Reserve(arrayDone, t) + t - c.eng.Now()
		if rbw > begin {
			begin = rbw
		}
	}
	c.holdBank(bank, c.eng.Now()+begin)
	// Tracked via phaseEv so a cancellation arriving during the
	// pre-programming window (data transfer / read-before-write) kills
	// the write before its first pulse.
	op.phaseEv = c.eng.After(begin, func() {
		op.phaseEv = nil
		c.schedulePhaseEnd(op)
	})
}

// schedulePhaseEnd books the end-of-phase event for the op's current phase.
func (c *Controller) schedulePhaseEnd(op *writeOp) {
	c.holdBank(op.bank, c.eng.Now()+op.ticket.PhaseDuration())
	op.phaseEv = c.eng.After(op.ticket.PhaseDuration(), func() { c.phaseEnd(op) })
}

// phaseEnd advances the write at an iteration boundary.
func (c *Controller) phaseEnd(op *writeOp) {
	op.phaseEv = nil
	switch c.sched.Advance(op.ticket) {
	case core.AdvanceDone:
		c.completeWrite(op)
	case core.AdvanceNext:
		if c.hub.Tracing() {
			c.hub.Emit(obs.Event{Kind: obs.Instant, Cat: "mem", Name: "write.iter",
				ID: op.bank, Addr: op.req.Addr, V: float64(op.ticket.PhaseIndex())})
		}
		// Honor a pause request only outside bursts: during a burst
		// reads are blocked regardless, so pausing would just strand
		// the bank.
		if op.pauseReq && c.cfg.WritePausing && !c.burst {
			op.pauseReq = false
			op.paused = true
			c.sched.Pause(op.ticket)
			c.wpPauses.Inc()
			if c.hub.Tracing() {
				c.hub.Emit(obs.Event{Kind: obs.Instant, Cat: "mem", Name: "write.pause",
					ID: op.bank, Addr: op.req.Addr})
			}
			c.schedule() // lets issueReads use the paused bank
			return
		}
		op.pauseReq = false
		c.schedulePhaseEnd(op)
		// IPM shrank the allocation at this boundary; freed tokens may
		// admit queued or stalled writes right now.
		c.schedule()
	case core.AdvanceWait:
		if c.hub.Tracing() {
			c.hub.Emit(obs.Event{Kind: obs.Instant, Cat: "mem", Name: "write.stall",
				ID: op.bank, Addr: op.req.Addr})
		}
		c.waitingOps = append(c.waitingOps, op)
		c.schedule()
	}
}

// tryResume restarts a paused write after its intruding read finished (or
// was orphaned). On token shortage the op queues once on resumeOps.
func (c *Controller) tryResume(op *writeOp) {
	if op == nil || !op.paused || op.resuming {
		return
	}
	if c.sched.Resume(op.ticket) {
		op.paused = false
		c.emitResume(op)
		c.schedulePhaseEnd(op)
		return
	}
	op.resuming = true
	c.resumeOps = append(c.resumeOps, op)
}

// canCancel applies the write-cancellation policy guards.
func (c *Controller) canCancel(op *writeOp) bool {
	if !c.cfg.WriteCancellation {
		return false
	}
	if op.ticket.Progress() >= wcProgressThreshold {
		return false
	}
	if op.req.cancelled >= wcMaxCancels {
		return false
	}
	return float64(len(c.wrq)) < wcQueueWatermark*float64(c.cfg.WriteQueueEntries)
}

// cancelWrite aborts an in-flight write (write cancellation) and requeues
// it at the head of the write queue for full re-execution.
func (c *Controller) cancelWrite(op *writeOp) {
	if op.phaseEv != nil {
		c.eng.Cancel(op.phaseEv)
		op.phaseEv = nil
	}
	// A write stalled at a phase boundary must not be retried after
	// cancellation.
	for i, w := range c.waitingOps {
		if w == op {
			c.waitingOps = append(c.waitingOps[:i], c.waitingOps[i+1:]...)
			break
		}
	}
	c.sched.Cancel(op.ticket)
	b := &c.banks[op.bank]
	b.busy = false
	b.wr = nil
	b.busyUntil = c.eng.Now()
	op.req.cancelled++
	c.wcCancels.Inc()
	if c.hub.Tracing() {
		c.hub.Emit(obs.Event{Kind: obs.Instant, Cat: "mem", Name: "write.cancel",
			ID: op.bank, Addr: op.req.Addr, V: float64(op.req.cancelled)})
	}
	// Re-issue: the profile stays cached on the request (op.prof and
	// req.prof are the same object, still tagged with its build-time
	// version and offset), so if neither the line content nor its
	// rotation changed before the retry, the rebuild is skipped — a
	// rebuild under unchanged tags would be bit-identical anyway.
	op.prof = nil
	op.req.inflight = false
	c.wrq = append([]*WriteRequest{op.req}, c.wrq...)
}

// completeWrite commits the new content and frees the bank.
func (c *Controller) completeWrite(op *writeOp) {
	c.store.Update(op.req.Addr, op.req.Data)
	c.writesDone.Inc()
	lat := c.eng.Now() - op.req.enqueued
	c.writeLatency.Add(float64(lat))
	c.writeLatHist.Add(int(lat / latBucketCycles))
	if c.hub.Tracing() {
		c.hub.Emit(obs.Event{Kind: obs.Span, Cat: "mem", Name: "write",
			ID: op.bank, Addr: op.req.Addr, V: float64(op.prof.Changed),
			Dur: uint64(c.eng.Now() - op.started)})
		if op.prof.Truncated > 0 {
			c.hub.Emit(obs.Event{Kind: obs.Instant, Cat: "mem", Name: "write.truncate",
				ID: op.bank, Addr: op.req.Addr, V: float64(op.prof.Truncated)})
		}
	}
	c.cellChanges.Add(float64(op.prof.Changed))
	c.writeEnergy.Add(op.prof.WriteEnergyPJ(c.cfg))
	c.releaseProf(op.prof)
	op.prof = nil
	op.req.prof = nil // same object as op.prof; already released
	op.req.inflight = false
	c.lineWrites[op.req.Addr]++
	if n := c.lineWrites[op.req.Addr]; n > c.maxLineWr {
		c.maxLineWr = n
	}
	b := &c.banks[op.bank]
	b.busy = false
	b.wr = nil
	c.schedule()
}

// --- Telemetry ---

// Counts reports completed demand reads, issued fill reads, dropped fills,
// completed writes, WC cancellations and WP pauses.
func (c *Controller) Counts() (reads, fills, dropped, writes, cancels, pauses uint64) {
	return c.demandReads.Value(), c.fillsIssued.Value(), c.fillsDropped.Value(),
		c.writesDone.Value(), c.wcCancels.Value(), c.wpPauses.Value()
}

// ReadLatency returns the demand-read latency summary (cycles).
func (c *Controller) ReadLatency() *stats.Summary { return &c.readLatency }

// WriteLatency returns the write enqueue-to-completion latency summary.
func (c *Controller) WriteLatency() *stats.Summary { return &c.writeLatency }

// WriteLatencyPercentiles reports the P50/P95/P99 write enqueue-to-
// completion latency in cycles, quantized to latBucketCycles.
func (c *Controller) WriteLatencyPercentiles() (p50, p95, p99 float64) {
	h := c.writeLatHist
	return float64(h.P50() * latBucketCycles),
		float64(h.P95() * latBucketCycles),
		float64(h.P99() * latBucketCycles)
}

// CellChanges returns the per-write changed-cell summary (Figure 2).
func (c *Controller) CellChanges() *stats.Summary { return &c.cellChanges }

// WriteEnergy returns the per-write programming-energy summary (pJ).
func (c *Controller) WriteEnergy() *stats.Summary { return &c.writeEnergy }

// Endurance reports wear telemetry: distinct lines written and the write
// count of the most-written line (the hot-line figure intra-line wear
// leveling targets).
func (c *Controller) Endurance() (distinctLines int, maxWrites uint64) {
	return len(c.lineWrites), c.maxLineWr
}

// QueueDepths reports current queue occupancies.
func (c *Controller) QueueDepths() (rdq, fillq, wrq int) {
	return len(c.rdq), len(c.fillq), len(c.wrq)
}

// Drained reports whether no work remains anywhere in the subsystem.
func (c *Controller) Drained() bool {
	if len(c.rdq)+len(c.fillq)+len(c.wrq)+len(c.waitingOps)+len(c.resumeOps) > 0 {
		return false
	}
	for i := range c.banks {
		if c.banks[i].busy || c.banks[i].readBusy || c.banks[i].wr != nil {
			return false
		}
	}
	return true
}
