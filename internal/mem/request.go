package mem

import "fpb/internal/sim"

// ReadRequest is a PCM line read. Demand reads carry a completion callback
// that unblocks the waiting core; fill reads (read-for-ownership of
// writeback-allocated L3 lines) have no waiter and only consume bandwidth.
type ReadRequest struct {
	Addr     uint64 // line-aligned
	Demand   bool
	Done     func() // invoked when data reaches the requester; may be nil
	enqueued sim.Cycle
}

// WriteRequest is a dirty line writeback to PCM, carrying the new content.
type WriteRequest struct {
	Addr     uint64 // line-aligned
	Data     []byte
	enqueued sim.Cycle
	// cancelled counts how many times write cancellation restarted this
	// request (telemetry; the paper's WC re-executes writes in full).
	cancelled int
}
