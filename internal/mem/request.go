package mem

import (
	"fpb/internal/pcm"
	"fpb/internal/sim"
)

// ReadRequest is a PCM line read. Demand reads carry a completion callback
// that unblocks the waiting core; fill reads (read-for-ownership of
// writeback-allocated L3 lines) have no waiter and only consume bandwidth.
type ReadRequest struct {
	Addr     uint64 // line-aligned
	Demand   bool
	Done     func() // invoked when data reaches the requester; may be nil
	enqueued sim.Cycle
}

// WriteRequest is a dirty line writeback to PCM, carrying the new content.
type WriteRequest struct {
	Addr     uint64 // line-aligned
	Data     []byte
	enqueued sim.Cycle
	// cancelled counts how many times write cancellation restarted this
	// request (telemetry; the paper's WC re-executes writes in full).
	cancelled int

	// prof caches the request's write profile across issue attempts (and
	// receives speculatively built profiles under the parallel engine). A
	// profile is a pure function of (line address, stored content, new
	// data, rotation offset), so it is validated by the stored-content
	// version and offset it was built against: while both are unchanged a
	// rebuild would produce an identical profile, and the cache serves it
	// without re-diffing the line.
	prof    *pcm.WriteProfile
	profVer uint64 // lineWrites[Addr] the profile was built against
	profRot int    // rotation offset the profile was built against
	// profSpec marks prof as speculatively built (published by a lane
	// commit); profileFor clears it on first use so the speculation
	// hit-rate counters see each profile once.
	profSpec bool
	// inflight marks the request as issued to a bank: a speculative
	// profile arriving now would be useless (the op owns its profile) and
	// is dropped instead of published.
	inflight bool
	// specEv is the pending speculative-build lane event, if any. The
	// handle is valid only while the event is pending: the commit clears
	// it before doing anything else, and startWrite cancels it (a profile
	// landing after issue would be dropped anyway, so the prepare work is
	// saved too).
	specEv *sim.Event
}
