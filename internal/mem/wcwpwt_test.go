package mem

import (
	"testing"

	"fpb/internal/sim"
)

// TestPauseRequestedBeforeBurstDoesNotStrandBank reproduces the deadlock
// found during bring-up: a write receives a pause request, the queue then
// fills and a burst begins before the pause is taken; the paused bank's
// read can never issue (bursts block reads), so the pause must either be
// suppressed or the write resumed.
func TestPauseRequestedBeforeBurstDoesNotStrandBank(t *testing.T) {
	eng, c, cfg := newCtl(t, sim.SchemeGCPIPM, func(cfg *sim.Config) {
		cfg.WritePausing = true
		cfg.WriteQueueEntries = 2
	})
	// Long write starts on bank 0.
	c.TryEnqueueWrite(0, mkLine(cfg, 250))
	eng.RunUntil(eng.Now() + 3000)
	// A read to bank 0 requests a pause.
	readDone := false
	c.TryEnqueueRead(0, func() { readDone = true })
	// The write queue fills immediately afterwards → burst.
	bankStride := uint64(cfg.Banks * cfg.L3LineB)
	accepted := uint64(1) // the long write
	for i := uint64(1); i <= 3; i++ {
		if c.TryEnqueueWrite(i*bankStride, mkLine(cfg, 100)) {
			accepted++
		}
	}
	if !c.InBurst() {
		t.Fatal("setup: burst did not trigger")
	}
	eng.Run(0)
	if !readDone {
		t.Fatal("read stranded: pause/burst interaction deadlocked the bank")
	}
	if !c.Drained() {
		t.Fatal("controller not drained")
	}
	_, _, _, writes, _, _ := c.Counts()
	if writes != accepted {
		t.Errorf("writes done = %d, want %d", writes, accepted)
	}
}

// TestWCDisabledAtQueueWatermark: with a nearly full write queue the
// controller must stop cancelling (cancelling would only hasten a burst).
func TestWCDisabledAtQueueWatermark(t *testing.T) {
	eng, c, cfg := newCtl(t, sim.SchemeIdeal, func(cfg *sim.Config) {
		cfg.WriteCancellation = true
		cfg.WriteQueueEntries = 10
	})
	// Start a long write, then stuff the queue past the 80% watermark.
	c.TryEnqueueWrite(0, mkLine(cfg, 250))
	eng.RunUntil(eng.Now() + 2000)
	bankStride := uint64(cfg.Banks * cfg.L3LineB)
	for i := uint64(1); i <= 9; i++ {
		c.TryEnqueueWrite(i*bankStride, mkLine(cfg, 100))
	}
	c.TryEnqueueRead(0, nil) // same bank as the long write
	eng.RunUntil(eng.Now() + 100)
	_, _, _, _, cancels, _ := c.Counts()
	if cancels != 0 {
		t.Errorf("cancelled %d writes above the queue watermark", cancels)
	}
	eng.Run(0)
}

// TestWCMaxCancelsBound: a write can be cancelled at most wcMaxCancels
// times, then it runs to completion even under a steady read stream.
func TestWCMaxCancelsBound(t *testing.T) {
	eng, c, cfg := newCtl(t, sim.SchemeIdeal, func(cfg *sim.Config) {
		cfg.WriteCancellation = true
		cfg.WriteQueueEntries = 64
		cfg.ReadQueueEntries = 64
	})
	c.TryEnqueueWrite(0, mkLine(cfg, 250))
	// Pound bank 0 with reads for a long time.
	var issue func()
	issued := 0
	issue = func() {
		if issued >= 40 {
			return
		}
		issued++
		c.TryEnqueueRead(0, func() { issue() })
	}
	eng.RunUntil(eng.Now() + 1000)
	issue()
	eng.Run(0)
	_, _, _, writes, cancels, _ := c.Counts()
	if writes != 1 {
		t.Fatalf("write never completed under read pressure (cancels=%d)", cancels)
	}
	if cancels > wcMaxCancels {
		t.Errorf("cancels = %d, bound is %d", cancels, wcMaxCancels)
	}
}

// TestMultiRoundWriteCompletes: a write whose single-chip demand exceeds
// the LCP capacity must execute as two rounds and still complete.
func TestMultiRoundWriteCompletes(t *testing.T) {
	eng, c, cfg := newCtl(t, sim.SchemeDIMMChip, nil)
	// All-0xFF over the whole line: ~1024 changed cells, 128 per chip
	// under the naive mapping → beyond the 66.5-token LCP.
	data := make([]byte, cfg.L3LineB)
	for i := range data {
		data[i] = 0xFF
	}
	if !c.TryEnqueueWrite(0, data) {
		t.Fatal("write rejected")
	}
	eng.Run(0)
	_, _, _, writes, _, _ := c.Counts()
	if writes != 1 {
		t.Fatal("multi-round write never completed")
	}
	_, _, _, rounds, _, _ := c.Scheduler().Stats()
	if rounds == 0 {
		t.Error("multi-round path not taken for an over-capacity write")
	}
}

// TestWriteTruncationShortensWrites: with WT on, completed writes must be
// faster on average than without, for identical content.
func TestWriteTruncationShortensWrites(t *testing.T) {
	run := func(wt bool) float64 {
		eng, c, cfg := newCtl(t, sim.SchemeGCPIPM, func(cfg *sim.Config) {
			cfg.WriteTruncation = wt
			cfg.TruncateTailCells = 16
		})
		bankStride := uint64(cfg.Banks * cfg.L3LineB)
		for i := uint64(0); i < 8; i++ {
			c.TryEnqueueWrite(i*bankStride, mkLine(cfg, 200))
		}
		eng.Run(0)
		return c.WriteLatency().Mean()
	}
	plain := run(false)
	trunc := run(true)
	if trunc >= plain {
		t.Errorf("WT latency %.0f not below plain %.0f", trunc, plain)
	}
}
