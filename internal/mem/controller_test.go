package mem

import (
	"testing"

	"fpb/internal/sim"
)

// testConfig returns a configuration tuned for controller unit tests:
// moderate queues, deterministic seed.
func testConfig(scheme sim.Scheme) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scheme = scheme
	cfg.ReadQueueEntries = 4
	cfg.WriteQueueEntries = 4
	return cfg
}

// mkLine builds a line whose first n bytes differ from the baseline (zero).
func mkLine(cfg *sim.Config, n int) []byte {
	data := make([]byte, cfg.L3LineB)
	for i := 0; i < n && i < len(data); i++ {
		data[i] = 0xA5
	}
	return data
}

func newCtl(t *testing.T, scheme sim.Scheme, mutate func(*sim.Config)) (*sim.Engine, *Controller, *sim.Config) {
	t.Helper()
	cfg := testConfig(scheme)
	if mutate != nil {
		mutate(&cfg)
	}
	eng := sim.NewEngine()
	// nil baseline: untouched lines read as all zeros.
	return eng, NewController(eng, &cfg, nil), &cfg
}

func TestReadCompletesWithCallback(t *testing.T) {
	eng, c, cfg := newCtl(t, sim.SchemeIdeal, nil)
	done := false
	if !c.TryEnqueueRead(0x1234, func() { done = true }) {
		t.Fatal("read not accepted by empty queue")
	}
	eng.Run(0)
	if !done {
		t.Fatal("read callback never fired")
	}
	reads, _, _, _, _, _ := c.Counts()
	if reads != 1 {
		t.Errorf("demand reads = %d", reads)
	}
	// Latency: MCToBank + array + transfer + MCToBank.
	wantMin := float64(cfg.MCToBank + cfg.PCMReadCycles + cfg.MCToBank)
	if got := c.ReadLatency().Mean(); got < wantMin {
		t.Errorf("read latency %g below physical minimum %g", got, wantMin)
	}
}

func TestReadQueueCapacity(t *testing.T) {
	_, c, cfg := newCtl(t, sim.SchemeIdeal, nil)
	accepted := 0
	for i := 0; i < cfg.ReadQueueEntries+3; i++ {
		// All to the same bank so nothing issues... reads issue
		// immediately on idle banks; use distinct addresses on one
		// bank via stride banks*lineB.
		addr := uint64(i) * uint64(cfg.Banks) * uint64(cfg.L3LineB)
		if c.TryEnqueueRead(addr, nil) {
			accepted++
		}
	}
	// One read issues immediately (bank idle), so capacity+1 fit before
	// rejection.
	if accepted > cfg.ReadQueueEntries+1 {
		t.Errorf("accepted %d reads, queue cap %d", accepted, cfg.ReadQueueEntries)
	}
	if accepted == cfg.ReadQueueEntries+3 {
		t.Error("queue never filled")
	}
}

func TestWriteCompletesAndStores(t *testing.T) {
	eng, c, cfg := newCtl(t, sim.SchemeIdeal, nil)
	data := mkLine(cfg, 32)
	if !c.TryEnqueueWrite(0x100, data) {
		t.Fatal("write not accepted")
	}
	eng.Run(0)
	_, _, _, writes, _, _ := c.Counts()
	if writes != 1 {
		t.Fatalf("writes done = %d", writes)
	}
	got := c.Store().Get(c.amap.LineAddr(0x100))
	if got == nil || got[0] != 0xA5 {
		t.Error("store content not committed")
	}
	if c.CellChanges().N() != 1 || c.CellChanges().Mean() == 0 {
		t.Error("cell-change telemetry missing")
	}
	if !c.Drained() {
		t.Error("controller not drained after completion")
	}
}

func TestWriteBurstTriggersAndDrains(t *testing.T) {
	eng, c, cfg := newCtl(t, sim.SchemeIdeal, nil)
	// Keep every bank busy with reads so writes pile up; then fill WRQ.
	for b := 0; b < cfg.Banks; b++ {
		c.TryEnqueueRead(uint64(b)*uint64(cfg.L3LineB), nil)
	}
	for i := 0; i < cfg.WriteQueueEntries; i++ {
		if !c.TryEnqueueWrite(uint64(0x10000+i*cfg.L3LineB), mkLine(cfg, 8)) {
			t.Fatalf("write %d rejected before queue full", i)
		}
	}
	if !c.InBurst() {
		t.Fatal("full write queue did not trigger a burst")
	}
	if c.TryEnqueueWrite(0x999000, mkLine(cfg, 8)) {
		t.Fatal("write accepted past capacity")
	}
	eng.Run(0)
	if c.InBurst() {
		t.Error("burst did not end after drain")
	}
	if c.BurstCycles() == 0 {
		t.Error("burst cycles not accounted")
	}
	_, _, _, writes, _, _ := c.Counts()
	if writes != uint64(cfg.WriteQueueEntries) {
		t.Errorf("writes done = %d, want %d", writes, cfg.WriteQueueEntries)
	}
}

func TestReadsBlockedDuringBurst(t *testing.T) {
	eng, c, cfg := newCtl(t, sim.SchemeIdeal, nil)
	// Fill the write queue to trigger a burst; writes to one bank so the
	// burst lasts a while.
	// The first write issues immediately (its bank is idle), so it takes
	// capacity+1 enqueues to fill the queue and trigger the burst.
	for i := 0; i <= cfg.WriteQueueEntries; i++ {
		c.TryEnqueueWrite(uint64(i)*uint64(cfg.Banks)*uint64(cfg.L3LineB), mkLine(cfg, 200))
	}
	if !c.InBurst() {
		t.Fatal("no burst")
	}
	readDoneAt := sim.Cycle(0)
	c.TryEnqueueRead(uint64(3)*uint64(cfg.L3LineB), func() { readDoneAt = eng.Now() })
	// The read's bank (3) is idle, but burst blocks it until the write
	// queue drains.
	var burstEnd sim.Cycle
	for eng.Step() {
		if !c.InBurst() && burstEnd == 0 {
			burstEnd = eng.Now()
		}
	}
	if readDoneAt == 0 {
		t.Fatal("read never completed")
	}
	if burstEnd == 0 || readDoneAt < burstEnd {
		t.Errorf("read completed at %d, before burst end %d", readDoneAt, burstEnd)
	}
}

func TestWritesWaitForReads(t *testing.T) {
	eng, c, cfg := newCtl(t, sim.SchemeIdeal, nil)
	// Bank 0 is busy with read A; a write and read B queue behind it.
	// When the bank frees, the reads-first policy must issue B before
	// the write.
	bankStride := uint64(cfg.Banks * cfg.L3LineB)
	var readBAt, writeAt sim.Cycle
	c.TryEnqueueRead(0, nil)                                       // A: issues immediately
	c.TryEnqueueWrite(bankStride, mkLine(cfg, 100))                // W: same bank, queued
	c.TryEnqueueRead(2*bankStride, func() { readBAt = eng.Now() }) // B: same bank, queued
	for eng.Step() {
		_, _, _, writes, _, _ := c.Counts()
		if writes == 1 && writeAt == 0 {
			writeAt = eng.Now()
		}
	}
	if readBAt == 0 || writeAt == 0 {
		t.Fatal("read or write never completed")
	}
	if writeAt < readBAt {
		t.Errorf("write completed at %d before queued read at %d (reads-first violated)",
			writeAt, readBAt)
	}
}

func TestWritePausingServesRead(t *testing.T) {
	eng, c, cfg := newCtl(t, sim.SchemeIdeal, func(cfg *sim.Config) {
		cfg.WritePausing = true
		cfg.Scheme = sim.SchemeGCPIPM // iteration boundaries exist
	})
	// Long write on bank 0.
	c.TryEnqueueWrite(0, mkLine(cfg, 250))
	// Let the write start.
	eng.RunUntil(eng.Now() + 3000)
	readDone := false
	c.TryEnqueueRead(uint64(cfg.Banks*cfg.L3LineB), nil) // other bank
	c.TryEnqueueRead(0, func() { readDone = true })      // same bank → pause
	eng.Run(0)
	if !readDone {
		t.Fatal("read to writing bank never completed")
	}
	_, _, _, writes, _, pauses := c.Counts()
	if writes != 1 {
		t.Errorf("write lost: %d done", writes)
	}
	if pauses == 0 {
		t.Error("no pause recorded despite WP enabled")
	}
}

func TestWriteCancellationRestartsWrite(t *testing.T) {
	eng, c, cfg := newCtl(t, sim.SchemeIdeal, func(cfg *sim.Config) {
		cfg.WriteCancellation = true
	})
	c.TryEnqueueWrite(0, mkLine(cfg, 250))
	// Give the write a head start but stay below the 75% progress bar
	// (per-write plans have a single phase, progress 0 until done).
	eng.RunUntil(eng.Now() + 2000)
	readDone := false
	c.TryEnqueueRead(0, func() { readDone = true })
	eng.Run(0)
	if !readDone {
		t.Fatal("read never completed")
	}
	_, _, _, writes, cancels, _ := c.Counts()
	if cancels == 0 {
		t.Error("no cancellation recorded")
	}
	if writes != 1 {
		t.Errorf("cancelled write never re-executed: %d done", writes)
	}
}

func TestSche48ScansPastPowerDenied(t *testing.T) {
	// Two writes: the head demands more tokens than remain, the second
	// fits. Without sche-X the second stalls behind the first; with it,
	// the second issues out of order.
	mk := func(ooo int) (done2 sim.Cycle, done1 sim.Cycle) {
		eng, c, cfg := newCtl(t, sim.SchemeDIMMOnly, func(cfg *sim.Config) {
			cfg.DIMMTokens = 300
			cfg.WriteQueueEntries = 8
			cfg.WriteQueueSched = ooo
		})
		// Occupy 200 tokens with a long write on bank 0.
		c.TryEnqueueWrite(0, mkLine(cfg, 50)) // ~200 cells changed
		eng.RunUntil(10)
		// Head write wants ~800 cells (too much: multi-round still
		// needs 300... mkLine(cfg,250) changes ~1000 cells → 2 rounds
		// of 500 > 300 available→ wait). Second write is small.
		c.TryEnqueueWrite(uint64(cfg.L3LineB), mkLine(cfg, 250))
		c.TryEnqueueWrite(uint64(2*cfg.L3LineB), mkLine(cfg, 4))
		var t1, t2 sim.Cycle
		prev := uint64(0)
		for eng.Step() {
			_, _, _, writes, _, _ := c.Counts()
			if writes > prev {
				prev = writes
				switch writes {
				case 2:
					t1 = eng.Now()
				case 3:
					t2 = eng.Now()
				}
			}
		}
		return t2, t1
	}
	// The small write is the 2nd completion in both cases (the blocked
	// head is a long multi-round write); out-of-order power scheduling
	// (the default, WriteQueueSched >= 0) must finish it sooner than the
	// strict-FIFO ablation mode (-1).
	_, smallOOO := mk(48)
	_, smallFIFO := mk(-1)
	if smallOOO == 0 || smallFIFO == 0 {
		t.Fatal("writes did not complete")
	}
	if smallOOO >= smallFIFO {
		t.Errorf("sche-48 did not reorder: small write at %d (ooo) vs %d (fifo)",
			smallOOO, smallFIFO)
	}
}

func TestFillReadsAreBestEffort(t *testing.T) {
	eng, c, _ := newCtl(t, sim.SchemeIdeal, nil)
	for i := 0; i < maxFillQueue+10; i++ {
		c.EnqueueFillRead(uint64(i * 256 * 8)) // same bank
	}
	_, _, dropped, _, _, _ := c.Counts()
	if dropped == 0 {
		t.Error("fill queue never dropped under saturation")
	}
	eng.Run(0)
	if !c.Drained() {
		t.Error("fills not drained")
	}
}

func TestWaitersNotified(t *testing.T) {
	eng, c, cfg := newCtl(t, sim.SchemeIdeal, nil)
	// Saturate write queue.
	for i := 0; c.TryEnqueueWrite(uint64(i*cfg.L3LineB), mkLine(cfg, 8)); i++ {
	}
	notified := false
	c.WaitWriteSpace(func() {
		notified = true
		if !c.TryEnqueueWrite(0xABC00, mkLine(cfg, 8)) {
			t.Error("waiter found no space")
		}
	})
	eng.Run(0)
	if !notified {
		t.Error("write-space waiter never notified")
	}
}

func TestPWLRotatorEngaged(t *testing.T) {
	eng, c, cfg := newCtl(t, sim.SchemeDIMMChip, func(cfg *sim.Config) {
		cfg.PWL = true
		cfg.PWLShiftWrites = 2
	})
	if c.rot == nil {
		t.Fatal("PWL rotator not constructed")
	}
	for i := 0; i < 6; i++ {
		c.TryEnqueueWrite(0, mkLine(cfg, 64))
		eng.Run(0)
	}
	_, _, _, writes, _, _ := c.Counts()
	if writes != 6 {
		t.Errorf("writes = %d, want 6", writes)
	}
}

func TestBusSerializes(t *testing.T) {
	var b Bus
	s1 := b.Reserve(100, 32)
	s2 := b.Reserve(100, 32)
	if s1 != 100 || s2 != 132 {
		t.Errorf("reservations at %d and %d, want 100 and 132", s1, s2)
	}
	if b.FreeAt() != 164 {
		t.Errorf("FreeAt = %d", b.FreeAt())
	}
	if b.BusyCycles() != 64 {
		t.Errorf("BusyCycles = %d", b.BusyCycles())
	}
	// Reservation after the bus is idle again starts immediately.
	if s3 := b.Reserve(500, 10); s3 != 500 {
		t.Errorf("idle reservation at %d", s3)
	}
}

func TestTransferCycles(t *testing.T) {
	if transferCycles(256) != 32 {
		t.Errorf("256B transfer = %d cycles, want 32", transferCycles(256))
	}
	if transferCycles(4) != 1 {
		t.Error("sub-width transfer must cost at least 1 cycle")
	}
}
