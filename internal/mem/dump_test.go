package mem

import (
	"testing"

	"fpb/internal/sim"
)

// TestDumpStateDoesNotPanic exercises the deadlock-diagnostic dump across
// interesting controller states.
func TestDumpStateDoesNotPanic(t *testing.T) {
	eng, c, cfg := newCtl(t, sim.SchemeGCPIPM, nil)
	c.DumpState() // idle
	c.TryEnqueueWrite(0, mkLine(cfg, 200))
	c.TryEnqueueRead(uint64(cfg.L3LineB), nil)
	eng.RunUntil(eng.Now() + 2000)
	c.DumpState() // mid-flight
	eng.Run(0)
	c.DumpState() // drained
}
