package mem

import "fmt"

// DumpState prints internal queue/bank state for deadlock debugging.
func (c *Controller) DumpState() {
	fmt.Printf("burst=%v rdq=%d fillq=%d wrq=%d waiting=%d resume=%d\n",
		c.burst, len(c.rdq), len(c.fillq), len(c.wrq), len(c.waitingOps), len(c.resumeOps))
	for i := range c.banks {
		b := &c.banks[i]
		st := "idle"
		if b.busy {
			st = "busy"
		}
		if b.readBusy {
			st += "+read"
		}
		if b.wr != nil {
			st += fmt.Sprintf(" wr(phase=%d paused=%v waiting=%v pauseReq=%v ev=%v cancelled=%d)",
				b.wr.ticket.PhaseIndex(), b.wr.paused, b.wr.ticket.Waiting(), b.wr.pauseReq, b.wr.phaseEv.Scheduled(), b.wr.req.cancelled)
		}
		fmt.Printf("bank %d: %s\n", i, st)
	}
	mgr := c.sched.Manager()
	fmt.Printf("DIMM avail=%.1f gcpInUse=%.1f\n", mgr.DIMMAvailable(), mgr.GCPInUse())
	for i := 0; i < c.cfg.Chips; i++ {
		fmt.Printf("chip %d avail=%.2f  ", i, mgr.ChipAvailable(i))
	}
	fmt.Println()
	fmt.Printf("readSpaceWaiters=%d writeSpaceWaiters=%d\n", len(c.readSpaceWaiters), len(c.writeSpaceWaiters))
}
