package workload

import (
	"encoding/binary"

	"fpb/internal/sim"
)

// Mutator synthesizes the new content of a memory line at writeback time,
// according to a benchmark's value class. It stands in for the actual data
// values a real trace would carry; the distributions are chosen so that
// differential writes change the number and position of MLC cells the paper
// reports (Fig. 2) — integer programs churn low-order bits, FP programs
// churn mantissas, and stream kernels replace most of the line.
type Mutator struct {
	class ValueClass
	rng   *sim.RNG
}

// NewMutator builds a mutator drawing from rng.
func NewMutator(class ValueClass, rng *sim.RNG) *Mutator {
	return &Mutator{class: class, rng: rng}
}

// Class reports the mutator's value class.
func (m *Mutator) Class() ValueClass { return m.class }

// Mutation intensity parameters. They were tuned once against Fig. 2's
// cell-change census (≈100–500 changed cells per 256 B MLC line depending
// on workload) and are deliberately constants, not knobs.
const (
	intWordTouchP   = 0.55 // fraction of 32-bit words updated per writeback
	intFreshValueP  = 0.10 // updated words that get a whole new value
	fpWordTouchP    = 0.55 // fraction of 64-bit doubles updated
	fpMantissaBits  = 24   // low mantissa bits rewritten per touched double
	fpHighChurnP    = 0.15 // updated doubles whose exponent/high bits move
	byteTouchP      = 0.30 // fraction of bytes replaced
	streamReplaceP  = 0.35 // fraction of 32-bit blocks replaced wholesale
	maxIntDeltaBits = 10   // small-delta magnitude bound (lower-order churn)
)

// Next computes the line's next content. old may be nil (an untouched,
// all-zero line); the result is always a fresh slice of length lineBytes.
func (m *Mutator) Next(old []byte, lineBytes int) []byte {
	out := make([]byte, lineBytes)
	copy(out, old)
	switch m.class {
	case ValueInt:
		m.mutateInt(out)
	case ValueFP:
		m.mutateFP(out)
	case ValueByte:
		m.mutateByte(out)
	default:
		m.mutateStream(out)
	}
	return out
}

// intFieldWeight models record-structured integer data: a memory line
// holds a line-aligned record whose leading fields (counters, sizes, link
// pointers) are updated far more often than the tail. The weights average
// ~1 over the line so total churn matches intWordTouchP; the *positional*
// concentration at the line head is what makes one chip hot under the
// naive mapping — the exact Fig. 3 pathology FPB-GCP targets, and which
// VIM/BIM dissolve by interleaving.
func intFieldWeight(wordIdx, wordsPerLine int) float64 {
	switch {
	case wordIdx < 8:
		return 1.7 // hot leading fields
	case wordIdx < 16:
		return 1.1
	default:
		return 0.86
	}
}

// mutateInt adds small deltas to 32-bit words: the "lower order bits within
// a data block are more likely to be changed" behaviour [Zhou et al.] that
// intra-line wear leveling and BIM exploit, with head-of-record positional
// concentration (intFieldWeight) creating the hot chips of Fig. 3.
func (m *Mutator) mutateInt(line []byte) {
	words := len(line) / 4
	for off := 0; off+4 <= len(line); off += 4 {
		p := intWordTouchP * intFieldWeight(off/4, words)
		if !m.rng.Bernoulli(p) {
			continue
		}
		w := binary.LittleEndian.Uint32(line[off:])
		if m.rng.Bernoulli(intFreshValueP) {
			w = uint32(m.rng.Uint64())
		} else {
			delta := uint32(m.rng.Uint64n(1<<maxIntDeltaBits)) + 1
			if m.rng.Bernoulli(0.5) {
				w += delta
			} else {
				w -= delta
			}
		}
		binary.LittleEndian.PutUint32(line[off:], w)
	}
}

// mutateFP rewrites low mantissa bits of 64-bit doubles; exponent and sign
// move rarely. The per-double churn is bounded (fpMantissaBits) so a single
// double does not light up a whole chip segment under the naive mapping —
// matching the paper's observation that per-chip demand fluctuation stays
// below 2x on average (Section 2.2).
func (m *Mutator) mutateFP(line []byte) {
	const mask = (uint64(1) << fpMantissaBits) - 1
	for off := 0; off+8 <= len(line); off += 8 {
		if !m.rng.Bernoulli(fpWordTouchP) {
			continue
		}
		w := binary.LittleEndian.Uint64(line[off:])
		w = (w &^ mask) | (m.rng.Uint64() & mask)
		if m.rng.Bernoulli(fpHighChurnP) {
			// Occasionally the value scale moves: churn some high
			// mantissa/exponent bits too.
			w ^= (m.rng.Uint64() & 0xFFFFF) << 32
		}
		binary.LittleEndian.PutUint64(line[off:], w)
	}
}

// mutateByte replaces scattered bytes (string/sequence data).
func (m *Mutator) mutateByte(line []byte) {
	for i := range line {
		if m.rng.Bernoulli(byteTouchP) {
			line[i] = byte(m.rng.Uint64())
		}
	}
}

// mutateStream replaces 32-bit blocks: bulk copies bring in unrelated
// data. Block-granular replacement keeps the per-chip demand spikes of
// contiguous rewrites bounded under the naive mapping.
func (m *Mutator) mutateStream(line []byte) {
	for off := 0; off+4 <= len(line); off += 4 {
		if m.rng.Bernoulli(streamReplaceP) {
			binary.LittleEndian.PutUint32(line[off:], uint32(m.rng.Uint64()))
		}
	}
}

// BaselineContent deterministically synthesizes the pre-existing content of
// a line that has never been written during the measurement window. Real
// memory has history — diffing a write against all-zero content would
// understate (or oddly shape) cell changes for every first-lap write, so
// the bridge and the cores both treat untouched lines as holding this
// address-seeded pseudo-random data instead. The function is pure: the same
// line address always yields the same bytes.
func BaselineContent(lineAddr uint64, lineBytes int) []byte {
	rng := sim.NewRNG(lineAddr*0x9E3779B97F4A7C15 + 0x5851F42D4C957F2D)
	out := make([]byte, lineBytes)
	for off := 0; off+8 <= lineBytes; off += 8 {
		binary.LittleEndian.PutUint64(out[off:], rng.Uint64())
	}
	return out
}
