package workload

import (
	"testing"

	"fpb/internal/sim"
)

// TestFootprintSemantics: non-STREAM benchmarks have a fixed 64MB working
// set per stream; STREAM kernels scale with the LLC (DESIGN.md §6).
func TestFootprintSemantics(t *testing.T) {
	for _, llcMB := range []int{8, 32, 128} {
		cfg := sim.DefaultConfig()
		cfg.L3SizeMB = llcMB
		intGen := NewGenerator(profMcf, &cfg, 0, sim.NewRNG(1))
		strGen := NewGenerator(profCopy, &cfg, 0, sim.NewRNG(1))

		wantFixed := uint64(fixedFootprintBytes / cfg.L3LineB)
		if got := intGen.SpanLines(); got != wantFixed {
			t.Errorf("LLC %dMB: int span = %d lines, want fixed %d", llcMB, got, wantFixed)
		}
		wantScaled := uint64(llcMB) * 1024 * 1024 / uint64(cfg.L3LineB) * 2
		if got := strGen.SpanLines(); got != wantScaled {
			t.Errorf("LLC %dMB: stream span = %d lines, want scaled %d", llcMB, got, wantScaled)
		}
	}
}

// TestLineScaleSublinear: at 64B lines the stream rate doubles (exponent
// 0.5), not quadruples.
func TestLineScaleSublinear(t *testing.T) {
	measure := func(lineB int) float64 {
		cfg := sim.DefaultConfig()
		cfg.L3SizeMB = 1
		cfg.L3LineB = lineB
		g := NewGenerator(profMcf, &cfg, 0, sim.NewRNG(3))
		wStart, wSpan := g.StreamWriteRegion()
		var instr, stores uint64
		for i := 0; i < 200000; i++ {
			a, _ := g.Next()
			instr += a.Instructions()
			// Count only stream stores; hot-region stores do not
			// reach memory and do not scale with line size.
			if a.Write && a.Addr >= wStart && a.Addr < wStart+wSpan {
				stores++
			}
		}
		return float64(stores) / float64(instr) * 1000
	}
	w256 := measure(256)
	w64 := measure(64)
	ratio := w64 / w256
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("64B/256B store-rate ratio = %.2f, want ~2 (exponent 0.5)", ratio)
	}
}
