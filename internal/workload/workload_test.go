package workload

import (
	"math"
	"testing"

	"fpb/internal/pcm"
	"fpb/internal/sim"
)

func TestByNameCoversAllWorkloads(t *testing.T) {
	count := 0
	for _, n := range Names {
		if n == "gmean" {
			continue
		}
		w, err := ByName(n, 8)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if len(w.Cores) != 8 {
			t.Errorf("%s: %d cores, want 8", n, len(w.Cores))
		}
		count++
	}
	if count != 13 {
		t.Errorf("covered %d workloads, want 13", count)
	}
	if _, err := ByName("nope", 8); err == nil {
		t.Error("unknown workload accepted")
	}
	if got := len(All(8)); got != 13 {
		t.Errorf("All returned %d workloads", got)
	}
}

func TestMixCompositions(t *testing.T) {
	w, _ := ByName("mix_1", 8)
	// 2S.add-2C.lbm-2C.xalan-2B.mummer
	wantNames := []string{"S.add", "S.add", "C.lbm", "C.lbm",
		"C.xalancbmk", "C.xalancbmk", "B.mummer", "B.mummer"}
	for i, c := range w.Cores {
		if c.Name != wantNames[i] {
			t.Errorf("mix_1 core %d = %s, want %s", i, c.Name, wantNames[i])
		}
	}
}

func TestTargetPKIMatchesTable2(t *testing.T) {
	cases := map[string][2]float64{
		"mcf_m": {4.74, 2.29},
		"mum_m": {10.8, 4.16},
		"xal_m": {0.08, 0.07},
	}
	for name, want := range cases {
		w, _ := ByName(name, 8)
		if math.Abs(w.TargetRPKI()-want[0]) > 1e-9 {
			t.Errorf("%s RPKI = %g, want %g", name, w.TargetRPKI(), want[0])
		}
		if math.Abs(w.TargetWPKI()-want[1]) > 1e-9 {
			t.Errorf("%s WPKI = %g, want %g", name, w.TargetWPKI(), want[1])
		}
	}
}

func TestWorkloadRWPKIOrderingSane(t *testing.T) {
	// RPKI >= WPKI must hold for the calibration identity
	// (store-stream APKI = WPKI, load-stream APKI = RPKI − WPKI).
	for _, w := range All(8) {
		for _, c := range w.Cores {
			if c.WPKI > c.RPKI {
				t.Errorf("%s/%s: WPKI %g > RPKI %g", w.Name, c.Name, c.WPKI, c.RPKI)
			}
		}
	}
}

func TestGeneratorRates(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.L3SizeMB = 1 // keep spans small for the test
	prof := profMcf
	g := NewGenerator(prof, &cfg, 0, sim.NewRNG(42))
	const draws = 300000
	var instr, sReads, sWrites, hot uint64
	rStart, rSpan := g.StreamReadRegion()
	wStart, wSpan := g.StreamWriteRegion()
	hStart, hSpan := g.HotRegion()
	for i := 0; i < draws; i++ {
		a, ok := g.Next()
		if !ok {
			t.Fatal("generator ended")
		}
		instr += a.Instructions()
		switch {
		case a.Addr >= wStart && a.Addr < wStart+wSpan:
			if !a.Write {
				t.Fatal("read in write-stream region")
			}
			sWrites++
		case a.Addr >= rStart && a.Addr < rStart+rSpan:
			if a.Write {
				t.Fatal("write in read-stream region")
			}
			sReads++
		case a.Addr >= hStart && a.Addr < hStart+hSpan:
			hot++
		default:
			t.Fatalf("access outside all regions: %#x", a.Addr)
		}
	}
	ki := float64(instr) / 1000
	gotWPKI := float64(sWrites) / ki
	gotRPKI := float64(sWrites+sReads) / ki
	if math.Abs(gotWPKI-prof.WPKI) > prof.WPKI*0.1 {
		t.Errorf("measured stream-store PKI %.3f, want %.3f", gotWPKI, prof.WPKI)
	}
	if math.Abs(gotRPKI-prof.RPKI) > prof.RPKI*0.1 {
		t.Errorf("measured stream PKI %.3f, want %.3f", gotRPKI, prof.RPKI)
	}
	if hot == 0 {
		t.Error("no hot accesses generated")
	}
}

func TestGeneratorStreamsAreSequentialLines(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.L3SizeMB = 1
	g := NewGenerator(profLbm, &cfg, 2, sim.NewRNG(7))
	wStart, _ := g.StreamWriteRegion()
	var prev uint64
	seen := false
	for i := 0; i < 10000; i++ {
		a, _ := g.Next()
		if !a.Write || a.Addr < wStart {
			continue
		}
		if a.Addr%uint64(cfg.L3LineB) != 0 {
			t.Fatalf("stream store %#x not line aligned", a.Addr)
		}
		if seen && a.Addr != prev+uint64(cfg.L3LineB) && a.Addr > prev {
			t.Fatalf("stream stores not sequential: %#x after %#x", a.Addr, prev)
		}
		prev, seen = a.Addr, true
	}
	if !seen {
		t.Fatal("no stream stores observed")
	}
}

func TestGeneratorCoreSpacesDisjoint(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.L3SizeMB = 1
	g0 := NewGenerator(profMcf, &cfg, 0, sim.NewRNG(1))
	g1 := NewGenerator(profMcf, &cfg, 1, sim.NewRNG(2))
	for i := 0; i < 1000; i++ {
		a0, _ := g0.Next()
		a1, _ := g1.Next()
		if a0.Addr>>coreSpaceShift != 0 {
			t.Fatal("core 0 escaped its space")
		}
		if a1.Addr>>coreSpaceShift != 1 {
			t.Fatal("core 1 escaped its space")
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := sim.DefaultConfig()
	a := NewGenerator(profAstar, &cfg, 0, sim.NewRNG(9))
	b := NewGenerator(profAstar, &cfg, 0, sim.NewRNG(9))
	for i := 0; i < 1000; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x != y {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestMutatorCellChangeRanges(t *testing.T) {
	const lineB = 256
	cases := []struct {
		class    ValueClass
		min, max float64 // changed MLC cells per 256B write (1024 cells)
	}{
		{ValueInt, 60, 450},
		{ValueFP, 100, 550},
		{ValueByte, 120, 500},
		{ValueStream, 250, 700},
	}
	for _, c := range cases {
		m := NewMutator(c.class, sim.NewRNG(11))
		old := make([]byte, lineB)
		var total int
		const writes = 300
		for i := 0; i < writes; i++ {
			next := m.Next(old, lineB)
			total += pcm.CountChangedCells(old, next, 2)
			old = next
		}
		mean := float64(total) / writes
		if mean < c.min || mean > c.max {
			t.Errorf("%v: mean cell changes %.0f outside [%g, %g]", c.class, mean, c.min, c.max)
		}
	}
}

func TestMutatorIntChurnsLowOrderCells(t *testing.T) {
	m := NewMutator(ValueInt, sim.NewRNG(5))
	old := make([]byte, 256)
	lowChanges, highChanges := 0, 0
	for i := 0; i < 200; i++ {
		next := m.Next(old, 256)
		for _, cell := range pcm.DiffCells(nil, old, next, 2) {
			// 16 MLC cells per 32-bit word... 32 bits = 16 cells;
			// position within word:
			if cell%16 < 8 {
				lowChanges++
			} else {
				highChanges++
			}
		}
		old = next
	}
	if lowChanges <= highChanges {
		t.Errorf("integer model: low-order changes %d not above high-order %d",
			lowChanges, highChanges)
	}
}

func TestMutatorPreservesLength(t *testing.T) {
	for _, class := range []ValueClass{ValueInt, ValueFP, ValueByte, ValueStream} {
		m := NewMutator(class, sim.NewRNG(3))
		out := m.Next(nil, 64)
		if len(out) != 64 {
			t.Errorf("%v: output length %d", class, len(out))
		}
	}
}

func TestValueClassStrings(t *testing.T) {
	if ValueInt.String() != "int" || ValueStream.String() != "stream" {
		t.Error("value class strings wrong")
	}
	if ValueClass(42).String() == "" {
		t.Error("unknown class must stringify")
	}
}
