package workload

import (
	"fpb/internal/ckpt"
)

// SaveState serializes the generator's dynamic state: the RNG stream and the
// two stream-walk cursors. The derived probabilities and region geometry are
// pure functions of (profile, config, core) and are rebuilt by NewGenerator
// on the restore path.
func (g *Generator) SaveState(w *ckpt.Writer) {
	w.Section("workload.gen")
	s := g.rng.State()
	w.U64(s[0])
	w.U64(s[1])
	w.U64(s[2])
	w.U64(s[3])
	w.U64(g.readPos)
	w.U64(g.writePos)
}

// RestoreState loads dynamic state written by SaveState into a generator
// freshly built with the same (profile, config, core) parameters.
func (g *Generator) RestoreState(r *ckpt.Reader) error {
	r.Section("workload.gen")
	var s [4]uint64
	s[0], s[1], s[2], s[3] = r.U64(), r.U64(), r.U64(), r.U64()
	readPos, writePos := r.U64(), r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	g.rng.SetState(s)
	g.readPos = readPos
	g.writePos = writePos
	return nil
}

// SaveState serializes the mutator's RNG stream (its only dynamic state).
func (m *Mutator) SaveState(w *ckpt.Writer) {
	w.Section("workload.mut")
	s := m.rng.State()
	w.U64(s[0])
	w.U64(s[1])
	w.U64(s[2])
	w.U64(s[3])
}

// RestoreState loads the mutator's RNG stream.
func (m *Mutator) RestoreState(r *ckpt.Reader) error {
	r.Section("workload.mut")
	var s [4]uint64
	s[0], s[1], s[2], s[3] = r.U64(), r.U64(), r.U64(), r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	m.rng.SetState(s)
	return nil
}
