// Package workload provides the synthetic multi-programmed workloads that
// substitute for the paper's PIN-collected SPEC2006 / BioBench / MiBench /
// STREAM traces (see DESIGN.md §3). Each benchmark is modeled by a per-core
// profile that pins the post-L3 memory intensity to Table 2's R/W-PKI and a
// data-value mutation model that reproduces the cell-change behaviour
// behind Fig. 2 (integer low-order-bit churn, FP mantissa churn, byte
// streams), which in turn drives the chip imbalance that motivates VIM/BIM.
package workload

import "fmt"

// ValueClass selects the data-value mutation model of a benchmark.
type ValueClass int

const (
	// ValueInt: integer-dominated lines; updates add small deltas to
	// 32-bit words, churning low-order bits (astar, mcf, xalancbmk,
	// qsort).
	ValueInt ValueClass = iota
	// ValueFP: floating-point lines; updates rewrite mantissa bits of
	// 64-bit doubles (bwaves, lbm, leslie3d).
	ValueFP
	// ValueByte: byte-string data with scattered byte replacements
	// (mummer, tigr).
	ValueByte
	// ValueStream: bulk data movement that replaces most of the line
	// (STREAM copy/add/scale/triad).
	ValueStream
)

// ParseValueClass inverts ValueClass.String; unknown strings default to
// ValueInt with ok=false.
func ParseValueClass(s string) (ValueClass, bool) {
	switch s {
	case "int":
		return ValueInt, true
	case "fp":
		return ValueFP, true
	case "byte":
		return ValueByte, true
	case "stream":
		return ValueStream, true
	}
	return ValueInt, false
}

func (v ValueClass) String() string {
	switch v {
	case ValueInt:
		return "int"
	case ValueFP:
		return "fp"
	case ValueByte:
		return "byte"
	case ValueStream:
		return "stream"
	}
	return fmt.Sprintf("ValueClass(%d)", int(v))
}

// CoreProfile describes one core's benchmark.
type CoreProfile struct {
	Name string
	// RPKI and WPKI are the target PCM-level read and write accesses per
	// thousand instructions (Table 2). The generator realizes them with
	// streaming loads/stores at L3-line granularity: WPKI streaming
	// stores (each produces a demand fill and later a writeback) and
	// RPKI−WPKI streaming loads.
	RPKI, WPKI float64
	// HotAPKI is the rate of cache-resident accesses that exercise the
	// SRAM levels without touching memory.
	HotAPKI float64
	// Value selects the mutation model applied to written lines.
	Value ValueClass
}

// Workload is a named multi-programmed combination of per-core profiles.
type Workload struct {
	Name  string
	Cores []CoreProfile
}

// homogeneous builds an n-core workload of one profile.
func homogeneous(name string, p CoreProfile, n int) Workload {
	cores := make([]CoreProfile, n)
	for i := range cores {
		cores[i] = p
	}
	return Workload{Name: name, Cores: cores}
}

// Base per-core benchmark profiles. R/W-PKI follow Table 2 (for the
// homogeneous 8-copy workloads these equal the workload-level numbers); the
// STREAM kernels reuse the S.copy intensity with small spreads.
var (
	profAstar  = CoreProfile{Name: "C.astar", RPKI: 2.45, WPKI: 1.12, HotAPKI: 30, Value: ValueInt}
	profBwaves = CoreProfile{Name: "C.bwaves", RPKI: 3.59, WPKI: 1.68, HotAPKI: 30, Value: ValueFP}
	profLbm    = CoreProfile{Name: "C.lbm", RPKI: 3.63, WPKI: 1.82, HotAPKI: 30, Value: ValueFP}
	profLeslie = CoreProfile{Name: "C.leslie3d", RPKI: 2.59, WPKI: 1.29, HotAPKI: 30, Value: ValueFP}
	profMcf    = CoreProfile{Name: "C.mcf", RPKI: 4.74, WPKI: 2.29, HotAPKI: 30, Value: ValueInt}
	profXalan  = CoreProfile{Name: "C.xalancbmk", RPKI: 0.08, WPKI: 0.07, HotAPKI: 30, Value: ValueInt}
	profMummer = CoreProfile{Name: "B.mummer", RPKI: 10.8, WPKI: 4.16, HotAPKI: 30, Value: ValueByte}
	profTigr   = CoreProfile{Name: "B.tigr", RPKI: 6.94, WPKI: 0.81, HotAPKI: 30, Value: ValueByte}
	profQsort  = CoreProfile{Name: "M.qsort", RPKI: 0.51, WPKI: 0.47, HotAPKI: 30, Value: ValueInt}
	profCopy   = CoreProfile{Name: "S.copy", RPKI: 0.57, WPKI: 0.42, HotAPKI: 30, Value: ValueStream}
	profAdd    = CoreProfile{Name: "S.add", RPKI: 0.60, WPKI: 0.40, HotAPKI: 30, Value: ValueStream}
	profScale  = CoreProfile{Name: "S.scale", RPKI: 0.55, WPKI: 0.42, HotAPKI: 30, Value: ValueStream}
	profTriad  = CoreProfile{Name: "S.triad", RPKI: 0.62, WPKI: 0.41, HotAPKI: 30, Value: ValueStream}
)

// mix builds the paper's 2+2+2+2 heterogeneous workloads.
func mix(name string, a, b, c, d CoreProfile) Workload {
	return Workload{Name: name, Cores: []CoreProfile{a, a, b, b, c, c, d, d}}
}

// Names lists the 14 simulated workloads in the paper's presentation order.
var Names = []string{
	"ast_m", "bwa_m", "lbm_m", "les_m", "mcf_m", "xal_m",
	"mum_m", "tig_m", "qso_m", "cop_m", "mix_1", "mix_2", "mix_3",
	"gmean", // pseudo-entry used by result tables; not a workload
}

// ByName returns the workload for one of the 13 simulated names (gmean is
// an aggregate, not a workload).
func ByName(name string, cores int) (Workload, error) {
	switch name {
	case "ast_m":
		return homogeneous(name, profAstar, cores), nil
	case "bwa_m":
		return homogeneous(name, profBwaves, cores), nil
	case "lbm_m":
		return homogeneous(name, profLbm, cores), nil
	case "les_m":
		return homogeneous(name, profLeslie, cores), nil
	case "mcf_m":
		return homogeneous(name, profMcf, cores), nil
	case "xal_m":
		return homogeneous(name, profXalan, cores), nil
	case "mum_m":
		return homogeneous(name, profMummer, cores), nil
	case "tig_m":
		return homogeneous(name, profTigr, cores), nil
	case "qso_m":
		return homogeneous(name, profQsort, cores), nil
	case "cop_m":
		return homogeneous(name, profCopy, cores), nil
	case "mix_1":
		return mix(name, profAdd, profLbm, profXalan, profMummer), nil
	case "mix_2":
		return mix(name, profScale, profMcf, profXalan, profBwaves), nil
	case "mix_3":
		return mix(name, profTriad, profTigr, profXalan, profLeslie), nil
	}
	return Workload{}, fmt.Errorf("workload: unknown name %q", name)
}

// All returns the 13 simulated workloads.
func All(cores int) []Workload {
	out := make([]Workload, 0, 13)
	for _, n := range Names {
		if n == "gmean" {
			continue
		}
		w, err := ByName(n, cores)
		if err != nil {
			panic(err) // Names and ByName are maintained together
		}
		out = append(out, w)
	}
	return out
}

// TargetRPKI returns the workload-level expected PCM read PKI (mean over
// cores), for calibration reporting.
func (w Workload) TargetRPKI() float64 {
	s := 0.0
	for _, c := range w.Cores {
		s += c.RPKI
	}
	return s / float64(len(w.Cores))
}

// TargetWPKI returns the workload-level expected PCM write PKI.
func (w Workload) TargetWPKI() float64 {
	s := 0.0
	for _, c := range w.Cores {
		s += c.WPKI
	}
	return s / float64(len(w.Cores))
}
