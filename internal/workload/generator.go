package workload

import (
	"math"

	"fpb/internal/sim"
	"fpb/internal/trace"
)

// Address-space layout: each core owns a disjoint region so private caches
// and the shared PCM never alias across cores.
const (
	coreSpaceShift = 38 // 256 GB per core
	hotBase        = 0x0000_0000
	streamReadBase = 0x4000_0000 // 1 GB into the core's space
	streamWriteB   = 0x8000_0000 // 2 GB in
	hotSpanBytes   = 1 << 20     // 1 MB: fits comfortably in L2
	// fixedFootprintBytes is the per-stream working set of non-STREAM
	// benchmarks: 64 MB per region (128 MB per core with both streams) —
	// far beyond the 32 MB Table 1 LLC, well inside a 128 MB one.
	fixedFootprintBytes = 64 << 20
)

// Generator produces one core's infinite access stream realizing its
// profile: streaming loads and stores at L3-line granularity over regions
// larger than the L3 (so they always miss after warm-up) plus
// cache-resident "hot" accesses. It implements trace.Source.
type Generator struct {
	prof   CoreProfile
	cfg    *sim.Config
	rng    *sim.RNG
	core   int
	gapMul float64 // mean gap between accesses

	pStream float64 // P(streaming access)
	pWrite  float64 // P(write | streaming)

	readPos, writePos uint64
	spanLines         uint64
}

// refLineBytes is the memory line size Table 2's R/W-PKI targets assume.
// Smaller lines split the same traffic over more line writebacks (and
// fills) — the paper's "for large line sizes the number of line writes are
// reduced but each line write changes more cells" (Section 6.4.1) — but
// dirty data is spatially clustered in real traces, so the multiplier is
// sub-linear; lineScaleExp = 0.5 gives 2x line writes at 64 B instead of
// the locality-free 4x.
const (
	refLineBytes = 256
	lineScaleExp = 0.5
)

// NewGenerator builds the stream for core (0-based) of the workload.
func NewGenerator(prof CoreProfile, cfg *sim.Config, core int, rng *sim.RNG) *Generator {
	lineScale := math.Pow(float64(refLineBytes)/float64(cfg.L3LineB), lineScaleExp)
	rpki := prof.RPKI * lineScale
	wpki := prof.WPKI * lineScale
	apki := rpki + prof.HotAPKI // total accesses per kilo-instruction
	if apki <= 0 {
		apki = 0.001
	}
	// Streaming stores produce one fill read and one writeback each, so
	// store-stream APKI = WPKI and load-stream APKI = RPKI − WPKI.
	loadStream := rpki - wpki
	if loadStream < 0 {
		loadStream = 0
	}
	g := &Generator{
		prof:    prof,
		cfg:     cfg,
		rng:     rng,
		core:    core,
		gapMul:  1000/apki - 1,
		pStream: rpki / apki,
	}
	if rpki > 0 {
		g.pWrite = wpki / (loadStream + wpki)
	}
	// Stream footprint: STREAM-class kernels sweep arrays far larger
	// than any cache, so their regions scale with the L3 (always miss).
	// Other benchmarks have a *fixed* footprint: large enough to thrash
	// the Table 1 LLC, but capturable by a much larger one — this is
	// what produces the paper's Fig. 20 result that a 128 MB/core LLC
	// absorbs most non-streaming traffic while STREAM keeps missing.
	scaled := uint64(cfg.L3SizeMB) * 1024 * 1024 / uint64(cfg.L3LineB) * 2
	if prof.Value == ValueStream {
		g.spanLines = scaled
	} else {
		g.spanLines = fixedFootprintBytes / uint64(cfg.L3LineB)
	}
	if g.spanLines < 4096 {
		g.spanLines = 4096
	}
	// Desynchronize cores' stream phases.
	g.readPos = rng.Uint64n(g.spanLines)
	g.writePos = rng.Uint64n(g.spanLines)
	return g
}

// base returns the core's address-space base.
func (g *Generator) base() uint64 { return uint64(g.core) << coreSpaceShift }

// StreamReadRegion returns the [start, span) byte range of the streaming
// load region, for cache prefill.
func (g *Generator) StreamReadRegion() (start, span uint64) {
	return g.base() + streamReadBase, g.spanLines * uint64(g.cfg.L3LineB)
}

// StreamWriteRegion returns the streaming store region.
func (g *Generator) StreamWriteRegion() (start, span uint64) {
	return g.base() + streamWriteB, g.spanLines * uint64(g.cfg.L3LineB)
}

// HotRegion returns the cache-resident region.
func (g *Generator) HotRegion() (start, span uint64) {
	return g.base() + hotBase, hotSpanBytes
}

// ReadCursor returns the current line position of the streaming-load walk
// (used to align cache prefill with the measurement window).
func (g *Generator) ReadCursor() uint64 { return g.readPos }

// WriteCursor returns the current line position of the streaming-store walk.
func (g *Generator) WriteCursor() uint64 { return g.writePos }

// SpanLines returns the length of each stream region in L3 lines.
func (g *Generator) SpanLines() uint64 { return g.spanLines }

// Next implements trace.Source; the stream never ends.
func (g *Generator) Next() (trace.Access, bool) {
	gap := uint32(0)
	if g.gapMul > 0 {
		// Uniform over [0, 2*mean]: mean gap preserved, deterministic
		// per-core stream.
		gap = uint32(g.rng.Uint64n(uint64(2*g.gapMul) + 1))
	}
	lineB := uint64(g.cfg.L3LineB)
	if g.rng.Float64() < g.pStream {
		if g.rng.Float64() < g.pWrite {
			addr := g.base() + streamWriteB + (g.writePos%g.spanLines)*lineB
			g.writePos++
			return trace.Access{Gap: gap, Write: true, Addr: addr}, true
		}
		addr := g.base() + streamReadBase + (g.readPos%g.spanLines)*lineB
		g.readPos++
		return trace.Access{Gap: gap, Write: false, Addr: addr}, true
	}
	// Hot access: uniform within the resident region, mostly loads.
	off := g.rng.Uint64n(hotSpanBytes/64) * 64
	return trace.Access{
		Gap:   gap,
		Write: g.rng.Bernoulli(0.3),
		Addr:  g.base() + hotBase + off,
	}, true
}

var _ trace.Source = (*Generator)(nil)
