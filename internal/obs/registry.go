// Package obs is the simulator-wide observability layer: a hierarchical
// metrics registry (counters and gauges components register into by name),
// an event tracer streaming component transitions as JSONL and Chrome
// trace_event JSON, and time-series probes sampling every gauge at a fixed
// cycle interval into CSV.
//
// The package is zero-dependency (stdlib only) and engine-agnostic: it never
// imports internal/sim. Timestamps come from a clock callback the owning
// component installs on the Hub, and probe scheduling is driven by the
// caller (internal/system ties it to the event loop).
//
// Everything is nil-safe: a component holding a nil *Hub pays only a
// pointer check per call, so tests and benchmarks that never attach an
// observer run at full speed.
//
// Naming convention: dot-separated hierarchy, lowercase,
// <subsystem>.<component>.<metric> — e.g. "power.gcp.tokens_in_use",
// "mem.wrq.depth", "core.scheduler.multireset_splits". Per-instance series
// insert the index after the component: "power.chip.3.tokens_in_use".
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Kind classifies a registered series.
type Kind uint8

const (
	// KindCounter is a monotonically non-decreasing count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous sampled value.
	KindGauge
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Counter is a monotonically increasing event count. The zero value is
// ready to use; counters returned by a nil Hub are detached (they count,
// but appear in no registry).
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// metric is one registered series.
type metric struct {
	kind Kind
	read func() float64
}

// Registry maps hierarchical names to live metric sources. Registration
// stores a closure; reads always reflect the component's current state, so
// a snapshot at any cycle is consistent without any double bookkeeping.
type Registry struct {
	metrics  map[string]metric
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics:  make(map[string]metric),
		counters: make(map[string]*Counter),
	}
}

// Counter registers (or retrieves) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.metrics[name] = metric{kind: KindCounter, read: func() float64 { return float64(c.v) }}
	return c
}

// Gauge registers the named gauge backed by read. Re-registering a name
// replaces its source (components rebuilt between runs simply re-register).
func (r *Registry) Gauge(name string, read func() float64) {
	r.metrics[name] = metric{kind: KindGauge, read: read}
}

// Len reports the number of registered series.
func (r *Registry) Len() int { return len(r.metrics) }

// Names returns every registered series name in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Value reads one series by name.
func (r *Registry) Value(name string) (float64, bool) {
	m, ok := r.metrics[name]
	if !ok {
		return 0, false
	}
	return m.read(), true
}

// Sample is one point of a snapshot.
type Sample struct {
	Name  string
	Kind  Kind
	Value float64
}

// Snapshot reads every series, sorted by name.
func (r *Registry) Snapshot() []Sample {
	out := make([]Sample, 0, len(r.metrics))
	for _, n := range r.Names() {
		m := r.metrics[n]
		out = append(out, Sample{Name: n, Kind: m.kind, Value: m.read()})
	}
	return out
}

// Values reads every series into a plain map (the form system.Result
// carries across the experiment harness).
func (r *Registry) Values() map[string]float64 {
	out := make(map[string]float64, len(r.metrics))
	for n, m := range r.metrics {
		out[n] = m.read()
	}
	return out
}

// WriteJSON dumps the registry as one flat JSON object, keys sorted, in a
// byte-deterministic encoding.
func (r *Registry) WriteJSON(w io.Writer) error {
	return EncodeSeries(w, r.Values())
}

// EncodeSeries writes a name->value map as a sorted, deterministic JSON
// object. Shared by the registry dump and the experiment harness.
func EncodeSeries(w io.Writer, series map[string]float64) error {
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	buf := make([]byte, 0, 32*len(names)+4)
	buf = append(buf, '{', '\n')
	for i, n := range names {
		buf = append(buf, ' ', ' ')
		buf = strconv.AppendQuote(buf, n)
		buf = append(buf, ':', ' ')
		buf = appendJSONFloat(buf, series[n])
		if i < len(names)-1 {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n')
	}
	buf = append(buf, '}', '\n')
	_, err := w.Write(buf)
	return err
}

// appendJSONFloat formats v as a JSON number; NaN/Inf (not representable in
// JSON) become null.
func appendJSONFloat(buf []byte, v float64) []byte {
	if v != v || v > 1.797e308 || v < -1.797e308 {
		return append(buf, "null"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}
