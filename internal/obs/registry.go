// Package obs is the simulator-wide observability layer: a hierarchical
// metrics registry (counters, gauges and histograms components register
// into by name), an event tracer streaming component transitions as JSONL
// and Chrome trace_event JSON, and time-series probes sampling every gauge
// at a fixed cycle interval into CSV. Registries export both a
// byte-deterministic JSON encoding (WriteJSON, unchanged across releases so
// stored sim results stay stable) and the Prometheus text exposition format
// (WritePrometheus) for scraping daemons.
//
// The package is zero-dependency (stdlib only) and engine-agnostic: it never
// imports internal/sim. Timestamps come from a clock callback the owning
// component installs on the Hub, and probe scheduling is driven by the
// caller (internal/system ties it to the event loop).
//
// Everything is nil-safe: a component holding a nil *Hub pays only a
// pointer check per call, so tests and benchmarks that never attach an
// observer run at full speed. Counters are safe for concurrent use
// (sync/atomic), so one registry can be shared by a serving daemon's worker
// pool and its HTTP handlers.
//
// Naming convention: dot-separated hierarchy, lowercase,
// <subsystem>.<component>.<metric> — e.g. "power.gcp.tokens_in_use",
// "mem.wrq.depth", "core.scheduler.multireset_splits". Per-instance series
// insert the index after the component: "power.chip.3.tokens_in_use".
//
// Scopes: a series registered through the Exec variants (ExecCounter,
// ExecGauge) is execution-side telemetry — it describes how the simulation
// ran (shard windows, barrier waits, speculation hit rates), not what the
// simulated machine did. Exec series appear in snapshots, probes and the
// Prometheus exposition, but are excluded from Values()/WriteJSON so
// system.Result stays bit-identical whichever engine executed the run.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Kind classifies a registered series.
type Kind uint8

const (
	// KindCounter is a monotonically non-decreasing count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous sampled value.
	KindGauge
	// KindHistogram is a fixed-bucket distribution (see Histogram).
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Counter is a monotonically increasing event count, safe for concurrent
// use. The zero value is ready to use; counters returned by a nil Hub are
// detached (they count, but appear in no registry), and every method is a
// no-op on a nil *Counter so optional instrumentation needs no guards.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter — the one sanctioned break from monotonicity,
// used by the warmup-barrier stats reset so measurement counts start from
// zero on both the cold and the restored path.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// metric is one registered series.
type metric struct {
	kind Kind
	exec bool // execution-side telemetry: excluded from Values()/WriteJSON
	read func() float64
}

// Registry maps hierarchical names to live metric sources. Registration
// stores a closure; reads always reflect the component's current state, so
// a snapshot at any cycle is consistent without any double bookkeeping.
//
// The registry's own maps are guarded by a mutex, so registration and
// snapshots may race worker threads; gauge READ closures run outside that
// lock and synchronize (or don't) per the registrant's own rules — e.g.
// internal/serve registers closures over mu-guarded fields and snapshots
// only while holding that mu.
type Registry struct {
	mu       sync.Mutex
	metrics  map[string]metric
	counters map[string]*Counter
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics:  make(map[string]metric),
		counters: make(map[string]*Counter),
	}
}

// Counter registers (or retrieves) the named counter.
func (r *Registry) Counter(name string) *Counter {
	return r.counter(name, false)
}

// ExecCounter registers (or retrieves) the named execution-scope counter:
// it appears in snapshots and the Prometheus exposition but not in
// Values()/WriteJSON (see the package scope note).
func (r *Registry) ExecCounter(name string) *Counter {
	return r.counter(name, true)
}

func (r *Registry) counter(name string, exec bool) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.metrics[name] = metric{kind: KindCounter, exec: exec, read: func() float64 { return float64(c.Value()) }}
	return c
}

// Gauge registers the named gauge backed by read. Re-registering a name
// replaces its source (components rebuilt between runs simply re-register).
func (r *Registry) Gauge(name string, read func() float64) {
	r.gauge(name, read, false)
}

// ExecGauge registers the named execution-scope gauge (see ExecCounter).
func (r *Registry) ExecGauge(name string, read func() float64) {
	r.gauge(name, read, true)
}

func (r *Registry) gauge(name string, read func() float64, exec bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[name] = metric{kind: KindGauge, exec: exec, read: read}
}

// Histogram registers (or retrieves) the named fixed-bucket histogram.
// bounds are ascending upper bucket bounds; an implicit +Inf bucket catches
// the tail. Retrieval ignores bounds, so all registrants of one name must
// agree on them. Histograms are exposed through Snapshot (observation
// count), HistogramSnapshots and the Prometheus exposition; they do not
// enter Values()/WriteJSON, whose key set predates them and must stay
// byte-stable.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := NewHistogramBuckets(bounds)
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	r.hists[name] = h
	r.metrics[name] = metric{kind: KindHistogram, read: func() float64 { return float64(h.Count()) }}
	return h
}

// SetHelp attaches a HELP string to the named series, emitted by the
// Prometheus exposition.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.help == nil {
		r.help = make(map[string]string)
	}
	r.help[name] = help
}

// Len reports the number of registered series.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.metrics)
}

// Names returns every registered series name in sorted order (all scopes).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Value reads one series by name.
func (r *Registry) Value(name string) (float64, bool) {
	r.mu.Lock()
	m, ok := r.metrics[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return m.read(), true
}

// Sample is one point of a snapshot.
type Sample struct {
	Name  string
	Kind  Kind
	Value float64
}

// Snapshot reads every series (all scopes; histograms sample their
// observation count), sorted by name.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	names := r.namesLocked()
	ms := make([]metric, len(names))
	for i, n := range names {
		ms[i] = r.metrics[n]
	}
	r.mu.Unlock()
	out := make([]Sample, 0, len(names))
	for i, n := range names {
		out = append(out, Sample{Name: n, Kind: ms[i].kind, Value: ms[i].read()})
	}
	return out
}

// Values reads every model-scope counter and gauge into a plain map (the
// form system.Result carries across the experiment harness). Exec-scope
// series and histograms are excluded so the map — and therefore stored
// results — is identical whichever engine variant executed the run and
// whether or not execution telemetry was enabled.
func (r *Registry) Values() map[string]float64 {
	r.mu.Lock()
	type nv struct {
		name string
		read func() float64
	}
	reads := make([]nv, 0, len(r.metrics))
	for n, m := range r.metrics {
		if m.exec || m.kind == KindHistogram {
			continue
		}
		reads = append(reads, nv{n, m.read})
	}
	r.mu.Unlock()
	out := make(map[string]float64, len(reads))
	for _, e := range reads {
		out[e.name] = e.read()
	}
	return out
}

// HistogramSnapshots returns a deterministic (name-sorted) snapshot of
// every registered histogram.
func (r *Registry) HistogramSnapshots() []NamedHistogram {
	r.mu.Lock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	hs := make([]*Histogram, len(names))
	for i, n := range names {
		hs[i] = r.hists[n]
	}
	r.mu.Unlock()
	out := make([]NamedHistogram, len(names))
	for i, n := range names {
		out[i] = NamedHistogram{Name: n, Snapshot: hs[i].Snapshot()}
	}
	return out
}

// ResetMeasurement zeroes every registered counter and histogram (all
// scopes). Gauges read live component state and are untouched. Called by the
// warmup-barrier sequence so measurement statistics start from zero whether
// the barrier was reached by simulation or by checkpoint restore.
func (r *Registry) ResetMeasurement() {
	r.mu.Lock()
	cs := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		cs = append(cs, c)
	}
	hs := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	for _, c := range cs {
		c.Reset()
	}
	for _, h := range hs {
		h.Reset()
	}
}

// NamedHistogram pairs a histogram snapshot with its registered name.
type NamedHistogram struct {
	Name     string
	Snapshot HistogramSnapshot
}

// WriteJSON dumps the registry's model-scope counters and gauges as one
// flat JSON object, keys sorted, in a byte-deterministic encoding. This is
// the legacy /metrics format and the encoding of stored sim results; its
// byte format is frozen (see TestEncodeSeriesGolden).
func (r *Registry) WriteJSON(w io.Writer) error {
	return EncodeSeries(w, r.Values())
}

// EncodeSeries writes a name->value map as a sorted, deterministic JSON
// object. Shared by the registry dump and the experiment harness.
func EncodeSeries(w io.Writer, series map[string]float64) error {
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	buf := make([]byte, 0, 32*len(names)+4)
	buf = append(buf, '{', '\n')
	for i, n := range names {
		buf = append(buf, ' ', ' ')
		buf = strconv.AppendQuote(buf, n)
		buf = append(buf, ':', ' ')
		buf = appendJSONFloat(buf, series[n])
		if i < len(names)-1 {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n')
	}
	buf = append(buf, '}', '\n')
	_, err := w.Write(buf)
	return err
}

// appendJSONFloat formats v as a JSON number; NaN/Inf (not representable in
// JSON) become null.
func appendJSONFloat(buf []byte, v float64) []byte {
	if v != v || v > 1.797e308 || v < -1.797e308 {
		return append(buf, "null"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}
