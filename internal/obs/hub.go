package obs

// Hub ties one simulated system's registry and tracer together and is the
// single handle components hold. Every method is safe on a nil receiver:
// a nil hub hands out detached counters, drops gauge registrations, and
// swallows events, so uninstrumented construction paths (unit tests,
// micro-benchmarks) pay one pointer check and nothing else.
type Hub struct {
	reg    *Registry
	tracer *Tracer
	clock  func() uint64
}

// NewHub returns a hub with a fresh registry, no tracer, and a clock stuck
// at zero until SetClock installs the engine's.
func NewHub() *Hub {
	return &Hub{reg: NewRegistry(), clock: func() uint64 { return 0 }}
}

// Registry exposes the metric registry (nil for a nil hub).
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// SetClock installs the cycle source stamped onto emitted events. The
// owning component (the memory controller) points it at sim.Engine.Now.
func (h *Hub) SetClock(clock func() uint64) {
	if h == nil || clock == nil {
		return
	}
	h.clock = clock
}

// Now reads the hub clock.
func (h *Hub) Now() uint64 {
	if h == nil {
		return 0
	}
	return h.clock()
}

// SetTracer attaches (or, with nil, detaches) the event tracer.
func (h *Hub) SetTracer(t *Tracer) {
	if h == nil {
		return
	}
	h.tracer = t
}

// Tracer returns the attached tracer, if any.
func (h *Hub) Tracer() *Tracer {
	if h == nil {
		return nil
	}
	return h.tracer
}

// Tracing reports whether events currently go anywhere. Hot paths guard
// event construction with this so disabled tracing costs two nil checks.
func (h *Hub) Tracing() bool {
	return h != nil && h.tracer != nil
}

// Emit stamps the event with the hub clock (when the emitter left Cycle
// zero) and forwards it to the tracer. No-op without a tracer.
func (h *Hub) Emit(e Event) {
	if h == nil || h.tracer == nil {
		return
	}
	if e.Cycle == 0 {
		e.Cycle = h.clock()
	}
	h.tracer.Emit(e)
}

// Counter registers the named counter, or returns a detached one on a nil
// hub.
func (h *Hub) Counter(name string) *Counter {
	if h == nil {
		return &Counter{}
	}
	return h.reg.Counter(name)
}

// ExecCounter registers the named execution-scope counter (excluded from
// Values()/WriteJSON — see the package scope note), or returns a detached
// one on a nil hub.
func (h *Hub) ExecCounter(name string) *Counter {
	if h == nil {
		return &Counter{}
	}
	return h.reg.ExecCounter(name)
}

// Gauge registers the named gauge. No-op on a nil hub.
func (h *Hub) Gauge(name string, read func() float64) {
	if h == nil {
		return
	}
	h.reg.Gauge(name, read)
}

// ExecGauge registers the named execution-scope gauge. No-op on a nil hub.
func (h *Hub) ExecGauge(name string, read func() float64) {
	if h == nil {
		return
	}
	h.reg.ExecGauge(name, read)
}

// Histogram registers the named histogram, or returns a detached one on a
// nil hub.
func (h *Hub) Histogram(name string, bounds []float64) *Histogram {
	if h == nil {
		return NewHistogramBuckets(bounds)
	}
	return h.reg.Histogram(name, bounds)
}
