package obs

import (
	"reflect"
	"sync"
	"testing"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogramBuckets([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 5, 10, 50, 99, 100, 1000} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if want := []uint64{2, 3, 3, 1}; !reflect.DeepEqual(snap.Counts, want) {
		t.Fatalf("counts = %v, want %v", snap.Counts, want)
	}
	if snap.Count != 9 {
		t.Fatalf("count = %d, want 9", snap.Count)
	}
	if snap.Sum != 0.5+1+2+5+10+50+99+100+1000 {
		t.Fatalf("sum = %v", snap.Sum)
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %v, want 10 (bucket upper bound)", got)
	}
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("p99 = %v, want 100 (largest finite bound for +Inf bucket)", got)
	}
	if got := h.Quantile(0.1); got != 1 {
		t.Errorf("p10 = %v, want 1", got)
	}
}

func TestHistogramDeterministicSnapshots(t *testing.T) {
	// Same observations in different orders → identical snapshots.
	a := NewHistogramBuckets(LatencyBucketsMs)
	b := NewHistogramBuckets(LatencyBucketsMs)
	vals := []float64{0.1, 3, 3, 47, 999, 59999, 1e6}
	for _, v := range vals {
		a.Observe(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Observe(vals[i])
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatalf("order-dependent snapshots:\n%+v\n%+v", a.Snapshot(), b.Snapshot())
	}
}

func TestHistogramNilAndEmpty(t *testing.T) {
	var h *Histogram
	h.Observe(5) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram leaked state")
	}
	e := NewHistogramBuckets([]float64{1, 2})
	if e.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewHistogramBuckets([]float64{1, 1})
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	if want := []float64{1, 10, 100, 1000}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
	if ExpBuckets(0, 2, 3) != nil || ExpBuckets(1, 1, 3) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Fatal("invalid ExpBuckets inputs should return nil")
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines; run under
// -race this is the histogram's thread-safety proof, and the final count
// and sum must be exact regardless.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogramBuckets([]float64{10, 100, 1000})
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 2000))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var wantSum float64
	for i := 0; i < per; i++ {
		wantSum += float64(i % 2000)
	}
	wantSum *= workers
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}
