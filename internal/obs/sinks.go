package obs

import (
	"bufio"
	"io"
	"strconv"
)

// JSONLSink encodes events one JSON object per line. The encoding is
// hand-rolled so two identical simulations produce byte-identical streams
// (no map ordering, no reflection, fixed float formatting).
type JSONLSink struct {
	w *bufio.Writer
	c io.Closer
}

// NewJSONL builds a line-delimited JSON sink over w. If w is an io.Closer
// it is closed by Close.
func NewJSONL(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Write encodes one event.
func (s *JSONLSink) Write(e Event) error {
	buf := make([]byte, 0, 128)
	buf = append(buf, `{"cycle":`...)
	buf = strconv.AppendUint(buf, e.Cycle, 10)
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, e.Kind.String()...)
	buf = append(buf, `","cat":"`...)
	buf = append(buf, e.Cat...)
	buf = append(buf, `","name":"`...)
	buf = append(buf, e.Name...)
	buf = append(buf, `","id":`...)
	buf = strconv.AppendInt(buf, int64(e.ID), 10)
	buf = append(buf, `,"addr":`...)
	buf = strconv.AppendUint(buf, e.Addr, 10)
	buf = append(buf, `,"v":`...)
	buf = appendJSONFloat(buf, e.V)
	buf = append(buf, `,"dur":`...)
	buf = strconv.AppendUint(buf, e.Dur, 10)
	buf = append(buf, '}', '\n')
	_, err := s.w.Write(buf)
	return err
}

// Close flushes and closes the underlying writer.
func (s *JSONLSink) Close() error {
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ChromeSink encodes events in the Chrome trace_event JSON array format
// for chrome://tracing / Perfetto. Spans become complete ("X") events with
// the bank/chip index as the track (tid); instants become thread-scoped
// "i" events; meters become counter ("C") tracks.
type ChromeSink struct {
	w           *bufio.Writer
	c           io.Closer
	cyclesPerUs float64
	wrote       bool
}

// NewChrome builds a Chrome trace_event sink over w. cyclesPerUs converts
// simulation cycles to trace microseconds (4000 for the default 4 GHz
// clock); values <= 0 default to 4000.
func NewChrome(w io.Writer, cyclesPerUs float64) *ChromeSink {
	if cyclesPerUs <= 0 {
		cyclesPerUs = 4000
	}
	s := &ChromeSink{w: bufio.NewWriter(w), cyclesPerUs: cyclesPerUs}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	s.w.WriteString("[\n")
	return s
}

func (s *ChromeSink) appendTs(buf []byte, cycle uint64) []byte {
	return strconv.AppendFloat(buf, float64(cycle)/s.cyclesPerUs, 'f', 3, 64)
}

// Write encodes one event.
func (s *ChromeSink) Write(e Event) error {
	buf := make([]byte, 0, 160)
	if s.wrote {
		buf = append(buf, ',', '\n')
	}
	s.wrote = true
	tid := e.ID
	if tid < 0 {
		tid = 0
	}
	buf = append(buf, `{"name":"`...)
	buf = append(buf, e.Name...)
	buf = append(buf, `","cat":"`...)
	buf = append(buf, e.Cat...)
	buf = append(buf, `","pid":0,"tid":`...)
	buf = strconv.AppendInt(buf, int64(tid), 10)
	switch e.Kind {
	case Span:
		// ts is the span start; Cycle records the end.
		buf = append(buf, `,"ph":"X","ts":`...)
		buf = s.appendTs(buf, e.Cycle-e.Dur)
		buf = append(buf, `,"dur":`...)
		buf = s.appendTs(buf, e.Dur)
	case Meter:
		buf = append(buf, `,"ph":"C","ts":`...)
		buf = s.appendTs(buf, e.Cycle)
	default:
		buf = append(buf, `,"ph":"i","s":"t","ts":`...)
		buf = s.appendTs(buf, e.Cycle)
	}
	buf = append(buf, `,"args":{"addr":`...)
	buf = strconv.AppendUint(buf, e.Addr, 10)
	buf = append(buf, `,"value":`...)
	buf = appendJSONFloat(buf, e.V)
	buf = append(buf, `}}`...)
	_, err := s.w.Write(buf)
	return err
}

// Close terminates the JSON array, flushes, and closes the underlying
// writer.
func (s *ChromeSink) Close() error {
	s.w.WriteString("\n]\n")
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
