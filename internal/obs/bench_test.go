package obs_test

import (
	"testing"

	"fpb/internal/obs"
	"fpb/internal/sim"
)

// The kernel hot loop pays for observability in exactly two places: the
// engine's nil-checked dispatch hook and Tracing() guards in front of every
// Emit. These benchmarks pin both costs at (near) zero when no tracer is
// attached — compare BenchmarkDispatchNoHub against the other two.

// BenchmarkDispatchNoHub is the baseline: bare engine, no hub anywhere.
func BenchmarkDispatchNoHub(b *testing.B) {
	e := sim.NewEngine()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(sim.Cycle(i%1000), fn)
		if i%64 == 0 {
			e.Run(0)
		}
	}
	e.Run(0)
}

// BenchmarkDispatchNilTracerGuard models the production configuration: a
// hub exists but no tracer is set, so every dispatch takes the Tracing()
// false branch and constructs no event.
func BenchmarkDispatchNilTracerGuard(b *testing.B) {
	e := sim.NewEngine()
	h := obs.NewHub()
	fn := func() {
		if h.Tracing() {
			h.Emit(obs.Event{Kind: obs.Instant, Cat: "engine", Name: "dispatch", ID: -1})
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(sim.Cycle(i%1000), fn)
		if i%64 == 0 {
			e.Run(0)
		}
	}
	e.Run(0)
}

// BenchmarkDispatchHookInstalled measures the dispatch hook itself (the
// "engine" trace category) with a tracer that admits nothing, i.e. the
// worst case a user can configure short of actually writing records.
func BenchmarkDispatchHookInstalled(b *testing.B) {
	e := sim.NewEngine()
	h := obs.NewHub()
	e.SetDispatchHook(func(now sim.Cycle, ran uint64) {
		if h.Tracing() {
			h.Emit(obs.Event{Cycle: uint64(now), Kind: obs.Instant, Cat: "engine",
				Name: "dispatch", ID: -1, V: float64(ran)})
		}
	})
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(sim.Cycle(i%1000), fn)
		if i%64 == 0 {
			e.Run(0)
		}
	}
	e.Run(0)
}
