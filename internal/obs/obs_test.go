package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryCounterGauge(t *testing.T) {
	h := NewHub()
	c := h.Counter("a.b.count")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	x := 2.5
	h.Gauge("a.b.gauge", func() float64 { return x })
	if v, ok := h.Registry().Value("a.b.gauge"); !ok || v != 2.5 {
		t.Fatalf("gauge = %v, %v", v, ok)
	}
	x = 7
	if v, _ := h.Registry().Value("a.b.gauge"); v != 7 {
		t.Fatalf("gauge did not track source: %v", v)
	}
	// Same-name counter registration returns the same counter.
	if h.Counter("a.b.count") != c {
		t.Fatal("re-registration returned a different counter")
	}
	snap := h.Registry().Snapshot()
	if len(snap) != 2 || snap[0].Name != "a.b.count" || snap[1].Name != "a.b.gauge" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Kind != KindCounter || snap[1].Kind != KindGauge {
		t.Fatalf("kinds = %v, %v", snap[0].Kind, snap[1].Kind)
	}
}

func TestNilHubIsSafe(t *testing.T) {
	var h *Hub
	c := h.Counter("x")
	c.Inc() // detached but functional
	if c.Value() != 1 {
		t.Fatal("detached counter broken")
	}
	h.Gauge("y", func() float64 { return 1 })
	h.Emit(Event{Cat: "mem", Name: "e"})
	h.SetClock(func() uint64 { return 9 })
	h.SetTracer(NewTracer())
	if h.Tracing() || h.Registry() != nil || h.Now() != 0 {
		t.Fatal("nil hub leaked state")
	}
}

func TestRegistryJSONDeterministic(t *testing.T) {
	h := NewHub()
	h.Counter("b.n").Add(3)
	h.Gauge("a.g", func() float64 { return 1.5 })
	var buf1, buf2 bytes.Buffer
	if err := h.Registry().WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := h.Registry().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("two dumps differ")
	}
	var m map[string]float64
	if err := json.Unmarshal(buf1.Bytes(), &m); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf1.String())
	}
	if m["a.g"] != 1.5 || m["b.n"] != 3 {
		t.Fatalf("decoded = %v", m)
	}
	// Keys must appear in sorted order in the raw bytes.
	if strings.Index(buf1.String(), "a.g") > strings.Index(buf1.String(), "b.n") {
		t.Fatalf("keys unsorted:\n%s", buf1.String())
	}
}

func TestTracerFilterAndSampling(t *testing.T) {
	var lines bytes.Buffer
	tr := NewTracer(NewJSONL(&lines))
	// Default filter: everything except "engine".
	if !tr.Enabled("mem") || tr.Enabled("engine") {
		t.Fatal("default filter wrong")
	}
	tr.Emit(Event{Cat: "engine", Name: "dispatch"})
	tr.Emit(Event{Cat: "mem", Name: "keep"})
	tr.FilterCats("power")
	tr.Emit(Event{Cat: "mem", Name: "dropped"})
	tr.Emit(Event{Cat: "power", Name: "kept2"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	got := lines.String()
	if strings.Contains(got, "dispatch") || strings.Contains(got, "dropped") {
		t.Fatalf("filter leaked:\n%s", got)
	}
	if !strings.Contains(got, "keep") || !strings.Contains(got, "kept2") {
		t.Fatalf("filter over-dropped:\n%s", got)
	}

	lines.Reset()
	tr = NewTracer(NewJSONL(&lines))
	tr.Sample(10)
	for i := 0; i < 100; i++ {
		tr.Emit(Event{Cat: "mem", Name: "e"})
	}
	tr.Close()
	if n := strings.Count(lines.String(), "\n"); n != 10 {
		t.Fatalf("sampled %d events, want 10", n)
	}
}

func TestJSONLLinesAreValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewJSONL(&buf))
	tr.Emit(Event{Cycle: 42, Kind: Span, Cat: "mem", Name: "write", ID: 3, Addr: 0x1000, V: 12.5, Dur: 7})
	tr.Emit(Event{Cycle: 50, Kind: Meter, Cat: "power", Name: "gcp.tokens", ID: -1, V: 66.5})
	tr.Close()
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
	}
}

func TestChromeSinkValidTraceEvent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewChrome(&buf, 4000))
	tr.Emit(Event{Cycle: 8000, Kind: Span, Cat: "mem", Name: "write", ID: 2, Addr: 64, V: 3, Dur: 4000})
	tr.Emit(Event{Cycle: 9000, Kind: Instant, Cat: "mem", Name: "write.cancel", ID: 2})
	tr.Emit(Event{Cycle: 9500, Kind: Meter, Cat: "power", Name: "gcp.tokens", ID: -1, V: 12})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid trace_event JSON: %v\n%s", err, buf.String())
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0]["ph"] != "X" || evs[0]["dur"] != 1.0 || evs[0]["ts"] != 1.0 {
		t.Fatalf("span encoded wrong: %v", evs[0])
	}
	if evs[1]["ph"] != "i" || evs[2]["ph"] != "C" {
		t.Fatalf("phases wrong: %v / %v", evs[1]["ph"], evs[2]["ph"])
	}
}

func TestProberCSV(t *testing.T) {
	h := NewHub()
	depth := 0.0
	h.Gauge("mem.wrq.depth", func() float64 { return depth })
	h.Counter("mem.writes.done").Add(2)
	var buf bytes.Buffer
	p := NewProber(h.Registry(), &buf)
	p.Sample(1000)
	depth = 5
	p.Sample(2000)
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	want := "cycle,mem.writes.done,mem.wrq.depth\n1000,2,0\n2000,2,5\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
	if p.Rows() != 2 {
		t.Fatalf("rows = %d", p.Rows())
	}
}
