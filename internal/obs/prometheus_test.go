package obs

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

var (
	promNameRE   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
)

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"serve.jobs.accepted":        "serve_jobs_accepted",
		"power.chip.3.tokens_in_use": "power_chip_3_tokens_in_use",
		"3bad":                       "_3bad",
		"already_fine:total":         "already_fine:total",
		"spaces and-dashes":          "spaces_and_dashes",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
		if !promNameRE.MatchString(PromName(in)) {
			t.Errorf("PromName(%q) = %q is not a valid metric name", in, PromName(in))
		}
	}
}

// TestWritePrometheusValid builds a registry shaped like the serving
// daemon's and checks every line of the exposition: names valid, HELP/TYPE
// present for every series, samples parseable, ordering stable.
func TestWritePrometheusValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.jobs.accepted").Add(12)
	r.Counter("serve.jobs.done").Add(10)
	r.Gauge("serve.queue.depth", func() float64 { return 3 })
	r.SetHelp("serve.queue.depth", "jobs waiting for a worker")
	h := r.Histogram("serve.job.sim_ms", []float64{10, 100, 1000})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	r.ExecGauge("sim.shard.windows", func() float64 { return 7 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	var sampleNames []string
	typeSeen := map[string]string{}
	helpSeen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || !promNameRE.MatchString(parts[0]) {
				t.Fatalf("bad HELP line: %q", line)
			}
			helpSeen[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(parts) != 2 || !promNameRE.MatchString(parts[0]) {
				t.Fatalf("bad TYPE line: %q", line)
			}
			if parts[1] != "counter" && parts[1] != "gauge" && parts[1] != "histogram" {
				t.Fatalf("bad TYPE value: %q", line)
			}
			typeSeen[parts[0]] = parts[1]
		default:
			m := promSampleRE.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("unparseable sample line: %q", line)
			}
			sampleNames = append(sampleNames, m[1])
		}
	}
	if typeSeen["serve_jobs_accepted"] != "counter" ||
		typeSeen["serve_queue_depth"] != "gauge" ||
		typeSeen["serve_job_sim_ms"] != "histogram" {
		t.Fatalf("TYPE lines wrong: %v", typeSeen)
	}
	if !helpSeen["serve_queue_depth"] {
		t.Fatal("missing HELP for serve_queue_depth")
	}
	// Histogram triplet, with cumulative buckets ending in +Inf.
	for _, want := range []string{
		`serve_job_sim_ms_bucket{le="10"} 1`,
		`serve_job_sim_ms_bucket{le="100"} 2`,
		`serve_job_sim_ms_bucket{le="1000"} 2`,
		`serve_job_sim_ms_bucket{le="+Inf"} 3`,
		`serve_job_sim_ms_sum 5055`,
		`serve_job_sim_ms_count 3`,
		`sim_shard_windows 7`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Two expositions must be byte-identical (stable ordering).
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("exposition is not byte-stable across writes")
	}
}

func TestParsePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(4)
	r.Gauge("b.gauge", func() float64 { return 2.5 })
	h := r.Histogram("c.lat_ms", []float64{10, 100})
	h.Observe(5)
	h.Observe(500)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, bad := ParsePrometheus(buf.String())
	if len(bad) != 0 {
		t.Fatalf("unparseable lines: %v", bad)
	}
	if samples["a_count"] != 4 || samples["b_gauge"] != 2.5 || samples["c_lat_ms_count"] != 2 {
		t.Fatalf("samples = %v", samples)
	}
	if v, ok := HistogramQuantile(samples, "c_lat_ms", 0.5); !ok || v != 10 {
		t.Fatalf("p50 from scrape = %v, %v; want 10", v, ok)
	}
	if v, ok := HistogramQuantile(samples, "c_lat_ms", 0.99); !ok || v != 100 {
		t.Fatalf("p99 from scrape = %v, %v; want 100 (largest finite bound)", v, ok)
	}
	if _, ok := HistogramQuantile(samples, "missing", 0.5); ok {
		t.Fatal("quantile of missing metric reported ok")
	}
}

// TestEncodeSeriesGolden freezes the legacy JSON byte format: this exact
// output predates the Prometheus exposition and is what stored sim results
// and the /metrics JSON view use, so it must never drift.
func TestEncodeSeriesGolden(t *testing.T) {
	series := map[string]float64{
		"serve.jobs.accepted":  3,
		"serve.latency_ms.p50": 12.5,
		"mem.wrq.depth":        0,
		"weird.nan":            nan(),
	}
	const want = "{\n" +
		"  \"mem.wrq.depth\": 0,\n" +
		"  \"serve.jobs.accepted\": 3,\n" +
		"  \"serve.latency_ms.p50\": 12.5,\n" +
		"  \"weird.nan\": null\n" +
		"}\n"
	var buf bytes.Buffer
	if err := EncodeSeries(&buf, series); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Fatalf("legacy JSON format drifted:\ngot:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func nan() float64 {
	v := 0.0
	return v / v
}
