package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format (version
// 0.0.4) for a Registry: every series — counters, gauges (both scopes) and
// histograms — is emitted with sanitized names, # HELP/# TYPE headers, and
// stable (sorted) ordering, so scrapes are diffable and the golden tests
// can pin the layout.

// PrometheusContentType is the Content-Type HTTP header value for the text
// exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes a dotted hierarchical series name into a valid
// Prometheus metric name: dots and any other invalid runes become
// underscores, and a leading digit is prefixed with one.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			r >= '0' && r <= '9' && i > 0
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if valid {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func appendPromFloat(buf []byte, v float64) []byte {
	switch {
	case v != v:
		return append(buf, "NaN"...)
	case v > 1.797e308:
		return append(buf, "+Inf"...)
	case v < -1.797e308:
		return append(buf, "-Inf"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// WritePrometheus writes every registered series in the Prometheus text
// exposition format, sorted by name. Counter samples are cumulative totals,
// gauge samples instantaneous reads, histograms the standard
// _bucket{le=...}/_sum/_count triplet with cumulative bucket counts.
//
// Gauge read closures run outside the registry lock, under whatever
// synchronization their registrant documented (internal/serve calls this
// while holding its own mutex, matching its gauge contract).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := r.namesLocked()
	type series struct {
		name string
		m    metric
		h    *Histogram
		help string
	}
	all := make([]series, 0, len(names))
	for _, n := range names {
		all = append(all, series{name: n, m: r.metrics[n], h: r.hists[n], help: r.help[n]})
	}
	r.mu.Unlock()

	buf := make([]byte, 0, 64*len(all))
	for _, s := range all {
		pn := PromName(s.name)
		help := s.help
		if help == "" {
			help = "series " + s.name
		}
		buf = append(buf, "# HELP "...)
		buf = append(buf, pn...)
		buf = append(buf, ' ')
		buf = append(buf, escapeHelp(help)...)
		buf = append(buf, '\n')
		buf = append(buf, "# TYPE "...)
		buf = append(buf, pn...)
		buf = append(buf, ' ')
		buf = append(buf, s.m.kind.String()...)
		buf = append(buf, '\n')
		if s.m.kind == KindHistogram && s.h != nil {
			buf = appendPromHistogram(buf, pn, s.h.Snapshot())
			continue
		}
		buf = append(buf, pn...)
		buf = append(buf, ' ')
		buf = appendPromFloat(buf, s.m.read())
		buf = append(buf, '\n')
	}
	_, err := w.Write(buf)
	return err
}

func appendPromHistogram(buf []byte, pn string, snap HistogramSnapshot) []byte {
	var cum uint64
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		buf = append(buf, pn...)
		buf = append(buf, `_bucket{le="`...)
		buf = appendPromFloat(buf, bound)
		buf = append(buf, `"} `...)
		buf = strconv.AppendUint(buf, cum, 10)
		buf = append(buf, '\n')
	}
	cum += snap.Counts[len(snap.Bounds)]
	buf = append(buf, pn...)
	buf = append(buf, `_bucket{le="+Inf"} `...)
	buf = strconv.AppendUint(buf, cum, 10)
	buf = append(buf, '\n')
	buf = append(buf, pn...)
	buf = append(buf, "_sum "...)
	buf = appendPromFloat(buf, snap.Sum)
	buf = append(buf, '\n')
	buf = append(buf, pn...)
	buf = append(buf, "_count "...)
	buf = strconv.AppendUint(buf, snap.Count, 10)
	buf = append(buf, '\n')
	return buf
}

// ParsePrometheus parses the subset of the text exposition format that
// WritePrometheus emits — `name value` and `name{le="bound"} value` sample
// lines — into a flat map (bucket samples keyed as `name{le="bound"}`).
// Comment and blank lines are skipped. It is the scrape-side counterpart
// used by cmd/fpbtop and the exposition tests; unparseable lines are
// reported in the returned slice rather than aborting the scrape.
func ParsePrometheus(text string) (map[string]float64, []string) {
	out := make(map[string]float64)
	var bad []string
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			bad = append(bad, line)
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			bad = append(bad, line)
			continue
		}
		out[line[:sp]] = v
	}
	return out, bad
}

// HistogramQuantile estimates a quantile from scraped cumulative
// `name{le=...}` bucket samples (as produced by ParsePrometheus over a
// WritePrometheus exposition), with the same bucket-upper-bound
// quantization as Histogram.Quantile. ok is false when no buckets for the
// metric are present or the histogram is empty.
func HistogramQuantile(samples map[string]float64, name string, q float64) (float64, bool) {
	prefix := name + `_bucket{le="`
	type bkt struct {
		le  float64
		cum float64
	}
	var buckets []bkt
	for k, v := range samples {
		if !strings.HasPrefix(k, prefix) || !strings.HasSuffix(k, `"}`) {
			continue
		}
		les := k[len(prefix) : len(k)-2]
		le, err := strconv.ParseFloat(les, 64)
		if err != nil {
			if les == "+Inf" {
				le = math.Inf(1)
			} else {
				continue
			}
		}
		buckets = append(buckets, bkt{le: le, cum: v})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, false
	}
	target := q * total
	var lastFinite float64
	for _, b := range buckets {
		if !math.IsInf(b.le, 1) {
			lastFinite = b.le
		}
		if b.cum >= target && b.cum > 0 {
			if math.IsInf(b.le, 1) {
				return lastFinite, true
			}
			return b.le, true
		}
	}
	return lastFinite, true
}
