package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution safe for concurrent use: values
// are counted into the first bucket whose upper bound is >= the observation,
// with an implicit +Inf bucket catching the tail. Buckets are fixed at
// construction so snapshots are deterministic: two histograms fed the same
// observations in any order produce identical snapshots.
//
// The zero value is not usable; construct with NewHistogramBuckets or
// Registry.Histogram. All methods are no-ops (or zero) on a nil *Histogram
// so optional instrumentation needs no guards.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits, CAS-updated
}

// LatencyBucketsMs is the default bucket layout for millisecond latencies:
// sub-millisecond to one minute, roughly logarithmic.
var LatencyBucketsMs = []float64{
	0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 30000, 60000,
}

// ExpBuckets returns n ascending bounds starting at start, each factor
// times the previous — the usual way to cover several orders of magnitude
// with few buckets.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// NewHistogramBuckets builds a histogram over the given ascending upper
// bounds (a copy is taken). Non-ascending bounds panic: silently reordering
// would corrupt every downstream percentile.
func NewHistogramBuckets(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Bucket search is linear: layouts are small (tens of buckets) and the
	// common observations land early.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Reset zeroes every bucket, the count, and the sum, keeping the bucket
// layout (the warmup-barrier stats reset).
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean reports the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 < q <= 1), quantized to bucket
// upper bounds: it returns the upper bound of the bucket holding the
// rank-q observation. Observations in the +Inf bucket report the largest
// finite bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || q <= 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a consistent-enough point-in-time copy: each bucket
// is loaded once, in order. Buckets are per-bound observation counts (not
// cumulative); Count is their total plus the +Inf tail.
type HistogramSnapshot struct {
	Bounds []float64 // ascending upper bounds; the +Inf bucket is Buckets[len(Bounds)]
	Counts []uint64  // len(Bounds)+1 per-bucket counts
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
