package obs

import (
	"io"
	"strconv"
)

// Prober writes periodic snapshots of every registered series as CSV: one
// header row ("cycle,<name>,...") followed by one row per sample. The
// column set is frozen at the first sample, so all component registration
// must happen before the run starts (it does: components register at
// construction).
//
// The prober is schedule-agnostic: the caller (internal/system) invokes
// Sample at its chosen cycle interval from the event loop. Rows are
// written unbuffered — sampling is orders of magnitude rarer than events,
// and an unbuffered stream means tests and crashed runs still see every
// completed row.
type Prober struct {
	reg   *Registry
	w     io.Writer
	names []string
	rows  uint64
	err   error
}

// NewProber builds a prober over the registry writing CSV to w.
func NewProber(reg *Registry, w io.Writer) *Prober {
	return &Prober{reg: reg, w: w}
}

// Rows reports how many data rows have been written.
func (p *Prober) Rows() uint64 { return p.rows }

// Err returns the first write error, if any.
func (p *Prober) Err() error { return p.err }

// Sample appends one row at the given cycle (writing the header first if
// this is the first sample).
func (p *Prober) Sample(cycle uint64) {
	if p == nil || p.reg == nil {
		return
	}
	if p.names == nil {
		p.names = p.reg.Names()
		buf := make([]byte, 0, 16*len(p.names))
		buf = append(buf, "cycle"...)
		for _, n := range p.names {
			buf = append(buf, ',')
			buf = append(buf, n...)
		}
		buf = append(buf, '\n')
		p.write(buf)
	}
	buf := make([]byte, 0, 12*len(p.names))
	buf = strconv.AppendUint(buf, cycle, 10)
	for _, n := range p.names {
		v, _ := p.reg.Value(n)
		buf = append(buf, ',')
		if v != v { // NaN has no CSV representation; leave the cell empty
			continue
		}
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
	}
	buf = append(buf, '\n')
	p.write(buf)
	p.rows++
}

func (p *Prober) write(buf []byte) {
	if _, err := p.w.Write(buf); err != nil && p.err == nil {
		p.err = err
	}
}
