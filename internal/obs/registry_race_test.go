package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestCounterConcurrent is the data-race guard behind sharing one registry
// between a daemon's worker pool and its HTTP handlers: counters are
// hammered from many goroutines while snapshots race them. Under `go test
// -race` this fails loudly if Counter ever regresses to a plain increment;
// without -race it still proves no increments are lost.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammered")
	const workers, per = 16, 50_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	// Snapshot and JSON-dump concurrently with the increments: the reads
	// must be race-free even mid-hammer.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Snapshot()
			var buf bytes.Buffer
			_ = r.WriteJSON(&buf)
			_, _ = r.Value("hammered")
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != workers*per {
		t.Fatalf("lost increments: %d, want %d", got, workers*per)
	}
}

// TestRegistryConcurrentRegistration races registration of distinct and
// identical names from many goroutines: same-name registrations must
// converge on one counter.
func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	counters := make([]*Counter, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			counters[w] = r.Counter("shared")
			r.Counter("own." + string(rune('a'+w))).Inc()
			r.Gauge("g."+string(rune('a'+w)), func() float64 { return 1 })
			r.Histogram("h.shared", []float64{1, 2}).Observe(1)
		}(w)
	}
	wg.Wait()
	for _, c := range counters[1:] {
		if c != counters[0] {
			t.Fatal("same-name registration returned different counters")
		}
	}
	if r.Len() != 1+8+8+1 {
		t.Fatalf("len = %d, want 18", r.Len())
	}
	if r.Histogram("h.shared", nil).Count() != 8 {
		t.Fatal("histogram re-registration did not converge")
	}
}

func TestNilCounterSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter leaked state")
	}
}

// TestExecScopeExcludedFromValues: exec-scope series appear in Names,
// Snapshot and the Prometheus exposition, but never in Values()/WriteJSON —
// that is what keeps Result.Metrics identical whichever engine executed a
// run.
func TestExecScopeExcludedFromValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("model.count").Inc()
	r.ExecCounter("exec.count").Add(5)
	r.Gauge("model.gauge", func() float64 { return 1 })
	r.ExecGauge("exec.gauge", func() float64 { return 2 })
	r.Histogram("model.hist", []float64{1}).Observe(1)

	vals := r.Values()
	if _, ok := vals["exec.count"]; ok {
		t.Error("exec counter leaked into Values()")
	}
	if _, ok := vals["exec.gauge"]; ok {
		t.Error("exec gauge leaked into Values()")
	}
	if _, ok := vals["model.hist"]; ok {
		t.Error("histogram leaked into Values()")
	}
	if vals["model.count"] != 1 || vals["model.gauge"] != 1 {
		t.Errorf("model values wrong: %v", vals)
	}

	if got := len(r.Names()); got != 5 {
		t.Errorf("Names() = %d series, want 5 (all scopes)", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"exec_count 5", "exec_gauge 2", "model_count 1", "model_hist_count 1"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, buf.String())
		}
	}
}
