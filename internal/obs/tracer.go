package obs

// EventKind distinguishes the three trace record shapes.
type EventKind uint8

const (
	// Instant is a point-in-time marker (write cancel, token borrow).
	Instant EventKind = iota
	// Span is a completed interval; Cycle is the end, Dur the length.
	Span
	// Meter is a sampled scalar (queue depth, pool occupancy) rendered as
	// a counter track by chrome://tracing.
	Meter
)

func (k EventKind) String() string {
	switch k {
	case Instant:
		return "instant"
	case Span:
		return "span"
	case Meter:
		return "meter"
	}
	return "?"
}

// Event is one trace record. Fields are fixed scalars (no maps) so
// encoding is allocation-light and byte-deterministic.
type Event struct {
	Cycle uint64    // simulation cycle (end cycle for spans)
	Kind  EventKind // record shape
	Cat   string    // component category: "mem", "power", "core", "engine"
	Name  string    // event name, e.g. "write.issue"
	ID    int       // bank/chip/core index; -1 when not applicable
	Addr  uint64    // line address; 0 when not applicable
	V     float64   // primary value (tokens, cells, depth)
	Dur   uint64    // span length in cycles; 0 for instants/meters
}

// Sink consumes encoded trace events.
type Sink interface {
	Write(e Event) error
	Close() error
}

// Tracer fans events out to its sinks, applying a category filter and
// 1-in-N sampling. It is single-goroutine, like the simulation that feeds
// it.
//
// The "engine" category (per-dispatch events) is opt-in: it fires once per
// simulation event and would dwarf every other stream, so the default
// filter covers every category except it. Call FilterCats to choose
// explicitly.
type Tracer struct {
	sinks []Sink
	cats  map[string]bool // nil = all except "engine"
	every uint64          // keep 1 of every N events (0/1 = all)
	n     uint64
	err   error // first sink error, reported by Close
}

// NewTracer builds a tracer over the sinks.
func NewTracer(sinks ...Sink) *Tracer {
	return &Tracer{sinks: sinks}
}

// FilterCats restricts emission to exactly the given categories.
func (t *Tracer) FilterCats(cats ...string) {
	t.cats = make(map[string]bool, len(cats))
	for _, c := range cats {
		t.cats[c] = true
	}
}

// Sample keeps only every Nth surviving event (0 or 1 keeps all). Sampling
// applies uniformly after category filtering; spans are emitted once, at
// completion, so sampling never splits a record.
func (t *Tracer) Sample(every uint64) { t.every = every }

// Enabled reports whether events of the category pass the filter.
func (t *Tracer) Enabled(cat string) bool {
	if t == nil {
		return false
	}
	if t.cats == nil {
		return cat != "engine"
	}
	return t.cats[cat]
}

// Emit records one event.
func (t *Tracer) Emit(e Event) {
	if !t.Enabled(e.Cat) {
		return
	}
	t.n++
	if t.every > 1 && t.n%t.every != 0 {
		return
	}
	for _, s := range t.sinks {
		if err := s.Write(e); err != nil && t.err == nil {
			t.err = err
		}
	}
}

// Close closes every sink and returns the first error seen anywhere.
func (t *Tracer) Close() error {
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}
