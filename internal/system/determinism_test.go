package system

import (
	"reflect"
	"testing"

	"fpb/internal/sim"
)

// TestRunWorkloadDeterministic is the cross-check behind the repo's
// bit-identical-output guarantee: two completely independent Systems
// built from the same configuration must agree on every result field —
// including pooled-object hot paths (event queue, profiles, plans,
// grants, store pages), whose reuse order must never leak into results.
func TestRunWorkloadDeterministic(t *testing.T) {
	cfgs := []func() sim.Config{
		func() sim.Config {
			cfg := sim.DefaultConfig()
			cfg.Scheme = sim.SchemeGCPIPM
			cfg.InstrPerCore = 20000
			return cfg
		},
		func() sim.Config {
			cfg := sim.DefaultConfig()
			cfg.Scheme = sim.SchemeGCPIPMMR
			cfg.WriteCancellation = true
			cfg.WritePausing = true
			cfg.InstrPerCore = 20000
			return cfg
		},
		func() sim.Config {
			cfg := sim.DefaultConfig()
			cfg.Scheme = sim.SchemeIdeal
			cfg.InstrPerCore = 20000
			return cfg
		},
	}
	for _, mk := range cfgs {
		for _, wl := range []string{"mcf_m", "mix_1"} {
			a, err := RunWorkload(mk(), wl)
			if err != nil {
				t.Fatalf("%s: %v", wl, err)
			}
			b, err := RunWorkload(mk(), wl)
			if err != nil {
				t.Fatalf("%s: %v", wl, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: two identical runs diverged:\n  first:  %+v\n  second: %+v",
					wl, a.Scheme, a, b)
			}
		}
	}
}
