package system

import (
	"testing"

	"fpb/internal/sim"
	"fpb/internal/trace"
	"fpb/internal/workload"
)

func TestBuildFromSourcesRuns(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeIdeal
	cfg.InstrPerCore = 2_000
	cfg.L3SizeMB = 1
	sources := make([]trace.Source, cfg.Cores)
	classes := make([]workload.ValueClass, cfg.Cores)
	for i := range sources {
		var accs []trace.Access
		for k := 0; k < 3000; k++ {
			accs = append(accs, trace.Access{
				Gap:   3,
				Write: k%3 == 0,
				Addr:  uint64(i)<<40 | uint64(k)*256,
			})
		}
		sources[i] = trace.NewSliceSource(accs)
		classes[i] = workload.ValueStream
	}
	sys, err := BuildFromSources(cfg, sources, classes)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if res.Instrs == 0 || res.DemandReads == 0 {
		t.Fatalf("replay produced no activity: %+v", res)
	}
}

func TestBuildFromSourcesValidates(t *testing.T) {
	cfg := sim.DefaultConfig()
	if _, err := BuildFromSources(cfg, nil, nil); err == nil {
		t.Error("mismatched source count accepted")
	}
	bad := cfg
	bad.Cores = 0
	if _, err := BuildFromSources(bad, nil, nil); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestParseValueClassRoundTrip(t *testing.T) {
	for _, v := range []workload.ValueClass{
		workload.ValueInt, workload.ValueFP, workload.ValueByte, workload.ValueStream,
	} {
		got, ok := workload.ParseValueClass(v.String())
		if !ok || got != v {
			t.Errorf("round trip failed for %v", v)
		}
	}
	if _, ok := workload.ParseValueClass("nonsense"); ok {
		t.Error("nonsense parsed")
	}
}
