package system

import (
	"reflect"
	"runtime"
	"testing"

	"fpb/internal/ckpt"
	"fpb/internal/sim"
	"fpb/internal/workload"
)

// warmTestCfg is a small-but-real warmup configuration: long enough for
// warmup to push writes through the PCM array, short enough for the matrix
// tests below.
func warmTestCfg(scheme sim.Scheme) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scheme = scheme
	cfg.InstrPerCore = 6000
	cfg.WarmupCycles = 60_000
	cfg.WarmupScheme = sim.SchemeDIMMChip
	return cfg
}

// captureImage runs cfg cold and returns (result, barrier image).
func captureImage(t *testing.T, cfg sim.Config, wl string) (Result, []byte) {
	t.Helper()
	w, err := workload.ByName(wl, cfg.Cores)
	if err != nil {
		t.Fatalf("workload %s: %v", wl, err)
	}
	sys, err := Build(cfg, w)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var img []byte
	sys.SetBarrierHook(func(s *System) { img = s.EncodeCheckpoint() })
	res := sys.Run()
	res.Workload = wl
	sys.Release()
	if img == nil {
		t.Fatalf("barrier hook never fired (WarmupCycles %d)", cfg.WarmupCycles)
	}
	return res, img
}

// TestCheckpointRestoreBitIdentical is the core guarantee: a run restored
// from a barrier checkpoint produces a Result deep-equal (every metric, every
// registry series) to the uninterrupted run that produced the image — across
// the policy dimensions the restore path has to rebind (scheme, mapping,
// Multi-RESET, WC/WP, PWL).
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	cfgs := []func() sim.Config{
		func() sim.Config { return warmTestCfg(sim.SchemeDIMMChip) },
		func() sim.Config {
			cfg := warmTestCfg(sim.SchemeGCPIPMMR)
			cfg.CellMapping = sim.MapBIM
			cfg.WriteCancellation = true
			cfg.WritePausing = true
			cfg.PWL = true
			return cfg
		},
	}
	for _, mk := range cfgs {
		cfg := mk()
		cold, img := captureImage(t, cfg, "mcf_m")
		sys, err := RestoreSystem(mk(), "mcf_m", img)
		if err != nil {
			t.Fatalf("%s: restore: %v", cfg.Scheme, err)
		}
		res := sys.Run()
		res.Workload = "mcf_m"
		sys.Release()
		if !reflect.DeepEqual(cold, res) {
			t.Errorf("%s: restored run diverged from cold run:\n  cold:     %+v\n  restored: %+v",
				cfg.Scheme, cold, res)
		}
	}
}

// TestCheckpointDeterminismMatrix checks the restore guarantee holds for
// every execution engine: one image, restored and run under shard counts
// {0, 2, 8} and GOMAXPROCS {1, all}, must match the sequential cold run
// exactly. Shards and GOMAXPROCS are wall-clock knobs, never model inputs.
func TestCheckpointDeterminismMatrix(t *testing.T) {
	cfg := warmTestCfg(sim.SchemeGCPIPM)
	cold, img := captureImage(t, cfg, "mix_1")
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, shards := range []int{0, 2, 8} {
		for _, procs := range []int{1, runtime.NumCPU()} {
			runtime.GOMAXPROCS(procs)
			rcfg := warmTestCfg(sim.SchemeGCPIPM)
			rcfg.Shards = shards
			sys, err := RestoreSystem(rcfg, "mix_1", img)
			if err != nil {
				t.Fatalf("shards=%d: restore: %v", shards, err)
			}
			res := sys.Run()
			res.Workload = "mix_1"
			sys.Release()
			// Shards is an execution knob: results must match the
			// sequential run even though rcfg differs in that field.
			res2 := res
			if !reflect.DeepEqual(cold, res2) {
				t.Errorf("shards=%d procs=%d: restored run diverged from sequential cold run",
					shards, procs)
			}
		}
	}
}

// TestCheckpointColdPathShardInvariant checks the *producing* side of the
// matrix: a cold warmup run under the parallel engine equals the sequential
// one (the barrier drain and quiesce sequence must not depend on execution).
func TestCheckpointColdPathShardInvariant(t *testing.T) {
	mk := func(shards int) sim.Config {
		cfg := warmTestCfg(sim.SchemeGCPIPMMR)
		cfg.Shards = shards
		return cfg
	}
	seq, err := RunWorkload(mk(0), "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunWorkload(mk(4), "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("cold warmup run diverged between sequential and 4-shard engines:\n  seq: %+v\n  par: %+v", seq, par)
	}
}

// TestCheckpointExactResume is the extend-a-run path: one image serves every
// measurement budget, so restoring with a doubled InstrPerCore must equal a
// cold warmup run at the doubled budget. (The checkpoint key zeroes
// InstrPerCore for exactly this reason.)
func TestCheckpointExactResume(t *testing.T) {
	short := warmTestCfg(sim.SchemeDIMMChip)
	short.InstrPerCore = 3000
	_, img := captureImage(t, short, "mcf_m")

	long := warmTestCfg(sim.SchemeDIMMChip)
	long.InstrPerCore = 6000
	cold, err := RunWorkload(long, "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := RestoreSystem(long, "mcf_m", img)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	res := sys.Run()
	res.Workload = "mcf_m"
	sys.Release()
	if !reflect.DeepEqual(cold, res) {
		t.Errorf("extended run from short-budget image diverged from cold long run:\n  cold: %+v\n  ext:  %+v", cold, res)
	}
}

// TestCheckpointKeySharing pins the shared-prefix contract: grid points that
// differ only in measurement policy share a checkpoint key; changes to the
// warmup phase, structure, seed or workload do not.
func TestCheckpointKeySharing(t *testing.T) {
	base := warmTestCfg(sim.SchemeDIMMChip)
	key := CheckpointKey(base, "mcf_m")

	same := []func(*sim.Config){
		func(c *sim.Config) { c.Scheme = sim.SchemeGCPIPMMR },
		func(c *sim.Config) { c.CellMapping = sim.MapVIM },
		func(c *sim.Config) { c.MultiResetSplit = 5; c.MultiResetAlways = true },
		func(c *sim.Config) { c.WriteCancellation = true; c.WritePausing = true },
		func(c *sim.Config) { c.PWL = true; c.PWLShiftWrites = 16 },
		func(c *sim.Config) { c.HalfStripe = true },
		func(c *sim.Config) { c.WriteQueueSched = 4 },
		func(c *sim.Config) { c.InstrPerCore = 123456 },
		func(c *sim.Config) { c.Shards = 8 },
	}
	for i, mut := range same {
		cfg := warmTestCfg(sim.SchemeDIMMChip)
		mut(&cfg)
		if got := CheckpointKey(cfg, "mcf_m"); got != key {
			t.Errorf("variant %d: measurement-only change altered the checkpoint key", i)
		}
	}
	diff := []func(*sim.Config){
		func(c *sim.Config) { c.WarmupCycles = 70_000 },
		func(c *sim.Config) { c.WarmupScheme = sim.SchemeIdeal },
		func(c *sim.Config) { c.Seed = 7 },
		func(c *sim.Config) { c.DIMMTokens = 400 },
	}
	for i, mut := range diff {
		cfg := warmTestCfg(sim.SchemeDIMMChip)
		mut(&cfg)
		if got := CheckpointKey(cfg, "mcf_m"); got == key {
			t.Errorf("variant %d: warmup-relevant change did not alter the checkpoint key", i)
		}
	}
	if CheckpointKey(base, "mix_1") == key {
		t.Error("different workload shares a checkpoint key")
	}
}

// TestRunWorkloadCheckpointed exercises the store-coordinated entry point:
// the first run produces the image cold, later runs — including different
// measurement schemes — warm-start from it, and every result equals its own
// cold run.
func TestRunWorkloadCheckpointed(t *testing.T) {
	store, err := ckpt.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := warmTestCfg(sim.SchemeDIMMChip)
	coldA, err := RunWorkload(a, "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	res, warm, err := RunWorkloadCheckpointed(a, "mcf_m", store)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Error("first run reported a warm start against an empty store")
	}
	if !reflect.DeepEqual(coldA, res) {
		t.Error("producing run diverged from plain cold run")
	}
	if n, _ := store.Len(); n != 1 {
		t.Fatalf("store holds %d images, want 1", n)
	}

	// Same grid point again: warm, identical.
	res, warm, err = RunWorkloadCheckpointed(a, "mcf_m", store)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Error("second run did not warm-start")
	}
	if !reflect.DeepEqual(coldA, res) {
		t.Error("warm-started run diverged from cold run")
	}

	// Different measurement scheme, same warmup prefix: shares the image.
	b := warmTestCfg(sim.SchemeGCPIPMMR)
	coldB, err := RunWorkload(b, "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	res, warm, err = RunWorkloadCheckpointed(b, "mcf_m", store)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Error("sibling grid point did not warm-start from the shared prefix")
	}
	if !reflect.DeepEqual(coldB, res) {
		t.Error("warm-started sibling diverged from its cold run")
	}
	if n, _ := store.Len(); n != 1 {
		t.Errorf("store holds %d images, want 1 (prefix not shared)", n)
	}

	// No warmup phase: falls back to a plain run, never touches the store.
	plain := sim.DefaultConfig()
	plain.InstrPerCore = 3000
	res, warm, err = RunWorkloadCheckpointed(plain, "mcf_m", store)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Error("warmup-free run reported a warm start")
	}
	coldP, err := RunWorkload(plain, "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldP, res) {
		t.Error("warmup-free fallback diverged from RunWorkload")
	}
}

// TestRestoreSystemRejects covers the loud-failure paths: corrupt images,
// wrong workload, wrong warmup declaration, no warmup declaration.
func TestRestoreSystemRejects(t *testing.T) {
	cfg := warmTestCfg(sim.SchemeDIMMChip)
	_, img := captureImage(t, cfg, "mcf_m")

	if _, err := RestoreSystem(cfg, "mix_1", img); err == nil {
		t.Error("restore under a different workload succeeded")
	}
	bad := warmTestCfg(sim.SchemeDIMMChip)
	bad.WarmupCycles = 999
	if _, err := RestoreSystem(bad, "mcf_m", img); err == nil {
		t.Error("restore under a different WarmupCycles succeeded")
	}
	none := warmTestCfg(sim.SchemeDIMMChip)
	none.WarmupCycles = 0
	if _, err := RestoreSystem(none, "mcf_m", img); err == nil {
		t.Error("restore into a warmup-free config succeeded")
	}
	flip := append([]byte(nil), img...)
	flip[len(flip)/2] ^= 0x40
	if _, err := RestoreSystem(cfg, "mcf_m", flip); err == nil {
		t.Error("restore of a corrupted image succeeded")
	}
	if _, err := RestoreSystem(cfg, "mcf_m", img[:len(img)-9]); err == nil {
		t.Error("restore of a truncated image succeeded")
	}
}
