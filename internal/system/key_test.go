package system

import (
	"testing"

	"fpb/internal/sim"
)

func TestKeyIsStableAndDiscriminating(t *testing.T) {
	cfg := sim.DefaultConfig()
	k1 := Key(cfg, "mcf_m")
	k2 := Key(cfg, "mcf_m")
	if k1 != k2 {
		t.Fatalf("same job hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not a hex sha256", k1)
	}
	if kw := Key(cfg, "lbm_m"); kw == k1 {
		t.Error("different workloads share a key")
	}
	mod := cfg
	mod.Seed++
	if km := Key(mod, "mcf_m"); km == k1 {
		t.Error("different seeds share a key")
	}
	mod = cfg
	mod.Scheme = sim.SchemeIdeal
	if km := Key(mod, "mcf_m"); km == k1 {
		t.Error("different schemes share a key")
	}
}

func TestCanonicalRoundTripsConfig(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.HalfStripe = true
	cfg.GCPEff = 0.55
	b1 := Canonical(cfg, "mix_1")
	b2 := Canonical(cfg, "mix_1")
	if string(b1) != string(b2) {
		t.Fatal("canonical serialization is not byte-deterministic")
	}
}
