package system

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"fpb/internal/sim"
)

// keyFormatVersion is bumped whenever the meaning of an existing config
// field changes (new fields change the canonical encoding by themselves).
// It invalidates every previously stored result key.
const keyFormatVersion = 1

// canonicalJob is the serialized identity of one simulation. sim.Config is
// a flat struct of scalars, so encoding/json renders it byte-deterministically
// in declaration order.
type canonicalJob struct {
	Version  int        `json:"v"`
	Workload string     `json:"workload"`
	Config   sim.Config `json:"config"`
}

// Canonical returns the canonical serialization of one (config, workload)
// simulation: the byte string two jobs share exactly when they are the same
// simulation. It is the preimage of Key.
func Canonical(cfg sim.Config, workload string) []byte {
	// Shards — and the ShardHorizon/ShardStaticLookahead batching knobs —
	// select the execution engine, not the simulated machine: results are
	// bit-identical for every value (enforced by the determinism matrix
	// test), so they are zeroed here to keep result caches from
	// fragmenting by how a simulation happened to be executed.
	cfg.Shards = 0
	cfg.ShardHorizon = 0
	cfg.ShardStaticLookahead = false
	b, err := json.Marshal(canonicalJob{Version: keyFormatVersion, Workload: workload, Config: cfg})
	if err != nil {
		// sim.Config holds only scalars; Marshal cannot fail.
		panic("system: canonical encoding: " + err.Error())
	}
	return b
}

// Key returns the content address of one (config, workload) simulation: the
// hex SHA-256 of its canonical serialization. Every deterministic result
// cache in the tree (exp.Runner, the fpbd result store) keys on it.
func Key(cfg sim.Config, workload string) string {
	sum := sha256.Sum256(Canonical(cfg, workload))
	return hex.EncodeToString(sum[:])
}

// CheckpointKey returns the content address of the warmup prefix of one
// (config, workload) run: the key under which its barrier checkpoint image
// is stored and shared. Two grid points share a key — and therefore one
// warmup simulation — exactly when their warmup phases are byte-identical:
// the key hashes the *warmup* config (measurement-only policy fields pinned
// by Config.WarmupConfig), with InstrPerCore zeroed on top, since the
// instruction budget only governs how far the measurement phase runs past
// the barrier. Shards is zeroed by Canonical as usual.
func CheckpointKey(cfg sim.Config, workload string) string {
	w := cfg.WarmupConfig()
	w.InstrPerCore = 0
	sum := sha256.Sum256(Canonical(w, workload))
	return hex.EncodeToString(sum[:])
}
