package system

import (
	"testing"

	"fpb/internal/sim"
)

// TestSLCModeRuns: the simulator supports 1-bit cells (used by Figure 2's
// SLC census and available for SLC-vs-MLC studies). SLC writes are single
// pulses, so write pressure is far lower than MLC at equal traffic.
func TestSLCModeRuns(t *testing.T) {
	mlc := quickConfig(sim.SchemeDIMMChip)
	slc := mlc
	slc.BitsPerCell = 1

	mlcRes, err := RunWorkload(mlc, "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	slcRes, err := RunWorkload(slc, "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	if slcRes.CPI >= mlcRes.CPI {
		t.Errorf("SLC CPI %.1f not below MLC %.1f (single-pulse writes must be faster)",
			slcRes.CPI, mlcRes.CPI)
	}
	if slcRes.Writes == 0 {
		t.Fatal("SLC run produced no writes")
	}
}

// TestLowIntensityWorkload: xal_m has RPKI 0.08 — nearly no memory traffic.
// The system must still run and show a near-1 CPI gap between schemes.
func TestLowIntensityWorkload(t *testing.T) {
	base, err := RunWorkload(quickConfig(sim.SchemeDIMMChip), "xal_m")
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := RunWorkload(quickConfig(sim.SchemeIdeal), "xal_m")
	if err != nil {
		t.Fatal(err)
	}
	if s := Speedup(base, ideal); s > 2.0 {
		t.Errorf("xal speedup Ideal vs DIMM+chip = %.2f; low-traffic workload should be insensitive", s)
	}
	if base.CPI <= 0 || ideal.CPI <= 0 {
		t.Fatal("degenerate CPIs")
	}
}

// TestLineSizeVariants: the 64B and 128B configurations of Figure 19 build
// and run.
func TestLineSizeVariants(t *testing.T) {
	for _, lineB := range []int{64, 128} {
		cfg := quickConfig(sim.SchemeGCPIPMMR)
		cfg.CellMapping = sim.MapBIM
		cfg.L3LineB = lineB
		res, err := RunWorkload(cfg, "mcf_m")
		if err != nil {
			t.Fatalf("line %dB: %v", lineB, err)
		}
		if res.Writes == 0 {
			t.Errorf("line %dB: no writes", lineB)
		}
		maxCells := float64(lineB * 8 / 2)
		if res.AvgCellChanges <= 0 || res.AvgCellChanges > maxCells {
			t.Errorf("line %dB: avg cell changes %.0f outside (0, %g]",
				lineB, res.AvgCellChanges, maxCells)
		}
	}
}
