package system

import (
	"fmt"

	"fpb/internal/ckpt"
	"fpb/internal/sim"
	"fpb/internal/workload"
)

// This file is the system-level checkpoint codec: EncodeCheckpoint captures a
// machine quiesced at its warmup barrier, RestoreSystem rebuilds one from an
// image, and RunWorkloadCheckpointed is the store-coordinated entry point the
// experiment harness and the daemon share.
//
// The image records only model state — PCM content and wear, cache metadata,
// workload cursors, RNG streams, bus horizons, the engine clock. Everything
// the barrier provably empties (queues, banks, power grants, in-flight
// events) is absent by construction, and every measurement statistic is reset
// at the barrier on both the cold and the restored path, which is what makes
// the two paths byte-identical.

// EncodeCheckpoint serializes the system at its warmup barrier. It must be
// called from a barrier hook (SetBarrierHook): the component codecs verify
// quiescence and panic otherwise. Trace-replay systems (BuildFromSources)
// cannot be checkpointed — they have no generator state to capture.
func (s *System) EncodeCheckpoint() []byte {
	if len(s.gens) != len(s.Cores) || len(s.muts) != len(s.Cores) {
		panic("system: EncodeCheckpoint on a trace-replay system")
	}
	w := ckpt.NewWriter()
	w.Section("system")
	now, seq, ran := s.Eng.Clock()
	w.U64(uint64(now))
	w.U64(seq)
	w.U64(ran)
	w.U64(s.Cfg.WarmupCycles)
	w.String(s.wlName)
	w.U64(uint64(len(s.Cores)))
	for i := range s.Cores {
		s.gens[i].SaveState(w)
		s.muts[i].SaveState(w)
		// Cache state ships as a sparse delta against the deterministic
		// prefill baseline, which the restore side regenerates itself —
		// warmup touches a tiny fraction of the prefilled arrays, so this
		// is what keeps images small.
		s.Cores[i].Hierarchy().SaveDelta(w, s.baseHiers[i])
	}
	s.MC.SaveState(w)
	s.MC.Scheduler().Manager().SaveState(w)
	return w.Finish()
}

// RestoreSystem rebuilds a machine sitting at its warmup barrier from a
// checkpoint image, ready for Run to execute the measured phase under cfg.
// cfg is the *measurement* configuration: it must agree with the image on
// everything the checkpoint key hashes (structure, seed, warmup phase,
// workload); the policy fields a sweep varies are free. The restored run is
// byte-identical to a cold run of the same cfg.
func RestoreSystem(cfg sim.Config, name string, img []byte) (*System, error) {
	if cfg.WarmupCycles == 0 {
		return nil, fmt.Errorf("system: restore target config declares no warmup phase (WarmupCycles is 0)")
	}
	r, err := ckpt.NewReader(img)
	if err != nil {
		return nil, err
	}
	wl, err := workload.ByName(name, cfg.Cores)
	if err != nil {
		return nil, err
	}
	s, err := build(cfg, wl, true)
	if err != nil {
		return nil, err
	}
	r.Section("system")
	now := sim.Cycle(r.U64())
	seq, ran := r.U64(), r.U64()
	warm := r.U64()
	imgWL := r.String()
	nCores := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if warm != cfg.WarmupCycles {
		return nil, fmt.Errorf("system: checkpoint has a %d-cycle warmup, config declares %d", warm, cfg.WarmupCycles)
	}
	if imgWL != name {
		return nil, fmt.Errorf("system: checkpoint is for workload %q, not %q", imgWL, name)
	}
	if int(nCores) != len(s.Cores) {
		return nil, fmt.Errorf("system: checkpoint has %d cores, config wants %d", nCores, len(s.Cores))
	}
	for i := range s.Cores {
		if err := s.gens[i].RestoreState(r); err != nil {
			return nil, err
		}
		if err := s.muts[i].RestoreState(r); err != nil {
			return nil, err
		}
		if err := s.Cores[i].Hierarchy().RestoreDelta(r); err != nil {
			return nil, err
		}
	}
	if err := s.MC.RestoreState(r); err != nil {
		return nil, err
	}
	if err := s.MC.Scheduler().Manager().RestoreState(r); err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Restoring seq along with the clock keeps post-barrier event (when, seq)
	// ordering — and the sim.events_run gauge, via ran — bit-identical to the
	// cold run's.
	s.Eng.RestoreClock(now, seq, ran)
	s.measStart = now
	return s, nil
}

// RunWorkloadCheckpointed runs (cfg, name) through the checkpoint store: if
// the warmup prefix's image exists it restores and runs only the measured
// phase; otherwise the first caller simulates the warmup once, captures the
// image at the barrier, and stores it for every later grid point sharing the
// prefix. Concurrent same-prefix runs in one process block on the producer
// instead of redundantly warming up. warm reports whether this run started
// from a restored image. With a nil store or no warmup phase it falls back to
// RunWorkload.
func RunWorkloadCheckpointed(cfg sim.Config, name string, store *ckpt.Store) (res Result, warm bool, err error) {
	if store == nil || cfg.WarmupCycles == 0 {
		res, err = RunWorkload(cfg, name)
		return res, false, err
	}
	key := CheckpointKey(cfg, name)
	img, claimed, err := store.Claim(key)
	if err != nil {
		return Result{}, false, err
	}
	if img == nil && !claimed {
		// Another run in this process is producing the image right now.
		if img, _, err = store.Wait(key); err != nil {
			return Result{}, false, err
		}
	}
	if img != nil {
		if res, rerr := runRestored(cfg, name, img); rerr == nil {
			return res, true, nil
		}
		// Unreadable or mismatched image (e.g. a stale file from an older
		// format): fall through to a full cold run.
	}
	produced := false
	if claimed {
		defer func() {
			if !produced {
				store.Abandon(key)
			}
		}()
	}
	wl, err := workload.ByName(name, cfg.Cores)
	if err != nil {
		return Result{}, false, err
	}
	sys, err := Build(cfg, wl)
	if err != nil {
		return Result{}, false, err
	}
	if claimed {
		sys.SetBarrierHook(func(s *System) {
			if store.Put(key, s.EncodeCheckpoint()) == nil {
				produced = true
			}
		})
	}
	res = sys.Run()
	res.Workload = name
	sys.Release()
	return res, false, nil
}

func runRestored(cfg sim.Config, name string, img []byte) (Result, error) {
	sys, err := RestoreSystem(cfg, name, img)
	if err != nil {
		return Result{}, err
	}
	res := sys.Run()
	res.Workload = name
	sys.Release()
	return res, nil
}
