package system

import (
	"testing"

	"fpb/internal/sim"
)

// BenchmarkSimulation measures end-to-end simulator throughput: one full
// build+run of a write-heavy workload under full FPB. The interesting
// number is simulated instructions per wall second (reported as a custom
// metric).
func BenchmarkSimulation(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeGCPIPMMR
	cfg.CellMapping = sim.MapBIM
	cfg.InstrPerCore = 20_000
	cfg.L3SizeMB = 8
	b.ReportAllocs()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := RunWorkload(cfg, "mcf_m")
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instr/s")
}
