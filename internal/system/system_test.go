package system

import (
	"testing"

	"fpb/internal/sim"
	"fpb/internal/workload"
)

// quickConfig shrinks the run for unit tests while keeping the memory
// subsystem realistic.
func quickConfig(scheme sim.Scheme) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scheme = scheme
	cfg.InstrPerCore = 40_000
	cfg.L3SizeMB = 8 // faster prefill
	return cfg
}

func TestRunWorkloadBasics(t *testing.T) {
	res, err := RunWorkload(quickConfig(sim.SchemeDIMMChip), "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	if res.CPI <= 1 {
		t.Errorf("CPI = %.2f, must exceed 1 for a memory-bound workload", res.CPI)
	}
	if res.Writes == 0 || res.DemandReads == 0 {
		t.Fatal("no memory traffic")
	}
	if res.Cycles == 0 || res.Instrs < 8*40_000 {
		t.Errorf("run too short: %d cycles, %d instrs", res.Cycles, res.Instrs)
	}
	if res.AvgCellChanges <= 0 {
		t.Error("no cell-change telemetry")
	}
}

func TestPKICalibration(t *testing.T) {
	// Measured PCM-level R/W-PKI must track Table 2 within a modest
	// tolerance — this is the workload-substitution acceptance test.
	for _, name := range []string{"mcf_m", "lbm_m", "bwa_m"} {
		cfg := quickConfig(sim.SchemeIdeal)
		cfg.InstrPerCore = 60_000
		res, err := RunWorkload(cfg, name)
		if err != nil {
			t.Fatal(err)
		}
		wl, _ := workload.ByName(name, cfg.Cores)
		if rel(res.MeasRPKI, wl.TargetRPKI()) > 0.25 {
			t.Errorf("%s: measured RPKI %.2f vs target %.2f", name, res.MeasRPKI, wl.TargetRPKI())
		}
		if rel(res.MeasWPKI, wl.TargetWPKI()) > 0.30 {
			t.Errorf("%s: measured WPKI %.2f vs target %.2f", name, res.MeasWPKI, wl.TargetWPKI())
		}
	}
}

func rel(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

func TestSchemeOrderingMatchesPaper(t *testing.T) {
	// The paper's central qualitative result: Ideal beats DIMM-only
	// beats DIMM+chip, and full FPB recovers most of the gap.
	cpi := map[sim.Scheme]float64{}
	for _, s := range []sim.Scheme{sim.SchemeIdeal, sim.SchemeDIMMOnly, sim.SchemeDIMMChip, sim.SchemeGCPIPMMR} {
		cfg := quickConfig(s)
		if s == sim.SchemeGCPIPMMR {
			cfg.CellMapping = sim.MapBIM
		}
		res, err := RunWorkload(cfg, "mcf_m")
		if err != nil {
			t.Fatal(err)
		}
		cpi[s] = res.CPI
	}
	if !(cpi[sim.SchemeIdeal] < cpi[sim.SchemeDIMMOnly]) {
		t.Errorf("Ideal CPI %.1f not better than DIMM-only %.1f",
			cpi[sim.SchemeIdeal], cpi[sim.SchemeDIMMOnly])
	}
	if !(cpi[sim.SchemeDIMMOnly] < cpi[sim.SchemeDIMMChip]) {
		t.Errorf("DIMM-only CPI %.1f not better than DIMM+chip %.1f",
			cpi[sim.SchemeDIMMOnly], cpi[sim.SchemeDIMMChip])
	}
	if !(cpi[sim.SchemeGCPIPMMR] < cpi[sim.SchemeDIMMChip]) {
		t.Errorf("FPB CPI %.1f not better than DIMM+chip %.1f",
			cpi[sim.SchemeGCPIPMMR], cpi[sim.SchemeDIMMChip])
	}
}

func TestFPBImprovesWriteThroughput(t *testing.T) {
	base, err := RunWorkload(quickConfig(sim.SchemeDIMMChip), "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(sim.SchemeGCPIPMMR)
	cfg.CellMapping = sim.MapBIM
	fpb, err := RunWorkload(cfg, "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	gain := fpb.WriteThroughput / base.WriteThroughput
	if gain < 1.3 {
		t.Errorf("FPB write-throughput gain %.2fx, want > 1.3x (paper: 3.4x)", gain)
	}
}

func TestBurstFractionReported(t *testing.T) {
	res, err := RunWorkload(quickConfig(sim.SchemeDIMMChip), "lbm_m")
	if err != nil {
		t.Fatal(err)
	}
	if res.BurstFraction <= 0 || res.BurstFraction > 1 {
		t.Errorf("burst fraction %.3f outside (0,1]", res.BurstFraction)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := RunWorkload(quickConfig(sim.SchemeDIMMChip), "ast_m")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload(quickConfig(sim.SchemeDIMMChip), "ast_m")
	if err != nil {
		t.Fatal(err)
	}
	if a.CPI != b.CPI || a.Writes != b.Writes || a.Cycles != b.Cycles {
		t.Errorf("same-seed runs differ: CPI %.4f vs %.4f", a.CPI, b.CPI)
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfgA := quickConfig(sim.SchemeDIMMChip)
	cfgB := quickConfig(sim.SchemeDIMMChip)
	cfgB.Seed = 999
	a, _ := RunWorkload(cfgA, "ast_m")
	b, _ := RunWorkload(cfgB, "ast_m")
	if a.CPI == b.CPI {
		t.Error("different seeds produced identical CPI (suspicious)")
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	cfg := quickConfig(sim.SchemeDIMMChip)
	if _, err := RunWorkload(cfg, "not_a_workload"); err == nil {
		t.Error("unknown workload accepted")
	}
	wl, _ := workload.ByName("ast_m", 4) // wrong core count
	if _, err := Build(cfg, wl); err == nil {
		t.Error("core-count mismatch accepted")
	}
	cfg.Cores = 0
	wl8, _ := workload.ByName("ast_m", 8)
	if _, err := Build(cfg, wl8); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestGCPTelemetryFlows(t *testing.T) {
	cfg := quickConfig(sim.SchemeGCP)
	cfg.CellMapping = sim.MapNaive // clusters changes → GCP engaged
	res, err := RunWorkload(cfg, "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxGCPTokens <= 0 {
		t.Error("GCP never engaged under NE mapping on a write-heavy workload")
	}
}

func TestSpeedupHelper(t *testing.T) {
	if s := Speedup(Result{CPI: 10}, Result{CPI: 5}); s != 2 {
		t.Errorf("Speedup = %g, want 2", s)
	}
	if s := Speedup(Result{CPI: 10}, Result{}); s != 0 {
		t.Error("zero-CPI tech must yield 0")
	}
}

func TestWCWPIntegration(t *testing.T) {
	cfg := quickConfig(sim.SchemeGCPIPMMR)
	cfg.CellMapping = sim.MapBIM
	cfg.WriteCancellation = true
	cfg.WritePausing = true
	cfg.WriteTruncation = true
	cfg.ReadQueueEntries = 40
	cfg.WriteQueueEntries = 40
	res, err := RunWorkload(cfg, "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	if res.WCCancels+res.WPPauses == 0 {
		t.Error("WC/WP never triggered on a write-heavy workload")
	}
}
