package system

import (
	"testing"

	"fpb/internal/sim"
)

// TestHalfStripeLatencyCost: absent power constraints (Ideal), the
// two-round half-stripe layout is pure latency cost — doubled array reads
// and doubled write occupancy — and must be strictly slower, which is the
// paper's argument for the full-stripe baseline. (Under a power-bound
// baseline the halved per-round demand can outweigh the latency, an effect
// the abl-halfstripe experiment quantifies.)
func TestHalfStripeLatencyCost(t *testing.T) {
	full := quickConfig(sim.SchemeIdeal)
	half := full
	half.HalfStripe = true
	fullRes, err := RunWorkload(full, "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	halfRes, err := RunWorkload(half, "mcf_m")
	if err != nil {
		t.Fatal(err)
	}
	if halfRes.CPI <= fullRes.CPI {
		t.Errorf("half-stripe CPI %.1f not worse than full-stripe %.1f under Ideal (pure latency cost)",
			halfRes.CPI, fullRes.CPI)
	}
	if halfRes.AvgReadLatency <= fullRes.AvgReadLatency {
		t.Errorf("half-stripe read latency %.0f not above full-stripe %.0f",
			halfRes.AvgReadLatency, fullRes.AvgReadLatency)
	}
	// Every write runs as at least two rounds under half stripe.
	if halfRes.MultiRound == 0 {
		t.Error("half-stripe writes not marked multi-round")
	}
}

// TestHalfStripeMappingConfinesChips: a line's cells stay within one half
// of the chips.
func TestHalfStripeMappingConfinesChips(t *testing.T) {
	cfg := quickConfig(sim.SchemeIdeal)
	cfg.HalfStripe = true
	res, err := RunWorkload(cfg, "lbm_m")
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes == 0 {
		t.Fatal("no writes")
	}
}
