package system

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fpb/internal/obs"
	"fpb/internal/sim"
	"fpb/internal/workload"
)

// obsConfig is a short run with enough write traffic to exercise every
// trace category.
func obsConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scheme = sim.SchemeGCPIPMMR
	cfg.InstrPerCore = 10_000
	cfg.L3SizeMB = 8
	return cfg
}

// runTraced builds the obsConfig system, attaches the given sinks, and runs
// it, returning the result.
func runTraced(t *testing.T, sinks ...obs.Sink) Result {
	t.Helper()
	cfg := obsConfig()
	w, err := workload.ByName("mcf_m", cfg.Cores)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	var tracer *obs.Tracer
	if len(sinks) > 0 {
		tracer = obs.NewTracer(sinks...)
		s.EnableTrace(tracer)
	}
	res := s.Run()
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return res
}

// TestTraceDeterminism: two runs with identical configs (same seed) must
// produce byte-identical JSONL event streams.
func TestTraceDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	runTraced(t, obs.NewJSONL(&a))
	runTraced(t, obs.NewJSONL(&b))
	if a.Len() == 0 {
		t.Fatal("no trace output")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same-seed traces differ: %d vs %d bytes", a.Len(), b.Len())
	}
}

// TestJSONLTraceContent: every line is valid JSON and the key event names
// from all three instrumented subsystems appear.
func TestJSONLTraceContent(t *testing.T) {
	var buf bytes.Buffer
	runTraced(t, obs.NewJSONL(&buf))
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev struct {
			Cycle uint64 `json:"cycle"`
			Cat   string `json:"cat"`
			Name  string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		seen[ev.Name] = true
	}
	for _, name := range []string{"write.issue", "write", "write.admit", "gcp.borrow", "gcp.return"} {
		if !seen[name] {
			t.Errorf("trace missing %q events (saw %v)", name, seen)
		}
	}
}

// TestChromeTraceValid: the Chrome sink's output is a well-formed
// trace_event JSON array with plausible phases.
func TestChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	runTraced(t, obs.NewChrome(&buf, 4000))
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty chrome trace")
	}
	phases := map[string]bool{}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		phases[ph] = true
		if ph != "X" && ph != "i" && ph != "C" {
			t.Fatalf("unexpected phase %q in %v", ph, ev)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event without numeric ts: %v", ev)
		}
	}
	if !phases["X"] || !phases["i"] {
		t.Errorf("expected both span and instant events, got phases %v", phases)
	}
}

// TestProbesAndMetrics: probing produces a CSV with one column per gauge,
// and the final registry snapshot holds at least 20 named series.
func TestProbesAndMetrics(t *testing.T) {
	cfg := obsConfig()
	w, err := workload.ByName("mcf_m", cfg.Cores)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	prober := s.EnableProbes(5_000, &csv)
	res := s.Run()
	if prober.Err() != nil {
		t.Fatal(prober.Err())
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected header + several samples, got %d lines", len(lines))
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "cycle" {
		t.Errorf("first CSV column = %q, want cycle", header[0])
	}
	for _, row := range lines[1:] {
		if got := len(strings.Split(row, ",")); got != len(header) {
			t.Fatalf("row width %d != header width %d: %q", got, len(header), row)
		}
	}
	if len(res.Metrics) < 20 {
		t.Errorf("metrics snapshot has %d series, want >= 20", len(res.Metrics))
	}
	for _, name := range []string{"sim.cycle", "power.gcp.tokens_in_use", "mem.wrq.depth", "core.scheduler.completed"} {
		if _, ok := res.Metrics[name]; !ok {
			t.Errorf("metrics snapshot missing %q", name)
		}
	}
}
