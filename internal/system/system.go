// Package system assembles a full simulated machine — cores, cache
// hierarchies, workload generators, the memory controller/bridge and the
// FPB power scheduler — from one sim.Config plus a workload, runs it to the
// instruction budget, and reports the metrics every experiment consumes
// (CPI, speedup inputs, write throughput, write-burst fraction, token
// telemetry).
package system

import (
	"fmt"
	"io"
	"sync"

	"fpb/internal/cache"
	"fpb/internal/cpu"
	"fpb/internal/mem"
	"fpb/internal/obs"
	"fpb/internal/sim"
	"fpb/internal/trace"
	"fpb/internal/workload"
)

// System is one assembled machine.
type System struct {
	Cfg   sim.Config
	Eng   *sim.Engine
	MC    *mem.Controller
	Cores []*cpu.Core

	// Obs is the machine's observability hub: every component's metrics
	// registry, plus the attach point for tracing (EnableTrace) and
	// time-series probes (EnableProbes).
	Obs *obs.Hub

	gens     []*workload.Generator
	muts     []*workload.Mutator
	finished int
	prober   *obs.Prober
	probeEv  *sim.Event

	// baseHiers are the pristine pre-run cache baselines, one per core —
	// shared read-only references into the prefill snapshot cache, not
	// copies. Checkpoints serialize each hierarchy as a sparse delta
	// against its baseline; the restore side regenerates the identical
	// baseline from the deterministic prefill and applies the delta.
	baseHiers []*cache.Hierarchy

	// Warmup / checkpoint state. When Cfg.WarmupCycles > 0, the system is
	// built under the warmup configuration (measCfg keeps the measurement
	// one); Run quiesces at the barrier, rebinds Cfg to measCfg in place and
	// resumes. measStart is the barrier cycle measurement counts from;
	// atBarrier marks a system sitting quiesced at the barrier (restored
	// from a checkpoint, or mid-way through Run's own barrier sequence).
	measCfg     sim.Config
	measStart   sim.Cycle
	atBarrier   bool
	barrierHook func(*System)
	wlName      string
}

// SetBarrierHook installs fn to run once when the warmup phase quiesces at
// the barrier — after measurement statistics reset, before the configuration
// rebinds to the measurement values. This is the checkpoint capture point:
// the hook sees the system exactly as EncodeCheckpoint expects it. Call
// before Run; ignored when the run has no warmup phase.
func (s *System) SetBarrierHook(fn func(*System)) { s.barrierHook = fn }

// Result carries the metrics of one run.
type Result struct {
	Workload string
	Scheme   string

	CPI    float64
	Cycles sim.Cycle
	Instrs uint64

	DemandReads uint64
	Writes      uint64
	MeasRPKI    float64
	MeasWPKI    float64

	BurstFraction  float64
	AvgCellChanges float64
	AvgReadLatency float64
	// WriteThroughput is completed line writes per million cycles.
	WriteThroughput float64

	MaxGCPTokens  float64
	MaxGCPGrant   float64
	MaxGCPSegment float64
	AvgGCPTokens  float64
	WastedPower   float64
	WCCancels     uint64
	WPPauses      uint64
	MRAdmissions  uint64
	MultiRound    uint64

	// WriteLatP50/P95/P99 are write enqueue-to-completion latency
	// percentiles in cycles (quantized to the controller's histogram
	// bucket width).
	WriteLatP50 float64
	WriteLatP95 float64
	WriteLatP99 float64

	// AvgWriteEnergyPJ is the mean programming energy per line write.
	AvgWriteEnergyPJ float64
	// DistinctLines / MaxLineWrites summarize write wear (endurance).
	DistinctLines int
	MaxLineWrites uint64

	// Metrics is the end-of-run snapshot of every series in the system's
	// metrics registry, keyed by hierarchical name.
	Metrics map[string]float64
}

// Build wires a system for the configuration and workload. The workload
// must have exactly cfg.Cores core profiles. When cfg.WarmupCycles > 0 the
// system is built under cfg.WarmupConfig(): Run executes the warmup phase,
// quiesces at the barrier and rebinds to cfg before measuring.
func Build(cfg sim.Config, wl workload.Workload) (*System, error) {
	return build(cfg, wl, false)
}

// build assembles the machine. restored builds the empty shell a checkpoint
// image is loaded into: components are constructed directly under the
// measurement config (their config-derived structure then matches the cold
// run's post-rebind state), caches are not prefilled, and cores are parked
// at the barrier instead of armed for warmup.
func build(cfg sim.Config, wl workload.Workload, restored bool) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(wl.Cores) != cfg.Cores {
		return nil, fmt.Errorf("system: workload %s has %d cores, config wants %d",
			wl.Name, len(wl.Cores), cfg.Cores)
	}
	warmup := cfg.WarmupCycles > 0
	buildCfg := cfg
	if warmup && !restored {
		buildCfg = cfg.WarmupConfig()
	}
	eng := sim.NewEngine()
	if buildCfg.Shards > 0 {
		// Parallel engine: one lane per (bank, chip) pair, conservative
		// windows as wide as the minimum cross-lane interaction latency.
		// Enabled before the controller is built so it allocates its
		// per-lane speculation state. Results are bit-identical to the
		// sequential engine for any shard count (see sim/sharded.go).
		eng.EnableSharding(buildCfg.Lanes(), buildCfg.Shards, buildCfg.LookaheadCycles())
	}
	// Every component takes &s.Cfg — one shared config — so the barrier
	// sequence can swap warmup for measurement values in place and have the
	// whole machine observe the change.
	s := &System{Cfg: buildCfg, measCfg: cfg, Eng: eng, wlName: wl.Name}
	mc := mem.NewController(eng, &s.Cfg, workload.BaselineContent)
	s.MC, s.Obs = mc, mc.Hub()
	s.registerSystemMetrics()

	root := sim.NewRNG(cfg.Seed)
	for i, prof := range wl.Cores {
		coreRNG := root.Derive(uint64(1000 + i))
		gen := workload.NewGenerator(prof, &s.Cfg, i, coreRNG.Derive(1))
		// Both paths start from the same deterministic prefill: the restored
		// build's hierarchy holds the baseline content the image's cache
		// deltas apply onto (the generator still has its build-time cursors
		// here — its own state restores after the shell is assembled).
		hier, base := prefilledHierarchy(&s.Cfg, gen, prof)
		mut := workload.NewMutator(prof.Value, coreRNG.Derive(2))
		s.baseHiers = append(s.baseHiers, base)
		core := cpu.New(i, eng, &s.Cfg, hier, gen, mut, mc, func(*cpu.Core) { s.finished++ })
		if warmup && !restored {
			core.SetBarrier(sim.Cycle(cfg.WarmupCycles))
		}
		if restored {
			core.RestoreParked()
		}
		s.Cores = append(s.Cores, core)
		s.gens = append(s.gens, gen)
		s.muts = append(s.muts, mut)
	}
	if restored {
		s.atBarrier = true
	}
	return s, nil
}

// prefillKey captures everything prefill reads: the generator's region
// layout and cursors (which the insert set and the shuffle seed are pure
// functions of), the profile's access-mix rates, and the full cache
// geometry. Two cores with equal keys get byte-identical prefilled
// hierarchies, so the result can be snapshotted and cloned instead of
// re-running the multi-hundred-thousand-access warm-up — by far the
// largest cost of building a system — once per (workload, scheme) pair.
type prefillKey struct {
	rStart, wStart, span uint64
	rCur, wCur           uint64
	hotStart, hotSpan    uint64
	rpki, wpki           float64
	l1KB, l1Line, l1Ways int
	l2KB, l2Line, l2Ways int
	l3MB, l3Line, l3Ways int
}

// maxPrefillSnapshots bounds the snapshot cache. Each snapshot holds deep
// copies of one core's cache metadata (~4 MB at the default 32 MB L3), so
// the bound caps the cache near half a gigabyte — sized to hold every
// distinct (profile, core-slot) pair of a full figure sweep at the default
// geometry without evicting.
const maxPrefillSnapshots = 128

var prefillSnapshots struct {
	sync.Mutex
	m     map[prefillKey]*prefillSnapshot
	stamp uint64
}

type prefillSnapshot struct {
	hier *cache.Hierarchy
	used uint64
}

// prefilledHierarchy returns a freshly prefilled hierarchy for the core,
// serving it from the snapshot cache when an identical warm-up has already
// run (the usual case: every scheme of a figure re-simulates the same
// workloads). Cached or computed, the returned hierarchy is bit-identical —
// prefill is a pure function of prefillKey — and exclusively owned by the
// caller.
func prefilledHierarchy(cfg *sim.Config, gen *workload.Generator, prof workload.CoreProfile) (owned, base *cache.Hierarchy) {
	rStart, _ := gen.StreamReadRegion()
	wStart, _ := gen.StreamWriteRegion()
	hotStart, hotSpan := gen.HotRegion()
	k := prefillKey{
		rStart: rStart, wStart: wStart, span: gen.SpanLines(),
		rCur: gen.ReadCursor(), wCur: gen.WriteCursor(),
		hotStart: hotStart, hotSpan: hotSpan,
		rpki: prof.RPKI, wpki: prof.WPKI,
		l1KB: cfg.L1SizeKB, l1Line: cfg.L1LineB, l1Ways: cfg.L1Ways,
		l2KB: cfg.L2SizeKB, l2Line: cfg.L2LineB, l2Ways: cfg.L2Ways,
		l3MB: cfg.L3SizeMB, l3Line: cfg.L3LineB, l3Ways: cfg.L3Ways,
	}
	c := &prefillSnapshots
	c.Lock()
	if e, ok := c.m[k]; ok {
		c.stamp++
		e.used = c.stamp
		h := e.hier.Clone(cfg)
		c.Unlock()
		return h, e.hier
	}
	c.Unlock()

	h := cache.NewHierarchy(cfg)
	prefill(h, gen, prof)

	c.Lock()
	if c.m == nil {
		c.m = make(map[prefillKey]*prefillSnapshot)
	}
	if len(c.m) >= maxPrefillSnapshots {
		var oldest prefillKey
		var oldestUsed uint64 = ^uint64(0)
		for kk, e := range c.m {
			if e.used < oldestUsed {
				oldestUsed = e.used
				oldest = kk
			}
		}
		delete(c.m, oldest)
	}
	c.stamp++
	snap := &prefillSnapshot{hier: h.Clone(cfg), used: c.stamp}
	c.m[k] = snap
	c.Unlock()
	// The snapshot's copy doubles as the checkpoint delta baseline: map
	// entries are cloned on every hit and never mutated, so the reference
	// stays pristine even after eviction drops it from the map.
	return h, snap.hier
}

// prefill warms one core's caches to the measurement steady state
// (DESIGN.md §3): the L3 holds the lines the stream walks touched just
// before the window — interleaved load/store-region lines in their access
// ratio, inserted oldest-first ending right behind each stream cursor —
// and the hot region is resident in L2/L3. Capacity writebacks and
// streaming misses then behave from instruction 0 exactly as they would
// after a multi-hundred-million-instruction cold phase.
func prefill(h *cache.Hierarchy, gen *workload.Generator, prof workload.CoreProfile) {
	lineB := uint64(h.L3().LineBytes())
	if prof.RPKI > 0 {
		rStart, _ := gen.StreamReadRegion()
		wStart, _ := gen.StreamWriteRegion()
		span := gen.SpanLines()
		wFrac := prof.WPKI / prof.RPKI
		// Insert twice the capacity so that, despite the shuffled
		// order's binomial spread of inserts per set, every set ends
		// completely full (an underfilled set would absorb its first
		// few fills without evicting, suppressing early writebacks).
		total := uint64(h.L3CapacityLines()) * 2
		nW := uint64(float64(total) * wFrac)
		nR := total - nW
		// The resident set is the lines just behind each stream cursor,
		// dirty for the store stream. Insertion order is shuffled so
		// per-set LRU ages are independent of the cursors' relative
		// phase: early-eviction victims are then dirty with the true
		// steady-state probability (wFrac) for every seed, instead of
		// whatever the arbitrary phase alignment would dictate.
		type ins struct {
			addr  uint64
			dirty bool
		}
		inserts := make([]ins, 0, nR+nW)
		for k := uint64(0); k < nR; k++ {
			pos := (gen.ReadCursor() + span - 1 - k) % span
			inserts = append(inserts, ins{addr: rStart + pos*lineB})
		}
		for k := uint64(0); k < nW; k++ {
			pos := (gen.WriteCursor() + span - 1 - k) % span
			inserts = append(inserts, ins{addr: wStart + pos*lineB, dirty: true})
		}
		rng := sim.NewRNG(gen.ReadCursor()*31 + gen.WriteCursor()*17 + 0xC0FFEE)
		perm := make([]int, len(inserts))
		rng.Perm(perm)
		for _, idx := range perm {
			h.L3().Access(inserts[idx].addr, inserts[idx].dirty)
		}
	}
	// Hot region last (most recent): full-path accesses warm L1/L2/L3.
	hotStart, hotSpan := gen.HotRegion()
	for addr := hotStart; addr < hotStart+hotSpan; addr += 64 {
		h.Access(addr, false)
	}
	h.ResetStats()
}

// registerSystemMetrics adds machine-level series to the hub registry.
// Shard and lane series describe how the parallel engine executed — window
// counts, barrier stalls, lane occupancy — not what the simulation
// computed, so they are exec-scope: visible to probes, traces and the
// Prometheus exposition, but excluded from Result.Metrics, which must stay
// bit-identical across shard counts.
func (s *System) registerSystemMetrics() {
	s.Obs.Gauge("sim.cycle", func() float64 { return float64(s.Eng.Now()) })
	s.Obs.Gauge("sim.events_run", func() float64 { return float64(s.Eng.EventsRun()) })
	s.Obs.Gauge("sys.cores.finished", func() float64 { return float64(s.finished) })
	if !s.Eng.Sharded() {
		return
	}
	s.Obs.ExecGauge("sim.shard.sweeps", func() float64 { return float64(s.Eng.ShardStats().Sweeps) })
	s.Obs.ExecGauge("sim.shard.inline_sweeps", func() float64 { return float64(s.Eng.ShardStats().InlineSweeps) })
	s.Obs.ExecGauge("sim.shard.prepared", func() float64 { return float64(s.Eng.ShardStats().Prepared) })
	s.Obs.ExecGauge("sim.shard.lane_commits", func() float64 { return float64(s.Eng.ShardStats().LaneCommits) })
	s.Obs.ExecGauge("sim.shard.barrier_wait_ns", func() float64 { return float64(s.Eng.ShardStats().BarrierWaitNs) })
	s.Obs.ExecGauge("sim.shard.horizon_cycles", func() float64 { return float64(s.Eng.ShardStats().HorizonCycles) })
	s.Obs.ExecGauge("sim.shard.parks", func() float64 { return float64(s.Eng.ShardStats().Parks) })
	s.Obs.ExecGauge("sim.shard.wakes", func() float64 { return float64(s.Eng.ShardStats().Wakes) })
	for l := 0; l < s.Eng.Lanes(); l++ {
		l := l
		s.Obs.ExecGauge(fmt.Sprintf("sim.lane.%d.pending", l), func() float64 { return float64(s.Eng.LanePending(l)) })
		s.Obs.ExecGauge(fmt.Sprintf("sim.lane.%d.committed", l), func() float64 { return float64(s.Eng.LaneCommitted(l)) })
	}
}

// EnableTrace attaches a tracer to the machine's hub. If the tracer admits
// the "engine" category, the event-loop dispatch hook is installed too
// (one sampled record per simulation event — opt-in, it is voluminous).
// Call before Run; the caller owns Close.
func (s *System) EnableTrace(t *obs.Tracer) {
	s.Obs.SetTracer(t)
	if t != nil && t.Enabled("engine") {
		s.Eng.SetDispatchHook(func(now sim.Cycle, ran uint64) {
			t.Emit(obs.Event{Cycle: uint64(now), Kind: obs.Instant, Cat: "engine",
				Name: "dispatch", ID: -1, V: float64(ran)})
		})
	}
}

// EnableProbes samples every registered series to w as CSV every interval
// cycles, starting at the first interval boundary after Run begins. Call
// before Run. The probe event keeps the heap occupied, so it watches event
// progress: if nothing but the probe itself ran for three intervals it
// stops rescheduling, preserving Run's drained-heap deadlock detection.
func (s *System) EnableProbes(interval sim.Cycle, w io.Writer) *obs.Prober {
	if interval == 0 || w == nil {
		return nil
	}
	s.prober = obs.NewProber(s.Obs.Registry(), w)
	var lastRan uint64
	idle := 0
	var tick func()
	tick = func() {
		s.probeEv = nil
		ran := s.Eng.EventsRun()
		if ran-lastRan <= 1 {
			idle++
		} else {
			idle = 0
		}
		lastRan = ran
		s.prober.Sample(uint64(s.Eng.Now()))
		if idle < 3 && s.finished < len(s.Cores) {
			s.probeEv = s.Eng.After(interval, tick)
		}
	}
	s.probeEv = s.Eng.After(interval, tick)
	return s.prober
}

// Run executes until every core retires its budget (or the event heap
// drains, which indicates a deadlock and panics). It returns the collected
// metrics. A run with a warmup phase first executes to the quiesce barrier
// (see runWarmup); a system restored from a checkpoint starts at the barrier
// and skips straight to the measured phase.
func (s *System) Run() Result {
	if s.atBarrier {
		s.resumeMeasurement()
	} else {
		for _, c := range s.Cores {
			c.Start()
		}
		if s.Cfg.WarmupCycles > 0 {
			s.runWarmup()
			s.resumeMeasurement()
		}
	}
	if s.Eng.Sharded() {
		// Same semantics as the sequential loop below: the stop predicate
		// is evaluated between consecutive events.
		if !s.Eng.RunSharded(func() bool { return s.finished >= len(s.Cores) }) {
			s.MC.DumpState()
			panic(fmt.Sprintf("system: deadlock — %d/%d cores finished, no events pending",
				s.finished, len(s.Cores)))
		}
	}
	for s.finished < len(s.Cores) {
		if !s.Eng.Step() {
			s.MC.DumpState()
			panic(fmt.Sprintf("system: deadlock — %d/%d cores finished, no events pending",
				s.finished, len(s.Cores)))
		}
	}
	if s.probeEv != nil {
		s.Eng.Cancel(s.probeEv)
		s.probeEv = nil
	}
	return s.collect()
}

// runWarmup executes the warmup phase to quiescence: cores park at the first
// instruction boundary past Cfg.WarmupCycles, in-flight memory work drains,
// and the event heap runs dry. It then verifies the barrier invariant, resets
// every measurement statistic, fires the barrier hook (the checkpoint capture
// point), and rebinds the shared config to the measurement values. The exact
// barrier cycle is the drain time, not WarmupCycles itself: it is a
// deterministic function of (warmup config, workload), which is precisely
// what the checkpoint key hashes.
func (s *System) runWarmup() {
	if s.Eng.Sharded() {
		// Warmup success IS the drained queue, so the stop predicate never
		// fires; RunSharded returning false here is the expected exit.
		s.Eng.RunSharded(func() bool { return false })
	} else {
		for s.Eng.Step() {
		}
	}
	parked := 0
	for _, c := range s.Cores {
		if c.Parked() || c.Finished() {
			parked++
		}
	}
	if parked < len(s.Cores) || !s.MC.Quiesced() || s.Eng.Pending() != 0 {
		s.MC.DumpState()
		panic(fmt.Sprintf("system: warmup failed to quiesce — %d/%d cores parked, MC quiesced %v, %d events pending",
			parked, len(s.Cores), s.MC.Quiesced(), s.Eng.Pending()))
	}
	s.measStart = s.Eng.Now()
	s.MC.ResetMeasurement()
	if s.barrierHook != nil {
		s.barrierHook(s)
	}
	// In-place rebind: every component reads *(&s.Cfg), so assigning here
	// switches the whole machine to the measurement configuration. The
	// controller and power manager then re-derive their config-dependent
	// structures (mapping tables, rotation interval, pool capacities).
	s.Cfg = s.measCfg
	s.MC.Rebind()
	s.atBarrier = true
}

// resumeMeasurement launches the measured phase from the barrier: cores are
// un-parked in ID order (so event sequence numbers — and therefore all
// downstream tie-breaking — match between the cold and the restored path).
func (s *System) resumeMeasurement() {
	s.atBarrier = false
	for _, c := range s.Cores {
		c.ResumeMeasurement()
	}
}

func (s *System) collect() Result {
	var r Result
	r.Scheme = s.Cfg.Scheme.String()
	var cycles uint64
	for _, c := range s.Cores {
		r.Instrs += c.InstrRetired()
		fc := c.FinishCycle()
		if !c.Finished() {
			fc = s.Eng.Now()
		}
		if fc < s.measStart {
			fc = s.measStart
		}
		// Per-core cycle counts (and r.Cycles below) are measured from the
		// warmup barrier, so CPI and the rate denominators cover only the
		// measured phase. measStart is 0 for runs without warmup.
		cycles += uint64(fc - s.measStart)
		reads, writes := c.MemCounts()
		r.DemandReads += reads
		r.Writes += writes
	}
	r.Cycles = s.Eng.Now() - s.measStart
	if r.Instrs > 0 {
		r.CPI = float64(cycles) / float64(r.Instrs)
		ki := float64(r.Instrs) / 1000
		r.MeasRPKI = float64(r.DemandReads) / ki
		r.MeasWPKI = float64(r.Writes) / ki
	}
	if r.Cycles > 0 {
		r.BurstFraction = float64(s.MC.BurstCycles()) / float64(r.Cycles)
		_, _, _, writesDone, cancels, pauses := s.MC.Counts()
		r.WriteThroughput = float64(writesDone) / float64(r.Cycles) * 1e6
		r.WCCancels = cancels
		r.WPPauses = pauses
	}
	r.AvgCellChanges = s.MC.CellChanges().Mean()
	r.AvgReadLatency = s.MC.ReadLatency().Mean()
	r.WriteLatP50, r.WriteLatP95, r.WriteLatP99 = s.MC.WriteLatencyPercentiles()
	r.AvgWriteEnergyPJ = s.MC.WriteEnergy().Mean()
	r.DistinctLines, r.MaxLineWrites = s.MC.Endurance()
	mgr := s.MC.Scheduler().Manager()
	r.MaxGCPTokens = mgr.MaxGCPOut()
	r.MaxGCPGrant = mgr.MaxGCPGrant()
	r.MaxGCPSegment = mgr.MaxGCPSegment()
	r.AvgGCPTokens = mgr.AvgGCPPerWrite()
	r.WastedPower = mgr.WastedInputPower()
	_, _, mr, rounds, _, _ := s.MC.Scheduler().Stats()
	r.MRAdmissions = mr
	r.MultiRound = rounds
	r.Metrics = s.Obs.Registry().Values()
	return r
}

// BuildFromSources assembles a system whose cores replay externally
// provided traces (e.g. files written by cmd/tracegen) instead of live
// generators. classes supplies each core's value-mutation model for
// writeback content synthesis. Caches start cold — a trace carries no
// region metadata to prefill from — so short replays under-report
// writebacks relative to generated runs; replay is intended for
// functional studies and cross-checking stored traces.
func BuildFromSources(cfg sim.Config, sources []trace.Source, classes []workload.ValueClass) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sources) != cfg.Cores || len(classes) != cfg.Cores {
		return nil, fmt.Errorf("system: %d sources / %d classes for %d cores",
			len(sources), len(classes), cfg.Cores)
	}
	eng := sim.NewEngine()
	mc := mem.NewController(eng, &cfg, workload.BaselineContent)
	s := &System{Cfg: cfg, Eng: eng, MC: mc, Obs: mc.Hub()}
	s.registerSystemMetrics()
	root := sim.NewRNG(cfg.Seed)
	for i, src := range sources {
		hier := cache.NewHierarchy(&s.Cfg)
		mut := workload.NewMutator(classes[i], root.Derive(uint64(2000+i)))
		core := cpu.New(i, eng, &s.Cfg, hier, src, mut, mc, func(*cpu.Core) { s.finished++ })
		s.Cores = append(s.Cores, core)
	}
	return s, nil
}

// Release returns per-core cache metadata to the allocation pool. Call only
// when done with the system (after Run + metric collection); the system must
// not be used afterwards.
func (s *System) Release() {
	for _, c := range s.Cores {
		c.Hierarchy().Release()
	}
}

// RunWorkload is the one-call helper most experiments use: build and run
// the named workload under the configuration.
func RunWorkload(cfg sim.Config, name string) (Result, error) {
	wl, err := workload.ByName(name, cfg.Cores)
	if err != nil {
		return Result{}, err
	}
	sys, err := Build(cfg, wl)
	if err != nil {
		return Result{}, err
	}
	res := sys.Run()
	res.Workload = name
	sys.Release()
	return res, nil
}

// Speedup computes CPI_baseline / CPI_tech (Eq. 7).
func Speedup(baseline, tech Result) float64 {
	if tech.CPI == 0 {
		return 0
	}
	return baseline.CPI / tech.CPI
}
