package system

import (
	"io"
	"reflect"
	"testing"

	"fpb/internal/obs"
	"fpb/internal/sim"
	"fpb/internal/workload"
)

// TestInstrumentationDoesNotChangeResults is the observability determinism
// guard: running the Fig. 18 configuration with tracing attached and the
// parallel engine's shard/lane telemetry registered must produce a Result —
// every scalar and every Metrics entry — bit-identical to a bare sequential
// run. Shard and lane series are exec-scope precisely so this holds; a
// regression here means execution telemetry leaked into model output.
//
// Probes are deliberately NOT enabled: a probe is a simulation event and
// legitimately changes sim.events_run. Tracing and metrics registration
// must be free.
func TestInstrumentationDoesNotChangeResults(t *testing.T) {
	mk := func() sim.Config {
		cfg := sim.DefaultConfig()
		cfg.Scheme = sim.SchemeGCPIPMMR
		cfg.InstrPerCore = 20_000
		return cfg
	}
	const wlName = "mcf_m"

	base, err := RunWorkload(mk(), wlName)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 4} {
		cfg := mk()
		cfg.Shards = shards
		wl, err := workload.ByName(wlName, cfg.Cores)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := Build(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		// Full-firehose tracer (every category except "engine") into a
		// discarded JSONL stream: emission must be observationally free.
		tr := obs.NewTracer(obs.NewJSONL(io.Discard))
		sys.EnableTrace(tr)

		// The shard/lane exec series must be registered...
		names := sys.Obs.Registry().Names()
		found := map[string]bool{}
		for _, n := range names {
			found[n] = true
		}
		for _, want := range []string{
			"sim.shard.sweeps", "sim.shard.inline_sweeps", "sim.shard.prepared",
			"sim.shard.lane_commits", "sim.shard.barrier_wait_ns",
			"sim.shard.horizon_cycles", "sim.shard.parks", "sim.shard.wakes",
			"sim.lane.0.pending", "sim.lane.0.committed",
			"mem.spec.published", "mem.spec.hits",
		} {
			if !found[want] {
				t.Errorf("shards=%d: exec series %q not registered", shards, want)
			}
		}

		res := sys.Run()
		res.Workload = wlName
		if err := tr.Close(); err != nil {
			t.Fatalf("shards=%d: tracer: %v", shards, err)
		}

		// ...but absent from the result, which must match the bare run.
		for name := range res.Metrics {
			if found[name] && isExecSeries(name) {
				t.Errorf("shards=%d: exec series %q leaked into Result.Metrics", shards, name)
			}
		}
		if !reflect.DeepEqual(base, res) {
			t.Errorf("shards=%d: instrumented run diverged from bare sequential run:\n  base: %+v\n  got:  %+v",
				shards, base, res)
		}
		sys.Release()
	}
}

func isExecSeries(name string) bool {
	for _, prefix := range []string{"sim.shard.", "sim.lane.", "mem.spec."} {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}
