package system

import (
	"reflect"
	"runtime"
	"testing"

	"fpb/internal/sim"
)

// TestShardedDeterminismMatrix is the hard guarantee behind Config.Shards:
// for every tested shard count and every GOMAXPROCS, the full Result —
// every scalar and every metric in the registry map — is bit-identical to
// the sequential engine's. The MLC config stacks the riskiest speculation
// paths (PWL rotation, write cancellation/pausing, Multi-RESET); the SLC
// config covers the 1-bit write-profile shape.
func TestShardedDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2 workloads x 7 engine configurations")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	mlc := func() sim.Config {
		cfg := quickConfig(sim.SchemeGCPIPMMR)
		cfg.CellMapping = sim.MapBIM
		cfg.PWL = true
		cfg.WriteCancellation = true
		cfg.WritePausing = true
		cfg.InstrPerCore = 20_000
		return cfg
	}
	slc := func() sim.Config {
		cfg := quickConfig(sim.SchemeDIMMChip)
		cfg.BitsPerCell = 1
		cfg.InstrPerCore = 20_000
		return cfg
	}

	for _, tc := range []struct {
		name string
		mk   func() sim.Config
		wl   string
	}{
		{"mlc-fpb-wc-wp-pwl", mlc, "mcf_m"},
		{"slc-dimmchip", slc, "mix_1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base, err := RunWorkload(tc.mk(), tc.wl)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 4, 64} {
				for _, procs := range []int{1, 4} {
					runtime.GOMAXPROCS(procs)
					cfg := tc.mk()
					cfg.Shards = shards
					got, err := RunWorkload(cfg, tc.wl)
					if err != nil {
						t.Fatalf("shards=%d procs=%d: %v", shards, procs, err)
					}
					if !reflect.DeepEqual(base, got) {
						t.Errorf("shards=%d procs=%d diverged from sequential:\n  sequential: %+v\n  sharded:    %+v",
							shards, procs, base, got)
					}
				}
			}
		})
	}
}

// TestShardedKeyIgnoresShards: Shards picks the execution engine, not the
// simulated machine, so it must not fragment result caches.
func TestShardedKeyIgnoresShards(t *testing.T) {
	a := quickConfig(sim.SchemeGCP)
	b := a
	b.Shards = 64
	if Key(a, "mcf_m") != Key(b, "mcf_m") {
		t.Error("Shards changed the result cache key")
	}
	if Key(a, "mcf_m") == Key(a, "lbm_m") {
		t.Error("distinct workloads share a key")
	}
}

// TestShardedHalfStripeAndNarrowLines covers configurations the fpbsim CLI
// cannot reach (half-stripe layout, 64B lines): the rotation-offset
// validation of cached write profiles is most stressed here.
func TestShardedHalfStripeAndNarrowLines(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	for _, variant := range []struct {
		name   string
		mutate func(*sim.Config)
	}{
		{"halfstripe", func(c *sim.Config) { c.HalfStripe = true }},
		{"line64", func(c *sim.Config) { c.L3LineB = 64 }},
	} {
		t.Run(variant.name, func(t *testing.T) {
			mk := func() sim.Config {
				cfg := quickConfig(sim.SchemeGCPIPMMR)
				cfg.CellMapping = sim.MapBIM
				cfg.InstrPerCore = 15_000
				variant.mutate(&cfg)
				return cfg
			}
			base, err := RunWorkload(mk(), "lbm_m")
			if err != nil {
				t.Fatal(err)
			}
			cfg := mk()
			cfg.Shards = 16
			got, err := RunWorkload(cfg, "lbm_m")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("%s: sharded run diverged:\n  sequential: %+v\n  sharded:    %+v",
					variant.name, base, got)
			}
		})
	}
}
