package system

import (
	"reflect"
	"runtime"
	"testing"

	"fpb/internal/sim"
)

// TestShardedDeterminismMatrix is the hard guarantee behind Config.Shards:
// for every tested shard count and every GOMAXPROCS, the full Result —
// every scalar and every metric in the registry map — is bit-identical to
// the sequential engine's. The MLC config stacks the riskiest speculation
// paths (PWL rotation, write cancellation/pausing, Multi-RESET); the SLC
// config covers the 1-bit write-profile shape.
func TestShardedDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2 workloads x 7 engine configurations")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	mlc := func() sim.Config {
		cfg := quickConfig(sim.SchemeGCPIPMMR)
		cfg.CellMapping = sim.MapBIM
		cfg.PWL = true
		cfg.WriteCancellation = true
		cfg.WritePausing = true
		cfg.InstrPerCore = 20_000
		return cfg
	}
	slc := func() sim.Config {
		cfg := quickConfig(sim.SchemeDIMMChip)
		cfg.BitsPerCell = 1
		cfg.InstrPerCore = 20_000
		return cfg
	}

	for _, tc := range []struct {
		name string
		mk   func() sim.Config
		wl   string
	}{
		{"mlc-fpb-wc-wp-pwl", mlc, "mcf_m"},
		{"slc-dimmchip", slc, "mix_1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base, err := RunWorkload(tc.mk(), tc.wl)
			if err != nil {
				t.Fatal(err)
			}
			// Engine variants: shard counts × GOMAXPROCS, plus the batching
			// knobs — a narrow horizon (sweep every window), a very wide
			// one, and the static distance with the adaptive extension off.
			for _, v := range []struct {
				name           string
				shards, procs  int
				horizon        int
				staticDistance bool
			}{
				{"shards=1/procs=1", 1, 1, 0, false},
				{"shards=4/procs=1", 4, 1, 0, false},
				{"shards=4/procs=4", 4, 4, 0, false},
				{"shards=64/procs=1", 64, 1, 0, false},
				{"shards=64/procs=4", 64, 4, 0, false},
				{"shards=64/horizon=1/procs=4", 64, 4, 1, false},
				{"shards=64/horizon=32/procs=2", 64, 2, 32, false},
				{"shards=64/horizon=8/static/procs=4", 64, 4, 8, true},
				{"shards=16/horizon=4/static/procs=2", 16, 2, 4, true},
			} {
				runtime.GOMAXPROCS(v.procs)
				cfg := tc.mk()
				cfg.Shards = v.shards
				cfg.ShardHorizon = v.horizon
				cfg.ShardStaticLookahead = v.staticDistance
				got, err := RunWorkload(cfg, tc.wl)
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				if !reflect.DeepEqual(base, got) {
					t.Errorf("%s diverged from sequential:\n  sequential: %+v\n  sharded:    %+v",
						v.name, base, got)
				}
			}
		})
	}
}

// TestShardedKeyIgnoresShards: Shards and the batching knobs pick the
// execution engine, not the simulated machine, so they must not fragment
// result caches.
func TestShardedKeyIgnoresShards(t *testing.T) {
	a := quickConfig(sim.SchemeGCP)
	b := a
	b.Shards = 64
	b.ShardHorizon = 16
	b.ShardStaticLookahead = true
	if Key(a, "mcf_m") != Key(b, "mcf_m") {
		t.Error("Shards/ShardHorizon/ShardStaticLookahead changed the result cache key")
	}
	if Key(a, "mcf_m") == Key(a, "lbm_m") {
		t.Error("distinct workloads share a key")
	}
}

// TestShardedHalfStripeAndNarrowLines covers configurations the fpbsim CLI
// cannot reach (half-stripe layout, 64B lines): the rotation-offset
// validation of cached write profiles is most stressed here.
func TestShardedHalfStripeAndNarrowLines(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	for _, variant := range []struct {
		name   string
		mutate func(*sim.Config)
	}{
		{"halfstripe", func(c *sim.Config) { c.HalfStripe = true }},
		{"line64", func(c *sim.Config) { c.L3LineB = 64 }},
	} {
		t.Run(variant.name, func(t *testing.T) {
			mk := func() sim.Config {
				cfg := quickConfig(sim.SchemeGCPIPMMR)
				cfg.CellMapping = sim.MapBIM
				cfg.InstrPerCore = 15_000
				variant.mutate(&cfg)
				return cfg
			}
			base, err := RunWorkload(mk(), "lbm_m")
			if err != nil {
				t.Fatal(err)
			}
			cfg := mk()
			cfg.Shards = 16
			got, err := RunWorkload(cfg, "lbm_m")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("%s: sharded run diverged:\n  sequential: %+v\n  sharded:    %+v",
					variant.name, base, got)
			}
		})
	}
}
