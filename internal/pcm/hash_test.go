package pcm

import (
	"testing"

	"fpb/internal/mapping"
	"fpb/internal/sim"
)

// TestBuildDeterministicAcrossBuilders: the same physical write must get
// the same iteration profile from independently seeded builders — the
// property that makes cross-scheme comparisons noise-free.
func TestBuildDeterministicAcrossBuilders(t *testing.T) {
	cfg := sim.DefaultConfig()
	mapFn := mapping.New(sim.MapBIM, cfg.CellsPerLine(), cfg.Chips)
	old := make([]byte, cfg.L3LineB)
	new := make([]byte, cfg.L3LineB)
	for i := 0; i < 100; i++ {
		SetCell(new, i*7, 2, CellState(i%4))
	}
	b1 := NewBuilder(&cfg, sim.NewRNG(111))
	b2 := NewBuilder(&cfg, sim.NewRNG(999))
	p1 := b1.Build(0x4000, old, new, mapFn, false)
	p2 := b2.Build(0x4000, old, new, mapFn, false)
	if p1.TotalIters != p2.TotalIters {
		t.Fatalf("iteration counts differ: %d vs %d", p1.TotalIters, p2.TotalIters)
	}
	for k := range p1.RemainTotal {
		if p1.RemainTotal[k] != p2.RemainTotal[k] {
			t.Fatalf("remain[%d] differs: %d vs %d", k, p1.RemainTotal[k], p2.RemainTotal[k])
		}
	}
}

// TestBuildVariesWithContent: different content must (in general) yield
// different difficulty; the hash is not degenerate.
func TestBuildVariesWithContent(t *testing.T) {
	cfg := sim.DefaultConfig()
	mapFn := mapping.New(sim.MapVIM, cfg.CellsPerLine(), cfg.Chips)
	b := NewBuilder(&cfg, sim.NewRNG(1))
	old := make([]byte, cfg.L3LineB)
	same := 0
	var prev int
	for v := 0; v < 32; v++ {
		next := make([]byte, cfg.L3LineB)
		for i := 0; i < 200; i++ {
			SetCell(next, i, 2, CellState((i+v)%3+1))
		}
		p := b.Build(0x8000, old, next, mapFn, false)
		if v > 0 && p.TotalIters == prev {
			same++
		}
		prev = p.TotalIters
	}
	if same == 31 {
		t.Error("iteration count identical for 32 distinct contents; hash degenerate")
	}
}

func TestContentHashSensitivity(t *testing.T) {
	a := contentHash(1, []byte{1, 2}, []byte{3, 4})
	if contentHash(2, []byte{1, 2}, []byte{3, 4}) == a {
		t.Error("hash ignores address")
	}
	if contentHash(1, []byte{9, 2}, []byte{3, 4}) == a {
		t.Error("hash ignores old content")
	}
	if contentHash(1, []byte{1, 2}, []byte{3, 9}) == a {
		t.Error("hash ignores new content")
	}
	if contentHash(1, []byte{1, 2}, []byte{3, 4}) != a {
		t.Error("hash not deterministic")
	}
}
