//go:build fpbdebug

package pcm

import "testing"

// TestStoreGuardPanicsOnGetViewMutation verifies the fpbdebug aliasing
// guard: mutating a slice returned by Get must panic at the next store
// access touching that line.
func TestStoreGuardPanicsOnGetViewMutation(t *testing.T) {
	s := NewStore(4)
	s.Put(0x40, []byte{1, 2, 3, 4})
	view := s.Get(0x40)
	view[0] = 99 // illegal: Get views are read-only
	defer func() {
		if recover() == nil {
			t.Error("mutated Get view was not detected")
		}
	}()
	s.Get(0x40)
}

// TestStoreGuardAllowsPut verifies the guard does not fire on the legal
// write path.
func TestStoreGuardAllowsPut(t *testing.T) {
	s := NewStore(4)
	s.Put(0x40, []byte{1, 2, 3, 4})
	_ = s.Get(0x40)
	s.Put(0x40, []byte{5, 6, 7, 8}) // legal rewrite
	if got := s.Get(0x40); got[0] != 5 {
		t.Error("Put after Get did not stick")
	}
}
