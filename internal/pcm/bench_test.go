package pcm

import (
	"testing"

	"fpb/internal/mapping"
	"fpb/internal/sim"
)

func BenchmarkDiffCells256B(b *testing.B) {
	old := make([]byte, 256)
	new := make([]byte, 256)
	for i := range new {
		if i%3 == 0 {
			new[i] = 0xA5
		}
	}
	var cells []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells = DiffCells(cells[:0], old, new, 2)
	}
	if len(cells) == 0 {
		b.Fatal("no diff")
	}
}

func BenchmarkCountChangedCells(b *testing.B) {
	old := make([]byte, 256)
	new := make([]byte, 256)
	for i := range new {
		new[i] = byte(i)
	}
	for i := 0; i < b.N; i++ {
		if CountChangedCells(old, new, 2) == 0 {
			b.Fatal("no changes")
		}
	}
}

func BenchmarkProfileBuild(b *testing.B) {
	cfg := sim.DefaultConfig()
	builder := NewBuilder(&cfg, sim.NewRNG(1))
	mapFn := mapping.New(sim.MapBIM, cfg.CellsPerLine(), cfg.Chips)
	old := make([]byte, cfg.L3LineB)
	new := make([]byte, cfg.L3LineB)
	for i := 0; i < 200; i++ {
		SetCell(new, i*5, 2, CellState(1+i%3))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := builder.Build(uint64(i)*256, old, new, mapFn, false)
		if p.Changed == 0 {
			b.Fatal("empty profile")
		}
		// Steady state: the controller releases every profile it builds.
		builder.Release(p)
	}
}

func BenchmarkIterModelDraw(b *testing.B) {
	cfg := sim.DefaultConfig()
	m := NewIterModel(&cfg, sim.NewRNG(2))
	for i := 0; i < b.N; i++ {
		if m.Draw(State01) < 2 {
			b.Fatal("bad draw")
		}
	}
}
