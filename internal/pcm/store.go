package pcm

// pageLines is the number of lines per store page. With the default 256-byte
// line a page is 128 KB of content — big enough to amortize page lookups
// over the streaming regions, small enough that sparse address use does not
// balloon memory.
const pageLines = 512

// storePage is one lazily materialized span of pageLines consecutive lines.
type storePage struct {
	data    []byte   // pageLines * lineBytes
	written []uint64 // one bit per line: has it ever been written?
}

// Store is the content store for PCM main memory, a paged flat array: lines
// live in fixed-size pages materialized on first write to their span.
// Untouched lines read as nil (all zeros), matching the paper's Fig. 3
// assumption that memory initially contains 0s.
type Store struct {
	lineBytes int
	pages     map[uint64]*storePage
	lastIdx   uint64 // single-entry page lookup cache
	lastPage  *storePage
	count     int // lines ever written
	guard     storeGuard
}

// NewStore creates a store for lines of lineBytes bytes.
func NewStore(lineBytes int) *Store {
	return &Store{lineBytes: lineBytes, pages: make(map[uint64]*storePage), lastIdx: ^uint64(0)}
}

// LineBytes reports the line size.
func (s *Store) LineBytes() int { return s.lineBytes }

// Len reports how many distinct lines have been written.
func (s *Store) Len() int { return s.count }

// lookup returns the page holding lineNo, or nil if it was never
// materialized.
func (s *Store) lookup(pageIdx uint64) *storePage {
	if pageIdx == s.lastIdx {
		return s.lastPage
	}
	p := s.pages[pageIdx]
	if p != nil {
		s.lastIdx, s.lastPage = pageIdx, p
	}
	return p
}

// materialize returns the page holding lineNo, creating it if needed.
func (s *Store) materialize(pageIdx uint64) *storePage {
	if p := s.lookup(pageIdx); p != nil {
		return p
	}
	p := &storePage{
		data:    make([]byte, pageLines*s.lineBytes),
		written: make([]uint64, pageLines/64),
	}
	s.pages[pageIdx] = p
	s.lastIdx, s.lastPage = pageIdx, p
	return p
}

// Get returns the current content of the line at lineAddr, or nil if the
// line has never been written (all zeros). The returned slice is a view
// into the store, valid until the line is next written; callers must not
// mutate it — build with the fpbdebug tag to enforce this.
func (s *Store) Get(lineAddr uint64) []byte {
	lineNo := lineAddr / uint64(s.lineBytes)
	p := s.lookup(lineNo / pageLines)
	if p == nil {
		return nil
	}
	slot := lineNo % pageLines
	if p.written[slot/64]&(1<<(slot%64)) == 0 {
		return nil
	}
	line := p.data[int(slot)*s.lineBytes : (int(slot)+1)*s.lineBytes : (int(slot)+1)*s.lineBytes]
	s.guard.onGet(lineAddr, line)
	return line
}

// Reader is a read-only view of a Store with its own page-lookup cache, for
// use by the parallel engine's prepare workers: Store.Get mutates the shared
// single-entry cache (and the fpbdebug guard's fingerprint map), so
// concurrent readers each need a private Reader. Readers are only coherent
// with writes that happened before the reader's goroutine started its phase
// (the engine's sweep barrier provides exactly that ordering); the Store
// must not be written while any Reader is in use.
type Reader struct {
	s        *Store
	lastIdx  uint64
	lastPage *storePage
}

// Reader returns a new private read view of the store.
func (s *Store) Reader() *Reader {
	return &Reader{s: s, lastIdx: ^uint64(0)}
}

// Get is Store.Get through the private cache: the current content of the
// line, or nil if never written. The fpbdebug aliasing guard is bypassed —
// it mutates shared state on every Get — so views obtained here must be
// treated as strictly read-only.
func (r *Reader) Get(lineAddr uint64) []byte {
	s := r.s
	lineNo := lineAddr / uint64(s.lineBytes)
	pageIdx := lineNo / pageLines
	p := r.lastPage
	if pageIdx != r.lastIdx {
		p = s.pages[pageIdx]
		if p != nil {
			r.lastIdx, r.lastPage = pageIdx, p
		}
	}
	if p == nil {
		return nil
	}
	slot := lineNo % pageLines
	if p.written[slot/64]&(1<<(slot%64)) == 0 {
		return nil
	}
	return p.data[int(slot)*s.lineBytes : (int(slot)+1)*s.lineBytes : (int(slot)+1)*s.lineBytes]
}

// Put copies data into the line at lineAddr. The store never takes
// ownership of data; the line's storage is reused in place.
func (s *Store) Put(lineAddr uint64, data []byte) {
	s.Update(lineAddr, data)
}

// Update is Put reporting whether this is the line's first write — the
// combined check-and-store the controller uses for wear accounting without
// a separate lookup.
func (s *Store) Update(lineAddr uint64, data []byte) (fresh bool) {
	if len(data) != s.lineBytes {
		panic("pcm: Put with wrong line size")
	}
	lineNo := lineAddr / uint64(s.lineBytes)
	p := s.materialize(lineNo / pageLines)
	slot := lineNo % pageLines
	line := p.data[int(slot)*s.lineBytes : (int(slot)+1)*s.lineBytes]
	s.guard.onPut(lineAddr, line)
	copy(line, data)
	if p.written[slot/64]&(1<<(slot%64)) == 0 {
		p.written[slot/64] |= 1 << (slot % 64)
		s.count++
		return true
	}
	return false
}
