package pcm

// Store is the sparse content store for PCM main memory. Only lines that
// have been written are materialized; untouched memory reads as all zeros,
// matching the paper's Fig. 3 assumption that memory initially contains 0s.
type Store struct {
	lineBytes int
	lines     map[uint64][]byte
}

// NewStore creates a store for lines of lineBytes bytes.
func NewStore(lineBytes int) *Store {
	return &Store{lineBytes: lineBytes, lines: make(map[uint64][]byte)}
}

// LineBytes reports the line size.
func (s *Store) LineBytes() int { return s.lineBytes }

// Get returns the current content of the line at lineAddr, or nil if the
// line has never been written (all zeros). Callers must not mutate the
// returned slice; use Put.
func (s *Store) Get(lineAddr uint64) []byte {
	return s.lines[lineAddr]
}

// Put replaces the content of the line and returns the previous content
// (nil if the line was untouched). Put takes ownership of new.
func (s *Store) Put(lineAddr uint64, new []byte) []byte {
	if len(new) != s.lineBytes {
		panic("pcm: Put with wrong line size")
	}
	old := s.lines[lineAddr]
	s.lines[lineAddr] = new
	return old
}

// Len reports how many distinct lines have been written.
func (s *Store) Len() int { return len(s.lines) }
