package pcm

import (
	"math"
	"testing"

	"fpb/internal/sim"
)

func newTestModel(t *testing.T) *IterModel {
	t.Helper()
	cfg := sim.DefaultConfig()
	return NewIterModel(&cfg, sim.NewRNG(1))
}

func TestIterModelFixedStates(t *testing.T) {
	m := newTestModel(t)
	for i := 0; i < 100; i++ {
		if got := m.Draw(State00); got != 1 {
			t.Fatalf("'00' draw = %d, want fixed 1", got)
		}
		if got := m.Draw(State11); got != 2 {
			t.Fatalf("'11' draw = %d, want fixed 2", got)
		}
	}
}

func TestIterModelMeans(t *testing.T) {
	m := newTestModel(t)
	const draws = 200000
	sum01, sum10 := 0, 0
	for i := 0; i < draws; i++ {
		sum01 += m.Draw(State01)
		sum10 += m.Draw(State10)
	}
	mean01 := float64(sum01) / draws
	mean10 := float64(sum10) / draws
	// The IterMax cap truncates the slow tail, so allow ~12% slack below
	// the configured means of 8 and 6.
	if math.Abs(mean01-8) > 1.0 {
		t.Errorf("'01' mean = %.2f, want ~8", mean01)
	}
	if math.Abs(mean10-6) > 0.8 {
		t.Errorf("'10' mean = %.2f, want ~6", mean10)
	}
	if mean10 >= mean01 {
		t.Errorf("'10' mean %.2f should be below '01' mean %.2f", mean10, mean01)
	}
}

func TestIterModelBounds(t *testing.T) {
	cfg := sim.DefaultConfig()
	m := NewIterModel(&cfg, sim.NewRNG(2))
	for i := 0; i < 50000; i++ {
		for _, s := range []CellState{State00, State01, State10, State11} {
			d := m.Draw(s)
			if d < 1 || d > cfg.IterMax {
				t.Fatalf("draw for state %d = %d, out of [1,%d]", s, d, cfg.IterMax)
			}
		}
	}
	if m.MaxIters() != cfg.IterMax {
		t.Errorf("MaxIters = %d, want %d", m.MaxIters(), cfg.IterMax)
	}
}

func TestIterModelIntermediateStatesNeedSET(t *testing.T) {
	m := newTestModel(t)
	for i := 0; i < 1000; i++ {
		if d := m.Draw(State01); d < 2 {
			t.Fatalf("'01' draw = %d, must be >= 2 (RESET + >=1 SET)", d)
		}
		if d := m.Draw(State10); d < 2 {
			t.Fatalf("'10' draw = %d, must be >= 2", d)
		}
	}
}

func TestIterModelSLCAlwaysOne(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.BitsPerCell = 1
	m := NewIterModel(&cfg, sim.NewRNG(3))
	for i := 0; i < 100; i++ {
		if d := m.Draw(CellState(i % 4)); d != 1 {
			t.Fatalf("SLC draw = %d, want 1", d)
		}
	}
}

func TestIterModelDeterministicForSeed(t *testing.T) {
	cfg := sim.DefaultConfig()
	a := NewIterModel(&cfg, sim.NewRNG(9))
	b := NewIterModel(&cfg, sim.NewRNG(9))
	for i := 0; i < 1000; i++ {
		s := CellState(i % 4)
		if a.Draw(s) != b.Draw(s) {
			t.Fatal("same-seed models diverged")
		}
	}
}

func TestSolveMix(t *testing.T) {
	// The mixture mean must equal the configured mean:
	// F1*fast + F2*slow == mean.
	m := solveMix(8, 0.375)
	got := 0.375*m.fastMean + 0.625*m.slowMean
	if math.Abs(got-8) > 1e-9 {
		t.Errorf("mixture mean = %g, want 8 (fast %g, slow %g)", got, m.fastMean, m.slowMean)
	}
	if m.fastMean >= m.slowMean {
		t.Errorf("fast phase (%g) not below slow phase (%g)", m.fastMean, m.slowMean)
	}
	// Degenerate small means clamp to the minimum.
	d := solveMix(2, 0.5)
	if d.fastMean < minIters || d.slowMean < d.fastMean {
		t.Errorf("degenerate mix = %+v", d)
	}
}

func TestIterModelThinTail(t *testing.T) {
	// The property write truncation depends on: only a few cells of a
	// line write straggle far past the mean. For state '01' (mean 8),
	// fewer than 5% of draws may exceed 13 iterations.
	m := newTestModel(t)
	const draws = 100000
	far := 0
	for i := 0; i < draws; i++ {
		if m.Draw(State01) > 13 {
			far++
		}
	}
	if frac := float64(far) / draws; frac > 0.05 {
		t.Errorf("%.1f%% of draws beyond 13 iterations; tail too thick for WT", frac*100)
	}
}
