package pcm

import (
	"testing"
	"testing/quick"
)

func TestAddressMapBasics(t *testing.T) {
	a := NewAddressMap(256, 8)
	if a.LineBytes() != 256 || a.Banks() != 8 {
		t.Fatal("accessors wrong")
	}
	if got := a.LineAddr(0x1234); got != 0x1200 {
		t.Errorf("LineAddr(0x1234) = %#x, want 0x1200", got)
	}
	if got := a.Bank(0); got != 0 {
		t.Errorf("Bank(0) = %d", got)
	}
	// Consecutive lines go to consecutive banks.
	for i := 0; i < 16; i++ {
		if got := a.Bank(uint64(i) * 256); got != i%8 {
			t.Errorf("line %d → bank %d, want %d", i, got, i%8)
		}
	}
}

func TestAddressMapAlignmentProperty(t *testing.T) {
	a := NewAddressMap(128, 4)
	err := quick.Check(func(addr uint64) bool {
		la := a.LineAddr(addr)
		return la%128 == 0 && la <= addr && addr-la < 128 &&
			a.Bank(addr) == a.Bank(la)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestAddressMapInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero line size did not panic")
		}
	}()
	NewAddressMap(0, 8)
}
