package pcm

import "fpb/internal/sim"

// Pulse energies for one cell, derived from Table 1's electrical
// parameters: RESET 1.6 V × 300 µA × 125 ns = 60 pJ, SET 1.2 V × 150 µA ×
// 250 ns = 45 pJ. (Token accounting uses the configurable SetPowerRatio;
// energy reporting uses the electrical values.)
const (
	ResetEnergyPJ = 1.6 * 300e-6 * 125e-9 * 1e12 // per cell RESET pulse
	SetEnergyPJ   = 1.2 * 150e-6 * 250e-9 * 1e12 // per cell SET pulse
)

// WriteEnergyPJ returns the programming energy of the line write in
// picojoules: every changed cell takes one RESET pulse, and each SET
// iteration pulses the cells still unfinished (program-and-verify applies
// the pulse before the verify that retires the cell).
func (p *WriteProfile) WriteEnergyPJ(cfg *sim.Config) float64 {
	e := float64(p.Changed) * ResetEnergyPJ
	for j := 2; j <= p.TotalIters; j++ {
		e += float64(p.SetDemandAt(j)) * SetEnergyPJ
	}
	return e
}
