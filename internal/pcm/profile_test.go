package pcm

import (
	"testing"
	"testing/quick"

	"fpb/internal/mapping"
	"fpb/internal/sim"
)

func buildProfile(t *testing.T, cfg sim.Config, nChanged int, mapType sim.Mapping, truncate bool) *WriteProfile {
	t.Helper()
	b := NewBuilder(&cfg, sim.NewRNG(cfg.Seed))
	mapFn := mapping.New(mapType, cfg.CellsPerLine(), cfg.Chips)
	cells := make([]int, nChanged)
	states := make([]CellState, nChanged)
	stride := cfg.CellsPerLine() / max(nChanged, 1)
	if stride == 0 {
		stride = 1
	}
	for i := range cells {
		cells[i] = (i * stride) % cfg.CellsPerLine()
		states[i] = CellState(i % 4)
	}
	return b.BuildFromCells(0x1000, cells, states, mapFn, truncate)
}

func TestProfileInvariants(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := buildProfile(t, cfg, 200, sim.MapVIM, false)
	if p.Changed != 200 {
		t.Fatalf("Changed = %d, want 200", p.Changed)
	}
	if p.RemainTotal[0] != p.Changed {
		t.Errorf("RemainTotal[0] = %d, want Changed", p.RemainTotal[0])
	}
	if last := p.RemainTotal[p.TotalIters]; last != 0 {
		t.Errorf("RemainTotal[final] = %d, want 0", last)
	}
	// Remaining counts are non-increasing.
	for k := 1; k <= p.TotalIters; k++ {
		if p.RemainTotal[k] > p.RemainTotal[k-1] {
			t.Errorf("RemainTotal increased at iteration %d: %v", k, p.RemainTotal)
		}
	}
	// Per-chip remains sum to the total at every iteration.
	for k := 0; k <= p.TotalIters; k++ {
		sum := 0
		for _, c := range p.RemainPerChip[k] {
			sum += c
		}
		if sum != p.RemainTotal[k] {
			t.Errorf("iter %d: per-chip sum %d != total %d", k, sum, p.RemainTotal[k])
		}
	}
	// Per-chip changed counts sum to Changed.
	sum := 0
	for _, c := range p.PerChip {
		sum += c
	}
	if sum != p.Changed {
		t.Errorf("PerChip sums to %d, want %d", sum, p.Changed)
	}
}

func TestProfileMRGroupsPartitionPerChip(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := buildProfile(t, cfg, 300, sim.MapBIM, false)
	for m := 2; m <= MaxMultiResetSplit; m++ {
		for c := 0; c < cfg.Chips; c++ {
			sum := 0
			for g := 0; g < m; g++ {
				sum += p.MRGroups[m][c][g]
			}
			if sum != p.PerChip[c] {
				t.Errorf("m=%d chip=%d groups sum %d != PerChip %d", m, c, sum, p.PerChip[c])
			}
		}
	}
}

func TestProfileZeroChanges(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := buildProfile(t, cfg, 0, sim.MapNaive, false)
	if p.TotalIters != 1 {
		t.Errorf("zero-change TotalIters = %d, want 1", p.TotalIters)
	}
	if p.RemainTotal[0] != 0 || p.RemainTotal[1] != 0 {
		t.Error("zero-change profile has nonzero remains")
	}
	if d := p.Duration(&cfg, 0); d != cfg.ResetCycles {
		t.Errorf("zero-change duration = %d, want one RESET slot %d", d, cfg.ResetCycles)
	}
}

func TestProfileDuration(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := buildProfile(t, cfg, 100, sim.MapVIM, false)
	want := cfg.ResetCycles + sim.Cycle(p.TotalIters-1)*cfg.SetCycles
	if got := p.Duration(&cfg, 0); got != want {
		t.Errorf("Duration = %d, want %d", got, want)
	}
	// Multi-RESET with m=3 adds two extra RESET slots.
	want3 := 3*cfg.ResetCycles + sim.Cycle(p.TotalIters-1)*cfg.SetCycles
	if got := p.Duration(&cfg, 3); got != want3 {
		t.Errorf("Duration(m=3) = %d, want %d", got, want3)
	}
}

func TestProfileSetDemand(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := buildProfile(t, cfg, 150, sim.MapVIM, false)
	if got := p.SetDemandAt(1); got != 0 {
		t.Errorf("SetDemandAt(1) = %d, want 0 (iteration 1 is RESET)", got)
	}
	if p.TotalIters >= 2 {
		if got := p.SetDemandAt(2); got != p.RemainTotal[1] {
			t.Errorf("SetDemandAt(2) = %d, want RemainTotal[1] = %d", got, p.RemainTotal[1])
		}
		per := p.SetDemandPerChipAt(2)
		sum := 0
		for _, c := range per {
			sum += c
		}
		if sum != p.SetDemandAt(2) {
			t.Error("per-chip SET demand does not sum to total")
		}
	}
	if got := p.SetDemandAt(p.TotalIters + 1); got != 0 {
		t.Errorf("SetDemandAt beyond end = %d, want 0", got)
	}
}

func TestProfileTruncation(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.TruncateTailCells = 50
	full := buildProfile(t, cfg, 400, sim.MapVIM, false)
	trunc := buildProfile(t, cfg, 400, sim.MapVIM, true)
	if trunc.TotalIters > full.TotalIters {
		t.Errorf("truncated write longer than full: %d > %d", trunc.TotalIters, full.TotalIters)
	}
	if trunc.TotalIters == full.TotalIters && trunc.Truncated == 0 {
		// With 400 cells and tail 50, the slow tail should normally trigger.
		t.Log("truncation did not trigger; acceptable but unusual for 400 cells")
	}
	if trunc.Truncated > 0 {
		if trunc.RemainTotal[trunc.TotalIters] != 0 {
			t.Error("truncated profile must end with zero remaining cells")
		}
		if trunc.Truncated > cfg.TruncateTailCells {
			t.Errorf("truncated %d cells, more than threshold %d", trunc.Truncated, cfg.TruncateTailCells)
		}
	}
}

func TestProfileBuildFromData(t *testing.T) {
	cfg := sim.DefaultConfig()
	b := NewBuilder(&cfg, sim.NewRNG(7))
	mapFn := mapping.New(sim.MapVIM, cfg.CellsPerLine(), cfg.Chips)
	old := make([]byte, cfg.L3LineB)
	new := make([]byte, cfg.L3LineB)
	copy(new, old)
	SetCell(new, 0, 2, State01)
	SetCell(new, 100, 2, State10)
	SetCell(new, 1023, 2, State11)
	p := b.Build(0x2000, old, new, mapFn, false)
	if p.Changed != 3 {
		t.Fatalf("Changed = %d, want 3", p.Changed)
	}
	if p.LineAddr != 0x2000 {
		t.Errorf("LineAddr = %#x", p.LineAddr)
	}
}

func TestProfileRemainMonotoneProperty(t *testing.T) {
	cfg := sim.DefaultConfig()
	b := NewBuilder(&cfg, sim.NewRNG(11))
	mapFn := mapping.New(sim.MapBIM, cfg.CellsPerLine(), cfg.Chips)
	err := quick.Check(func(seed uint16) bool {
		rng := sim.NewRNG(uint64(seed))
		n := rng.Intn(cfg.CellsPerLine())
		cells := make([]int, 0, n)
		seen := make(map[int]bool)
		for len(cells) < n {
			c := rng.Intn(cfg.CellsPerLine())
			if !seen[c] {
				seen[c] = true
				cells = append(cells, c)
			}
		}
		p := b.BuildFromCells(0, cells, nil, mapFn, false)
		for k := 1; k <= p.TotalIters; k++ {
			for c := range p.RemainPerChip[k] {
				if p.RemainPerChip[k][c] > p.RemainPerChip[k-1][c] {
					return false
				}
			}
		}
		return p.RemainTotal[p.TotalIters] == 0
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
