package pcm

import (
	"fmt"
	"sort"

	"fpb/internal/ckpt"
)

// SaveState serializes the store's content sparsely: line size, written-line
// count, and for every materialized page (ascending index order, so the
// encoding is independent of map iteration order) its written bitmap plus
// the data of written lines only. Unwritten slots in a page are all-zero by
// construction — Get never returns them — so serializing them would inflate
// the image by orders of magnitude (a streaming warmup touches a few hundred
// lines across pages holding half a million).
func (s *Store) SaveState(w *ckpt.Writer) {
	w.Section("pcm.store")
	w.U64(uint64(s.lineBytes))
	w.U64(uint64(s.count))
	idxs := make([]uint64, 0, len(s.pages))
	for idx := range s.pages {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	w.U64(uint64(len(idxs)))
	for _, idx := range idxs {
		p := s.pages[idx]
		w.U64(idx)
		w.U64s(p.written)
		for slot := 0; slot < pageLines; slot++ {
			if p.written[slot/64]&(1<<(slot%64)) != 0 {
				w.Bytes(p.data[slot*s.lineBytes : (slot+1)*s.lineBytes])
			}
		}
	}
}

// RestoreState loads content written by SaveState into a store of the same
// line size, replacing whatever it held. Pages are installed directly (not
// through Put), so the fpbdebug aliasing guard starts clean.
func (s *Store) RestoreState(r *ckpt.Reader) error {
	r.Section("pcm.store")
	lineBytes := r.U64()
	count := r.U64()
	nPages := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if int(lineBytes) != s.lineBytes {
		return fmt.Errorf("pcm: line size mismatch: image %dB, store %dB", lineBytes, s.lineBytes)
	}
	pages := make(map[uint64]*storePage, nPages)
	for i := uint64(0); i < nPages; i++ {
		idx := r.U64()
		written := r.U64s()
		if err := r.Err(); err != nil {
			return err
		}
		if len(written) != pageLines/64 {
			return fmt.Errorf("pcm: page %d has wrong bitmap shape (%d words)", idx, len(written))
		}
		p := &storePage{
			data:    make([]byte, pageLines*s.lineBytes),
			written: written,
		}
		for slot := 0; slot < pageLines; slot++ {
			if written[slot/64]&(1<<(slot%64)) == 0 {
				continue
			}
			line := r.Bytes()
			if err := r.Err(); err != nil {
				return err
			}
			if len(line) != s.lineBytes {
				return fmt.Errorf("pcm: page %d slot %d has %d-byte line, store wants %d",
					idx, slot, len(line), s.lineBytes)
			}
			copy(p.data[slot*s.lineBytes:], line)
		}
		pages[idx] = p
	}
	s.pages = pages
	s.count = int(count)
	s.lastIdx, s.lastPage = ^uint64(0), nil
	s.guard = storeGuard{}
	return nil
}
