package pcm

// AddressMap translates physical byte addresses to memory lines and banks.
// Lines are interleaved across banks at line granularity, the conventional
// open-page-free PCM layout: consecutive lines hit consecutive banks. Every
// line is striped across all chips of the DIMM (the paper's baseline cell
// stripping, Section 2.1), so chip assignment is a property of the cell
// mapping, not the address.
type AddressMap struct {
	lineBytes uint64
	banks     uint64
}

// NewAddressMap builds the translation for the given line size and bank
// count.
func NewAddressMap(lineBytes, banks int) *AddressMap {
	if lineBytes <= 0 || banks <= 0 {
		panic("pcm: AddressMap requires positive line size and bank count")
	}
	return &AddressMap{lineBytes: uint64(lineBytes), banks: uint64(banks)}
}

// LineAddr returns the line-aligned address containing addr.
func (a *AddressMap) LineAddr(addr uint64) uint64 {
	return addr / a.lineBytes * a.lineBytes
}

// LineIndex returns the sequential line number of addr.
func (a *AddressMap) LineIndex(addr uint64) uint64 {
	return addr / a.lineBytes
}

// Bank returns the bank storing the line containing addr.
func (a *AddressMap) Bank(addr uint64) int {
	return int(a.LineIndex(addr) % a.banks)
}

// LineBytes reports the line size in bytes.
func (a *AddressMap) LineBytes() int { return int(a.lineBytes) }

// Banks reports the number of banks.
func (a *AddressMap) Banks() int { return int(a.banks) }
