package pcm

import "testing"

func TestStoreGetUntouchedIsNil(t *testing.T) {
	s := NewStore(64)
	if s.Get(0x40) != nil {
		t.Error("untouched line should be nil (all zeros)")
	}
	if s.Len() != 0 {
		t.Error("empty store has nonzero Len")
	}
}

func TestStorePutGetRoundTrip(t *testing.T) {
	s := NewStore(4)
	data := []byte{1, 2, 3, 4}
	if old := s.Put(0x100, data); old != nil {
		t.Error("first Put returned non-nil old")
	}
	got := s.Get(0x100)
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("Get returned wrong content")
		}
	}
	next := []byte{5, 6, 7, 8}
	old := s.Put(0x100, next)
	if old[0] != 1 {
		t.Error("Put did not return previous content")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestStorePutWrongSizePanics(t *testing.T) {
	s := NewStore(8)
	defer func() {
		if recover() == nil {
			t.Error("Put with wrong size did not panic")
		}
	}()
	s.Put(0, []byte{1})
}
