package pcm

import "testing"

func TestStoreGetUntouchedIsNil(t *testing.T) {
	s := NewStore(64)
	if s.Get(0x40) != nil {
		t.Error("untouched line should be nil (all zeros)")
	}
	if s.Len() != 0 {
		t.Error("empty store has nonzero Len")
	}
}

func TestStorePutGetRoundTrip(t *testing.T) {
	s := NewStore(4)
	data := []byte{1, 2, 3, 4}
	s.Put(0x100, data)
	got := s.Get(0x100)
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("Get returned wrong content")
		}
	}
	// The store copies on Put: mutating the caller's slice afterwards must
	// not change stored content.
	data[0] = 99
	if s.Get(0x100)[0] != 1 {
		t.Error("Put aliased the caller's slice instead of copying")
	}
	next := []byte{5, 6, 7, 8}
	s.Put(0x100, next)
	if got := s.Get(0x100); got[0] != 5 {
		t.Error("second Put did not replace content")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestStoreUpdateReportsFreshness(t *testing.T) {
	s := NewStore(2)
	if !s.Update(0x10, []byte{1, 2}) {
		t.Error("first Update not reported fresh")
	}
	if s.Update(0x10, []byte{3, 4}) {
		t.Error("second Update reported fresh")
	}
	if !s.Update(0x12, []byte{5, 6}) {
		t.Error("Update of a different line not reported fresh")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestStoreNeighborsWithinPageStayNil(t *testing.T) {
	s := NewStore(8)
	s.Put(8*100, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	// Materializing line 100's page must not make its page neighbors
	// readable: they were never written and read as all zeros (nil).
	if s.Get(8*99) != nil || s.Get(8*101) != nil {
		t.Error("unwritten neighbor line in a materialized page is non-nil")
	}
}

func TestStoreCrossPageLines(t *testing.T) {
	s := NewStore(4)
	// Two lines pageLines apart land on different pages.
	a := uint64(0)
	b := uint64(4 * pageLines)
	s.Put(a, []byte{1, 1, 1, 1})
	s.Put(b, []byte{2, 2, 2, 2})
	if s.Get(a)[0] != 1 || s.Get(b)[0] != 2 {
		t.Error("cross-page lines interfere")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestStorePutWrongSizePanics(t *testing.T) {
	s := NewStore(8)
	defer func() {
		if recover() == nil {
			t.Error("Put with wrong size did not panic")
		}
	}()
	s.Put(0, []byte{1})
}
