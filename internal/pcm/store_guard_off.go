//go:build !fpbdebug

package pcm

// storeGuard is compiled away in normal builds; the fpbdebug tag swaps in a
// checking implementation that panics when a caller mutates a slice
// previously returned by Store.Get. See store_guard_on.go.
type storeGuard struct{}

func (storeGuard) onGet(uint64, []byte) {}
func (storeGuard) onPut(uint64, []byte) {}
