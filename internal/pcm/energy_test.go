package pcm

import (
	"math"
	"testing"

	"fpb/internal/sim"
)

func TestPulseEnergyConstants(t *testing.T) {
	// Table 1: RESET 1.6V, 300µA, 125ns → 60 pJ; SET 1.2V, 150µA,
	// 250ns → 45 pJ.
	if math.Abs(ResetEnergyPJ-60) > 1e-9 {
		t.Errorf("ResetEnergyPJ = %g, want 60", ResetEnergyPJ)
	}
	if math.Abs(SetEnergyPJ-45) > 1e-9 {
		t.Errorf("SetEnergyPJ = %g, want 45", SetEnergyPJ)
	}
}

func TestWriteEnergyAccounting(t *testing.T) {
	cfg := sim.DefaultConfig()
	// Hand-built profile: 10 cells; after RESET 8 remain, after SET#2 4,
	// after SET#3 0. Energy = 10 RESETs + (8+4) SET pulses.
	p := &WriteProfile{
		Changed:     10,
		TotalIters:  3,
		RemainTotal: []int{10, 8, 4, 0},
	}
	want := 10*ResetEnergyPJ + 12*SetEnergyPJ
	if got := p.WriteEnergyPJ(&cfg); math.Abs(got-want) > 1e-9 {
		t.Errorf("WriteEnergyPJ = %g, want %g", got, want)
	}
}

func TestWriteEnergyZeroChange(t *testing.T) {
	cfg := sim.DefaultConfig()
	p := &WriteProfile{Changed: 0, TotalIters: 1, RemainTotal: []int{0, 0}}
	if got := p.WriteEnergyPJ(&cfg); got != 0 {
		t.Errorf("silent write energy = %g, want 0", got)
	}
}

func TestWriteTruncationSavesEnergy(t *testing.T) {
	cfg := sim.DefaultConfig()
	full := &WriteProfile{
		Changed:     100,
		TotalIters:  10,
		RemainTotal: []int{100, 90, 70, 50, 30, 20, 12, 8, 4, 2, 0},
	}
	trunc := &WriteProfile{
		Changed:     100,
		TotalIters:  7,
		RemainTotal: []int{100, 90, 70, 50, 30, 20, 12, 0},
		Truncated:   8,
	}
	if trunc.WriteEnergyPJ(&cfg) >= full.WriteEnergyPJ(&cfg) {
		t.Error("truncation did not reduce write energy")
	}
}
