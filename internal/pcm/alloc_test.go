package pcm

import (
	"testing"

	"fpb/internal/testutil"
)

// TestStoreUpdateSteadyStateZeroAlloc guards the paged store's write path:
// rewriting a materialized line must not touch the allocator.
func TestStoreUpdateSteadyStateZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	s := NewStore(64)
	line := make([]byte, 64)
	s.Update(0x1000, line) // materialize the page
	allocs := testing.AllocsPerRun(1000, func() {
		line[0]++
		s.Update(0x1000, line)
	})
	if allocs != 0 {
		t.Fatalf("Update allocated %.1f objects/op, want 0", allocs)
	}
}
