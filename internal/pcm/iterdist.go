package pcm

import (
	"math"

	"fpb/internal/sim"
)

// IterModel draws the total number of program-and-verify iterations a single
// MLC cell write needs, following the paper's two-phase model (Table 1,
// after Qureshi et al. HPCA'10 and Jiang et al. HPCA'12):
//
//	'00' — fixed 1 iteration  (the RESET pulse alone reaches full amorphous)
//	'11' — fixed 2 iterations (RESET + one SET)
//	'01' — minimum 2, mean Iter01Mean (default 8); two-phase mixture with
//	       fast-phase weight F1 = Iter01F1 (default 0.375)
//	'10' — minimum 2, mean Iter10Mean (default 6); fast-phase weight
//	       Iter10F1 (default 0.425)
//
// Iteration 1 is always the RESET pulse; iterations 2..T are SET pulses.
//
// The two phases are normal distributions (process variation spreads the
// programming staircase around its nominal length): the fast phase is
// centered fastShift iterations below the configured mean, and the slow
// phase's center is solved so the mixture hits the mean exactly. The
// resulting per-line iteration maximum concentrates a few iterations above
// the mean with only a handful of straggler cells — the property that makes
// write truncation (Jiang et al. HPCA'12) effective, and that matches
// "most cells finish in only a small number of iterations".
// Draws are clamped to [minIters, IterMax] (verify always succeeds by the
// cap, as in real bounded-retry P&V circuits).
type IterModel struct {
	bitsPerCell int
	iterMax     int
	mix01       phaseMix
	mix10       phaseMix
	rng         *sim.RNG
}

// phaseMix holds one state's mixture parameters.
type phaseMix struct {
	f1       float64 // fast-phase weight
	fastMean float64
	slowMean float64
}

const (
	// fastShift is how far below the configured mean the fast phase sits.
	fastShift = 3.0
	// fastSigma/slowSigma are the phases' spreads, in iterations.
	fastSigma = 1.5
	slowSigma = 2.5
	// minIters: intermediate states need the RESET plus at least one SET.
	minIters = 2
)

// NewIterModel builds an iteration model from the configuration, drawing
// from the provided RNG stream.
func NewIterModel(cfg *sim.Config, rng *sim.RNG) *IterModel {
	return &IterModel{
		bitsPerCell: cfg.BitsPerCell,
		iterMax:     cfg.IterMax,
		mix01:       solveMix(cfg.Iter01Mean, cfg.Iter01F1),
		mix10:       solveMix(cfg.Iter10Mean, cfg.Iter10F1),
		rng:         rng,
	}
}

// solveMix places the two phases so the mixture mean equals mean:
//
//	mean = F1*(mean-fastShift) + (1-F1)*slowMean
func solveMix(mean, f1 float64) phaseMix {
	fast := mean - fastShift
	if fast < minIters {
		fast = minIters
	}
	slow := (mean - f1*fast) / (1 - f1)
	if slow < fast {
		slow = fast
	}
	return phaseMix{f1: f1, fastMean: fast, slowMean: slow}
}

// Draw returns the total iterations (including the leading RESET) for one
// cell write targeting the given state. For SLC (bitsPerCell 1) every write
// is a single pulse.
func (m *IterModel) Draw(target CellState) int {
	if m.bitsPerCell == 1 {
		return 1
	}
	switch target {
	case State00:
		return 1
	case State11:
		return 2
	}
	mix := m.mix01
	if target == State10 {
		mix = m.mix10
	}
	var v float64
	if m.rng.Bernoulli(mix.f1) {
		v = m.rng.Normal(mix.fastMean, fastSigma)
	} else {
		v = m.rng.Normal(mix.slowMean, slowSigma)
	}
	t := int(math.Round(v))
	if t < minIters {
		t = minIters
	}
	if t > m.iterMax {
		t = m.iterMax
	}
	return t
}

// MaxIters reports the configured per-cell iteration cap.
func (m *IterModel) MaxIters() int { return m.iterMax }
