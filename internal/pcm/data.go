// Package pcm models the Multi-Level Cell Phase Change Memory device: cell
// packing, differential-write cell-change detection, the non-deterministic
// program-and-verify iteration model of the paper (Table 1), the sparse
// line-content store, and line-to-bank addressing.
//
// The model is passive: it computes what a write *is* (which cells change,
// how many iterations each needs, per-chip demand under a given cell
// mapping). The memory controller and power budgeter in internal/mem and
// internal/core decide *when* it happens.
package pcm

// CellState is the 2-bit MLC state of a cell: 0b00, 0b01, 0b10 or 0b11.
// '00' is fully RESET (amorphous) and '11' is fully SET (crystalline);
// '01' and '10' are the hard intermediate states.
type CellState uint8

const (
	State00 CellState = 0
	State01 CellState = 1
	State10 CellState = 2
	State11 CellState = 3
)

// Cell returns the i-th cell of a line for the given cell width
// (bitsPerCell 1 or 2). Cells are packed little-endian within each byte:
// MLC cell 0 occupies bits 0..1 of byte 0.
func Cell(line []byte, i, bitsPerCell int) CellState {
	if bitsPerCell == 1 {
		byteIdx, bit := i/8, uint(i%8)
		return CellState((line[byteIdx] >> bit) & 1)
	}
	byteIdx, shift := i/4, uint(i%4)*2
	return CellState((line[byteIdx] >> shift) & 3)
}

// SetCell stores state into the i-th cell of line.
func SetCell(line []byte, i, bitsPerCell int, state CellState) {
	if bitsPerCell == 1 {
		byteIdx, bit := i/8, uint(i%8)
		line[byteIdx] = line[byteIdx]&^(1<<bit) | (byte(state&1) << bit)
		return
	}
	byteIdx, shift := i/4, uint(i%4)*2
	line[byteIdx] = line[byteIdx]&^(3<<shift) | (byte(state&3) << shift)
}

// NumCells returns how many cells a line of lineBytes occupies at the given
// cell width.
func NumCells(lineBytes, bitsPerCell int) int {
	return lineBytes * 8 / bitsPerCell
}

// DiffCells appends to dst the indices of cells whose stored value differs
// between old and new, and returns the extended slice. old and new must be
// the same length; old may be nil, meaning an all-zero line (the paper's
// Fig. 3 convention for untouched memory).
func DiffCells(dst []int, old, new []byte, bitsPerCell int) []int {
	n := NumCells(len(new), bitsPerCell)
	for i := 0; i < n; i++ {
		var o CellState
		if old != nil {
			o = Cell(old, i, bitsPerCell)
		}
		if o != Cell(new, i, bitsPerCell) {
			dst = append(dst, i)
		}
	}
	return dst
}

// CountChangedCells reports how many cells differ between old and new; it is
// DiffCells without materializing the index list (used by Figure 2's
// cell-change census, where only the count matters).
func CountChangedCells(old, new []byte, bitsPerCell int) int {
	n := NumCells(len(new), bitsPerCell)
	count := 0
	for i := 0; i < n; i++ {
		var o CellState
		if old != nil {
			o = Cell(old, i, bitsPerCell)
		}
		if o != Cell(new, i, bitsPerCell) {
			count++
		}
	}
	return count
}
