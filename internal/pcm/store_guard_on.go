//go:build fpbdebug

package pcm

import "fmt"

// storeGuard (fpbdebug builds) catches the Get-view aliasing footgun: Get
// returns a view into the store's page memory, so a caller scribbling on it
// would silently corrupt stored content — with the line pool this shows up
// far from the bug, as wrong diff profiles on a later write. The guard
// fingerprints every view Get hands out and re-checks it the next time the
// same line is touched, panicking at the first access that observes an
// external mutation.
type storeGuard struct {
	sums map[uint64]uint64
}

// fingerprint is FNV-1a over the line content.
func fingerprint(line []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range line {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	return h
}

func (g *storeGuard) check(lineAddr uint64, line []byte) {
	if sum, ok := g.sums[lineAddr]; ok && sum != fingerprint(line) {
		panic(fmt.Sprintf(
			"pcm: line %#x mutated through a Store.Get view (use Put/Update to write)", lineAddr))
	}
}

func (g *storeGuard) onGet(lineAddr uint64, line []byte) {
	g.check(lineAddr, line)
	if g.sums == nil {
		g.sums = make(map[uint64]uint64)
	}
	g.sums[lineAddr] = fingerprint(line)
}

func (g *storeGuard) onPut(lineAddr uint64, line []byte) {
	g.check(lineAddr, line)
	delete(g.sums, lineAddr) // Put legitimately rewrites the content
}
