package pcm

import (
	"testing"
	"testing/quick"
)

func TestCellRoundTripMLC(t *testing.T) {
	line := make([]byte, 8) // 32 MLC cells
	for i := 0; i < 32; i++ {
		SetCell(line, i, 2, CellState(i%4))
	}
	for i := 0; i < 32; i++ {
		if got := Cell(line, i, 2); got != CellState(i%4) {
			t.Fatalf("cell %d = %d, want %d", i, got, i%4)
		}
	}
}

func TestCellRoundTripSLC(t *testing.T) {
	line := make([]byte, 4) // 32 SLC cells
	for i := 0; i < 32; i++ {
		SetCell(line, i, 1, CellState(i%2))
	}
	for i := 0; i < 32; i++ {
		if got := Cell(line, i, 1); got != CellState(i%2) {
			t.Fatalf("SLC cell %d = %d, want %d", i, got, i%2)
		}
	}
}

func TestCellRoundTripProperty(t *testing.T) {
	err := quick.Check(func(idx uint8, state uint8) bool {
		line := make([]byte, 64)
		i := int(idxceil(idx, 2))
		s := CellState(state % 4)
		SetCell(line, i, 2, s)
		return Cell(line, i, 2) == s
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// idxceil clamps idx to a valid cell index for a 64-byte line.
func idxceil(idx uint8, bits int) uint8 {
	max := 64 * 8 / bits
	return uint8(int(idx) % max)
}

func TestSetCellDoesNotClobberNeighbors(t *testing.T) {
	line := make([]byte, 4)
	for i := 0; i < 16; i++ {
		SetCell(line, i, 2, State11)
	}
	SetCell(line, 5, 2, State00)
	for i := 0; i < 16; i++ {
		want := State11
		if i == 5 {
			want = State00
		}
		if got := Cell(line, i, 2); got != want {
			t.Fatalf("cell %d = %d, want %d after single update", i, got, want)
		}
	}
}

func TestNumCells(t *testing.T) {
	if NumCells(256, 2) != 1024 {
		t.Error("256B MLC should be 1024 cells")
	}
	if NumCells(64, 1) != 512 {
		t.Error("64B SLC should be 512 cells")
	}
}

func TestDiffCellsAgainstNil(t *testing.T) {
	new := make([]byte, 8)
	SetCell(new, 3, 2, State10)
	SetCell(new, 7, 2, State01)
	cells := DiffCells(nil, nil, new, 2)
	if len(cells) != 2 || cells[0] != 3 || cells[1] != 7 {
		t.Errorf("DiffCells vs nil = %v, want [3 7]", cells)
	}
}

func TestDiffCellsIdenticalIsEmpty(t *testing.T) {
	data := []byte{0xAB, 0xCD, 0xEF, 0x01}
	if cells := DiffCells(nil, data, data, 2); len(cells) != 0 {
		t.Errorf("identical lines diff = %v, want empty", cells)
	}
}

func TestCountChangedCellsMatchesDiff(t *testing.T) {
	err := quick.Check(func(old, new [16]byte) bool {
		o, n := old[:], new[:]
		return CountChangedCells(o, n, 2) == len(DiffCells(nil, o, n, 2))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMLCChangesFewerCellsThanSLC(t *testing.T) {
	// Flipping both bits of one MLC cell is one cell change in MLC but two
	// in SLC — the effect behind Fig. 2's MLC < SLC trend.
	old := make([]byte, 4)
	new := make([]byte, 4)
	SetCell(new, 0, 2, State11) // bits 0 and 1 both flip
	mlc := CountChangedCells(old, new, 2)
	slc := CountChangedCells(old, new, 1)
	if mlc != 1 || slc != 2 {
		t.Errorf("mlc=%d slc=%d, want 1 and 2", mlc, slc)
	}
}
