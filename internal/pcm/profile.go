package pcm

import (
	"fpb/internal/mapping"
	"fpb/internal/sim"
)

// MaxMultiResetSplit is the largest RESET split factor profiles precompute
// group counts for (the paper evaluates m up to 4 in Fig. 17).
const MaxMultiResetSplit = 4

// mrGroupGranularity is the static grouping granularity for Multi-RESET:
// cells are assigned to RESET groups by (cell/granularity) mod m. This is
// the paper's low-overhead static grouping choice ("groups cells no matter
// if they are changed or not"), realized as an interleaved partition so no
// extra per-write hardware state is needed.
const mrGroupGranularity = 4

// WriteProfile captures everything the power budgeter and timing model need
// to know about one MLC line write, computed once when the bridge chip does
// its read-before-write comparison:
//
//   - which chips the changed cells live on (under the active cell mapping),
//   - how many program-and-verify iterations the write takes (iteration 1
//     is the RESET pulse; iterations 2..TotalIters are SET pulses),
//   - how many cells remain unfinished after each iteration, per chip —
//     exactly the per-iteration feedback FPB-IPM uses to reclaim tokens.
type WriteProfile struct {
	LineAddr uint64

	// Changed is the number of cells whose state differs (differential
	// write: unchanged cells are not programmed).
	Changed int

	// PerChip[c] is the number of changed cells stored on chip c.
	PerChip []int

	// TotalIters is the number of iterations the slowest cell needs,
	// including the leading RESET. A write with zero changed cells has
	// TotalIters 1 (a single verify round) and zero power demand.
	TotalIters int

	// RemainTotal[k] is the number of changed cells still unfinished
	// after iteration k (k = 0..TotalIters; RemainTotal[0] == Changed,
	// RemainTotal[TotalIters] == 0 unless truncated cells are counted,
	// which they are not — ECC covers them).
	RemainTotal []int

	// RemainPerChip[k][c] is the per-chip breakdown of RemainTotal[k].
	RemainPerChip [][]int

	// MRGroups[m][c][g] is the number of changed cells of chip c in
	// static RESET group g when the RESET is split into m sub-iterations
	// (m = 2..MaxMultiResetSplit; indices 0 and 1 are nil).
	MRGroups [][][]int

	// Truncated is the number of slow cells cut off by write truncation
	// (they are left to ECC; see Jiang et al. HPCA'12).
	Truncated int

	// pooled marks a profile that has been returned to its Builder's pool
	// and must not be used until newProfile hands it out again.
	pooled bool
	// owner is the Builder whose pool the profile belongs to. With the
	// parallel engine, profiles built speculatively on per-lane Builders
	// flow to the controller's serial release points; owner routes each
	// back to the pool it came from.
	owner *Builder
}

// Owner returns the Builder that built the profile (its release target).
func (p *WriteProfile) Owner() *Builder { return p.owner }

// Builder constructs WriteProfiles. It owns the iteration model RNG stream
// and scratch buffers, so one Builder must not be shared across goroutines.
//
// Profiles are pooled: Release returns one to the builder for reuse, which
// makes steady-state profile construction allocation-free. A caller that
// never releases simply pays the allocations the pool would have avoided.
type Builder struct {
	cfg      *sim.Config
	iters    *IterModel
	scratch  []int
	seed     uint64
	writeRNG *sim.RNG    // reseeded per Build from the write's content hash
	targets  []CellState // scratch for Build's target states
	iterOf   []int       // scratch: per-cell iteration counts
	chipOf   []int       // scratch: per-cell chip indices
	free     []*WriteProfile
}

// NewBuilder returns a profile builder for the configuration.
func NewBuilder(cfg *sim.Config, rng *sim.RNG) *Builder {
	return &Builder{
		cfg:      cfg,
		iters:    NewIterModel(cfg, rng),
		seed:     rng.Uint64(),
		writeRNG: sim.NewRNG(0),
	}
}

// Release returns a profile to the builder's pool. The profile must not be
// used afterwards; releasing nil or an already pooled profile is a no-op.
func (b *Builder) Release(p *WriteProfile) {
	if p == nil || p.pooled {
		return
	}
	p.pooled = true
	b.free = append(b.free, p)
}

// newProfile pops the pool or allocates a fresh profile.
func (b *Builder) newProfile() *WriteProfile {
	if n := len(b.free); n > 0 {
		p := b.free[n-1]
		b.free = b.free[:n-1]
		p.pooled = false
		return p
	}
	return &WriteProfile{owner: b}
}

// resizeInts returns s resized to n elements, zeroed, reusing its backing
// array when capacity allows.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Build computes the profile for writing new over old (old nil = all-zero
// line) with the given cell-to-chip mapping. truncate enables write
// truncation with the configured tail threshold.
//
// The per-cell iteration draws are seeded from (lineAddr, old, new): the
// same physical write is equally hard under every scheme and on every
// issue attempt, exactly as a shared trace would make it. Without this,
// cross-scheme comparisons would carry draw-sequence noise and, e.g., IPM
// could spuriously beat Ideal.
func (b *Builder) Build(lineAddr uint64, old, new []byte, mapFn mapping.Func, truncate bool) *WriteProfile {
	b.scratch = DiffCells(b.scratch[:0], old, new, b.cfg.BitsPerCell)
	b.writeRNG.Reseed(contentHash(lineAddr, old, new))
	saved := b.iters.rng
	b.iters.rng = b.writeRNG
	p := b.buildFromCells(lineAddr, b.scratch, new, mapFn, truncate)
	b.iters.rng = saved
	return p
}

// contentHash is FNV-1a over the write's identity.
func contentHash(lineAddr uint64, old, new []byte) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h = (h ^ (lineAddr >> (8 * i) & 0xFF)) * prime
	}
	for _, x := range old {
		h = (h ^ uint64(x)) * prime
	}
	for _, x := range new {
		h = (h ^ uint64(x)) * prime
	}
	return h
}

// BuildFromCells computes the profile when the changed cell set is already
// known. targets supplies the new cell states (indexed by cell); it may be
// nil, in which case states are drawn uniformly (used by synthetic
// stress tests).
func (b *Builder) BuildFromCells(lineAddr uint64, cells []int, targets []CellState, mapFn mapping.Func, truncate bool) *WriteProfile {
	p := b.newProfile()
	p.LineAddr = lineAddr
	p.Changed = len(cells)
	p.Truncated = 0
	p.PerChip = resizeInts(p.PerChip, b.cfg.Chips)
	maxIters := b.cfg.IterMax
	b.iterOf = resizeInts(b.iterOf, len(cells))
	b.chipOf = resizeInts(b.chipOf, len(cells))
	iterOf, chipOf := b.iterOf, b.chipOf
	total := 1
	for i, cell := range cells {
		var target CellState
		if targets != nil {
			target = targets[i]
		} else {
			target = CellState(b.iters.rng.Intn(4))
		}
		t := b.iters.Draw(target)
		iterOf[i] = t
		chip := mapFn(cell)
		chipOf[i] = chip
		p.PerChip[chip]++
		if t > total {
			total = t
		}
	}
	if total > maxIters {
		total = maxIters
	}
	p.TotalIters = total
	p.RemainTotal = resizeInts(p.RemainTotal, total+1)
	if cap(p.RemainPerChip) < total+1 {
		rows := make([][]int, total+1)
		copy(rows, p.RemainPerChip[:cap(p.RemainPerChip)])
		p.RemainPerChip = rows
	} else {
		p.RemainPerChip = p.RemainPerChip[:total+1]
	}
	for k := range p.RemainPerChip {
		p.RemainPerChip[k] = resizeInts(p.RemainPerChip[k], b.cfg.Chips)
	}
	for i := range cells {
		t := iterOf[i]
		// The cell is unfinished after iterations 0..t-1.
		for k := 0; k < t && k <= total; k++ {
			p.RemainTotal[k]++
			p.RemainPerChip[k][chipOf[i]]++
		}
	}

	// Multi-RESET static groups (reuse the [m][chip][group] shape across
	// pooled profiles: the chip count is fixed per Builder).
	if p.MRGroups == nil {
		p.MRGroups = make([][][]int, MaxMultiResetSplit+1)
		for m := 2; m <= MaxMultiResetSplit; m++ {
			g := make([][]int, b.cfg.Chips)
			for c := range g {
				g[c] = make([]int, m)
			}
			p.MRGroups[m] = g
		}
	} else {
		for m := 2; m <= MaxMultiResetSplit; m++ {
			for _, counts := range p.MRGroups[m] {
				clear(counts)
			}
		}
	}
	for m := 2; m <= MaxMultiResetSplit; m++ {
		g := p.MRGroups[m]
		for i, cell := range cells {
			g[chipOf[i]][(cell/mrGroupGranularity)%m]++
		}
	}

	if truncate && b.cfg.TruncateTailCells > 0 {
		p.applyTruncation(b.cfg.TruncateTailCells)
	}
	return p
}

// buildFromCells is Build's shared tail; cells index into the line, and new
// supplies target states.
func (b *Builder) buildFromCells(lineAddr uint64, cells []int, new []byte, mapFn mapping.Func, truncate bool) *WriteProfile {
	if cap(b.targets) < len(cells) {
		b.targets = make([]CellState, len(cells))
	}
	b.targets = b.targets[:len(cells)]
	for i, cell := range cells {
		b.targets[i] = Cell(new, cell, b.cfg.BitsPerCell)
	}
	return b.BuildFromCells(lineAddr, cells, b.targets, mapFn, truncate)
}

// applyTruncation implements write truncation: the write ends at the first
// iteration after which at most tail cells remain; those cells are left for
// ECC to correct.
func (p *WriteProfile) applyTruncation(tail int) {
	for k := 1; k < p.TotalIters; k++ {
		if p.RemainTotal[k] <= tail {
			p.Truncated = p.RemainTotal[k]
			p.TotalIters = k
			p.RemainTotal = p.RemainTotal[:k+1]
			p.RemainPerChip = p.RemainPerChip[:k+1]
			p.RemainTotal[k] = 0
			for c := range p.RemainPerChip[k] {
				p.RemainPerChip[k][c] = 0
			}
			return
		}
	}
}

// Duration returns the write's latency in cycles given the pulse timings:
// one RESET (possibly split into mrSplit sub-RESETs) plus TotalIters-1 SETs.
func (p *WriteProfile) Duration(cfg *sim.Config, mrSplit int) sim.Cycle {
	if p.TotalIters <= 0 {
		return cfg.ResetCycles
	}
	resets := 1
	if mrSplit > 1 {
		resets = mrSplit
	}
	return sim.Cycle(resets)*cfg.ResetCycles + sim.Cycle(p.TotalIters-1)*cfg.SetCycles
}

// SetDemandAt returns the number of cells receiving a SET pulse at SET
// iteration j (j = 2..TotalIters): the cells unfinished after iteration j-1.
func (p *WriteProfile) SetDemandAt(j int) int {
	if j < 2 || j > p.TotalIters {
		return 0
	}
	return p.RemainTotal[j-1]
}

// SetDemandPerChipAt is SetDemandAt broken down per chip.
func (p *WriteProfile) SetDemandPerChipAt(j int) []int {
	if j < 2 || j > p.TotalIters {
		return nil
	}
	return p.RemainPerChip[j-1]
}
