package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 6} {
		s.Add(v)
	}
	if s.N() != 3 {
		t.Errorf("N = %d, want 3", s.N())
	}
	if s.Mean() != 4 {
		t.Errorf("Mean = %g, want 4", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 6 {
		t.Errorf("Min/Max = %g/%g, want 2/6", s.Min(), s.Max())
	}
	if s.Sum() != 12 {
		t.Errorf("Sum = %g, want 12", s.Sum())
	}
	if s.Last() != 6 {
		t.Errorf("Last = %g, want 6", s.Last())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 || s.StdDev() != 0 {
		t.Error("empty summary must report zeros")
	}
}

func TestSummaryStdDev(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if math.Abs(s.StdDev()-2) > 1e-9 {
		t.Errorf("StdDev = %g, want 2", s.StdDev())
	}
}

func TestSummaryMinMaxProperty(t *testing.T) {
	err := quick.Check(func(vs []float64) bool {
		var s Summary
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				continue // avoid float64 overflow in sum-of-squares
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		return s.Min() <= s.Mean()+1e-9 && s.Mean() <= s.Max()+1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); math.Abs(g-4) > 1e-9 {
		t.Errorf("GeoMean = %g, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %g, want 0", g)
	}
	// Non-positive values are skipped.
	if g := GeoMean([]float64{0, -3, 2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("GeoMean with non-positives = %g, want 4", g)
	}
}

func TestGeoMeanScaleInvariance(t *testing.T) {
	err := quick.Check(func(seed uint8) bool {
		xs := []float64{1 + float64(seed%7), 2 + float64(seed%3), 5}
		g1 := GeoMean(xs)
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 3
		}
		g2 := GeoMean(scaled)
		return math.Abs(g2-3*g1) < 1e-9*g2
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{1, 1, 2, 5, 20} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Errorf("N = %d, want 5", h.N())
	}
	if h.Count(1) != 2 || h.Count(2) != 1 {
		t.Error("bucket counts wrong")
	}
	if h.Overflow() != 1 {
		t.Errorf("Overflow = %d, want 1", h.Overflow())
	}
	if m := h.Mean(); math.Abs(m-29.0/5) > 1e-9 {
		t.Errorf("Mean = %g, want 5.8", m)
	}
	if h.Count(-1) != 0 || h.Count(99) != 0 {
		t.Error("out-of-range Count must be 0")
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(100)
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if p := h.Percentile(50); p != 50 {
		t.Errorf("P50 = %d, want 50", p)
	}
	if p := h.Percentile(99); p != 99 {
		t.Errorf("P99 = %d, want 99", p)
	}
	if p := h.Percentile(100); p != 100 {
		t.Errorf("P100 = %d, want 100", p)
	}
	empty := NewHistogram(4)
	if empty.Percentile(50) != 0 {
		t.Error("empty percentile must be 0")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("Ratio(6,3) != 2")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio(x,0) must be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "workload", "speedup")
	tb.AddRow("mcf_m", 1.5)
	tb.AddStringRow("gmean", "1.234")
	out := tb.String()
	for _, want := range []string{"Fig X", "workload", "mcf_m", "1.500", "gmean", "1.234"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tb.NumRows())
	}
	if got := tb.Row(0)[0]; got != "mcf_m" {
		t.Errorf("Row(0)[0] = %q", got)
	}
}

func TestBarChart(t *testing.T) {
	tb := NewTable("t", "w", "speedup")
	tb.AddRow("a", 1.0)
	tb.AddRow("bb", 2.0)
	tb.AddStringRow("c", "not-a-number")
	chart := tb.BarChart(1, 10)
	if !strings.Contains(chart, "speedup") {
		t.Error("chart missing column header")
	}
	if !strings.Contains(chart, "##########") {
		t.Error("max row not full width")
	}
	if !strings.Contains(chart, "##### 1.000") {
		t.Errorf("half-scale bar wrong:\n%s", chart)
	}
	if strings.Contains(chart, "not-a-number") {
		t.Error("non-numeric row rendered")
	}
	if tb.BarChart(0, 10) != "" || tb.BarChart(5, 10) != "" || tb.BarChart(1, 0) != "" {
		t.Error("invalid args must render nothing")
	}
}

func TestBarChartAllZeros(t *testing.T) {
	tb := NewTable("t", "w", "v")
	tb.AddRow("a", 0)
	if chart := tb.BarChart(1, 10); !strings.Contains(chart, "0.000") {
		t.Errorf("zero column mishandled:\n%s", chart)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("SortedKeys = %v", keys)
	}
}

func TestSummaryRejectsNonFinite(t *testing.T) {
	var s Summary
	s.Add(3)
	s.Add(math.NaN())
	s.Add(math.Inf(1))
	s.Add(math.Inf(-1))
	s.Add(5)
	if s.N() != 2 {
		t.Errorf("N = %d, want 2 (non-finite values must be dropped)", s.N())
	}
	if s.Rejected() != 3 {
		t.Errorf("Rejected = %d, want 3", s.Rejected())
	}
	if s.Mean() != 4 {
		t.Errorf("Mean = %g, want 4", s.Mean())
	}
	if s.Min() != 3 || s.Max() != 5 {
		t.Errorf("Min/Max = %g/%g, want 3/5", s.Min(), s.Max())
	}
	if math.IsNaN(s.StdDev()) || math.IsInf(s.StdDev(), 0) {
		t.Errorf("StdDev = %g, want finite", s.StdDev())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram(100)
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if got := h.P50(); got != 50 {
		t.Errorf("P50 = %d, want 50", got)
	}
	if got := h.P95(); got != 95 {
		t.Errorf("P95 = %d, want 95", got)
	}
	if got := h.P99(); got != 99 {
		t.Errorf("P99 = %d, want 99", got)
	}

	// Overflow observations count as max bucket value + 1.
	ho := NewHistogram(4)
	for i := 0; i < 10; i++ {
		ho.Add(100)
	}
	if got := ho.P99(); got != 5 {
		t.Errorf("all-overflow P99 = %d, want 5", got)
	}

	var empty Histogram
	if empty.P50() != 0 || empty.P95() != 0 || empty.P99() != 0 {
		t.Error("empty histogram percentiles must be 0")
	}
}
