// Package stats provides the measurement primitives used across the
// simulator: streaming summaries (mean/max), histograms, geometric means for
// speedup aggregation, and fixed-width table rendering for the experiment
// harness output.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations. NaN and ±Inf
// observations are rejected (counted in Rejected): a single poisoned value
// would otherwise silently propagate through sum/ssq into every derived
// metric of a run.
type Summary struct {
	n        uint64
	rejected uint64
	sum      float64
	ssq      float64
	min      float64
	max      float64
	last     float64
}

// Reset clears the summary to its empty state (the warmup-barrier stats
// reset).
func (s *Summary) Reset() { *s = Summary{} }

// Add records one observation; non-finite values are dropped.
func (s *Summary) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		s.rejected++
		return
	}
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	s.sum += v
	s.ssq += v * v
	s.last = v
}

// N returns the number of observations.
func (s *Summary) N() uint64 { return s.n }

// Rejected returns how many non-finite observations were dropped.
func (s *Summary) Rejected() uint64 { return s.rejected }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Last returns the most recent observation, or 0 for an empty summary.
func (s *Summary) Last() float64 { return s.last }

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.ssq/float64(s.n) - m*m
	if v < 0 {
		v = 0 // numerical noise
	}
	return math.Sqrt(v)
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values
// (which have no geometric mean); it returns 0 if no positive values exist.
// The paper reports gmean speedups across workloads.
func GeoMean(xs []float64) float64 {
	var logSum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Histogram counts integer-valued observations in unit-width buckets
// [0, max]; values beyond max land in the overflow bucket.
type Histogram struct {
	buckets  []uint64
	overflow uint64
	total    uint64
	sum      uint64
}

// NewHistogram returns a histogram covering [0, max].
func NewHistogram(max int) *Histogram {
	if max < 0 {
		max = 0
	}
	return &Histogram{buckets: make([]uint64, max+1)}
}

// Reset clears all buckets and totals, keeping the bucket range.
func (h *Histogram) Reset() {
	clear(h.buckets)
	h.overflow, h.total, h.sum = 0, 0, 0
}

// Add records one observation.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v < len(h.buckets) {
		h.buckets[v]++
	} else {
		h.overflow++
	}
	h.total++
	h.sum += uint64(v)
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.total }

// Mean returns the arithmetic mean of the observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Count returns the number of observations equal to v.
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Overflow returns the number of observations beyond the histogram range.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Percentile returns the p-th percentile (p in [0,100]) of recorded values;
// overflow observations count as the maximum bucket value + 1.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for v, c := range h.buckets {
		cum += c
		if cum >= target {
			return v
		}
	}
	return len(h.buckets)
}

// P50 returns the median recorded value.
func (h *Histogram) P50() int { return h.Percentile(50) }

// P95 returns the 95th-percentile recorded value.
func (h *Histogram) P95() int { return h.Percentile(95) }

// P99 returns the 99th-percentile recorded value.
func (h *Histogram) P99() int { return h.Percentile(99) }

// Ratio returns a/b, or 0 when b is 0. Convenient for normalized metrics.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Table renders labeled rows of numbers in a fixed-width layout matching the
// style the experiment harness prints for each figure/table of the paper.
type Table struct {
	Title   string
	Columns []string // column headers, first column is the row label
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row: a label followed by float cells rendered as %.3f.
func (t *Table) AddRow(label string, cells ...float64) {
	row := make([]string, 0, len(cells)+1)
	row = append(row, label)
	for _, c := range cells {
		row = append(row, fmt.Sprintf("%.3f", c))
	}
	t.rows = append(t.rows, row)
}

// AddStringRow appends a row of raw strings.
func (t *Table) AddStringRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns the i-th row's cells.
func (t *Table) Row(i int) []string { return t.rows[i] }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	out := ""
	if t.Title != "" {
		out += t.Title + "\n"
	}
	line := ""
	for i, c := range t.Columns {
		line += pad(c, widths[i]) + "  "
	}
	out += line + "\n"
	for _, row := range t.rows {
		line = ""
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			line += pad(cell, w) + "  "
		}
		out += line + "\n"
	}
	return out
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

// BarChart renders one numeric column of the table as a horizontal ASCII
// bar chart scaled to the column maximum — the terminal stand-in for the
// paper's bar figures. col is 1-based over the data columns (column 0 is
// the row label); width is the maximum bar length in characters.
func (t *Table) BarChart(col, width int) string {
	if col < 1 || col >= len(t.Columns) || width <= 0 {
		return ""
	}
	max := 0.0
	vals := make([]float64, len(t.rows))
	ok := make([]bool, len(t.rows))
	for i, row := range t.rows {
		if col < len(row) {
			if _, err := fmt.Sscan(row[col], &vals[i]); err == nil {
				ok[i] = true
				if vals[i] > max {
					max = vals[i]
				}
			}
		}
	}
	if max == 0 {
		max = 1
	}
	labelW := 0
	for _, row := range t.rows {
		if len(row[0]) > labelW {
			labelW = len(row[0])
		}
	}
	out := t.Columns[col] + "\n"
	for i, row := range t.rows {
		if !ok[i] {
			continue
		}
		n := int(vals[i] / max * float64(width))
		out += fmt.Sprintf("%s  %s %.3f\n", pad(row[0], labelW), bar(n), vals[i])
	}
	return out
}

func bar(n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}

// SortedKeys returns map keys in sorted order; handy for deterministic
// iteration when printing per-workload results.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
