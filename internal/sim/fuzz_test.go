package sim

import "testing"

// FuzzEventOrder feeds both kernels (calendar-queue Engine and reference
// heap) the op stream encoded by the fuzz input and requires identical
// dispatch order and identical Cancel semantics. Each input byte pair is
// one op: the low bits of the first byte pick schedule-delay class /
// cancel-last / nested spawn, the second parameterizes it.
func FuzzEventOrder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0x10, 0xFF, 0x23, 0x00, 0x31, 0x80, 0x02, 0x41})
	f.Add([]byte{3, 255, 3, 254, 2, 9, 1, 1, 0, 0, 4, 4, 4, 0})
	f.Add([]byte{2, 200, 4, 0, 2, 200, 4, 1, 3, 3, 3, 3})

	f.Fuzz(func(t *testing.T, ops []byte) {
		type kernel struct {
			schedule func(when Cycle, fn func()) any
			cancel   func(h any)
			step     func() bool
			now      func() Cycle
		}
		eng := NewEngine()
		ref := &refEngine{}
		kernels := []kernel{
			{
				schedule: func(when Cycle, fn func()) any { return eng.At(when, fn) },
				cancel:   func(h any) { eng.Cancel(h.(*Event)) },
				step:     eng.Step,
				now:      eng.Now,
			},
			{
				schedule: func(when Cycle, fn func()) any { return ref.at(when, fn) },
				cancel:   func(h any) { ref.cancel(h.(*refEvent)) },
				step:     ref.step,
				now:      func() Cycle { return ref.now },
			},
		}
		var orders [2][]int
		for ki, k := range kernels {
			ki, k := ki, k
			id := 0
			var last any
			for i := 0; i+1 < len(ops); i += 2 {
				op, arg := ops[i]&7, Cycle(ops[i+1])
				switch op {
				case 0, 1, 2, 3: // schedule in one of four delay classes
					delay := arg << (4 * op) // 0..255, ..., 0..~1M cycles
					myID := id
					id++
					last = k.schedule(k.now()+delay, func() {
						orders[ki] = append(orders[ki], myID)
					})
				case 4: // cancel the most recently scheduled event
					if last != nil {
						k.cancel(last)
						last = nil
					}
				default: // run a few events
					for n := Cycle(0); n <= arg%4; n++ {
						if !k.step() {
							break
						}
					}
				}
			}
			for k.step() {
			}
		}
		if len(orders[0]) != len(orders[1]) {
			t.Fatalf("engine dispatched %d events, reference %d", len(orders[0]), len(orders[1]))
		}
		for i := range orders[0] {
			if orders[0][i] != orders[1][i] {
				t.Fatalf("dispatch %d: engine event %d, reference event %d",
					i, orders[0][i], orders[1][i])
			}
		}
		if eng.Pending() != 0 {
			t.Fatalf("%d events stuck in engine queue", eng.Pending())
		}
	})
}
