package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Scheme selects which power-budgeting policy governs MLC PCM writes.
// These correspond one-to-one to the schemes evaluated in the paper.
type Scheme int

const (
	// SchemeIdeal has an unlimited power budget: a write issues whenever
	// its bank is free.
	SchemeIdeal Scheme = iota
	// SchemeDIMMOnly enforces only the DIMM power budget using the
	// per-write heuristic of Hay et al. (MICRO 2011).
	SchemeDIMMOnly
	// SchemeDIMMChip enforces both DIMM and per-chip budgets with the
	// same per-write heuristic. This is the paper's normalization
	// baseline for Sections 6.1 onward.
	SchemeDIMMChip
	// SchemeGCP adds the global charge pump on top of DIMM+chip.
	SchemeGCP
	// SchemeGCPIPM adds iteration power management on top of GCP.
	SchemeGCPIPM
	// SchemeGCPIPMMR adds Multi-RESET on top of GCP+IPM; this is the
	// full "FPB" configuration.
	SchemeGCPIPMMR
	// SchemeIPM is IPM without a GCP (DIMM+chip budgets enforced).
	SchemeIPM
	// SchemeIPMMR is IPM+Multi-RESET without a GCP.
	SchemeIPMMR
)

var schemeNames = map[Scheme]string{
	SchemeIdeal:    "Ideal",
	SchemeDIMMOnly: "DIMM-only",
	SchemeDIMMChip: "DIMM+chip",
	SchemeGCP:      "GCP",
	SchemeGCPIPM:   "GCP+IPM",
	SchemeGCPIPMMR: "GCP+IPM+MR",
	SchemeIPM:      "IPM",
	SchemeIPMMR:    "IPM+MR",
}

func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// schemeAliases maps every accepted lowercase spelling to a scheme. These are
// the names the CLIs and the fpbd job API accept; "fpb" is shorthand for the
// full GCP+IPM+MR configuration.
var schemeAliases = map[string]Scheme{
	"ideal":      SchemeIdeal,
	"dimm-only":  SchemeDIMMOnly,
	"dimm+chip":  SchemeDIMMChip,
	"gcp":        SchemeGCP,
	"gcp+ipm":    SchemeGCPIPM,
	"gcp+ipm+mr": SchemeGCPIPMMR,
	"fpb":        SchemeGCPIPMMR,
	"ipm":        SchemeIPM,
	"ipm+mr":     SchemeIPMMR,
}

// ParseScheme resolves a scheme name (case-insensitive; see SchemeNames).
func ParseScheme(name string) (Scheme, error) {
	if s, ok := schemeAliases[strings.ToLower(name)]; ok {
		return s, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (valid: %s)", name, strings.Join(SchemeNames(), ", "))
}

// SchemeNames lists every accepted scheme spelling, sorted.
func SchemeNames() []string {
	names := make([]string, 0, len(schemeAliases))
	for n := range schemeAliases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Mapping selects the static cell-to-chip mapping (paper Section 4.3).
type Mapping int

const (
	// MapNaive stores consecutive cells within one chip (Fig. 9b).
	MapNaive Mapping = iota
	// MapVIM is Vertical Interleaving Mapping: chip = cell mod 8 (Eq. 2).
	MapVIM
	// MapBIM is Braided Interleaving Mapping:
	// chip = (cell - cell/16) mod 8 (Eq. 3).
	MapBIM
)

func (m Mapping) String() string {
	switch m {
	case MapNaive:
		return "NE"
	case MapVIM:
		return "VIM"
	case MapBIM:
		return "BIM"
	}
	return fmt.Sprintf("Mapping(%d)", int(m))
}

// mappingAliases maps accepted lowercase mapping names.
var mappingAliases = map[string]Mapping{
	"ne":  MapNaive,
	"vim": MapVIM,
	"bim": MapBIM,
}

// ParseMapping resolves a cell-mapping name (case-insensitive; see
// MappingNames).
func ParseMapping(name string) (Mapping, error) {
	if m, ok := mappingAliases[strings.ToLower(name)]; ok {
		return m, nil
	}
	return 0, fmt.Errorf("unknown mapping %q (valid: %s)", name, strings.Join(MappingNames(), ", "))
}

// MappingNames lists every accepted mapping spelling, sorted.
func MappingNames() []string {
	names := make([]string, 0, len(mappingAliases))
	for n := range mappingAliases {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Config holds every tunable of the simulated system. DefaultConfig
// reproduces Table 1 of the paper; experiments override individual fields.
type Config struct {
	// --- CPU ---
	Cores        int // number of in-order cores
	CPUFreqGHz   float64
	InstrPerCore uint64 // instruction budget per core for a run

	// --- L1 (private, per core) ---
	L1SizeKB    int
	L1LineB     int
	L1Ways      int
	L1HitCycles Cycle

	// --- L2 (private, per core) ---
	L2SizeKB    int
	L2LineB     int
	L2Ways      int
	L2HitCycles Cycle // tag+data
	CPUToL2     Cycle

	// --- L3 DRAM cache (private, off-chip, per core) ---
	L3SizeMB    int
	L3LineB     int // equals the PCM memory line size
	L3Ways      int
	L3HitCycles Cycle
	CPUToL3     Cycle

	// --- Memory controller ---
	ReadQueueEntries  int
	WriteQueueEntries int
	MCToBank          Cycle

	// --- PCM device ---
	Banks         int
	Chips         int
	PCMReadCycles Cycle
	ResetCycles   Cycle
	SetCycles     Cycle
	BitsPerCell   int // 2 for MLC, 1 for SLC
	// MLC write model (2-bit): per-target-state iteration statistics.
	// States '00' and '11' take fixed 1 and 2 iterations; '01' and '10'
	// are two-phase distributions parameterized below.
	Iter01Mean float64
	Iter01F1   float64 // fraction of cells in the fast phase
	Iter10Mean float64
	Iter10F1   float64
	IterMax    int // hard cap on SET iterations (verify always succeeds by then)

	// --- Power ---
	DIMMTokens    float64 // PT_DIMM: simultaneous cell-RESETs the DIMM supports
	LCPEff        float64 // E_LCP, local charge pump efficiency
	GCPEff        float64 // E_GCP, global charge pump efficiency
	GCPMaxTokens  float64 // max GCP output; 0 means "one LCP" (paper default)
	SetPowerRatio float64 // SET power / RESET power (paper Fig. 5 uses 1/2)
	LocalScale    float64 // chip budget multiplier (1.5xlocal / 2xlocal studies)

	// --- Scheme ---
	Scheme          Scheme
	CellMapping     Mapping
	MultiResetSplit int // m: max RESET sub-iterations (0 or 1 disables)
	// MultiResetAlways splits every RESET into MultiResetSplit
	// sub-iterations unconditionally, instead of the paper's greedy
	// split-on-shortfall trigger. Ablation only: it trades unconditional
	// peak-power reduction for unconditional latency.
	MultiResetAlways bool
	// HalfStripe selects the paper's Section 2.1 design alternative:
	// each line's cells stripe across half the chips (alternating halves
	// by line index) and the array is accessed in two rounds, doubling
	// read latency and write duration while halving per-round power
	// demand. The paper's baseline (full stripe, one round) is default.
	HalfStripe     bool
	PWL            bool // overhead-free intra-line wear leveling (PWL bar)
	PWLShiftWrites int  // rotate line offset every N writes
	// WriteQueueSched bounds the write-issue scan window: 0 scans the
	// whole queue past power-denied entries (Hay et al.'s "issue writes
	// continuously as long as power demands can be satisfied"); > 0
	// limits the scan to the first X entries (sche-X); < 0 is strict
	// FIFO power order (a write denied tokens blocks those behind it),
	// kept for ablation.
	WriteQueueSched int

	// --- Read-latency interaction schemes ---
	WriteCancellation bool
	WritePausing      bool
	WriteTruncation   bool
	TruncateTailCells int // WT: truncate when <= this many cells remain (ECC covers them)

	// --- Warmup / checkpointing ---
	// WarmupCycles > 0 prepends a warmup phase to the run: the system
	// executes under the warmup configuration (see WarmupConfig) until the
	// first instruction boundary at or after this cycle, quiesces (cores
	// parked, memory subsystem drained, event heap empty), resets every
	// measurement statistic, rebinds to this configuration, and only then
	// starts counting the per-core instruction budget. The warmup phase is
	// a declared model parameter: it changes the measured Result (caches
	// and the PCM array are warm), and two runs that agree on WarmupCycles
	// and WarmupScheme are bit-identical whether or not a checkpoint was
	// taken at the boundary. 0 (default) disables warmup.
	WarmupCycles uint64
	// WarmupScheme is the power scheme the warmup phase runs under. It is
	// deliberately separate from Scheme so that a sweep over schemes (or
	// mappings, WC/WP/WT flags, ...) shares one warmup prefix — and
	// therefore one checkpoint image. Ignored when WarmupCycles is 0.
	WarmupScheme Scheme

	// --- Misc ---
	Seed uint64

	// Shards enables the parallel simulation engine: 0 (default) runs the
	// sequential kernel; > 0 shards the event population into Banks*Chips
	// lanes executed by up to Shards-wide parallel prepare sweeps inside
	// conservative time windows (see sharded.go). Results are bit-identical
	// for every value — Shards is a wall-clock knob, not a model parameter —
	// so it is excluded from the simulation's content-address (system.Key).
	Shards int
	// ShardHorizon is the parallel engine's batching horizon, in lookahead
	// multiples: speculative write profiles are scheduled
	// ShardHorizon×LookaheadCycles ahead instead of one lookahead, so one
	// prepare sweep amortizes over that many windows of simulated time.
	// 0 (default) means DefaultShardHorizon. Like Shards it is a wall-clock
	// knob — results are bit-identical for every value — and is excluded
	// from system.Key.
	ShardHorizon int
	// ShardStaticLookahead pins the speculation distance to exactly
	// ShardHorizon×LookaheadCycles, disabling the adaptive extension that
	// stretches it over a bank's known busy time and queue backlog. Kept
	// for A/B measurement and determinism cross-checks; also excluded from
	// system.Key.
	ShardStaticLookahead bool
}

// DefaultShardHorizon is the batching horizon used when Config.ShardHorizon
// is 0: wide enough that sweeps are rare (one barrier per ~8 windows of
// progress), small enough that speculative profiles rarely outlive their
// request's first issue attempt.
const DefaultShardHorizon = 8

// DefaultConfig returns the paper's Table 1 baseline configuration.
func DefaultConfig() Config {
	return Config{
		Cores:        8,
		CPUFreqGHz:   4,
		InstrPerCore: 200_000,

		L1SizeKB:    32,
		L1LineB:     64,
		L1Ways:      4,
		L1HitCycles: 2,

		L2SizeKB:    2048,
		L2LineB:     64,
		L2Ways:      4,
		L2HitCycles: 7, // 2-cycle tag + 5-cycle data
		CPUToL2:     16,

		L3SizeMB:    32,
		L3LineB:     256,
		L3Ways:      8,
		L3HitCycles: 200, // 50 ns at 4 GHz
		CPUToL3:     64,

		ReadQueueEntries:  24,
		WriteQueueEntries: 24,
		MCToBank:          64,

		Banks:         8,
		Chips:         8,
		PCMReadCycles: 1000, // 250 ns
		ResetCycles:   500,  // 125 ns
		SetCycles:     1000, // 250 ns
		BitsPerCell:   2,
		Iter01Mean:    8,
		Iter01F1:      0.375,
		Iter10Mean:    6,
		Iter10F1:      0.425,
		IterMax:       16,

		DIMMTokens:    560,
		LCPEff:        0.95,
		GCPEff:        0.70,
		GCPMaxTokens:  0, // one LCP
		SetPowerRatio: 0.5,
		LocalScale:    1.0,

		Scheme:          SchemeDIMMChip,
		CellMapping:     MapNaive,
		MultiResetSplit: 3,
		PWLShiftWrites:  32,

		TruncateTailCells: 8,

		Seed: 0x46504231, // "FPB1"
	}
}

// LCPTokens returns PT_LCP for one chip under this configuration (Eq. 4,
// scaled by LocalScale for the 1.5x/2xlocal studies).
func (c *Config) LCPTokens() float64 {
	return c.DIMMTokens * c.LCPEff / float64(c.Chips) * c.LocalScale
}

// GCPTokens returns the maximum output of the global charge pump; the
// paper's default sizes it equal to one local charge pump.
func (c *Config) GCPTokens() float64 {
	if c.GCPMaxTokens > 0 {
		return c.GCPMaxTokens
	}
	return c.LCPTokens()
}

// CellsPerLine returns the number of PCM cells storing one memory line.
func (c *Config) CellsPerLine() int {
	return c.L3LineB * 8 / c.BitsPerCell
}

// ReadCycles returns the array read latency, doubled under the two-round
// half-stripe layout.
func (c *Config) ReadCycles() Cycle {
	if c.HalfStripe {
		return 2 * c.PCMReadCycles
	}
	return c.PCMReadCycles
}

// Lanes returns the event-lane count of the parallel engine: one lane per
// (bank, chip) pair — 64 at the Table 1 scale — so per-bank write activity
// spreads across the chips serving it.
func (c *Config) Lanes() int { return c.Banks * c.Chips }

// LookaheadCycles returns the parallel engine's conservative window width:
// the minimum cross-lane interaction latency, i.e. the shortest of the RESET
// pulse, the SET pulse and the MC-to-bank command latency (the scheduling
// quantum). No lane event scheduled by an event at time t can matter to
// another lane before t + LookaheadCycles.
func (c *Config) LookaheadCycles() Cycle {
	w := c.ResetCycles
	if c.SetCycles < w {
		w = c.SetCycles
	}
	if c.MCToBank < w {
		w = c.MCToBank
	}
	if w == 0 {
		w = 1
	}
	return w
}

// Validate checks internal consistency and returns a descriptive error for
// the first problem found.
func (c *Config) Validate() error {
	switch {
	case c.Shards < 0:
		return fmt.Errorf("config: Shards must be non-negative, got %d", c.Shards)
	case c.ShardHorizon < 0:
		return fmt.Errorf("config: ShardHorizon must be non-negative, got %d", c.ShardHorizon)
	case c.Cores <= 0:
		return fmt.Errorf("config: Cores must be positive, got %d", c.Cores)
	case c.Chips <= 0 || c.Banks <= 0:
		return fmt.Errorf("config: Chips (%d) and Banks (%d) must be positive", c.Chips, c.Banks)
	case c.BitsPerCell != 1 && c.BitsPerCell != 2:
		return fmt.Errorf("config: BitsPerCell must be 1 or 2, got %d", c.BitsPerCell)
	case c.L1LineB <= 0 || c.L2LineB <= 0 || c.L3LineB <= 0:
		return fmt.Errorf("config: line sizes must be positive")
	case c.L2LineB%c.L1LineB != 0 || c.L3LineB%c.L2LineB != 0:
		return fmt.Errorf("config: line sizes must nest (L1 %dB, L2 %dB, L3 %dB)",
			c.L1LineB, c.L2LineB, c.L3LineB)
	case c.CellsPerLine()%c.Chips != 0:
		return fmt.Errorf("config: %d cells/line not divisible across %d chips",
			c.CellsPerLine(), c.Chips)
	case c.DIMMTokens <= 0 && c.Scheme != SchemeIdeal:
		return fmt.Errorf("config: DIMMTokens must be positive for scheme %v", c.Scheme)
	case c.LCPEff <= 0 || c.LCPEff > 1:
		return fmt.Errorf("config: LCPEff must be in (0,1], got %g", c.LCPEff)
	case c.GCPEff <= 0 || c.GCPEff > 1:
		return fmt.Errorf("config: GCPEff must be in (0,1], got %g", c.GCPEff)
	case c.SetPowerRatio <= 0 || c.SetPowerRatio > 1:
		return fmt.Errorf("config: SetPowerRatio must be in (0,1], got %g", c.SetPowerRatio)
	case c.IterMax < 2:
		return fmt.Errorf("config: IterMax must be at least 2, got %d", c.IterMax)
	case c.ReadQueueEntries <= 0 || c.WriteQueueEntries <= 0:
		return fmt.Errorf("config: queue entries must be positive")
	}
	if _, ok := schemeNames[c.Scheme]; !ok {
		return fmt.Errorf("config: unknown Scheme %d", int(c.Scheme))
	}
	if _, ok := schemeNames[c.WarmupScheme]; !ok {
		return fmt.Errorf("config: unknown WarmupScheme %d", int(c.WarmupScheme))
	}
	return nil
}

// WarmupConfig derives the configuration the warmup phase runs under: the
// same machine structure and workload-visible parameters, with every policy
// dimension a sweep typically varies pinned to the declared warmup scheme's
// canonical value. Pinning is what makes warmup prefixes *shared*: grid
// points that differ only in Scheme, CellMapping, Multi-RESET, WC/WP/WT,
// PWL, half-stripe or queue scheduling all map to the same warmup config —
// and therefore to the same checkpoint key (system.CheckpointKey).
// Structural fields (cores, cache geometry, banks/chips, timings, power
// scalars, seed) pass through: changing them changes the warm state.
func (c Config) WarmupConfig() Config {
	w := c
	w.Scheme = c.WarmupScheme
	w.CellMapping = MapNaive
	w.MultiResetSplit = 0
	w.MultiResetAlways = false
	w.HalfStripe = false
	w.PWL = false
	w.PWLShiftWrites = 0
	w.WriteQueueSched = 0
	w.WriteCancellation = false
	w.WritePausing = false
	w.WriteTruncation = false
	w.TruncateTailCells = 0
	return w
}

// UsesGCP reports whether the scheme employs the global charge pump.
func (c *Config) UsesGCP() bool {
	switch c.Scheme {
	case SchemeGCP, SchemeGCPIPM, SchemeGCPIPMMR:
		return true
	}
	return false
}

// UsesIPM reports whether the scheme uses iteration power management.
func (c *Config) UsesIPM() bool {
	switch c.Scheme {
	case SchemeGCPIPM, SchemeGCPIPMMR, SchemeIPM, SchemeIPMMR:
		return true
	}
	return false
}

// UsesMultiReset reports whether Multi-RESET splitting is active.
func (c *Config) UsesMultiReset() bool {
	switch c.Scheme {
	case SchemeGCPIPMMR, SchemeIPMMR:
		return c.MultiResetSplit > 1
	}
	return false
}

// EnforcesChipBudget reports whether per-chip power limits apply.
func (c *Config) EnforcesChipBudget() bool {
	switch c.Scheme {
	case SchemeIdeal, SchemeDIMMOnly:
		return false
	}
	return true
}

// EnforcesDIMMBudget reports whether the DIMM-level limit applies.
func (c *Config) EnforcesDIMMBudget() bool {
	return c.Scheme != SchemeIdeal
}
