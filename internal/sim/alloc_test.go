package sim

import (
	"testing"

	"fpb/internal/testutil"
)

// TestEngineScheduleDispatchZeroAlloc guards the free-list pool: once the
// pool is primed, schedule + dispatch must not touch the allocator.
func TestEngineScheduleDispatchZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	e := NewEngine()
	fn := func() {}
	// Prime the pool.
	e.After(1, fn)
	e.Run(0)
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(10, fn)
		e.Run(0)
	})
	if allocs != 0 {
		t.Fatalf("schedule+dispatch allocated %.1f objects/op, want 0", allocs)
	}
}

// TestEngineArmZeroAlloc guards the caller-owned fast path: re-arming an
// embedded event must never allocate, even on the first use.
func TestEngineArmZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	e := NewEngine()
	var ev Event
	ev.index = idxIdle
	fn := func() {}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Arm(&ev, 10, fn)
		e.Run(0)
	})
	if allocs != 0 {
		t.Fatalf("Arm+dispatch allocated %.1f objects/op, want 0", allocs)
	}
}

// TestEngineFarEventSteadyStateZeroAlloc covers the overflow-heap tier: the
// heap's backing array is retained across migrations, so even far events are
// allocation-free once capacity exists.
func TestEngineFarEventSteadyStateZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	e := NewEngine()
	fn := func() {}
	// Prime pool and heap capacity.
	e.After(2*numBuckets, fn)
	e.Run(0)
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(2*numBuckets, fn)
		e.Run(0)
	})
	if allocs != 0 {
		t.Fatalf("far schedule+dispatch allocated %.1f objects/op, want 0", allocs)
	}
}
