package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via SplitMix64). Every stochastic component of the
// simulator draws from its own RNG stream derived from the run seed, so
// results are reproducible and independent of event interleaving.
type RNG struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator in place to the state NewRNG(seed) would
// produce, without allocating. Hot paths that need a fresh content-keyed
// stream per operation (e.g. per-write iteration draws) reuse one RNG this
// way instead of constructing one per call.
func (r *RNG) Reseed(seed uint64) {
	st := seed
	for i := range r.s {
		r.s[i] = splitMix64(&st)
	}
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
}

// Derive returns a new independent stream keyed by label. Components use
// this to split one run seed into per-component streams.
func (r *RNG) Derive(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0xD1B54A32D192ED03))
}

// State snapshots the generator's internal state for checkpointing.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state captured by State. The all-zero state is not a
// valid xoshiro256** state and is rejected with the same fallback Reseed
// applies, so a corrupt checkpoint cannot wedge the stream.
func (r *RNG) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9E3779B97F4A7C15
	}
	r.s = s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p: the number of trials up to and including the first
// success (support {1, 2, ...}). p must be in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("sim: Geometric with non-positive p")
	}
	n := 1
	for !r.Bernoulli(p) {
		n++
		if n > 1<<20 { // safety bound; unreachable for sane p
			break
		}
	}
	return n
}

// Normal returns a sample from N(mean, stddev) via the Irwin–Hall
// approximation (sum of 12 uniforms), which is plenty for the ±4σ range the
// simulator uses and avoids math.Log in the hot path.
func (r *RNG) Normal(mean, stddev float64) float64 {
	s := -6.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return mean + stddev*s
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *RNG) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
