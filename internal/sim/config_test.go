package sim

import (
	"math"
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := DefaultConfig()
	if c.Cores != 8 || c.CPUFreqGHz != 4 {
		t.Errorf("CPU = %d cores @ %g GHz, want 8 @ 4", c.Cores, c.CPUFreqGHz)
	}
	if c.PCMReadCycles != 1000 || c.ResetCycles != 500 || c.SetCycles != 1000 {
		t.Errorf("PCM timing = read %d / reset %d / set %d, want 1000/500/1000",
			c.PCMReadCycles, c.ResetCycles, c.SetCycles)
	}
	if c.DIMMTokens != 560 {
		t.Errorf("DIMMTokens = %g, want 560", c.DIMMTokens)
	}
	if c.L3LineB != 256 || c.L3SizeMB != 32 {
		t.Errorf("L3 = %dMB/%dB lines, want 32MB/256B", c.L3SizeMB, c.L3LineB)
	}
}

func TestLCPTokensEquation4(t *testing.T) {
	c := DefaultConfig()
	// PT_LCP = PT_DIMM * E_LCP / 8 = 560*0.95/8 = 66.5
	if got := c.LCPTokens(); math.Abs(got-66.5) > 1e-9 {
		t.Errorf("LCPTokens = %g, want 66.5", got)
	}
	c.LocalScale = 2
	if got := c.LCPTokens(); math.Abs(got-133) > 1e-9 {
		t.Errorf("2xlocal LCPTokens = %g, want 133", got)
	}
}

func TestGCPTokensDefaultsToOneLCP(t *testing.T) {
	c := DefaultConfig()
	if got, want := c.GCPTokens(), c.LCPTokens(); got != want {
		t.Errorf("GCPTokens = %g, want one LCP = %g", got, want)
	}
	c.GCPMaxTokens = 120
	if got := c.GCPTokens(); got != 120 {
		t.Errorf("explicit GCPTokens = %g, want 120", got)
	}
}

func TestCellsPerLine(t *testing.T) {
	c := DefaultConfig()
	if got := c.CellsPerLine(); got != 1024 { // 256B * 8 / 2 bits
		t.Errorf("CellsPerLine = %d, want 1024 for 256B MLC", got)
	}
	c.BitsPerCell = 1
	if got := c.CellsPerLine(); got != 2048 {
		t.Errorf("SLC CellsPerLine = %d, want 2048", got)
	}
	c.BitsPerCell = 2
	c.L3LineB = 64
	if got := c.CellsPerLine(); got != 256 {
		t.Errorf("64B MLC CellsPerLine = %d, want 256", got)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"bad bits per cell", func(c *Config) { c.BitsPerCell = 3 }},
		{"non-nesting lines", func(c *Config) { c.L2LineB = 48 }},
		{"bad LCP eff", func(c *Config) { c.LCPEff = 0 }},
		{"bad GCP eff", func(c *Config) { c.GCPEff = 1.5 }},
		{"zero tokens", func(c *Config) { c.DIMMTokens = 0 }},
		{"bad set ratio", func(c *Config) { c.SetPowerRatio = 0 }},
		{"tiny iter max", func(c *Config) { c.IterMax = 1 }},
		{"zero queues", func(c *Config) { c.ReadQueueEntries = 0 }},
		{"zero chips", func(c *Config) { c.Chips = 0 }},
	}
	for _, m := range mutations {
		c := DefaultConfig()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", m.name)
		}
	}
}

func TestValidateIdealAllowsNoTokens(t *testing.T) {
	c := DefaultConfig()
	c.Scheme = SchemeIdeal
	c.DIMMTokens = 0
	if err := c.Validate(); err != nil {
		t.Errorf("Ideal with zero tokens should validate, got %v", err)
	}
}

func TestSchemePredicates(t *testing.T) {
	cases := []struct {
		s                        Scheme
		gcp, ipm, chip, dimm, mr bool
	}{
		{SchemeIdeal, false, false, false, false, false},
		{SchemeDIMMOnly, false, false, false, true, false},
		{SchemeDIMMChip, false, false, true, true, false},
		{SchemeGCP, true, false, true, true, false},
		{SchemeGCPIPM, true, true, true, true, false},
		{SchemeGCPIPMMR, true, true, true, true, true},
		{SchemeIPM, false, true, true, true, false},
		{SchemeIPMMR, false, true, true, true, true},
	}
	for _, tc := range cases {
		c := DefaultConfig()
		c.Scheme = tc.s
		if c.UsesGCP() != tc.gcp {
			t.Errorf("%v UsesGCP = %v", tc.s, c.UsesGCP())
		}
		if c.UsesIPM() != tc.ipm {
			t.Errorf("%v UsesIPM = %v", tc.s, c.UsesIPM())
		}
		if c.EnforcesChipBudget() != tc.chip {
			t.Errorf("%v EnforcesChipBudget = %v", tc.s, c.EnforcesChipBudget())
		}
		if c.EnforcesDIMMBudget() != tc.dimm {
			t.Errorf("%v EnforcesDIMMBudget = %v", tc.s, c.EnforcesDIMMBudget())
		}
		if c.UsesMultiReset() != tc.mr {
			t.Errorf("%v UsesMultiReset = %v", tc.s, c.UsesMultiReset())
		}
	}
}

func TestSchemeAndMappingStrings(t *testing.T) {
	if SchemeGCPIPMMR.String() != "GCP+IPM+MR" {
		t.Errorf("scheme string = %q", SchemeGCPIPMMR.String())
	}
	if MapBIM.String() != "BIM" || MapVIM.String() != "VIM" || MapNaive.String() != "NE" {
		t.Error("mapping strings wrong")
	}
	if Scheme(99).String() == "" || Mapping(99).String() == "" {
		t.Error("unknown enum must still stringify")
	}
}
