package sim

import (
	"runtime"
	"testing"
)

// shardedProgram interprets one op stream and returns the commit log as
// (now, id, value) triples. shards == 0 runs the plain sequential engine
// with every lane event emulated as an At at the identical timestamp whose
// callback runs prepare and commit back to back — the reference the
// parallel engine must match entry for entry. Nested scheduling from
// commits is derived purely from the event id, so both executions generate
// the same follow-on events.
//
// varDelay exercises the batched-horizon scheduler: each lane event's
// speculation distance is a pure function of its id — anywhere from 0 to 16
// lookaheads, the adaptive range the memory controller uses — instead of
// the fixed one-lookahead distance. Sequential emulation uses the identical
// per-id delay, so the logs must still match entry for entry: speculation
// distance is a batching knob, never a correctness one.
func shardedProgram(ops []byte, shards int, varDelay bool) []uint64 {
	const lanes = 8
	const lookahead = Cycle(16)
	const maxEvents = 512

	e := NewEngine()
	if shards > 0 {
		e.EnableSharding(lanes, shards, lookahead)
	}
	var log []uint64
	var id uint64
	var last *Event

	var schedule func(kind int, arg uint64) *Event
	spec := func(myID uint64, lane int, prep, commit func()) *Event {
		delay := lookahead
		if varDelay {
			delay = Cycle((myID*0x2545F4914F6CDD1D)>>32) % (16 * lookahead)
		}
		if shards > 0 {
			return e.SpeculateAfter(lane, delay, prep, commit)
		}
		return e.At(e.Now()+delay, func() { prep(); commit() })
	}
	schedule = func(kind int, arg uint64) *Event {
		if id >= maxEvents {
			return nil
		}
		myID := id
		id++
		// Nested action: a pure function of the event id, identical in
		// both executions.
		h := (myID + 1) * 0x9E3779B97F4A7C15
		commitTail := func() {
			switch h % 4 {
			case 0:
				schedule(0, h>>8%64) // global follow-up
			case 1:
				schedule(1, h>>8) // speculative follow-up
			}
		}
		switch kind {
		case 0: // global event
			return e.At(e.Now()+Cycle(arg%96), func() {
				log = append(log, uint64(e.Now()), myID, 0)
				commitTail()
			})
		default: // lane event: prepare computes, commit publishes
			var v uint64
			prep := func() { v = myID*3 + 1 }
			commit := func() {
				log = append(log, uint64(e.Now()), myID, v)
				commitTail()
			}
			return spec(myID, int(arg%lanes), prep, commit)
		}
	}

	for i := 0; i+1 < len(ops); i += 2 {
		op, arg := ops[i]&3, uint64(ops[i+1])
		switch op {
		case 0, 1:
			if ev := schedule(int(op), arg); ev != nil {
				last = ev
			}
		case 2: // cancel the most recently scheduled event
			e.Cancel(last)
			last = nil
		default: // advance the build frontier: an empty global marker
			if ev := schedule(0, arg); ev != nil {
				last = ev
			}
		}
	}

	if shards > 0 {
		// stop never satisfied: RunSharded reports false when it drains.
		if e.RunSharded(func() bool { return false }) {
			panic("RunSharded reported stop satisfied on a drained queue")
		}
	} else {
		for e.Step() {
		}
	}
	if e.Pending() != 0 {
		panic("events stuck after drain")
	}
	return log
}

func diffLogs(t *testing.T, want, got []uint64, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: sequential committed %d entries, sharded %d", label, len(want)/3, len(got)/3)
	}
	for i := 0; i < len(want); i += 3 {
		if want[i] != got[i] || want[i+1] != got[i+1] || want[i+2] != got[i+2] {
			t.Fatalf("%s: commit %d: sequential (now %d, id %d, v %d), sharded (now %d, id %d, v %d)",
				label, i/3, want[i], want[i+1], want[i+2], got[i], got[i+1], got[i+2])
		}
	}
}

// TestShardedMatchesSequentialSeeded cross-checks the parallel engine
// against the sequential reference over pseudo-random programs at several
// shard counts, including one that does not divide the lane count — under
// both the fixed one-lookahead distance and the randomized batched-horizon
// distances.
func TestShardedMatchesSequentialSeeded(t *testing.T) {
	for _, varDelay := range []bool{false, true} {
		for seed := uint64(1); seed <= 24; seed++ {
			rng := NewRNG(seed)
			ops := make([]byte, 64+int(rng.Uint64()%192))
			for i := range ops {
				ops[i] = byte(rng.Uint64())
			}
			want := shardedProgram(ops, 0, varDelay)
			if len(want) == 0 {
				continue
			}
			for _, shards := range []int{1, 3, 8} {
				got := shardedProgram(ops, shards, varDelay)
				diffLogs(t, want, got, "seeded")
			}
		}
	}
}

// TestShardedMatchesSequentialParallelBarrier re-runs the seeded corpus
// with the hardware-thread cap lifted and GOMAXPROCS raised, so sweeps
// take the worker-barrier path (parked workers, generation bumps, wake
// tokens) even on single-core hosts. Most valuable under -race: it is the
// main concurrency exercise of the spin-then-park barrier.
func TestShardedMatchesSequentialParallelBarrier(t *testing.T) {
	defer func(old func() int) { numCPU = old }(numCPU)
	numCPU = func() int { return 8 }
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for _, varDelay := range []bool{false, true} {
		for seed := uint64(1); seed <= 12; seed++ {
			rng := NewRNG(seed ^ 0xBA881E8)
			ops := make([]byte, 64+int(rng.Uint64()%192))
			for i := range ops {
				ops[i] = byte(rng.Uint64())
			}
			want := shardedProgram(ops, 0, varDelay)
			if len(want) == 0 {
				continue
			}
			for _, shards := range []int{3, 8} {
				got := shardedProgram(ops, shards, varDelay)
				diffLogs(t, want, got, "parallel-barrier")
			}
		}
	}
}

// FuzzShardedVsSequential lets the fuzzer pick the lane event
// interleavings — and whether speculation distances are fixed or
// id-randomized; any divergence from the sequential engine is a
// determinism bug.
func FuzzShardedVsSequential(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 1, 2, 0, 5, 1, 3}, uint8(4))
	f.Add([]byte{0, 200, 1, 7, 2, 0, 1, 7, 0, 0, 1, 1}, uint8(1))
	f.Add([]byte{1, 1, 1, 9, 1, 17, 1, 25, 3, 40, 1, 2}, uint8(3))
	f.Add([]byte{3, 90, 1, 4, 2, 0, 2, 0, 1, 4, 0, 90}, uint8(8))
	f.Add([]byte{1, 1, 1, 9, 1, 17, 1, 25, 3, 40, 1, 2}, uint8(131))
	f.Fuzz(func(t *testing.T, ops []byte, shards uint8) {
		s := int(shards%8) + 1
		varDelay := shards&0x80 != 0
		want := shardedProgram(ops, 0, varDelay)
		got := shardedProgram(ops, s, varDelay)
		diffLogs(t, want, got, "fuzz")
	})
}

func TestEnableShardingValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero lanes", func() { NewEngine().EnableSharding(0, 1, 16) })
	mustPanic("zero shards", func() { NewEngine().EnableSharding(8, 0, 16) })
	mustPanic("zero lookahead", func() { NewEngine().EnableSharding(8, 4, 0) })
	e := NewEngine()
	e.EnableSharding(4, 9, 16) // shards clamp to lanes
	mustPanic("double enable", func() { e.EnableSharding(4, 2, 16) })
	if !e.Sharded() || e.Lanes() != 4 || e.Lookahead() != 16 {
		t.Errorf("sharded=%v lanes=%d lookahead=%d", e.Sharded(), e.Lanes(), e.Lookahead())
	}
	mustPanic("speculate without sharding", func() {
		NewEngine().Speculate(0, nil, func() {})
	})
	mustPanic("lane out of range", func() { e.Speculate(4, nil, func() {}) })

	plain := NewEngine()
	if plain.Sharded() || plain.Lanes() != 0 || plain.Lookahead() != 0 {
		t.Error("unsharded accessors not zero")
	}
}

// TestSpeculateCommitSeesPreparedValue: the prepared value must flow to
// the commit, and the commit must observe the engine clock at the event's
// scheduled cycle.
func TestSpeculateCommitSeesPreparedValue(t *testing.T) {
	e := NewEngine()
	e.EnableSharding(2, 2, 10)
	var v int
	var at Cycle
	e.Speculate(1, func() { v = 41 }, func() { v++; at = e.Now() })
	if !e.RunSharded(func() bool { return v == 42 }) {
		t.Fatal("RunSharded drained before the commit ran")
	}
	if v != 42 || at != 10 {
		t.Errorf("v = %d at cycle %d, want 42 at 10", v, at)
	}
}

// TestCancelSpeculatedEvent: cancelling a lane event before its window
// suppresses both callbacks; the queue still drains.
func TestCancelSpeculatedEvent(t *testing.T) {
	e := NewEngine()
	e.EnableSharding(4, 4, 16)
	ran := false
	ev := e.Speculate(2, func() { ran = true }, func() { ran = true })
	if !ev.Scheduled() || ev.Lane() != 2 {
		t.Fatalf("lane event not scheduled on its lane: %+v", ev)
	}
	e.Cancel(ev)
	if e.RunSharded(func() bool { return false }) {
		t.Error("drained engine reported stop satisfied")
	}
	if ran {
		t.Error("cancelled lane event ran a callback")
	}
	if e.Pending() != 0 {
		t.Errorf("%d events pending after drain", e.Pending())
	}
}

// TestSchedulingFromPreparePanics: prepares run concurrently and must not
// touch the engine; the sweep re-raises a worker panic on the engine
// goroutine.
func TestSchedulingFromPreparePanics(t *testing.T) {
	for name, misuse := range map[string]func(e *Engine){
		"At":        func(e *Engine) { e.At(e.Now()+1, func() {}) },
		"ArmAt":     func(e *Engine) { e.ArmAt(&Event{index: idxIdle, owned: true}, e.Now()+1, func() {}) },
		"Speculate": func(e *Engine) { e.Speculate(0, nil, func() {}) },
	} {
		misuse := misuse
		t.Run(name, func(t *testing.T) {
			e := NewEngine()
			e.EnableSharding(1, 1, 8)
			e.Speculate(0, func() { misuse(e) }, func() {})
			defer func() {
				if recover() == nil {
					t.Errorf("%s from prepare did not panic", name)
				}
			}()
			e.RunSharded(func() bool { return false })
		})
	}
}

// TestRunShardedInterleavesGlobalEvents: global events strictly before the
// first lane event run on the sequential fast path; inside the window the
// merge respects (time, seq) order across both queues.
func TestRunShardedInterleavesGlobalEvents(t *testing.T) {
	e := NewEngine()
	e.EnableSharding(2, 2, 20)
	var order []string
	e.At(5, func() { order = append(order, "g5") })
	e.Speculate(0, nil, func() { order = append(order, "l20") }) // when = 20
	e.At(20, func() { order = append(order, "g20") })            // same cycle, later seq
	e.At(25, func() { order = append(order, "g25") })
	if e.RunSharded(func() bool { return false }) {
		t.Error("drained engine reported stop satisfied")
	}
	want := []string{"g5", "l20", "g20", "g25"}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
}

// TestRunShardedStopChecksBetweenEvents: stop is honored between events,
// leaving later work pending — the contract System.Run relies on.
func TestRunShardedStopChecksBetweenEvents(t *testing.T) {
	e := NewEngine()
	e.EnableSharding(2, 1, 10)
	done := false
	e.Speculate(0, nil, func() { done = true })
	e.Speculate(1, nil, func() { t.Error("event after stop ran") })
	e.At(30, func() { t.Error("global event after stop ran") })
	// First commit satisfies stop; the second lane event is at the same
	// window but must not run.
	if !e.RunSharded(func() bool { return done }) {
		t.Fatal("stop was satisfied but RunSharded reported drain")
	}
	if e.Pending() == 0 {
		t.Error("no events left pending after early stop")
	}
}

// TestRunShardedWithoutShardingFallsBack: RunSharded on a plain engine is
// just a Step loop.
func TestRunShardedWithoutShardingFallsBack(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++ })
	e.At(2, func() { n++ })
	if !e.RunSharded(func() bool { return n == 2 }) {
		t.Fatal("fallback loop did not satisfy stop")
	}
	e2 := NewEngine()
	e2.At(1, func() {})
	if e2.RunSharded(func() bool { return false }) {
		t.Error("drained fallback loop reported stop satisfied")
	}
}

// TestSpeculateAfterZeroDelay: a zero speculation distance is legal — the
// event prepares at the next sweep and commits at the cycle it was
// scheduled from.
func TestSpeculateAfterZeroDelay(t *testing.T) {
	e := NewEngine()
	e.EnableSharding(2, 2, 10)
	e.At(7, func() {
		e.SpeculateAfter(1, 0, nil, func() {
			if e.Now() != 7 {
				t.Errorf("zero-delay commit at cycle %d, want 7", e.Now())
			}
		})
	})
	e.At(9, func() {})
	if e.RunSharded(func() bool { return false }) {
		t.Error("drained engine reported stop satisfied")
	}
	if e.Pending() != 0 {
		t.Errorf("%d events pending after drain", e.Pending())
	}
}

// TestShardStatsResetBetweenRuns: ShardStats describe the current
// RunSharded invocation only — a reused engine (warmup run, then measured
// run) must not leak the first run's sweep counts or barrier stalls into
// the second. The process-wide aggregate keeps the cumulative view.
func TestShardStatsResetBetweenRuns(t *testing.T) {
	ResetGlobalShardStats()
	e := NewEngine()
	e.EnableSharding(2, 2, 10)
	for i := 0; i < 3; i++ {
		e.Speculate(i%2, func() {}, func() {})
	}
	e.RunSharded(func() bool { return false })
	first := e.ShardStats()
	if first.LaneCommits != 3 || first.Prepared != 3 {
		t.Fatalf("first run: %+v, want 3 lane commits and 3 prepared", first)
	}
	if first.Sweeps+first.InlineSweeps == 0 || first.HorizonCycles == 0 && first.Sweeps+first.InlineSweeps > 1 {
		t.Fatalf("first run: implausible sweep telemetry %+v", first)
	}
	e.Speculate(0, func() {}, func() {})
	e.RunSharded(func() bool { return false })
	second := e.ShardStats()
	if second.LaneCommits != 1 || second.Prepared != 1 {
		t.Errorf("second run: %+v, want exactly 1 lane commit and 1 prepared (stale telemetry leaked)", second)
	}
	g := GlobalShardStats()
	if g.LaneCommits != 4 || g.Prepared != 4 {
		t.Errorf("global aggregate: %+v, want the cumulative 4 lane commits and 4 prepared", g)
	}
	ResetGlobalShardStats()
	if g := GlobalShardStats(); g.LaneCommits != 0 || g.Sweeps != 0 {
		t.Errorf("global aggregate not zeroed: %+v", g)
	}
}

// TestShardedEventsRunExcludesLaneCommits: lane commits must not count
// toward EventsRun or fire the dispatch hook — sim.events_run and traces
// have to stay bit-identical to the sequential engine, which never sees
// these events.
func TestShardedEventsRunExcludesLaneCommits(t *testing.T) {
	e := NewEngine()
	e.EnableSharding(2, 2, 10)
	hooks := 0
	e.SetDispatchHook(func(now Cycle, ran uint64) { hooks++ })
	e.At(3, func() {})
	e.Speculate(0, nil, func() {})
	e.At(12, func() {})
	e.RunSharded(func() bool { return false })
	if e.EventsRun() != 2 || hooks != 2 {
		t.Errorf("EventsRun = %d, hook fired %d times; want 2 and 2 (lane commits excluded)",
			e.EventsRun(), hooks)
	}
}
