package sim

import (
	"container/heap"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the opt-in parallel engine: the event population is
// sharded into per-bank lanes plus the ordinary global queue, and execution
// batches lane-event prepares into sweeps whose horizon adapts to the actual
// event timestamps instead of a fixed lookahead-wide window.
//
// A lane event is scheduled with Speculate/SpeculateAfter and carries two
// callbacks:
//
//   - prepare runs during a sweep's parallel phase. It must only read shared
//     simulation state and write state local to its lane (or captured by the
//     event's own closures); it must not touch the engine. Prepares across
//     lanes run concurrently.
//   - commit runs on the engine goroutine after the sweep barrier, merged
//     with global-queue events in deterministic (time, seq) order. All
//     shared mutation happens here.
//
// Scheduling model: the engine tracks the earliest not-yet-prepared lane
// event (heapMin). Execution proceeds exactly like the sequential engine —
// dispatching the earliest of {prepared lane events, global queue head} by
// (when, seq) — until the frontier would cross heapMin; at that point one
// sweep prepares *every* pending lane event (in this horizon and beyond)
// and execution resumes. Sweep points are therefore a pure function of
// event timestamps: independent of the shard count, of GOMAXPROCS, and of
// how the OS schedules workers, which is what keeps execution deterministic.
//
// Determinism argument: every prepare is phase-separated from every commit
// and from all other shards' prepares by the sweep barrier (whose atomics
// establish happens-before in both directions), so there are no data races.
// Commits apply in global (time, seq) order on one goroutine, so the
// observable event order is identical to the sequential engine's; and
// prepares only precompute values that are pure functions of the state
// their validity is later checked against (see mem.Controller's version/
// rotation tags), so the *content* of every commit is independent of when
// its sweep happened to run. Together: results are bit-identical for any
// shard count, any GOMAXPROCS and any speculation distance.
const (
	// idxReady marks a lane event that has been prepared and is waiting in
	// the merged ready queue for commit. Distinct from idxIdle so
	// Scheduled/Cancel keep working on in-flight lane events.
	idxReady = -3

	// barrierBusySpins / barrierYieldSpins bound the two spin phases of the
	// sweep barrier before a participant parks: a short hot spin (parallel
	// hardware, worker about to finish), then cooperative yields (fewer
	// hardware threads than workers), then a channel park. Parks and wakes
	// are counted in ShardStats so barrier behavior is diagnosable.
	barrierBusySpins  = 64
	barrierYieldSpins = 256
)

// laneQueue holds one lane's pending events.
type laneQueue struct {
	heap eventHeap // scheduled, not yet prepared
	// newReady receives the lane's events as a sweep prepares them, in
	// ascending (when, seq) order; the engine drains it into the merged
	// ready queue at the barrier. Only the worker owning the lane's shard
	// touches it during a sweep.
	newReady     []*Event
	pendingReady int    // entries currently in the merged ready queue
	committed    uint64 // lane events committed over the run (telemetry)
}

// ShardStats is an execution-side telemetry snapshot of the parallel
// engine: it describes how a run executed (sweep counts, barrier stall
// time), never what it computed, so it is exported through exec-scope obs
// series and excluded from Result.Metrics. Counters cover the current
// RunSharded invocation — they reset when a run starts, so telemetry from a
// warmup phase never bleeds into the measured phase of a reused engine.
type ShardStats struct {
	// Sweeps is the number of parallel prepare sweeps that crossed the
	// worker barrier.
	Sweeps uint64
	// InlineSweeps is the number of sweeps executed entirely on the engine
	// goroutine — single worker, or only one shard had pending work — so
	// no barrier was paid.
	InlineSweeps uint64
	// Prepared is the total number of lane events run through prepare
	// callbacks.
	Prepared uint64
	// LaneCommits is the number of lane events committed (cancelled lane
	// events are collected without counting).
	LaneCommits uint64
	// BarrierWaitNs is cumulative wall-clock time the engine goroutine
	// spent waiting on sweep barriers after finishing its own share of the
	// prepare work (nondeterministic by nature).
	BarrierWaitNs uint64
	// HorizonCycles is the cumulative simulated time between consecutive
	// sweeps: HorizonCycles / Sweeps is the mean horizon one barrier
	// amortizes over (the old fixed-window engine paid one sweep per
	// lookahead of progress).
	HorizonCycles uint64
	// Parks counts barrier participants (engine or worker) that exhausted
	// their spin budget and blocked on a channel; Wakes counts the wake
	// tokens the engine sent to parked workers.
	Parks uint64
	Wakes uint64
}

// shardWorker is one persistent prepare worker's barrier cell. The engine
// releases a worker by bumping gen; the worker signals completion through
// the group's shared countdown.
type shardWorker struct {
	gen    atomic.Uint64 // target generation; engine bumps to release
	parked atomic.Bool   // worker is blocked (or blocking) on wake
	wake   chan struct{} // buffered(1): at most one stale token, re-checked
}

// workerGroup is one generation of persistent workers. It is replaced
// wholesale when workers restart (e.g. GOMAXPROCS changed between runs), so
// goroutines from a torn-down group can never consume a new group's signals.
type workerGroup struct {
	width     int // total barrier participants, engine included
	workers   []*shardWorker
	done      atomic.Int64  // workers still preparing this sweep
	engParked atomic.Bool   // engine is blocked (or blocking) on engWake
	engWake   chan struct{} // buffered(1), same stale-token discipline
	stopping  atomic.Bool
	parks     atomic.Uint64 // worker-side parks (engine parks are counted serially)
}

// sharding is the parallel-engine state hung off an Engine by EnableSharding.
type sharding struct {
	shards    int
	lookahead Cycle
	lanes     []laneQueue

	// ready is the merged commit queue: every prepared lane event, sorted
	// by (when, seq); next is its first unconsumed entry. A single sorted
	// queue makes the commit merge O(1) per event where the windowed
	// engine scanned every lane.
	ready []*Event
	next  int

	pending    int   // lane events not yet committed (heaps + ready)
	unprepared int   // lane events still in lane heaps
	heapMin    Cycle // earliest unprepared lane event; MaxCycle when none

	// shardPending/busyShards track which shards have unprepared work, so a
	// sweep can run inline when only one shard (or one worker) is busy and
	// release only the workers that own busy shards otherwise.
	shardPending []int32
	busyShards   int

	preparing atomic.Bool // a sweep's prepare phase is running

	group *workerGroup // non-nil while persistent workers are up

	// Telemetry for the current RunSharded invocation. All fields are
	// written on the engine goroutine except preparedBy, whose per-shard
	// slots are written by the single participant draining that shard and
	// ordered against reads by the sweep barrier.
	sweeps        uint64
	inlineSweeps  uint64
	laneCommits   uint64
	barrierWaitNs uint64
	horizonCycles uint64
	parks         uint64
	wakes         uint64
	lastSweepNow  Cycle
	sweepSeen     bool
	preparedBy    []uint64

	panicMu  sync.Mutex
	panicked any
}

// globalShard accumulates ShardStats across every RunSharded invocation in
// the process (atomically — experiment runners execute systems
// concurrently). It feeds fpbbench's scaling diagnostics; per-run telemetry
// stays on the engine.
var globalShard struct {
	sweeps, inlineSweeps, prepared, laneCommits atomic.Uint64
	barrierWaitNs, horizonCycles, parks, wakes  atomic.Uint64
}

// GlobalShardStats returns the process-wide ShardStats accumulated by every
// finished RunSharded invocation since the last ResetGlobalShardStats.
func GlobalShardStats() ShardStats {
	return ShardStats{
		Sweeps:        globalShard.sweeps.Load(),
		InlineSweeps:  globalShard.inlineSweeps.Load(),
		Prepared:      globalShard.prepared.Load(),
		LaneCommits:   globalShard.laneCommits.Load(),
		BarrierWaitNs: globalShard.barrierWaitNs.Load(),
		HorizonCycles: globalShard.horizonCycles.Load(),
		Parks:         globalShard.parks.Load(),
		Wakes:         globalShard.wakes.Load(),
	}
}

// ResetGlobalShardStats zeroes the process-wide accumulator.
func ResetGlobalShardStats() {
	globalShard.sweeps.Store(0)
	globalShard.inlineSweeps.Store(0)
	globalShard.prepared.Store(0)
	globalShard.laneCommits.Store(0)
	globalShard.barrierWaitNs.Store(0)
	globalShard.horizonCycles.Store(0)
	globalShard.parks.Store(0)
	globalShard.wakes.Store(0)
}

// EnableSharding turns on the parallel engine: lanes event lanes executed by
// up to shards-wide parallel prepare sweeps, with a conservative lookahead of
// the given width. Must be called before any event is scheduled; the lane
// partition (lane % shards) depends only on the shard count, never on
// GOMAXPROCS, so a simulation's shard assignment is machine-independent.
func (e *Engine) EnableSharding(lanes, shards int, lookahead Cycle) {
	if e.sh != nil {
		panic("sim: EnableSharding called twice")
	}
	if lanes <= 0 || shards <= 0 {
		panic(fmt.Sprintf("sim: EnableSharding with lanes %d, shards %d", lanes, shards))
	}
	if lookahead == 0 {
		panic("sim: EnableSharding with zero lookahead")
	}
	if shards > lanes {
		shards = lanes
	}
	e.sh = &sharding{
		shards:       shards,
		lookahead:    lookahead,
		lanes:        make([]laneQueue, lanes),
		heapMin:      MaxCycle,
		shardPending: make([]int32, shards),
		preparedBy:   make([]uint64, shards),
	}
}

// Sharded reports whether the parallel engine is enabled.
func (e *Engine) Sharded() bool { return e.sh != nil }

// Lanes reports the number of event lanes (0 when not sharded).
func (e *Engine) Lanes() int {
	if e.sh == nil {
		return 0
	}
	return len(e.sh.lanes)
}

// Lookahead reports the default speculation distance (0 when not sharded).
func (e *Engine) Lookahead() Cycle {
	if e.sh == nil {
		return 0
	}
	return e.sh.lookahead
}

// Speculate schedules a lane event one lookahead ahead of now; see
// SpeculateAfter for the scheduling contract.
func (e *Engine) Speculate(lane int, prepare, commit func()) *Event {
	if e.sh == nil {
		panic("sim: Speculate on an engine without sharding enabled")
	}
	return e.SpeculateAfter(lane, e.sh.lookahead, prepare, commit)
}

// SpeculateAfter schedules a lane event delay cycles ahead of now: prepare
// runs speculatively during a sweep's parallel phase, commit publishes its
// result on the engine goroutine in global (time, seq) order. The distance
// is purely a batching knob — a longer delay lets more lane events
// accumulate per sweep (the engine sweeps only when the frontier reaches the
// earliest unprepared lane event) — and never a correctness one: prepares
// must compute validated speculation (pure functions of the state their
// validity is re-checked against at use), so any delay yields bit-identical
// results.
func (e *Engine) SpeculateAfter(lane int, delay Cycle, prepare, commit func()) *Event {
	sh := e.sh
	if sh == nil {
		panic("sim: SpeculateAfter on an engine without sharding enabled")
	}
	if sh.preparing.Load() {
		panic("sim: SpeculateAfter called from a prepare callback")
	}
	if lane < 0 || lane >= len(sh.lanes) {
		panic(fmt.Sprintf("sim: SpeculateAfter on lane %d of %d", lane, len(sh.lanes)))
	}
	ev := e.alloc()
	ev.when, ev.seq = e.now+delay, e.seq
	ev.fn, ev.prepare = commit, prepare
	ev.lane = int32(lane)
	e.seq++
	heap.Push(&sh.lanes[lane].heap, ev)
	sh.pending++
	sh.unprepared++
	s := lane % sh.shards
	if sh.shardPending[s] == 0 {
		sh.busyShards++
	}
	sh.shardPending[s]++
	if ev.when < sh.heapMin {
		sh.heapMin = ev.when
	}
	return ev
}

// RunSharded executes events until stop() reports true, merging prepared
// lane events with the global queue in (time, seq) order and sweeping the
// lane heaps whenever the frontier reaches the earliest unprepared lane
// event. It reports false when both queues drain with stop still
// unsatisfied (the deadlock case). stop is checked between consecutive
// events, exactly like a sequential Step loop. Shard telemetry resets at
// entry and folds into the process-wide aggregate (GlobalShardStats) on
// return; the persistent worker pool is torn down on return.
func (e *Engine) RunSharded(stop func() bool) bool {
	sh := e.sh
	if sh == nil {
		for !stop() {
			if !e.Step() {
				return false
			}
		}
		return true
	}
	sh.resetRunStats()
	defer sh.flushGlobalStats()
	defer sh.stopWorkers()
	for {
		if stop() {
			return true
		}
		var lv *Event
		if sh.next < len(sh.ready) {
			lv = sh.ready[sh.next]
		}
		g := e.queue.peek(e.now, e.recycle)
		if sh.unprepared > 0 {
			next := MaxCycle
			if lv != nil {
				next = lv.when
			}
			if g != nil && g.when < next {
				next = g.when
			}
			if next >= sh.heapMin {
				// The frontier reached the earliest unprepared lane event:
				// prepare everything pending before committing past it.
				e.sweep()
				continue
			}
		}
		switch {
		case lv != nil && (g == nil || lv.when < g.when || (lv.when == g.when && lv.seq < g.seq)):
			sh.ready[sh.next] = nil
			sh.next++
			sh.pending--
			lq := &sh.lanes[lv.lane]
			lq.pendingReady--
			fn, cancelled, when := lv.fn, lv.cancel, lv.when
			e.recycle(lv)
			if cancelled {
				// Collected without advancing the clock, exactly like the
				// sequential queue collects cancelled events.
				continue
			}
			sh.laneCommits++
			lq.committed++
			e.now = when
			// Lane commits do not count toward EventsRun and do not fire
			// the dispatch hook: metrics and traces stay identical to the
			// sequential engine, which never sees these events.
			fn()
		case g != nil:
			// Dispatch the already-peeked head directly: popping it by
			// position skips re-scanning the calendar inside Step.
			e.queue.popHead(g)
			e.now = g.when
			e.ran++
			fn := g.fn
			e.recycle(g)
			if e.hook != nil {
				e.hook(e.now, e.ran)
			}
			fn()
		default:
			// Both queues empty and nothing unprepared (a sweep would have
			// run above): the engine drained with stop unsatisfied.
			return false
		}
	}
}

// sweep prepares every pending lane event — due now and beyond — and merges
// the results into the ready queue. With one barrier participant, or with
// all pending work in a single shard, the prepares run inline on the engine
// goroutine; otherwise the persistent workers owning busy shards are
// released and the engine prepares its own share before waiting on the
// barrier.
func (e *Engine) sweep() {
	sh := e.sh
	if sh.sweepSeen {
		sh.horizonCycles += uint64(e.now - sh.lastSweepNow)
	}
	sh.sweepSeen = true
	sh.lastSweepNow = e.now
	if w := sh.width(); w <= 1 || sh.busyShards <= 1 {
		sh.inlineSweeps++
		sh.preparing.Store(true)
		func() {
			defer sh.preparing.Store(false)
			for s := 0; s < sh.shards; s++ {
				if sh.shardPending[s] > 0 {
					sh.prepareShard(s)
				}
			}
		}()
	} else {
		sh.sweeps++
		sh.startWorkers()
		sh.parallelSweep()
	}
	if p := sh.takePanic(); p != nil {
		panic(p)
	}
	for s := range sh.shardPending {
		sh.shardPending[s] = 0
	}
	sh.busyShards = 0
	sh.unprepared = 0
	sh.heapMin = MaxCycle
	sh.mergeReady()
}

// parallelSweep runs one barriered sweep: release the workers whose
// partitions have busy shards (idle workers stay parked), prepare the
// engine's own partition, then spin-then-park until the countdown drains.
func (sh *sharding) parallelSweep() {
	g := sh.group
	w := g.width
	dispatched := 0
	for id := 1; id < w; id++ {
		if sh.workerHasWork(id, w) {
			dispatched++
		}
	}
	// The countdown must be armed before any release: a released worker
	// may finish and decrement before the next release happens.
	g.done.Store(int64(dispatched))
	sh.preparing.Store(true)
	for id := 1; id < w; id++ {
		if !sh.workerHasWork(id, w) {
			continue
		}
		wk := g.workers[id-1]
		wk.gen.Add(1)
		if wk.parked.Load() {
			sh.wakes++
			select {
			case wk.wake <- struct{}{}:
			default:
			}
		}
	}
	// The engine is barrier participant 0: it prepares its own partition
	// while the workers run theirs, so W-way parallelism needs only W-1
	// goroutines and the engine never blocks while it still has work.
	var engPanic any
	func() {
		defer func() { engPanic = recover() }()
		for s := 0; s < sh.shards; s += w {
			if sh.shardPending[s] > 0 {
				sh.prepareShard(s)
			}
		}
	}()
	if dispatched > 0 {
		// Barrier-wait time is wall clock and thus nondeterministic — fine,
		// it only feeds exec-scope telemetry, never results.
		waitStart := time.Now()
		spins := 0
		for g.done.Load() != 0 {
			switch {
			case spins < barrierBusySpins:
			case spins < barrierYieldSpins:
				runtime.Gosched()
			default:
				g.engParked.Store(true)
				// Store-then-load pairs with the last worker's
				// decrement-then-load: one side always sees the other.
				if g.done.Load() != 0 {
					sh.parks++
					<-g.engWake
				}
				g.engParked.Store(false)
				spins = 0
				continue
			}
			spins++
		}
		sh.barrierWaitNs += uint64(time.Since(waitStart).Nanoseconds())
	}
	sh.preparing.Store(false)
	if engPanic != nil {
		sh.setPanic(engPanic)
	}
}

// workerHasWork reports whether any busy shard belongs to barrier
// participant id under width-way striping (shard % width == id).
func (sh *sharding) workerHasWork(id, width int) bool {
	for s := id; s < sh.shards; s += width {
		if sh.shardPending[s] > 0 {
			return true
		}
	}
	return false
}

// numCPU is runtime.NumCPU, swappable so tests can exercise the parallel
// barrier on hosts with fewer hardware threads than the scenario simulates.
var numCPU = runtime.NumCPU

// width reports the barrier width: the running group's, or what a new group
// would use — min(shards, GOMAXPROCS, NumCPU). Capping at the physical CPU
// count matters on overcommitted hosts: prepares are pure CPU work, so
// participants beyond the hardware threads add barrier latency (the engine
// waits while the OS time-slices them) without adding throughput.
func (sh *sharding) width() int {
	if sh.group != nil {
		return sh.group.width
	}
	w := runtime.GOMAXPROCS(0)
	if n := numCPU(); w > n {
		w = n
	}
	if w > sh.shards {
		w = sh.shards
	}
	return w
}

// prepareShard drains every lane of one shard on its owning barrier
// participant. Lanes of different shards are disjoint, so participants
// never share mutable state.
func (sh *sharding) prepareShard(s int) {
	n := uint64(0)
	for l := s; l < len(sh.lanes); l += sh.shards {
		lq := &sh.lanes[l]
		for len(lq.heap) > 0 {
			ev := heap.Pop(&lq.heap).(*Event)
			ev.index = idxReady
			if !ev.cancel && ev.prepare != nil {
				ev.prepare()
				n++
			}
			lq.newReady = append(lq.newReady, ev)
		}
	}
	// Disjoint slot per shard; the sweep barrier orders this write before
	// any ShardStats read on the engine goroutine.
	sh.preparedBy[s] += n
}

// workerLoop is one persistent worker: wait (spin, yield, park) for a
// generation bump, prepare the busy shards of this worker's partition,
// decrement the countdown, repeat until the group stops.
func (sh *sharding) workerLoop(g *workerGroup, w *shardWorker, id int) {
	var seen uint64
	for {
		spins := 0
		for w.gen.Load() == seen {
			switch {
			case spins < barrierBusySpins:
			case spins < barrierYieldSpins:
				runtime.Gosched()
			default:
				w.parked.Store(true)
				// Pairs with the engine's gen-store-then-parked-load: if
				// the re-check still sees the old generation, the engine is
				// guaranteed to observe parked and send a wake token. A
				// stale token from an earlier race wakes the worker early;
				// the outer loop re-checks gen and parks again.
				if w.gen.Load() == seen {
					g.parks.Add(1)
					<-w.wake
				}
				w.parked.Store(false)
				spins = 0
				continue
			}
			spins++
		}
		seen = w.gen.Load()
		if g.stopping.Load() {
			return
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					sh.setPanic(r)
				}
			}()
			for s := id; s < sh.shards; s += g.width {
				if sh.shardPending[s] > 0 {
					sh.prepareShard(s)
				}
			}
		}()
		if g.done.Add(-1) == 0 && g.engParked.Load() {
			select {
			case g.engWake <- struct{}{}:
			default:
			}
		}
	}
}

func (sh *sharding) setPanic(p any) {
	sh.panicMu.Lock()
	if sh.panicked == nil {
		sh.panicked = p
	}
	sh.panicMu.Unlock()
}

func (sh *sharding) takePanic() any {
	sh.panicMu.Lock()
	defer sh.panicMu.Unlock()
	p := sh.panicked
	sh.panicked = nil
	return p
}

// startWorkers lazily spins up the persistent pool: min(shards, GOMAXPROCS)
// barrier participants, one of which is the engine itself, so W-1
// goroutines. Which participant owns which shard is fixed (shard % width) —
// partitions touch disjoint lanes and the barrier orders everything, so
// ownership is deliberately unobservable.
func (sh *sharding) startWorkers() {
	if sh.group != nil {
		return
	}
	w := sh.width()
	g := &workerGroup{width: w, engWake: make(chan struct{}, 1)}
	for id := 1; id < w; id++ {
		wk := &shardWorker{wake: make(chan struct{}, 1)}
		g.workers = append(g.workers, wk)
		go sh.workerLoop(g, wk, id)
	}
	sh.group = g
}

// stopWorkers tears down the pool (workers observe stopping on their next
// release and exit); a later run restarts it, re-reading GOMAXPROCS.
func (sh *sharding) stopWorkers() {
	g := sh.group
	if g == nil {
		return
	}
	sh.group = nil
	g.stopping.Store(true)
	for _, wk := range g.workers {
		wk.gen.Add(1)
		if wk.parked.Load() {
			select {
			case wk.wake <- struct{}{}:
			default:
			}
		}
	}
	sh.parks += g.parks.Load()
}

// mergeReady folds every lane's newly prepared events into the merged ready
// queue. The committed prefix is dropped first; the leftover tail and each
// lane's batch are individually (when, seq)-sorted, so the sort sees
// concatenated ascending runs.
func (sh *sharding) mergeReady() {
	if sh.next > 0 {
		n := copy(sh.ready, sh.ready[sh.next:])
		for i := n; i < len(sh.ready); i++ {
			sh.ready[i] = nil
		}
		sh.ready = sh.ready[:n]
		sh.next = 0
	}
	runs := 0
	if len(sh.ready) > 0 {
		runs = 1
	}
	for l := range sh.lanes {
		lq := &sh.lanes[l]
		if len(lq.newReady) == 0 {
			continue
		}
		sh.ready = append(sh.ready, lq.newReady...)
		lq.pendingReady += len(lq.newReady)
		for i := range lq.newReady {
			lq.newReady[i] = nil
		}
		lq.newReady = lq.newReady[:0]
		runs++
	}
	if runs > 1 {
		slices.SortFunc(sh.ready, func(a, b *Event) int {
			if a.when != b.when {
				if a.when < b.when {
					return -1
				}
				return 1
			}
			switch {
			case a.seq < b.seq:
				return -1
			case a.seq > b.seq:
				return 1
			}
			return 0
		})
	}
}

// resetRunStats zeroes the per-run telemetry at RunSharded entry, so a
// reused engine (warmup phase, then measurement phase) reports each
// invocation's execution profile instead of a stale accumulation.
func (sh *sharding) resetRunStats() {
	sh.sweeps, sh.inlineSweeps, sh.laneCommits, sh.barrierWaitNs = 0, 0, 0, 0
	sh.horizonCycles, sh.parks, sh.wakes = 0, 0, 0
	sh.sweepSeen = false
	for i := range sh.preparedBy {
		sh.preparedBy[i] = 0
	}
}

// flushGlobalStats folds the finished run's telemetry into the process-wide
// aggregate. Runs after stopWorkers, so worker-side park counts are already
// merged.
func (sh *sharding) flushGlobalStats() {
	globalShard.sweeps.Add(sh.sweeps)
	globalShard.inlineSweeps.Add(sh.inlineSweeps)
	globalShard.laneCommits.Add(sh.laneCommits)
	globalShard.barrierWaitNs.Add(sh.barrierWaitNs)
	globalShard.horizonCycles.Add(sh.horizonCycles)
	globalShard.parks.Add(sh.parks)
	globalShard.wakes.Add(sh.wakes)
	var prepared uint64
	for _, n := range sh.preparedBy {
		prepared += n
	}
	globalShard.prepared.Add(prepared)
}

// ShardStats snapshots the parallel engine's execution telemetry for the
// current (or just-finished) RunSharded invocation. It must be called from
// the engine goroutine (like Step/RunSharded); it returns zeros when
// sharding is not enabled.
func (e *Engine) ShardStats() ShardStats {
	sh := e.sh
	if sh == nil {
		return ShardStats{}
	}
	st := ShardStats{
		Sweeps:        sh.sweeps,
		InlineSweeps:  sh.inlineSweeps,
		LaneCommits:   sh.laneCommits,
		BarrierWaitNs: sh.barrierWaitNs,
		HorizonCycles: sh.horizonCycles,
		Parks:         sh.parks,
		Wakes:         sh.wakes,
	}
	if g := sh.group; g != nil {
		st.Parks += g.parks.Load()
	}
	for _, n := range sh.preparedBy {
		st.Prepared += n
	}
	return st
}

// LanePending reports one lane's not-yet-committed event count (scheduled
// plus prepared); 0 when out of range or not sharded.
func (e *Engine) LanePending(lane int) int {
	sh := e.sh
	if sh == nil || lane < 0 || lane >= len(sh.lanes) {
		return 0
	}
	q := &sh.lanes[lane]
	return len(q.heap) + len(q.newReady) + q.pendingReady
}

// LaneCommitted reports one lane's cumulative committed event count; 0 when
// out of range or not sharded.
func (e *Engine) LaneCommitted(lane int) uint64 {
	sh := e.sh
	if sh == nil || lane < 0 || lane >= len(sh.lanes) {
		return 0
	}
	return sh.lanes[lane].committed
}
