package sim

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the opt-in parallel engine: the event population is
// sharded into per-bank lanes plus the ordinary global queue, and execution
// proceeds in conservative time windows whose width is a static lookahead.
//
// A lane event is scheduled with Speculate and carries two callbacks:
//
//   - prepare runs on a worker goroutine during a window's parallel phase.
//     It must only read shared simulation state and write state local to its
//     lane (or captured by the event's own closures); it must not touch the
//     engine. Prepares across lanes run concurrently.
//   - commit runs on the engine goroutine at the window barrier, merged with
//     global-queue events in deterministic (time, seq) order. All shared
//     mutation happens here.
//
// Determinism argument: every prepare is phase-separated from every commit
// and from all other shards' prepares by the sweep barrier (a WaitGroup,
// which establishes happens-before in both directions), so there are no data
// races; and because lane events are scheduled exactly `lookahead` cycles
// ahead, every lane event committing inside a window [T, T+W) was scheduled
// before T and therefore prepared at the window's opening sweep — the
// conservative invariant. Since commits apply in global (time, seq) order on
// one goroutine, the observable event order is identical to the sequential
// engine's; prepares only precompute values that are pure functions of the
// state their validity is later checked against, so results are bit-identical
// for any shard count and any GOMAXPROCS.
const (
	// idxReady marks a lane event that has been prepared and is waiting in
	// its lane's ready queue for the commit barrier. Distinct from idxIdle so
	// Scheduled/Cancel keep working on in-flight lane events.
	idxReady = -3
)

// laneQueue holds one lane's pending and prepared events.
type laneQueue struct {
	heap      eventHeap // scheduled, not yet prepared
	ready     []*Event  // prepared, ascending (when, seq), awaiting commit
	next      int       // first unconsumed entry of ready
	committed uint64    // lane events committed over the run (telemetry)
}

// ShardStats is an execution-side telemetry snapshot of the parallel
// engine: it describes how a run executed (window count, barrier stall
// time), never what it computed, so it is exported through exec-scope obs
// series and excluded from Result.Metrics.
type ShardStats struct {
	// Windows is the number of conservative windows opened.
	Windows uint64
	// Sweeps is the number of parallel prepare sweeps dispatched (a
	// window whose events were all prepared earlier needs no new sweep).
	Sweeps uint64
	// Prepared is the total number of lane events run through prepare
	// callbacks on worker goroutines.
	Prepared uint64
	// LaneCommits is the number of lane events committed at barriers.
	LaneCommits uint64
	// BarrierWaitNs is cumulative wall-clock time the engine goroutine
	// spent blocked on sweep barriers (nondeterministic by nature).
	BarrierWaitNs uint64
}

// sharding is the parallel-engine state hung off an Engine by EnableSharding.
type sharding struct {
	shards    int
	lookahead Cycle
	lanes     []laneQueue
	pending   int   // lane events not yet committed (heap + ready)
	minWhen   Cycle // earliest pending lane event; MaxCycle when none

	preparing atomic.Bool // a sweep's parallel phase is running

	// Telemetry. All fields are written on the engine goroutine except
	// preparedBy, whose per-shard slots are written by the (single) worker
	// draining that shard and ordered against reads by the sweep barrier.
	windows       uint64
	sweeps        uint64
	laneCommits   uint64
	barrierWaitNs uint64
	preparedBy    []uint64

	work    chan int // shard indices for the current sweep
	started bool
	wg      sync.WaitGroup

	panicMu  sync.Mutex
	panicked any
}

// EnableSharding turns on the parallel engine: lanes event lanes executed by
// up to shards-wide parallel prepare sweeps, with a conservative lookahead of
// the given width. Must be called before any event is scheduled; the lane
// partition (lane % shards) depends only on the shard count, never on
// GOMAXPROCS, so a simulation's shard assignment is machine-independent.
func (e *Engine) EnableSharding(lanes, shards int, lookahead Cycle) {
	if e.sh != nil {
		panic("sim: EnableSharding called twice")
	}
	if lanes <= 0 || shards <= 0 {
		panic(fmt.Sprintf("sim: EnableSharding with lanes %d, shards %d", lanes, shards))
	}
	if lookahead == 0 {
		panic("sim: EnableSharding with zero lookahead")
	}
	if shards > lanes {
		shards = lanes
	}
	e.sh = &sharding{
		shards:     shards,
		lookahead:  lookahead,
		lanes:      make([]laneQueue, lanes),
		minWhen:    MaxCycle,
		preparedBy: make([]uint64, shards),
	}
}

// Sharded reports whether the parallel engine is enabled.
func (e *Engine) Sharded() bool { return e.sh != nil }

// Lanes reports the number of event lanes (0 when not sharded).
func (e *Engine) Lanes() int {
	if e.sh == nil {
		return 0
	}
	return len(e.sh.lanes)
}

// Lookahead reports the conservative window width (0 when not sharded).
func (e *Engine) Lookahead() Cycle {
	if e.sh == nil {
		return 0
	}
	return e.sh.lookahead
}

// Speculate schedules a lane event exactly one lookahead ahead of now:
// prepare runs speculatively on a worker during a window's parallel phase,
// commit publishes its result at the barrier in global (time, seq) order.
// Scheduling exactly lookahead ahead is what makes the windows conservative —
// an event committing inside [T, T+W) was necessarily scheduled before T and
// is therefore prepared by the sweep that opens the window.
func (e *Engine) Speculate(lane int, prepare, commit func()) *Event {
	sh := e.sh
	if sh == nil {
		panic("sim: Speculate on an engine without sharding enabled")
	}
	if sh.preparing.Load() {
		panic("sim: Speculate called from a prepare callback")
	}
	if lane < 0 || lane >= len(sh.lanes) {
		panic(fmt.Sprintf("sim: Speculate on lane %d of %d", lane, len(sh.lanes)))
	}
	ev := e.alloc()
	ev.when, ev.seq = e.now+sh.lookahead, e.seq
	ev.fn, ev.prepare = commit, prepare
	ev.lane = int32(lane)
	e.seq++
	heap.Push(&sh.lanes[lane].heap, ev)
	sh.pending++
	if ev.when < sh.minWhen {
		sh.minWhen = ev.when
	}
	return ev
}

// RunSharded executes events until stop() reports true, interleaving plain
// sequential steps with conservative windows around pending lane events. It
// reports false when the queue drains with stop still unsatisfied (the
// deadlock case). stop is checked between consecutive events, exactly like a
// sequential Step loop. The prepare worker pool is torn down on return.
func (e *Engine) RunSharded(stop func() bool) bool {
	sh := e.sh
	if sh == nil {
		for !stop() {
			if !e.Step() {
				return false
			}
		}
		return true
	}
	defer sh.stopWorkers()
	for {
		if stop() {
			return true
		}
		if sh.pending == 0 {
			// Serial fast path: no lane events anywhere, behave exactly
			// like the sequential engine.
			if !e.Step() {
				return false
			}
			continue
		}
		g := e.queue.peek(e.now, e.recycle)
		if g != nil && g.when < sh.minWhen {
			e.Step()
			continue
		}
		// The frontier reached the earliest lane event: open a window.
		if !e.runWindow(stop) {
			return stop()
		}
	}
}

// runWindow opens a conservative window at the earliest pending lane event,
// runs the parallel prepare sweep, then commits lane and global events inside
// [T, T+lookahead) in (time, seq) order. It reports false when both queues
// drained inside the window.
func (e *Engine) runWindow(stop func() bool) bool {
	sh := e.sh
	start := sh.minWhen
	end := start + sh.lookahead
	if end < start { // overflow: unbounded window
		end = MaxCycle
	}
	sh.windows++
	e.sweep()
	for {
		if stop() {
			break
		}
		// Earliest prepared lane event.
		var lev *Event
		var lq *laneQueue
		for l := range sh.lanes {
			q := &sh.lanes[l]
			if q.next >= len(q.ready) {
				continue
			}
			ev := q.ready[q.next]
			if lev == nil || ev.when < lev.when || (ev.when == lev.when && ev.seq < lev.seq) {
				lev, lq = ev, q
			}
		}
		g := e.queue.peek(e.now, e.recycle)
		useLane := lev != nil && (g == nil || lev.when < g.when ||
			(lev.when == g.when && lev.seq < g.seq))
		if useLane {
			if lev.when >= end && end != MaxCycle {
				break // beyond the window; stays prepared for a later one
			}
			lq.next++
			sh.pending--
			sh.laneCommits++
			lq.committed++
			e.now = lev.when
			fn := lev.fn
			cancelled := lev.cancel
			e.recycle(lev)
			if !cancelled {
				// Lane commits do not count toward EventsRun and do not
				// fire the dispatch hook: metrics and traces stay
				// identical to the sequential engine, which never sees
				// these events.
				fn()
			}
			continue
		}
		if g == nil || (g.when >= end && end != MaxCycle) {
			if lev == nil && g == nil {
				// Ready queues and the global queue are empty; commits may
				// have speculated new lane events beyond this window, in
				// which case the outer loop opens the next one.
				sh.compact()
				return sh.pending > 0
			}
			break
		}
		e.Step()
	}
	sh.compact()
	return true
}

// sweep runs the parallel prepare phase: every pending lane event — in this
// window and beyond it — is popped from its lane heap in (when, seq) order
// and its prepare callback runs on a worker, one shard (lane % shards) per
// work item. The WaitGroup barrier orders all prepares before the commits
// that follow and after the serial execution that preceded, so prepares may
// freely read shared state.
func (e *Engine) sweep() {
	sh := e.sh
	n := 0
	for s := 0; s < sh.shards; s++ {
		if sh.shardHasWork(s) {
			n++
		}
	}
	if n == 0 {
		return
	}
	sh.startWorkers()
	sh.sweeps++
	sh.preparing.Store(true)
	sh.wg.Add(n)
	for s := 0; s < sh.shards; s++ {
		if sh.shardHasWork(s) {
			sh.work <- s
		}
	}
	// Barrier-wait time is wall clock and thus nondeterministic — which is
	// fine, because it only feeds exec-scope telemetry, never results.
	waitStart := time.Now()
	sh.wg.Wait()
	sh.barrierWaitNs += uint64(time.Since(waitStart).Nanoseconds())
	sh.preparing.Store(false)
	if p := sh.takePanic(); p != nil {
		panic(p)
	}
	sh.recomputeMin()
}

func (sh *sharding) shardHasWork(s int) bool {
	for l := s; l < len(sh.lanes); l += sh.shards {
		if len(sh.lanes[l].heap) > 0 {
			return true
		}
	}
	return false
}

// prepareShard drains every lane of one shard on a worker goroutine. Lanes
// of different shards are disjoint, so workers never share mutable state.
func (sh *sharding) prepareShard(s int) {
	defer sh.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			sh.panicMu.Lock()
			if sh.panicked == nil {
				sh.panicked = r
			}
			sh.panicMu.Unlock()
		}
	}()
	prepared := uint64(0)
	for l := s; l < len(sh.lanes); l += sh.shards {
		lq := &sh.lanes[l]
		for len(lq.heap) > 0 {
			ev := heap.Pop(&lq.heap).(*Event)
			ev.index = idxReady
			if !ev.cancel && ev.prepare != nil {
				ev.prepare()
				prepared++
			}
			lq.ready = append(lq.ready, ev)
		}
	}
	// Disjoint slot per shard; the sweep barrier orders this write before
	// any ShardStats read on the engine goroutine.
	sh.preparedBy[s] += prepared
}

func (sh *sharding) takePanic() any {
	sh.panicMu.Lock()
	defer sh.panicMu.Unlock()
	p := sh.panicked
	sh.panicked = nil
	return p
}

// startWorkers lazily spins up the prepare pool: at most min(shards,
// GOMAXPROCS) goroutines pulling shard indices. Which worker prepares which
// shard is scheduler-dependent and deliberately irrelevant — shards touch
// disjoint lanes and the barrier orders everything.
func (sh *sharding) startWorkers() {
	if sh.started {
		return
	}
	sh.started = true
	sh.work = make(chan int, sh.shards)
	workers := sh.shards
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	for i := 0; i < workers; i++ {
		go func(ch chan int) {
			for s := range ch {
				sh.prepareShard(s)
			}
		}(sh.work)
	}
}

// stopWorkers tears down the pool; a later sweep restarts it.
func (sh *sharding) stopWorkers() {
	if sh.started {
		close(sh.work)
		sh.work = nil
		sh.started = false
	}
}

// ShardStats snapshots the parallel engine's execution telemetry. It must
// be called from the engine goroutine (like Step/RunSharded); it returns
// zeros when sharding is not enabled.
func (e *Engine) ShardStats() ShardStats {
	sh := e.sh
	if sh == nil {
		return ShardStats{}
	}
	st := ShardStats{
		Windows:       sh.windows,
		Sweeps:        sh.sweeps,
		LaneCommits:   sh.laneCommits,
		BarrierWaitNs: sh.barrierWaitNs,
	}
	for _, n := range sh.preparedBy {
		st.Prepared += n
	}
	return st
}

// LanePending reports one lane's not-yet-committed event count (scheduled
// plus prepared); 0 when out of range or not sharded.
func (e *Engine) LanePending(lane int) int {
	sh := e.sh
	if sh == nil || lane < 0 || lane >= len(sh.lanes) {
		return 0
	}
	q := &sh.lanes[lane]
	return len(q.heap) + len(q.ready) - q.next
}

// LaneCommitted reports one lane's cumulative committed event count; 0 when
// out of range or not sharded.
func (e *Engine) LaneCommitted(lane int) uint64 {
	sh := e.sh
	if sh == nil || lane < 0 || lane >= len(sh.lanes) {
		return 0
	}
	return sh.lanes[lane].committed
}

// recomputeMin rescans lane queues for the earliest pending event.
func (sh *sharding) recomputeMin() {
	min := MaxCycle
	for l := range sh.lanes {
		q := &sh.lanes[l]
		if q.next < len(q.ready) && q.ready[q.next].when < min {
			min = q.ready[q.next].when
		}
		if len(q.heap) > 0 && q.heap[0].when < min {
			min = q.heap[0].when
		}
	}
	sh.minWhen = min
}

// compact drops committed prefixes of the ready queues and refreshes the
// cached minimum.
func (sh *sharding) compact() {
	for l := range sh.lanes {
		q := &sh.lanes[l]
		if q.next == 0 {
			continue
		}
		n := copy(q.ready, q.ready[q.next:])
		for i := n; i < len(q.ready); i++ {
			q.ready[i] = nil
		}
		q.ready = q.ready[:n]
		q.next = 0
	}
	sh.recomputeMin()
}
