package sim

import "testing"

// TestEngineRandomOpsMaintainOrder drives the engine with a random mix of
// schedules, cancellations, and nested re-schedules, and checks the
// fundamental invariant: callbacks observe a non-decreasing clock and every
// non-cancelled event runs exactly once.
func TestEngineRandomOpsMaintainOrder(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		rng := NewRNG(seed)
		e := NewEngine()
		var lastSeen Cycle
		ran := map[int]int{}
		cancelled := map[int]bool{}
		var events []*Event
		id := 0

		var spawn func(depth int)
		spawn = func(depth int) {
			myID := id
			id++
			delay := Cycle(rng.Intn(100))
			ev := e.After(delay, func() {
				if e.Now() < lastSeen {
					t.Fatalf("seed %d: clock went backwards: %d < %d", seed, e.Now(), lastSeen)
				}
				lastSeen = e.Now()
				ran[myID]++
				if depth < 3 && rng.Bernoulli(0.4) {
					spawn(depth + 1)
				}
			})
			events = append(events, ev)
			if rng.Bernoulli(0.2) {
				e.Cancel(ev)
				cancelled[myID] = true
			}
		}
		for i := 0; i < 200; i++ {
			spawn(0)
		}
		e.Run(0)

		for i := 0; i < id; i++ {
			switch {
			case cancelled[i] && ran[i] != 0:
				t.Fatalf("seed %d: cancelled event %d ran", seed, i)
			case !cancelled[i] && ran[i] != 1:
				t.Fatalf("seed %d: event %d ran %d times", seed, i, ran[i])
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("seed %d: %d events stuck in heap", seed, e.Pending())
		}
	}
}
