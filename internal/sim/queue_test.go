package sim

import (
	"container/heap"
	"testing"
)

// refEngine is the pre-calendar-queue kernel: a single binary heap ordered
// by (when, seq). It is kept here as the ordering oracle the calendar queue
// must match event for event.
type refEngine struct {
	now    Cycle
	seq    uint64
	events eventHeap
}

type refEvent = Event

func (e *refEngine) at(when Cycle, fn func()) *refEvent {
	if when < e.now {
		panic("ref: scheduling in the past")
	}
	ev := &Event{when: when, seq: e.seq, fn: fn, index: idxIdle}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

func (e *refEngine) cancel(ev *refEvent) {
	if ev == nil || ev.index == idxIdle {
		return
	}
	ev.cancel = true
}

func (e *refEngine) step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.when
		ev.fn()
		return true
	}
	return false
}

func (e *refEngine) run() {
	for e.step() {
	}
}

// storm drives either kernel with an identical, seed-determined mix of
// schedules, cancellations, and nested re-schedules, and returns the
// dispatch order of event IDs. schedule/cancel/run abstract over the two
// kernels so the same op stream hits both.
func storm(seed uint64, schedule func(delay Cycle, fn func()) any, cancel func(h any), run func()) []int {
	rng := NewRNG(seed)
	var order []int
	var handles []any
	id := 0

	var spawn func(depth int)
	spawn = func(depth int) {
		myID := id
		id++
		// Mix of near (bucket), far (overflow heap), and same-cycle
		// delays so every queue tier and the migration path is hit.
		var delay Cycle
		switch rng.Intn(4) {
		case 0:
			delay = 0
		case 1:
			delay = Cycle(rng.Intn(64))
		case 2:
			delay = Cycle(rng.Intn(numBuckets))
		default:
			delay = Cycle(numBuckets + rng.Intn(4*numBuckets))
		}
		h := schedule(delay, func() {
			order = append(order, myID)
			if depth < 3 && rng.Bernoulli(0.35) {
				spawn(depth + 1)
			}
		})
		handles = append(handles, h)
		// Cancel only handles that are certainly still pending (the one
		// just scheduled): the pooled engine recycles dispatched events,
		// so cancelling an arbitrary old handle is outside the ownership
		// contract and would diverge from the non-pooling reference.
		if rng.Bernoulli(0.15) {
			cancel(h)
		}
	}
	for i := 0; i < 300; i++ {
		spawn(0)
	}
	run()
	return order
}

// TestEngineQueueMatchesReferenceHeap cross-checks the calendar queue
// against the reference binary heap on seeded random event storms: both
// kernels must dispatch the exact same events in the exact same order.
func TestEngineQueueMatchesReferenceHeap(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		eng := NewEngine()
		got := storm(seed,
			func(d Cycle, fn func()) any { return eng.After(d, fn) },
			func(h any) { eng.Cancel(h.(*Event)) },
			func() { eng.Run(0) },
		)
		ref := &refEngine{}
		want := storm(seed,
			func(d Cycle, fn func()) any { return ref.at(ref.now+d, fn) },
			func(h any) { ref.cancel(h.(*refEvent)) },
			func() { ref.run() },
		)
		if len(got) != len(want) {
			t.Fatalf("seed %d: engine ran %d events, reference %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: dispatch %d: engine ran event %d, reference %d",
					seed, i, got[i], want[i])
			}
		}
		if eng.Pending() != 0 {
			t.Fatalf("seed %d: %d events stuck in queue", seed, eng.Pending())
		}
	}
}

// TestEngineStaleHandleCancelAfterRecycleHitsPoolEvent pins the sharp edge
// of event pooling: a handle held past its dispatch and cancelled later can
// alias a recycled Event and kill an unrelated pending callback. Callers
// must clear handles at dispatch (as mem.Controller does with its phase
// events) or use caller-owned Arm events, which are never pooled.
func TestEngineStaleHandleCancelAfterRecycleHitsPoolEvent(t *testing.T) {
	e := NewEngine()
	stale := e.At(1, func() {})
	e.Run(0) // dispatches and recycles `stale`
	ran := false
	fresh := e.At(2, func() { ran = true })
	if fresh != stale {
		t.Skip("allocator did not reuse the event; nothing to pin")
	}
	e.Cancel(stale) // stale handle now aliases `fresh`
	e.Run(0)
	if ran {
		t.Fatal("expected the stale cancel to hit the recycled event — contract changed")
	}
}

// TestEngineArmReuse exercises the caller-owned fast path: one embedded
// event re-armed across dispatches, with cancel/re-arm interleaving.
func TestEngineArmReuse(t *testing.T) {
	e := NewEngine()
	var ev Event
	ev.index = idxIdle
	count := 0
	var fire func()
	fire = func() {
		count++
		if count < 5 {
			e.Arm(&ev, 10, fire)
		}
	}
	e.Arm(&ev, 10, fire)
	e.Run(0)
	if count != 5 {
		t.Fatalf("armed event fired %d times, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("Now() = %d, want 50", e.Now())
	}

	// Cancel then re-arm: the cancelled instance must not fire.
	e.Arm(&ev, 5, func() { t.Fatal("cancelled armed event fired") })
	e.Cancel(&ev)
	e.Run(0)
	fired := false
	e.Arm(&ev, 5, func() { fired = true })
	e.Run(0)
	if !fired {
		t.Fatal("re-armed event did not fire")
	}
	if ev.Scheduled() {
		t.Fatal("dispatched armed event still reports Scheduled")
	}

	// Arming a pending event must panic.
	e.Arm(&ev, 5, func() {})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Arm did not panic")
			}
		}()
		e.Arm(&ev, 6, func() {})
	}()
}

// TestEngineWindowMigration pins the far-heap-to-bucket migration: events
// beyond the calendar window must dispatch in exact (when, seq) order
// relative to near events, including same-cycle FIFO across the boundary.
func TestEngineWindowMigration(t *testing.T) {
	e := NewEngine()
	var order []int
	// Far event first (goes to overflow heap), then near events, then
	// another far event at the same cycle as the first: seq order must
	// hold at that cycle after migration.
	e.At(Cycle(3*numBuckets), func() { order = append(order, 0) })
	e.At(5, func() { order = append(order, 1) })
	e.At(Cycle(3*numBuckets), func() { order = append(order, 2) })
	e.At(Cycle(3*numBuckets)+1, func() { order = append(order, 3) })
	e.Run(0)
	want := []int{1, 0, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}
