package sim

import "testing"

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Cycle(i%1000), func() {})
		if i%64 == 0 {
			e.Run(0)
		}
	}
	e.Run(0)
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkRNGNormal(b *testing.B) {
	r := NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Normal(8, 2.5)
	}
	_ = sink
}
