package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRNG(seed)
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGIntnUniformish(t *testing.T) {
	r := NewRNG(99)
	const buckets, draws = 10, 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d has %d draws, want ~%g", i, c, want)
		}
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(5)
	const p, draws = 0.25, 50000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / draws
	if math.Abs(mean-1/p) > 0.15 {
		t.Errorf("Geometric(%g) mean = %g, want ~%g", p, mean, 1/p)
	}
}

func TestRNGGeometricEdge(t *testing.T) {
	r := NewRNG(1)
	if g := r.Geometric(1); g != 1 {
		t.Errorf("Geometric(1) = %d, want 1", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	out := make([]int, 32)
	r.Perm(out)
	seen := make(map[int]bool)
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestRNGDeriveIndependent(t *testing.T) {
	a := NewRNG(42).Derive(1)
	b := NewRNG(42).Derive(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("derived streams with different labels overlap: %d/100", same)
	}
}

func TestRNGBernoulliExtremes(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}
