package sim

import (
	"container/heap"
	"math/bits"
)

// The event queue is a two-tier calendar (ladder) queue tuned for the
// simulator's arrival pattern: almost every event is scheduled a few dozen
// to a few thousand cycles ahead (cache latencies, PCM pulse widths), with
// a rare far tail (probe intervals, idle timers).
//
//   - Tier 1 is a ring of numBuckets singly-linked FIFO lists covering the
//     cycle window [base, base+numBuckets). Bucket i holds exactly the
//     events for cycle base+i, in scheduling (seq) order, so dispatch within
//     a cycle is a pointer pop — no comparisons, no sift.
//   - Tier 2 is the classic binary heap, holding only events beyond the
//     window. When the window drains, base jumps to the heap minimum and
//     every heap event inside the new window migrates into the ring in
//     (when, seq) order, which keeps same-cycle FIFO order exact.
//
// An occupancy bitmap (one bit per bucket) lets the dispatcher skip runs of
// empty cycles 64 at a time, so sparse regions cost a few word tests
// instead of per-cycle probes.
//
// The combination preserves the binary heap's exact (when, seq) dispatch
// order — TestEngineQueueMatchesReferenceHeap and FuzzEventOrder cross-check
// it against a reference heap — while making Schedule/dispatch O(1) and,
// together with the event free list, allocation-free in steady state.

const (
	// numBuckets is the calendar window width in cycles. It comfortably
	// covers the simulator's common delays (PCM reads ~1064 cycles, SET
	// pulses 1000); longer delays take one heap round-trip.
	numBuckets = 4096
	bitmapLen  = numBuckets / 64
)

// Event index sentinels: index >= 0 means "position in the overflow heap".
const (
	idxIdle   = -1 // not queued (ran, cancelled-and-collected, or never armed)
	idxBucket = -2 // linked into a calendar bucket
)

type eventQueue struct {
	base    Cycle // cycle of bucket 0; all bucket events are in [base, base+numBuckets)
	heads   []*Event
	tails   []*Event
	bitmap  []uint64 // occupancy, one bit per bucket
	nBucket int      // events (incl. cancelled) in buckets
	far     eventHeap
}

func (q *eventQueue) init() {
	q.heads = make([]*Event, numBuckets)
	q.tails = make([]*Event, numBuckets)
	q.bitmap = make([]uint64, bitmapLen)
}

// len counts queued events, including cancelled ones not yet collected.
func (q *eventQueue) len() int { return q.nBucket + len(q.far) }

// push files the event by timestamp: near events go to their cycle bucket,
// far ones to the overflow heap. Callers guarantee ev.when >= q.base, so
// the difference form below is overflow-safe even at when == MaxCycle.
func (q *eventQueue) push(ev *Event) {
	if ev.when-q.base < numBuckets {
		idx := int(ev.when - q.base)
		ev.index = idxBucket
		ev.next = nil
		if q.tails[idx] == nil {
			q.heads[idx] = ev
			q.bitmap[idx>>6] |= 1 << (idx & 63)
		} else {
			q.tails[idx].next = ev
		}
		q.tails[idx] = ev
		q.nBucket++
		return
	}
	heap.Push(&q.far, ev)
}

// popBucket removes and returns the head of bucket idx, which must be
// non-empty.
func (q *eventQueue) popBucket(idx int) *Event {
	ev := q.heads[idx]
	q.heads[idx] = ev.next
	if ev.next == nil {
		q.tails[idx] = nil
		q.bitmap[idx>>6] &^= 1 << (idx & 63)
	}
	ev.next = nil
	q.nBucket--
	return ev
}

// nextOccupied returns the lowest occupied bucket index >= from, or -1.
func (q *eventQueue) nextOccupied(from int) int {
	if from >= numBuckets {
		return -1
	}
	word := from >> 6
	w := q.bitmap[word] >> (from & 63) << (from & 63) // mask bits below from
	for {
		if w != 0 {
			return word<<6 + bits.TrailingZeros64(w)
		}
		word++
		if word >= bitmapLen {
			return -1
		}
		w = q.bitmap[word]
	}
}

// advance moves the window so that it starts at the overflow minimum and
// migrates every overflow event that now falls inside it. Must only be
// called with empty buckets and a non-empty overflow heap.
func (q *eventQueue) advance() {
	q.base = q.far[0].when
	for len(q.far) > 0 && q.far[0].when-q.base < numBuckets {
		// Heap pops arrive in (when, seq) order, so same-cycle FIFO
		// order is preserved by appending.
		q.push(heap.Pop(&q.far).(*Event))
	}
}

// pop removes and returns the earliest live event (skipping and collecting
// cancelled ones), or nil if the queue is empty. collect receives every
// cancelled event removed along the way.
func (q *eventQueue) pop(from Cycle, collect func(*Event)) *Event {
	for {
		scan := 0
		if from > q.base {
			scan = int(from - q.base)
		}
		for q.nBucket > 0 {
			idx := q.nextOccupied(scan)
			if idx < 0 {
				break
			}
			ev := q.popBucket(idx)
			if ev.cancel {
				collect(ev)
				scan = idx
				continue
			}
			return ev
		}
		// Buckets drained; refill from the far heap.
		for len(q.far) > 0 && q.far[0].cancel {
			collect(heap.Pop(&q.far).(*Event))
		}
		if len(q.far) == 0 {
			return nil
		}
		q.advance()
		from = q.base
	}
}

// popHead removes ev, which must be the event the immediately preceding
// peek returned with no queue mutation in between: the head of its calendar
// bucket, or the overflow-heap minimum. It lets a caller that already paid
// peek's bucket scan dispatch without paying it again in pop.
func (q *eventQueue) popHead(ev *Event) {
	if ev.index == idxBucket {
		q.popBucket(int(ev.when - q.base))
		return
	}
	heap.Pop(&q.far)
}

// peek returns the earliest live event without removing it (cancelled
// events encountered on the way are collected), or nil. It never moves the
// window, so it is safe to schedule into the present afterwards.
func (q *eventQueue) peek(from Cycle, collect func(*Event)) *Event {
	scan := 0
	if from > q.base {
		scan = int(from - q.base)
	}
	for q.nBucket > 0 {
		idx := q.nextOccupied(scan)
		if idx < 0 {
			break
		}
		ev := q.heads[idx]
		if ev.cancel {
			collect(q.popBucket(idx))
			scan = idx
			continue
		}
		return ev
	}
	for len(q.far) > 0 {
		if ev := q.far[0]; !ev.cancel {
			return ev
		}
		collect(heap.Pop(&q.far).(*Event))
	}
	return nil
}
