// Package sim provides the discrete-event simulation kernel used by every
// other package in this repository: a deterministic event heap keyed on a
// cycle clock, and a seedable pseudo-random number generator.
//
// All timing in the simulator is expressed in CPU cycles (4 GHz by default,
// so 1 ns = 4 cycles). Components schedule callbacks on the Engine; the
// Engine runs them in (time, sequence) order so simulations are fully
// deterministic for a given seed and configuration.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle uint64

// MaxCycle is the largest representable cycle; used as "never".
const MaxCycle = Cycle(math.MaxUint64)

// Event is a scheduled callback. The callback runs exactly once, at the
// cycle it was scheduled for, unless cancelled first.
type Event struct {
	when   Cycle
	seq    uint64 // tie-breaker: FIFO among events at the same cycle
	fn     func()
	index  int // heap index; -1 when not in the heap
	cancel bool
}

// When reports the cycle the event is scheduled for.
func (e *Event) When() Cycle { return e.when }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && e.index >= 0 && !e.cancel }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now    Cycle
	seq    uint64
	events eventHeap
	ran    uint64
	hook   DispatchHook
}

// DispatchHook observes every event dispatch: now is the cycle the clock
// just advanced to, ran the total events executed including this one.
type DispatchHook func(now Cycle, ran uint64)

// NewEngine returns an empty engine positioned at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// EventsRun reports how many events have executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending reports how many events are waiting in the heap (including
// cancelled events that have not yet been popped).
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at the absolute cycle when. Scheduling in the past
// panics: that is always a component bug, and silently reordering time would
// corrupt every downstream measurement.
func (e *Engine) At(when Cycle, fn func()) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now %d", when, e.now))
	}
	ev := &Event{when: when, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func()) *Event {
	return e.At(e.now+delay, fn)
}

// Cancel prevents a pending event from running. Cancelling a nil, already
// run, or already cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	ev.cancel = true
}

// SetDispatchHook installs (or, with nil, removes) a callback observing
// every event dispatch — the tracer's tap into the event loop. The only
// cost without a hook is one nil check per event.
func (e *Engine) SetDispatchHook(h DispatchHook) { e.hook = h }

// Step runs the next pending event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.when
		e.ran++
		if e.hook != nil {
			e.hook(e.now, e.ran)
		}
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the heap is empty or until limit events have
// run (0 means no limit). It returns the number of events executed.
func (e *Engine) Run(limit uint64) uint64 {
	var n uint64
	for limit == 0 || n < limit {
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= deadline. Events scheduled at
// exactly the deadline do run. The clock is left at the timestamp of the
// last executed event (it does not jump to the deadline if the heap drains
// early).
func (e *Engine) RunUntil(deadline Cycle) {
	for len(e.events) > 0 {
		// Peek.
		next := e.events[0]
		if next.cancel {
			heap.Pop(&e.events)
			continue
		}
		if next.when > deadline {
			return
		}
		e.Step()
	}
}

// RunWhile executes events while cond() returns true and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}
