// Package sim provides the discrete-event simulation kernel used by every
// other package in this repository: a deterministic calendar/heap event
// queue keyed on a cycle clock, and a seedable pseudo-random number
// generator.
//
// All timing in the simulator is expressed in CPU cycles (4 GHz by default,
// so 1 ns = 4 cycles). Components schedule callbacks on the Engine; the
// Engine runs them in (time, sequence) order so simulations are fully
// deterministic for a given seed and configuration.
package sim

import (
	"fmt"
	"math"
)

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle uint64

// MaxCycle is the largest representable cycle; used as "never".
const MaxCycle = Cycle(math.MaxUint64)

// Event is a scheduled callback. The callback runs exactly once, at the
// cycle it was scheduled for, unless cancelled first.
//
// Ownership: a handle returned by At/After is valid until the event's
// callback runs (or until a cancelled event is collected); after that the
// engine recycles the Event through its free list and the handle must be
// dropped. Every caller that keeps a handle across dispatch must clear it
// in the callback, as the memory controller does with its phase events.
// Long-lived components that re-schedule the same logical timer should
// instead embed an Event and use Arm/ArmAt — caller-owned events are never
// pooled, so their handles stay valid indefinitely.
type Event struct {
	when    Cycle
	seq     uint64 // tie-breaker: FIFO among events at the same cycle
	fn      func()
	prepare func() // lane events only: speculative phase (see Speculate)
	next    *Event // bucket FIFO / free-list link
	index   int    // heap index; idxBucket in a bucket, idxIdle when not queued
	lane    int32  // owning lane for sharded execution; -1 on the global queue
	cancel  bool
	owned   bool // caller-owned via Arm: never returned to the pool
}

// When reports the cycle the event is scheduled for.
func (e *Event) When() Cycle { return e.when }

// Lane reports the event's lane, or -1 for global-queue events.
func (e *Event) Lane() int { return int(e.lane) }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e != nil && e.index != idxIdle && !e.cancel }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = idxIdle
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now   Cycle
	seq   uint64
	queue eventQueue
	free  *Event // recycled Events, linked through next
	ran   uint64
	hook  DispatchHook
	sh    *sharding // non-nil once EnableSharding ran; see sharded.go
}

// DispatchHook observes every event dispatch: now is the cycle the clock
// just advanced to, ran the total events executed including this one.
type DispatchHook func(now Cycle, ran uint64)

// NewEngine returns an empty engine positioned at cycle 0.
func NewEngine() *Engine {
	e := &Engine{}
	e.queue.init()
	return e
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// EventsRun reports how many events have executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending reports how many events are waiting in the queue (including
// cancelled events that have not yet been collected, and pending lane
// events when sharding is enabled).
func (e *Engine) Pending() int {
	n := e.queue.len()
	if e.sh != nil {
		n += e.sh.pending
	}
	return n
}

// alloc pops the free list or allocates a fresh Event.
func (e *Engine) alloc() *Event {
	ev := e.free
	if ev == nil {
		return &Event{index: idxIdle, lane: -1}
	}
	e.free = ev.next
	ev.next = nil
	return ev
}

// recycle resets a finished pool event and pushes it onto the free list.
// Caller-owned events are only detached, never pooled.
func (e *Engine) recycle(ev *Event) {
	ev.index = idxIdle
	ev.fn = nil
	ev.prepare = nil
	ev.lane = -1
	ev.cancel = false
	if ev.owned {
		ev.next = nil
		return
	}
	ev.next = e.free
	e.free = ev
}

// At schedules fn to run at the absolute cycle when. Scheduling in the past
// panics: that is always a component bug, and silently reordering time would
// corrupt every downstream measurement. The returned handle is valid until
// the callback runs; see the Event ownership note.
func (e *Engine) At(when Cycle, fn func()) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now %d", when, e.now))
	}
	if e.sh != nil && e.sh.preparing.Load() {
		panic("sim: At called from a prepare callback")
	}
	ev := e.alloc()
	ev.when, ev.seq, ev.fn = when, e.seq, fn
	e.seq++
	e.queue.push(ev)
	return ev
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func()) *Event {
	return e.At(e.now+delay, fn)
}

// ArmAt schedules a caller-owned event at the absolute cycle when. The
// event must not be pending; arming a pending event panics. Caller-owned
// events are never recycled into the engine's pool, so components that fire
// the same logical timer repeatedly (one embedded Event per operation)
// schedule without touching the allocator or racing stale handles.
func (e *Engine) ArmAt(ev *Event, when Cycle, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now %d", when, e.now))
	}
	if e.sh != nil && e.sh.preparing.Load() {
		panic("sim: ArmAt called from a prepare callback")
	}
	if ev.index != idxIdle {
		panic("sim: ArmAt on an event that is still pending")
	}
	ev.when, ev.seq, ev.fn = when, e.seq, fn
	ev.cancel = false
	ev.owned = true
	ev.lane = -1
	e.seq++
	e.queue.push(ev)
}

// Arm schedules a caller-owned event delay cycles from now; see ArmAt.
func (e *Engine) Arm(ev *Event, delay Cycle, fn func()) {
	e.ArmAt(ev, e.now+delay, fn)
}

// Cancel prevents a pending event from running. Cancelling a nil, already
// run, or already cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index == idxIdle {
		return
	}
	ev.cancel = true
}

// Clock snapshots the engine's scheduling state — current cycle, next
// sequence number, and events run — for checkpointing at a quiesce barrier.
func (e *Engine) Clock() (now Cycle, seq, ran uint64) {
	return e.now, e.seq, e.ran
}

// RestoreClock positions an empty engine at a checkpointed clock state.
// Restoring seq is what keeps post-restore event ordering bit-identical to
// the uninterrupted run: the first event scheduled after the barrier gets
// the same (when, seq) key on both paths. It panics with pending events —
// the checkpoint format only captures quiesced systems (see internal/ckpt).
func (e *Engine) RestoreClock(now Cycle, seq, ran uint64) {
	if e.Pending() != 0 {
		panic("sim: RestoreClock on an engine with pending events")
	}
	e.now = now
	e.seq = seq
	e.ran = ran
	e.queue.base = now
}

// SetDispatchHook installs (or, with nil, removes) a callback observing
// every event dispatch — the tracer's tap into the event loop. The only
// cost without a hook is one nil check per event.
func (e *Engine) SetDispatchHook(h DispatchHook) { e.hook = h }

// Step runs the next pending event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	ev := e.queue.pop(e.now, e.recycle)
	if ev == nil {
		return false
	}
	e.now = ev.when
	e.ran++
	fn := ev.fn
	// Recycle before dispatch: fn frequently re-schedules, and handing it
	// the just-finished Event keeps the steady-state pool at one entry.
	e.recycle(ev)
	if e.hook != nil {
		e.hook(e.now, e.ran)
	}
	fn()
	return true
}

// Run executes events until the queue is empty or until limit events have
// run (0 means no limit). It returns the number of events executed.
func (e *Engine) Run(limit uint64) uint64 {
	var n uint64
	for limit == 0 || n < limit {
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= deadline. Events scheduled at
// exactly the deadline do run. The clock is left at the timestamp of the
// last executed event (it does not jump to the deadline if the queue drains
// early).
func (e *Engine) RunUntil(deadline Cycle) {
	for {
		next := e.queue.peek(e.now, e.recycle)
		if next == nil || next.when > deadline {
			return
		}
		e.Step()
	}
}

// RunWhile executes events while cond() returns true and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}
