package sim

import (
	"testing"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameCycle(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle events out of FIFO order: %v", got)
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Cycle
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run(0)
	if at != 150 {
		t.Errorf("nested After ran at %d, want 150", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(10, func() { ran = true })
	e.Cancel(ev)
	e.Run(0)
	if ran {
		t.Error("cancelled event ran")
	}
	// Cancelling nil or twice must be safe.
	e.Cancel(nil)
	e.Cancel(ev)
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run(0)
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Cycle
	for _, c := range []Cycle{10, 20, 30, 40} {
		c := c
		e.At(c, func() { got = append(got, c) })
	}
	e.RunUntil(25)
	if len(got) != 2 || got[1] != 20 {
		t.Fatalf("RunUntil(25) executed %v, want [10 20]", got)
	}
	e.RunUntil(40)
	if len(got) != 4 {
		t.Fatalf("second RunUntil executed %v", got)
	}
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Cycle(1); i <= 10; i++ {
		e.At(i, func() { count++ })
	}
	n := e.Run(4)
	if n != 4 || count != 4 {
		t.Fatalf("Run(4) executed %d events (count %d), want 4", n, count)
	}
}

func TestEngineRunWhile(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Cycle(1); i <= 10; i++ {
		e.At(i, func() { count++ })
	}
	e.RunWhile(func() bool { return count < 3 })
	if count != 3 {
		t.Fatalf("RunWhile stopped at count %d, want 3", count)
	}
}

func TestEngineSelfRescheduling(t *testing.T) {
	e := NewEngine()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		if ticks < 5 {
			e.After(10, tick)
		}
	}
	e.At(0, tick)
	e.Run(0)
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	if e.Now() != 40 {
		t.Errorf("Now() = %d, want 40", e.Now())
	}
}

func TestEventScheduledReporting(t *testing.T) {
	e := NewEngine()
	ev := e.At(10, func() {})
	if !ev.Scheduled() {
		t.Error("pending event not reported as scheduled")
	}
	e.Run(0)
	if ev.Scheduled() {
		t.Error("completed event still reported as scheduled")
	}
	var nilEv *Event
	if nilEv.Scheduled() {
		t.Error("nil event reported as scheduled")
	}
}
