package cache

import (
	"testing"

	"fpb/internal/sim"
)

// smallConfig shrinks the hierarchy so eviction behaviour is testable.
func smallConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.L1SizeKB = 1 // 16 lines
	cfg.L2SizeKB = 4 // 64 lines
	cfg.L3SizeMB = 1 // 4096 lines of 256B
	return cfg
}

func TestHierarchyLevels(t *testing.T) {
	cfg := smallConfig()
	h := NewHierarchy(&cfg)
	out := h.Access(0x1000, false)
	if out.Level != LevelMemory {
		t.Fatalf("cold access level = %v, want memory", out.Level)
	}
	if out.FillAddr != 0x1000 {
		t.Errorf("FillAddr = %#x", out.FillAddr)
	}
	if out := h.Access(0x1000, false); out.Level != LevelL1 {
		t.Errorf("re-access level = %v, want L1", out.Level)
	}
	// An address in the same 256B L3 line but a different 64B L1 line
	// hits L3 (the fill only installed 64B in L1/L2).
	if out := h.Access(0x1040, false); out.Level != LevelL3 {
		t.Errorf("sibling-64B access level = %v, want L3", out.Level)
	}
}

func TestHierarchyFillAddrAligned(t *testing.T) {
	cfg := smallConfig()
	h := NewHierarchy(&cfg)
	out := h.Access(0x12345, false)
	if out.FillAddr%uint64(cfg.L3LineB) != 0 {
		t.Errorf("FillAddr %#x not L3-line aligned", out.FillAddr)
	}
}

func TestHierarchyDirtyWritebackReachesMemory(t *testing.T) {
	cfg := smallConfig()
	h := NewHierarchy(&cfg)
	// Dirty one L3 line, then stream reads over > L3 capacity so it is
	// eventually evicted to memory.
	h.Access(0x0, true)
	sawWriteback := false
	span := uint64(cfg.L3SizeMB) * 1024 * 1024 * 2
	for addr := uint64(1 << 20); addr < 1<<20+span; addr += uint64(cfg.L3LineB) {
		out := h.Access(addr, false)
		for _, wb := range out.Writebacks {
			if wb == 0x0 {
				sawWriteback = true
			}
			if wb%uint64(cfg.L3LineB) != 0 {
				t.Fatalf("writeback %#x not line aligned", wb)
			}
		}
	}
	if !sawWriteback {
		t.Error("dirty line never written back to memory")
	}
}

func TestHierarchyCleanEvictionsSilent(t *testing.T) {
	cfg := smallConfig()
	h := NewHierarchy(&cfg)
	span := uint64(cfg.L3SizeMB) * 1024 * 1024 * 3
	for addr := uint64(0); addr < span; addr += uint64(cfg.L3LineB) {
		out := h.Access(addr, false)
		if len(out.Writebacks) != 0 {
			t.Fatal("clean streaming produced writebacks")
		}
	}
}

func TestHierarchyStoreStreamProducesReadsAndWrites(t *testing.T) {
	// The workload calibration identity: streaming stores at L3-line
	// granularity produce one demand fill and (eventually) one writeback
	// per line.
	cfg := smallConfig()
	h := NewHierarchy(&cfg)
	lineB := uint64(cfg.L3LineB)
	capLines := uint64(cfg.L3SizeMB) * 1024 * 1024 / lineB
	fills, wbs := 0, 0
	for i := uint64(0); i < capLines*4; i++ {
		out := h.Access(i*lineB, true)
		if out.Level == LevelMemory {
			fills++
		}
		wbs += len(out.Writebacks)
	}
	if fills != int(capLines*4) {
		t.Errorf("fills = %d, want %d (every streaming store misses)", fills, capLines*4)
	}
	// All but the resident tail must have been written back.
	wantWB := int(capLines * 3)
	if wbs < wantWB-64 || wbs > int(capLines*4) {
		t.Errorf("writebacks = %d, want ≈ %d", wbs, wantWB)
	}
}

func TestHierarchyPrefillEnablesImmediateWritebacks(t *testing.T) {
	cfg := smallConfig()
	h := NewHierarchy(&cfg)
	span := uint64(cfg.L3SizeMB) * 1024 * 1024 * 2
	h.Prefill(0, span, true)
	// First streaming store after prefill should evict a dirty line
	// almost immediately.
	sawWB := false
	for i := uint64(0); i < 64 && !sawWB; i++ {
		out := h.Access(span+i*uint64(cfg.L3LineB), true)
		sawWB = len(out.Writebacks) > 0
	}
	if !sawWB {
		t.Error("prefilled hierarchy produced no immediate writebacks")
	}
	if _, misses := h.L3().Stats(); misses == 0 {
		// stats were reset by prefill, then the loop above missed
		_ = misses
	}
}

func TestHierarchyWritebackAllocateFillRead(t *testing.T) {
	// A dirty 64B line whose enclosing 256B L3 line has been evicted
	// must, when written back down the stack, allocate in L3 and record
	// a read-for-ownership fill. Construct it deterministically:
	// line 0x0 sits in L1 set 0, L2 set 0, L3 set 0 (L1: 4 sets, L2: 16
	// sets, L3: 512 sets under smallConfig).
	cfg := smallConfig()
	h := NewHierarchy(&cfg)
	h.Access(0x0, true) // dirty in L1; clean copies in L2/L3

	var fills int
	count := func(out Outcome) { fills += len(out.FillReads) }

	// Evict 0x0 from L3: 9 reads mapping to L3 set 0 but L1/L2 set 1
	// (offset +64 within 128KB-stride lines).
	for k := uint64(1); k <= 9; k++ {
		count(h.Access(k*131072+64, false))
	}
	if h.L3().Contains(0x0) {
		t.Fatal("setup: 0x0 still in L3")
	}
	if !h.L1().IsDirty(0x0) {
		t.Fatal("setup: 0x0 not dirty in L1")
	}
	// Evict 0x0 from L1 (set 0) with reads at 256B stride, L3 sets 1..4.
	for j := uint64(1); j <= 4; j++ {
		count(h.Access(j*256, false))
	}
	// 0x0's dirty data is now in L2 set 0; evict it with reads at 1KB
	// stride (L2 set 0, L3 sets 4,8,12,16).
	before := fills
	for m := uint64(1); m <= 5; m++ {
		count(h.Access(m*1024, false))
	}
	if fills <= before {
		t.Errorf("no read-for-ownership fill recorded (fills %d)", fills)
	}
}

func TestHitLatencyMonotone(t *testing.T) {
	cfg := sim.DefaultConfig()
	h := NewHierarchy(&cfg)
	l1 := h.HitLatency(LevelL1)
	l2 := h.HitLatency(LevelL2)
	l3 := h.HitLatency(LevelL3)
	mem := h.HitLatency(LevelMemory)
	if !(l1 < l2 && l2 < l3 && l3 <= mem) {
		t.Errorf("latencies not monotone: %d %d %d %d", l1, l2, l3, mem)
	}
	if l1 != 2 {
		t.Errorf("L1 latency = %d, want 2", l1)
	}
	if l3 != 2+16+7+64+200 {
		t.Errorf("L3 latency = %d, want 289", l3)
	}
}
