package cache

import (
	"fmt"

	"fpb/internal/ckpt"
)

// SaveDelta serializes the cache's model state as a sparse delta against
// base: a geometry header (so a restore into a differently shaped cache
// fails loudly), the LRU tick, and the (index, tag, meta) triple of every
// way whose metadata differs from the baseline. Checkpoints are taken after
// a warmup phase that touches a small fraction of a prefilled cache, so the
// delta is orders of magnitude smaller than a full tag/meta dump (a 32 MB
// L3 is ~2.6 MB of metadata per core). Demand hit/miss counters are
// measurement state, not model state — they are zeroed at the barrier on
// both the cold and the restored path — so they are not captured.
//
// base must hold the cache's pre-warmup content; RestoreDelta's target must
// hold that identical baseline (both sides derive it from the deterministic
// prefill, see internal/system).
func (c *Cache) SaveDelta(w *ckpt.Writer, base *Cache) {
	if len(base.meta) != len(c.meta) {
		panic(fmt.Sprintf("cache: delta baseline has %d ways, cache has %d", len(base.meta), len(c.meta)))
	}
	w.Section("cache")
	w.U64(uint64(c.lineB))
	w.U64(uint64(c.ways))
	w.U64(uint64(c.sets))
	w.U64(c.tick)
	n := uint64(0)
	for i := range c.meta {
		if c.meta[i] != base.meta[i] {
			n++
		}
	}
	w.U64(n)
	for i := range c.meta {
		if c.meta[i] != base.meta[i] {
			w.U64(uint64(i))
			w.U64(c.meta[i].tag)
			w.U64(c.meta[i].meta)
		}
	}
}

// RestoreDelta applies a delta written by SaveDelta onto a cache of
// identical geometry holding the identical baseline content, and zeroes the
// measurement counters.
func (c *Cache) RestoreDelta(r *ckpt.Reader) error {
	r.Section("cache")
	lineB, ways, sets := r.U64(), r.U64(), r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if int(lineB) != c.lineB || int(ways) != c.ways || int(sets) != c.sets {
		return fmt.Errorf("cache: geometry mismatch: image %dB/%dw/%ds, cache %dB/%dw/%ds",
			lineB, ways, sets, c.lineB, c.ways, c.sets)
	}
	c.tick = r.U64()
	n := r.U64()
	if n > uint64(len(c.meta)) {
		return fmt.Errorf("cache: delta has %d entries, cache has %d ways", n, len(c.meta))
	}
	for j := uint64(0); j < n; j++ {
		i := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		if i >= uint64(len(c.meta)) {
			return fmt.Errorf("cache: delta way index %d out of range (%d ways)", i, len(c.meta))
		}
		c.meta[i].tag = r.U64()
		c.meta[i].meta = r.U64()
	}
	c.hits, c.misses = 0, 0
	return r.Err()
}

// SaveDelta serializes all three levels against the baseline hierarchy.
func (h *Hierarchy) SaveDelta(w *ckpt.Writer, base *Hierarchy) {
	w.Section("hier")
	h.l1.SaveDelta(w, base.l1)
	h.l2.SaveDelta(w, base.l2)
	h.l3.SaveDelta(w, base.l3)
}

// RestoreDelta applies all three levels' deltas onto a hierarchy holding
// the baseline content.
func (h *Hierarchy) RestoreDelta(r *ckpt.Reader) error {
	r.Section("hier")
	if err := h.l1.RestoreDelta(r); err != nil {
		return err
	}
	if err := h.l2.RestoreDelta(r); err != nil {
		return err
	}
	return h.l3.RestoreDelta(r)
}
