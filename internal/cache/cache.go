// Package cache implements the write-back cache hierarchy of the simulated
// CMP: per-core private L1 and L2 SRAM caches and a private off-chip DRAM
// L3 whose line size equals the PCM memory line (Table 1). The hierarchy is
// functional (tags + dirty bits, true LRU) and reports which level served
// each access and which memory operations (demand fills and dirty
// writebacks) it generated; timing is applied by the CPU model.
package cache

import (
	"math/bits"
	"sync"
)

// Victim describes a line evicted by an allocation.
type Victim struct {
	Addr  uint64 // line-aligned address
	Dirty bool
}

// way is the per-way metadata, laid out set-major so the tag probe walks one
// contiguous run of memory per set instead of gathering from parallel
// slices. Access is the hottest function in the whole simulator (every
// instruction of every core goes through up to three of these probes), and
// prefilled hierarchies are snapshot-cloned wholesale, so the layout is
// packed to 16 bytes: valid and dirty live in the low bits of the LRU word.
type way struct {
	tag  uint64 // line index
	meta uint64 // LRU tick << 2 | dirty << 1 | valid
}

const (
	wayValid  = 1 << 0
	wayDirty  = 1 << 1
	tickShift = 2
)

// Cache is one set-associative write-back, write-allocate cache level.
type Cache struct {
	lineB     int
	lineShift uint // log2(lineB) when lineB is a power of two
	linePow2  bool
	ways      int
	sets      int
	setMask   uint64 // sets-1 when sets is a power of two (the common case)
	setPow2   bool
	meta      []way // sets*ways, set-major
	tick      uint64
	hits      uint64
	misses    uint64
}

// metaPools recycles way arrays by length. A full figure sweep builds
// hundreds of hierarchies (megabytes of metadata each); reusing released
// arrays keeps clones on warm pages instead of fault-zeroing fresh ones.
var metaPools sync.Map // len -> *sync.Pool of []way

func newMeta(n int, zero bool) []way {
	if p, ok := metaPools.Load(n); ok {
		if s, _ := p.(*sync.Pool).Get().([]way); s != nil {
			if zero {
				clear(s)
			}
			return s
		}
	}
	return make([]way, n)
}

// New builds a cache of sizeBytes capacity with the given line size and
// associativity. Sizes that do not divide evenly are rounded down to whole
// sets; a cache smaller than one set panics.
func New(sizeBytes, lineB, ways int) *Cache {
	if lineB <= 0 || ways <= 0 {
		panic("cache: line size and ways must be positive")
	}
	sets := sizeBytes / (lineB * ways)
	if sets <= 0 {
		panic("cache: capacity below one set")
	}
	c := &Cache{
		lineB: lineB,
		ways:  ways,
		sets:  sets,
		meta:  newMeta(sets*ways, true),
	}
	if lineB&(lineB-1) == 0 {
		c.lineShift = uint(bits.TrailingZeros(uint(lineB)))
		c.linePow2 = true
	}
	if sets&(sets-1) == 0 {
		c.setMask = uint64(sets - 1)
		c.setPow2 = true
	}
	return c
}

// LineBytes reports the cache's line size.
func (c *Cache) LineBytes() int { return c.lineB }

// Stats reports accumulated demand hits and misses.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Clone returns an independent deep copy — same tags, dirty bits, LRU state
// and statistics. Used to snapshot prefilled hierarchies.
func (c *Cache) Clone() *Cache {
	cp := *c
	cp.meta = newMeta(len(c.meta), false)
	copy(cp.meta, c.meta)
	return &cp
}

// Release returns the cache's metadata array to the pool. The cache must
// not be used afterwards; callers release only when they own the last
// reference (e.g. a finished simulation tearing down).
func (c *Cache) Release() {
	if c.meta == nil {
		return
	}
	p, _ := metaPools.LoadOrStore(len(c.meta), &sync.Pool{})
	m := c.meta
	c.meta = nil
	p.(*sync.Pool).Put(m)
}

func (c *Cache) lineIndex(addr uint64) uint64 {
	if c.linePow2 {
		return addr >> c.lineShift
	}
	return addr / uint64(c.lineB)
}

func (c *Cache) set(lineIdx uint64) int {
	if c.setPow2 {
		return int(lineIdx & c.setMask)
	}
	return int(lineIdx % uint64(c.sets))
}

// Access performs a demand access. On a miss the line is allocated
// (the fill itself is the caller's concern) and the LRU victim, if any,
// is returned. write marks the line dirty.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victim Victim, evicted bool) {
	lineIdx := c.lineIndex(addr)
	c.tick++
	base := c.set(lineIdx) * c.ways
	set := c.meta[base : base+c.ways]
	var lruWay, invalidWay = -1, -1
	var lruTick uint64 = ^uint64(0)
	for w := range set {
		m := &set[w]
		if m.meta&wayValid == 0 {
			invalidWay = w
			continue
		}
		if m.tag == lineIdx {
			c.hits++
			flags := m.meta & (wayValid | wayDirty)
			if write {
				flags |= wayDirty
			}
			m.meta = c.tick<<tickShift | flags
			return true, Victim{}, false
		}
		if u := m.meta >> tickShift; u < lruTick {
			lruTick = u
			lruWay = w
		}
	}
	c.misses++
	w := invalidWay
	if w < 0 {
		w = lruWay
		m := &set[w]
		victim = Victim{Addr: m.tag * uint64(c.lineB), Dirty: m.meta&wayDirty != 0}
		evicted = true
	}
	flags := uint64(wayValid)
	if write {
		flags |= wayDirty
	}
	set[w] = way{tag: lineIdx, meta: c.tick<<tickShift | flags}
	return false, victim, evicted
}

// Contains reports whether the line holding addr is cached (no LRU update).
func (c *Cache) Contains(addr uint64) bool {
	lineIdx := c.lineIndex(addr)
	base := c.set(lineIdx) * c.ways
	set := c.meta[base : base+c.ways]
	for w := range set {
		if set[w].meta&wayValid != 0 && set[w].tag == lineIdx {
			return true
		}
	}
	return false
}

// IsDirty reports whether the line holding addr is cached dirty.
func (c *Cache) IsDirty(addr uint64) bool {
	lineIdx := c.lineIndex(addr)
	base := c.set(lineIdx) * c.ways
	set := c.meta[base : base+c.ways]
	for w := range set {
		if set[w].meta&wayValid != 0 && set[w].tag == lineIdx {
			return set[w].meta&wayDirty != 0
		}
	}
	return false
}
