// Package cache implements the write-back cache hierarchy of the simulated
// CMP: per-core private L1 and L2 SRAM caches and a private off-chip DRAM
// L3 whose line size equals the PCM memory line (Table 1). The hierarchy is
// functional (tags + dirty bits, true LRU) and reports which level served
// each access and which memory operations (demand fills and dirty
// writebacks) it generated; timing is applied by the CPU model.
package cache

// Victim describes a line evicted by an allocation.
type Victim struct {
	Addr  uint64 // line-aligned address
	Dirty bool
}

// Cache is one set-associative write-back, write-allocate cache level.
type Cache struct {
	lineB  int
	ways   int
	sets   int
	tags   []uint64 // line index per way, laid out set-major
	valid  []bool
	dirty  []bool
	lastU  []uint64
	tick   uint64
	hits   uint64
	misses uint64
}

// New builds a cache of sizeBytes capacity with the given line size and
// associativity. Sizes that do not divide evenly are rounded down to whole
// sets; a cache smaller than one set panics.
func New(sizeBytes, lineB, ways int) *Cache {
	if lineB <= 0 || ways <= 0 {
		panic("cache: line size and ways must be positive")
	}
	sets := sizeBytes / (lineB * ways)
	if sets <= 0 {
		panic("cache: capacity below one set")
	}
	n := sets * ways
	return &Cache{
		lineB: lineB,
		ways:  ways,
		sets:  sets,
		tags:  make([]uint64, n),
		valid: make([]bool, n),
		dirty: make([]bool, n),
		lastU: make([]uint64, n),
	}
}

// LineBytes reports the cache's line size.
func (c *Cache) LineBytes() int { return c.lineB }

// Stats reports accumulated demand hits and misses.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

func (c *Cache) set(lineIdx uint64) int { return int(lineIdx % uint64(c.sets)) }

// Access performs a demand access. On a miss the line is allocated
// (the fill itself is the caller's concern) and the LRU victim, if any,
// is returned. write marks the line dirty.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victim Victim, evicted bool) {
	lineIdx := addr / uint64(c.lineB)
	c.tick++
	base := c.set(lineIdx) * c.ways
	var lruWay, invalidWay = -1, -1
	var lruTick uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if !c.valid[i] {
			invalidWay = w
			continue
		}
		if c.tags[i] == lineIdx {
			c.hits++
			c.lastU[i] = c.tick
			if write {
				c.dirty[i] = true
			}
			return true, Victim{}, false
		}
		if c.lastU[i] < lruTick {
			lruTick = c.lastU[i]
			lruWay = w
		}
	}
	c.misses++
	way := invalidWay
	if way < 0 {
		way = lruWay
		i := base + way
		victim = Victim{Addr: c.tags[i] * uint64(c.lineB), Dirty: c.dirty[i]}
		evicted = true
	}
	i := base + way
	c.tags[i] = lineIdx
	c.valid[i] = true
	c.dirty[i] = write
	c.lastU[i] = c.tick
	return false, victim, evicted
}

// Contains reports whether the line holding addr is cached (no LRU update).
func (c *Cache) Contains(addr uint64) bool {
	lineIdx := addr / uint64(c.lineB)
	base := c.set(lineIdx) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == lineIdx {
			return true
		}
	}
	return false
}

// IsDirty reports whether the line holding addr is cached dirty.
func (c *Cache) IsDirty(addr uint64) bool {
	lineIdx := addr / uint64(c.lineB)
	base := c.set(lineIdx) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == lineIdx {
			return c.dirty[i]
		}
	}
	return false
}
