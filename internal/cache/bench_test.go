package cache

import (
	"testing"

	"fpb/internal/sim"
)

func BenchmarkCacheAccessHit(b *testing.B) {
	c := New(32*1024, 64, 4)
	c.Access(0x1000, false)
	for i := 0; i < b.N; i++ {
		if hit, _, _ := c.Access(0x1000, false); !hit {
			b.Fatal("miss")
		}
	}
}

func BenchmarkCacheAccessStreamingMiss(b *testing.B) {
	c := New(32*1024, 64, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*64, i%2 == 0)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.L3SizeMB = 4
	h := NewHierarchy(&cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i)*64%(8<<20), i%4 == 0)
	}
}
