package cache

import (
	"testing"
	"testing/quick"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := New(1024, 64, 2) // 8 sets
	hit, _, ev := c.Access(0x100, false)
	if hit || ev {
		t.Fatal("first access must be a clean miss")
	}
	hit, _, _ = c.Access(0x100, false)
	if !hit {
		t.Fatal("second access must hit")
	}
	if !c.Contains(0x100) || c.Contains(0x9000) {
		t.Error("Contains wrong")
	}
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Errorf("stats = %d/%d, want 1/1", h, m)
	}
}

func TestCacheSameLineDifferentOffsets(t *testing.T) {
	c := New(1024, 64, 2)
	c.Access(0x100, false)
	if hit, _, _ := c.Access(0x13F, false); !hit {
		t.Error("access within same line missed")
	}
	if hit, _, _ := c.Access(0x140, false); hit {
		t.Error("access to next line hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(2*64, 64, 2) // one set, two ways
	c.Access(0x0, false)
	c.Access(0x40, false)
	c.Access(0x0, false) // touch A so B is LRU
	hit, v, ev := c.Access(0x80, false)
	if hit || !ev {
		t.Fatal("third distinct line must evict")
	}
	if v.Addr != 0x40 {
		t.Errorf("evicted %#x, want LRU 0x40", v.Addr)
	}
	if v.Dirty {
		t.Error("clean line evicted dirty")
	}
	if !c.Contains(0x0) || c.Contains(0x40) {
		t.Error("wrong resident set after eviction")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := New(2*64, 64, 2)
	c.Access(0x0, true) // dirty
	c.Access(0x40, false)
	c.Access(0x40, false) // A is LRU
	_, v, ev := c.Access(0x80, false)
	if !ev || !v.Dirty || v.Addr != 0x0 {
		t.Errorf("want dirty eviction of 0x0, got %+v ev=%v", v, ev)
	}
}

func TestCacheWriteHitSetsDirty(t *testing.T) {
	c := New(1024, 64, 2)
	c.Access(0x200, false)
	if c.IsDirty(0x200) {
		t.Error("clean fill marked dirty")
	}
	c.Access(0x200, true)
	if !c.IsDirty(0x200) {
		t.Error("write hit did not set dirty")
	}
	if c.IsDirty(0x4000) {
		t.Error("absent line reported dirty")
	}
}

func TestCacheInvalidConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 64, 2) },
		func() { New(1024, 0, 2) },
		func() { New(1024, 64, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid cache config did not panic")
				}
			}()
			f()
		}()
	}
}

func TestCacheNeverExceedsCapacityProperty(t *testing.T) {
	err := quick.Check(func(addrs []uint16) bool {
		c := New(512, 64, 2) // 8 lines total
		for _, a := range addrs {
			c.Access(uint64(a), a%3 == 0)
		}
		resident := 0
		for line := uint64(0); line < 1024; line++ {
			if c.Contains(line * 64) {
				resident++
			}
		}
		return resident <= 8
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCacheStreamingEvictsEverything(t *testing.T) {
	c := New(4096, 64, 4) // 64 lines
	// Two full laps over 128 lines: every access of lap 2 must miss.
	for lap := 0; lap < 2; lap++ {
		start, _ := c.Stats()
		for i := 0; i < 128; i++ {
			c.Access(uint64(i)*64, false)
		}
		h, _ := c.Stats()
		if h != start {
			t.Fatalf("lap %d produced %d hits; streaming must thrash", lap, h-start)
		}
	}
}
