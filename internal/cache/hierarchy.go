package cache

import "fpb/internal/sim"

// Level identifies which level served a demand access.
type Level int

const (
	LevelL1 Level = 1
	LevelL2 Level = 2
	LevelL3 Level = 3
	// LevelMemory means the access missed every cache and needs a PCM
	// read (demand fill) before it can complete.
	LevelMemory Level = 4
)

// Outcome describes the consequences of one demand access through the
// hierarchy.
type Outcome struct {
	// Level that served the access (LevelMemory = PCM demand read of
	// FillAddr required; the core blocks on it).
	Level Level
	// FillAddr is the L3-line-aligned address to read from memory when
	// Level == LevelMemory.
	FillAddr uint64
	// Writebacks are L3-line-aligned dirty evictions that must be
	// written to PCM (usually 0 or 1; writeback-allocate cascades can
	// produce more).
	Writebacks []uint64
	// FillReads are additional off-critical-path PCM reads needed to
	// fill L3 lines allocated by writebacks that missed L3
	// (read-for-ownership); the core does not wait for them.
	FillReads []uint64
}

// Hierarchy is one core's private three-level cache stack.
type Hierarchy struct {
	l1, l2, l3 *Cache
	cfg        *sim.Config
}

// NewHierarchy builds the per-core hierarchy from the configuration.
func NewHierarchy(cfg *sim.Config) *Hierarchy {
	return &Hierarchy{
		l1:  New(cfg.L1SizeKB*1024, cfg.L1LineB, cfg.L1Ways),
		l2:  New(cfg.L2SizeKB*1024, cfg.L2LineB, cfg.L2Ways),
		l3:  New(cfg.L3SizeMB*1024*1024, cfg.L3LineB, cfg.L3Ways),
		cfg: cfg,
	}
}

// Clone returns an independent deep copy of the hierarchy bound to cfg
// (pass the original's Cfg to keep sharing it). Used by the workload
// harness to snapshot a prefilled hierarchy once and stamp out copies for
// every scheme instead of re-running the multi-hundred-thousand-access
// prefill per scheme.
func (h *Hierarchy) Clone(cfg *sim.Config) *Hierarchy {
	return &Hierarchy{
		l1:  h.l1.Clone(),
		l2:  h.l2.Clone(),
		l3:  h.l3.Clone(),
		cfg: cfg,
	}
}

// Release returns all three levels' metadata arrays to the pool; see
// Cache.Release. The hierarchy must not be used afterwards.
func (h *Hierarchy) Release() {
	h.l1.Release()
	h.l2.Release()
	h.l3.Release()
}

// L1 returns the L1 cache (tests and telemetry).
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 returns the L2 cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// L3 returns the L3 DRAM cache.
func (h *Hierarchy) L3() *Cache { return h.l3 }

// Access runs one demand access (write=true for stores) through the stack
// and returns its outcome. Dirty victims cascade: an L1 victim is written
// back into L2, an L2 victim into L3, and an L3 victim becomes a PCM
// write.
func (h *Hierarchy) Access(addr uint64, write bool) Outcome {
	var out Outcome

	if hit, v, ev := h.l1.Access(addr, write); hit {
		out.Level = LevelL1
		return out
	} else if ev && v.Dirty {
		h.writebackInto(h.l2, v.Addr, &out)
	}

	if hit, v, ev := h.l2.Access(addr, false); hit {
		out.Level = LevelL2
		return out
	} else if ev && v.Dirty {
		h.writebackInto(h.l3, v.Addr, &out)
	}

	if hit, v, ev := h.l3.Access(addr, false); hit {
		out.Level = LevelL3
		return out
	} else if ev && v.Dirty {
		out.Writebacks = append(out.Writebacks, v.Addr)
	}

	out.Level = LevelMemory
	out.FillAddr = addr / uint64(h.cfg.L3LineB) * uint64(h.cfg.L3LineB)
	return out
}

// writebackInto installs a dirty victim line into the next level,
// cascading any dirty eviction it causes. A writeback that misses L3
// allocates the line and records a read-for-ownership fill.
func (h *Hierarchy) writebackInto(next *Cache, victimAddr uint64, out *Outcome) {
	hit, v, ev := next.Access(victimAddr, true)
	if ev && v.Dirty {
		if next == h.l2 {
			h.writebackInto(h.l3, v.Addr, out)
		} else {
			out.Writebacks = append(out.Writebacks, v.Addr)
		}
	}
	if !hit && next == h.l3 {
		out.FillReads = append(out.FillReads,
			victimAddr/uint64(h.cfg.L3LineB)*uint64(h.cfg.L3LineB))
	}
}

// Prefill warms the hierarchy with the address range [start, start+span):
// every L3 line in the range is installed (dirty when dirty is true), so
// steady-state capacity evictions begin immediately instead of after a
// multi-million-instruction cold phase. Used by the workload harness; see
// DESIGN.md §3 on warm-up substitution.
func (h *Hierarchy) Prefill(start, span uint64, dirty bool) {
	lineB := uint64(h.cfg.L3LineB)
	for addr := start / lineB * lineB; addr < start+span; addr += lineB {
		h.l3.Access(addr, dirty)
	}
	// Prefill distorts demand statistics; zero the counters.
	h.l3.hits, h.l3.misses = 0, 0
}

// L3CapacityLines returns how many lines the L3 holds.
func (h *Hierarchy) L3CapacityLines() int {
	return h.cfg.L3SizeMB * 1024 * 1024 / h.cfg.L3LineB
}

// ResetStats zeroes every level's hit/miss counters (after warm-up).
func (h *Hierarchy) ResetStats() {
	h.l1.hits, h.l1.misses = 0, 0
	h.l2.hits, h.l2.misses = 0, 0
	h.l3.hits, h.l3.misses = 0, 0
}

// HitLatency returns the cycles a demand access served at the given level
// costs the core, per Table 1's latency parameters. LevelMemory returns
// only the on-chip portion — the PCM read latency is added by the memory
// controller when the read completes.
func (h *Hierarchy) HitLatency(l Level) sim.Cycle {
	cfg := h.cfg
	switch l {
	case LevelL1:
		return cfg.L1HitCycles
	case LevelL2:
		return cfg.L1HitCycles + cfg.CPUToL2 + cfg.L2HitCycles
	case LevelL3:
		return cfg.L1HitCycles + cfg.CPUToL2 + cfg.L2HitCycles +
			cfg.CPUToL3 + cfg.L3HitCycles
	default:
		// Tag checks all the way down; the PCM access itself is
		// accounted by the memory controller.
		return cfg.L1HitCycles + cfg.CPUToL2 + cfg.L2HitCycles +
			cfg.CPUToL3 + cfg.L3HitCycles
	}
}
