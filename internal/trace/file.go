package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Header describes a stored trace file.
type Header struct {
	Magic    string `json:"magic"`
	Version  int    `json:"version"`
	Workload string `json:"workload"`
	Core     int    `json:"core"`
	// Value optionally names the data-value class of the traced
	// benchmark ("int", "fp", "byte", "stream"), so replay can
	// reconstruct writeback contents.
	Value   string `json:"value,omitempty"`
	Records uint64 `json:"records"`
}

const (
	magic         = "fpb-trace"
	formatVersion = 1
)

// Writer streams accesses to an io.Writer: a one-line JSON header followed
// by fixed-width little-endian records (gap uint32, flags uint8, addr
// uint64).
type Writer struct {
	w       *bufio.Writer
	header  Header
	records uint64
	started bool
}

// NewWriter creates a trace writer for the given workload/core labels.
func NewWriter(w io.Writer, workload string, core int) *Writer {
	return &Writer{
		w:      bufio.NewWriter(w),
		header: Header{Magic: magic, Version: formatVersion, Workload: workload, Core: core},
	}
}

// SetValueClass records the benchmark's data-value class in the header;
// it must be called before the first Write.
func (tw *Writer) SetValueClass(v string) {
	if !tw.started {
		tw.header.Value = v
	}
}

// Write appends one access record.
func (tw *Writer) Write(a Access) error {
	if !tw.started {
		// Records count is unknown up front; it is written as 0 and
		// readers trust EOF instead.
		hdr, err := json.Marshal(tw.header)
		if err != nil {
			return err
		}
		if _, err := tw.w.Write(append(hdr, '\n')); err != nil {
			return err
		}
		tw.started = true
	}
	var buf [13]byte
	binary.LittleEndian.PutUint32(buf[0:4], a.Gap)
	if a.Write {
		buf[4] = 1
	}
	binary.LittleEndian.PutUint64(buf[5:13], a.Addr)
	if _, err := tw.w.Write(buf[:]); err != nil {
		return err
	}
	tw.records++
	return nil
}

// Flush finalizes buffered output. Callers must Flush before closing the
// underlying file.
func (tw *Writer) Flush() error {
	if !tw.started {
		// Emit the header even for empty traces.
		hdr, err := json.Marshal(tw.header)
		if err != nil {
			return err
		}
		if _, err := tw.w.Write(append(hdr, '\n')); err != nil {
			return err
		}
		tw.started = true
	}
	return tw.w.Flush()
}

// Records reports how many accesses have been written.
func (tw *Writer) Records() uint64 { return tw.records }

// Reader replays a stored trace; it implements Source.
type Reader struct {
	r      *bufio.Reader
	header Header
	n      uint64 // records successfully returned
	err    error
}

// NewReader parses the header and prepares to stream records.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	var h Header
	if err := json.Unmarshal(line, &h); err != nil {
		return nil, fmt.Errorf("trace: parsing header: %w", err)
	}
	if h.Magic != magic {
		return nil, fmt.Errorf("trace: bad magic %q", h.Magic)
	}
	if h.Version != formatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", h.Version)
	}
	return &Reader{r: br, header: h}, nil
}

// Header returns the file's metadata.
func (tr *Reader) Header() Header { return tr.header }

// Err returns the first error encountered while streaming. A clean
// end-of-trace leaves it nil; a file that ends mid-record (truncated by a
// crash or partial copy) reports which record was cut short, so replay
// callers can distinguish EOF from corruption.
func (tr *Reader) Err() error { return tr.err }

// Records reports how many accesses have been successfully read.
func (tr *Reader) Records() uint64 { return tr.n }

// Next implements Source. It keeps returning ok=false after any error;
// check Err to tell exhaustion from corruption.
func (tr *Reader) Next() (Access, bool) {
	if tr.err != nil {
		return Access{}, false
	}
	var buf [13]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		switch err {
		case io.EOF:
			// Clean boundary between records: the stream is exhausted.
		case io.ErrUnexpectedEOF:
			tr.err = fmt.Errorf("trace: record %d truncated (file ends mid-record): %w", tr.n, err)
		default:
			tr.err = fmt.Errorf("trace: record %d: %w", tr.n, err)
		}
		return Access{}, false
	}
	tr.n++
	return Access{
		Gap:   binary.LittleEndian.Uint32(buf[0:4]),
		Write: buf[4] == 1,
		Addr:  binary.LittleEndian.Uint64(buf[5:13]),
	}, true
}
