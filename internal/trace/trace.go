// Package trace defines the memory-access trace representation the CPU
// model consumes: a per-core stream of (instruction gap, read/write,
// address) records, equivalent to the PIN-collected traces the paper's
// simulator is driven by. Traces can be generated on the fly
// (internal/workload) or stored to and replayed from files (cmd/tracegen).
package trace

// Access is one memory instruction in a core's dynamic instruction stream.
type Access struct {
	// Gap is the number of non-memory instructions executed before this
	// access (each costing one cycle on the in-order core).
	Gap uint32
	// Write marks a store; loads block the core until data returns.
	Write bool
	// Addr is the byte address accessed.
	Addr uint64
}

// Instructions returns the instruction count the access represents: the
// gap plus the memory instruction itself.
func (a Access) Instructions() uint64 { return uint64(a.Gap) + 1 }

// Source produces a core's access stream. Next returns ok=false when the
// stream is exhausted (generated streams are typically infinite and are cut
// off by the instruction budget instead).
type Source interface {
	Next() (Access, bool)
}

// SliceSource replays a fixed slice of accesses; used by tests and file
// replay.
type SliceSource struct {
	accesses []Access
	pos      int
}

// NewSliceSource wraps accesses in a Source.
func NewSliceSource(accesses []Access) *SliceSource {
	return &SliceSource{accesses: accesses}
}

// Next implements Source.
func (s *SliceSource) Next() (Access, bool) {
	if s.pos >= len(s.accesses) {
		return Access{}, false
	}
	a := s.accesses[s.pos]
	s.pos++
	return a, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Repeat wraps a SliceSource so it loops forever; the instruction budget
// terminates the simulation instead of the trace.
type Repeat struct {
	inner *SliceSource
}

// NewRepeat returns an endlessly looping view of accesses. It panics on an
// empty slice (the loop would never produce anything).
func NewRepeat(accesses []Access) *Repeat {
	if len(accesses) == 0 {
		panic("trace: Repeat over empty slice")
	}
	return &Repeat{inner: NewSliceSource(accesses)}
}

// Next implements Source; it never returns ok=false.
func (r *Repeat) Next() (Access, bool) {
	a, ok := r.inner.Next()
	if !ok {
		r.inner.Reset()
		a, _ = r.inner.Next()
	}
	return a, true
}
