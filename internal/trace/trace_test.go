package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccessInstructions(t *testing.T) {
	a := Access{Gap: 9}
	if a.Instructions() != 10 {
		t.Errorf("Instructions = %d, want 10", a.Instructions())
	}
}

func TestSliceSource(t *testing.T) {
	accs := []Access{{Gap: 1, Addr: 0x40}, {Gap: 2, Write: true, Addr: 0x80}}
	s := NewSliceSource(accs)
	a, ok := s.Next()
	if !ok || a.Addr != 0x40 {
		t.Fatal("first access wrong")
	}
	a, ok = s.Next()
	if !ok || !a.Write {
		t.Fatal("second access wrong")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source returned ok")
	}
	s.Reset()
	if _, ok := s.Next(); !ok {
		t.Fatal("reset did not rewind")
	}
}

func TestRepeatLoopsForever(t *testing.T) {
	r := NewRepeat([]Access{{Addr: 1}, {Addr: 2}})
	want := []uint64{1, 2, 1, 2, 1}
	for i, w := range want {
		a, ok := r.Next()
		if !ok || a.Addr != w {
			t.Fatalf("iteration %d: got %d ok=%v, want %d", i, a.Addr, ok, w)
		}
	}
}

func TestRepeatEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Repeat over empty slice did not panic")
		}
	}()
	NewRepeat(nil)
}

func TestFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "mcf_m", 3)
	accs := []Access{
		{Gap: 100, Write: false, Addr: 0xDEADBEEF},
		{Gap: 0, Write: true, Addr: 0x1000},
		{Gap: 4_000_000, Write: true, Addr: 1 << 40},
	}
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 3 {
		t.Errorf("Records = %d", w.Records())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h := r.Header(); h.Workload != "mcf_m" || h.Core != 3 {
		t.Errorf("header = %+v", h)
	}
	for i, want := range accs {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("record %d missing", i)
		}
		if got != want {
			t.Errorf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("extra record after EOF")
	}
	if r.Err() != nil {
		t.Errorf("Err = %v", r.Err())
	}
}

func TestFileEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "empty", 0)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Error("empty trace produced a record")
	}
}

func TestFileTruncatedMidRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "mcf_m", 0)
	for i := 0; i < 3; i++ {
		if err := w.Write(Access{Gap: uint32(i), Addr: uint64(0x1000 * i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-way through the third record.
	cut := bytes.NewReader(buf.Bytes()[:buf.Len()-7])

	r, err := NewReader(cut)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("read %d complete records, want 2", n)
	}
	if r.Records() != 2 {
		t.Errorf("Records = %d, want 2", r.Records())
	}
	err = r.Err()
	if err == nil {
		t.Fatal("truncated trace reported no error; corruption is indistinguishable from EOF")
	}
	if !strings.Contains(err.Error(), "record 2") {
		t.Errorf("error %q does not name the truncated record index", err)
	}
	// The stream stays terminated after the error.
	if _, ok := r.Next(); ok {
		t.Error("Next produced a record after a truncation error")
	}
}

func TestFileCleanEOFHasNoError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "mcf_m", 0)
	if err := w.Write(Access{Gap: 1, Addr: 0x40}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	if r.Err() != nil {
		t.Errorf("clean EOF set Err = %v", r.Err())
	}
}

func TestFileBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewBufferString("{\"magic\":\"nope\"}\n")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewBufferString("not json\n")); err == nil {
		t.Error("garbage header accepted")
	}
	if _, err := NewReader(bytes.NewBufferString("")); err == nil {
		t.Error("empty file accepted")
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	err := quick.Check(func(gaps []uint32, addrs []uint64) bool {
		n := len(gaps)
		if len(addrs) < n {
			n = len(addrs)
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, "prop", 0)
		var want []Access
		for i := 0; i < n; i++ {
			a := Access{Gap: gaps[i], Write: gaps[i]%2 == 0, Addr: addrs[i]}
			want = append(want, a)
			if err := w.Write(a); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, wa := range want {
			got, ok := r.Next()
			if !ok || got != wa {
				return false
			}
		}
		_, ok := r.Next()
		return !ok
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}
