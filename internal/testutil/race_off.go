//go:build !race

// Package testutil holds small helpers shared by test files across packages.
package testutil

// RaceEnabled reports whether the binary was built with -race. Allocation
// guards (testing.AllocsPerRun) skip under the race detector, which adds
// bookkeeping allocations the production build does not have.
const RaceEnabled = false
